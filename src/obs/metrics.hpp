#pragma once
/// \file metrics.hpp
/// \brief Deterministic metrics: interned names, counters, gauges and
///        fixed-bucket histograms.
///
/// The observability substrate every future controller reads from (the
/// ROADMAP's detection-driven adaptive consistency needs to *see* staleness,
/// escalation, repair and latency behavior before it can act on them).  Two
/// properties drive the design:
///
///  * **Hot-path recording is an array index.**  A MetricId is the interned
///    form of a metric name — the same scheme as net::MsgType — so add(),
///    set_gauge() and observe() cost a bounds check plus an increment into a
///    flat vector.  Names are interned once at static-initialization time;
///    the recording path never touches the string registry.
///
///  * **Dumps are byte-deterministic.**  Every recorded value derives from
///    the simulator clock or protocol state — never wall-clock — and every
///    export walks metrics in name order, so two fixed-seed runs produce
///    byte-identical metric dumps (a golden-testable property).
///
/// Disabled observability must cost (at most) one branch per call site:
/// components record through a Meter, a nullable registry handle whose
/// operations no-op when unset.  Defining IDEA_OBS_DISABLED turns the Meter
/// into a compile-time null sink with no members at all.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace idea::obs {

/// Interned metric name: a small integer id into a process-wide registry
/// mapping id <-> name.  Ids index flat per-registry arrays directly.
class MetricId {
 public:
  /// The invalid/unset metric; its name renders as "?".
  constexpr MetricId() = default;

  /// Intern `name`, returning the existing id when already registered.
  static MetricId intern(std::string_view name);

  /// Look up an already-interned name; returns the invalid MetricId when
  /// `name` was never interned.
  static MetricId lookup(std::string_view name);

  /// Number of ids handed out so far, including the reserved id 0.
  static std::uint32_t registered_count();

  /// The interned name ("?" for the invalid metric).  The returned view
  /// points into the registry and stays valid for the process lifetime.
  [[nodiscard]] std::string_view name() const;

  [[nodiscard]] constexpr std::uint16_t id() const { return id_; }
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }

  friend constexpr bool operator==(MetricId, MetricId) = default;

 private:
  explicit constexpr MetricId(std::uint16_t id) : id_(id) {}

  std::uint16_t id_ = 0;
};

/// Fixed-bucket histogram over non-negative integer samples (latencies in
/// microseconds, staleness in versions, queue depths, ...).  Buckets are
/// powers of two — sample v lands in bucket bit_width(v), i.e. bucket b
/// covers [2^(b-1), 2^b) with bucket 0 reserved for v == 0 — so bucket
/// assignment is one instruction and the bounds are identical across runs
/// without per-metric configuration.
struct Histogram {
  /// 2^39 us is ~6.4 simulated days; anything beyond clamps into the
  /// last bucket (max still records the true value).
  static constexpr std::size_t kBuckets = 40;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  void observe(std::uint64_t v) {
    std::size_t b = 0;
    while ((1ull << b) <= v && b + 1 < kBuckets) ++b;
    ++buckets[b];
    ++count;
    sum += v;
    if (v > max) max = v;
  }

  [[nodiscard]] double mean() const {
    return count == 0
               ? 0.0
               : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Quantile estimate by linear interpolation within the hit bucket's
  /// value range.  Deterministic; exact for single-valued buckets.
  [[nodiscard]] double quantile(double q) const;

  void merge(const Histogram& o);
};

/// One registry of metrics: flat arrays indexed by MetricId.  A deployment
/// keeps one registry per endpoint plus a cluster-level one; see
/// observability.hpp for the aggregation and export surface.
class MetricsRegistry {
 public:
  // --- recording (hot path) -------------------------------------------
  void add(MetricId m, std::uint64_t delta = 1) {
    grow(counters_, m.id());
    counters_[m.id()] += delta;
  }

  void set_gauge(MetricId m, std::int64_t value) {
    grow(gauges_, m.id());
    grow(gauge_set_, m.id());
    gauges_[m.id()] = value;
    gauge_set_[m.id()] = 1;
  }

  void observe(MetricId m, std::uint64_t value) {
    grow(histograms_, m.id());
    if (histograms_[m.id()] == nullptr) {
      histograms_[m.id()] = std::make_unique<Histogram>();
    }
    histograms_[m.id()]->observe(value);
  }

  // --- reading ---------------------------------------------------------
  [[nodiscard]] std::uint64_t counter(MetricId m) const {
    return m.id() < counters_.size() ? counters_[m.id()] : 0;
  }
  [[nodiscard]] std::int64_t gauge(MetricId m) const {
    return m.id() < gauges_.size() ? gauges_[m.id()] : 0;
  }
  /// Null when the metric was never observed here.
  [[nodiscard]] const Histogram* histogram(MetricId m) const {
    return m.id() < histograms_.size() ? histograms_[m.id()].get() : nullptr;
  }

  /// Name-keyed snapshot of the nonzero counters (tests, diagnostics).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters_by_name() const;

  /// Whether anything was ever recorded here.
  [[nodiscard]] bool empty() const;

  /// Fold `other` into this registry (counters add, gauges keep the
  /// other's value when set there, histograms merge bucket-wise).  The
  /// cluster aggregator is built from this.
  void merge(const MetricsRegistry& other);

  void reset();

  /// Append this registry as a JSON object to `out`, metrics sorted by
  /// name — byte-deterministic for fixed-seed runs.  `indent` is the
  /// leading whitespace of the object's members.
  void append_json(std::string& out, const std::string& indent) const;

 private:
  template <typename V>
  static void grow(std::vector<V>& v, std::uint16_t id) {
    if (id >= v.size()) v.resize(id + 1);
  }

  std::vector<std::uint64_t> counters_;        ///< Indexed by MetricId.
  std::vector<std::int64_t> gauges_;           ///< Indexed by MetricId.
  std::vector<std::uint8_t> gauge_set_;        ///< 1 = gauge was written.
  std::vector<std::unique_ptr<Histogram>> histograms_;  ///< Sparse.
};

/// Nullable recording handle: the one-branch null sink.  Components hold a
/// Meter instead of a registry so that deployments without observability
/// pay a single predictable branch per record call — and none at all when
/// IDEA_OBS_DISABLED is defined, which compiles every Meter operation away.
#ifndef IDEA_OBS_DISABLED
class Meter {
 public:
  Meter() = default;
  explicit Meter(MetricsRegistry* registry) : registry_(registry) {}

  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }

  void add(MetricId m, std::uint64_t delta = 1) const {
    if (registry_ != nullptr) registry_->add(m, delta);
  }
  void set_gauge(MetricId m, std::int64_t value) const {
    if (registry_ != nullptr) registry_->set_gauge(m, value);
  }
  void observe(MetricId m, std::uint64_t value) const {
    if (registry_ != nullptr) registry_->observe(m, value);
  }

 private:
  MetricsRegistry* registry_ = nullptr;
};
#else
class Meter {
 public:
  Meter() = default;
  explicit Meter(MetricsRegistry*) {}
  [[nodiscard]] bool enabled() const { return false; }
  void add(MetricId, std::uint64_t = 1) const {}
  void set_gauge(MetricId, std::int64_t) const {}
  void observe(MetricId, std::uint64_t) const {}
};
#endif

}  // namespace idea::obs
