#pragma once
/// \file trace.hpp
/// \brief Cross-endpoint causal tracing on the simulator clock.
///
/// A TraceContext (trace id + parent span id) is minted when a ClientSession
/// operation starts and rides on every message the operation causes —
/// net::Message carries the two ids next to its group-epoch field — so one
/// read's full escalation path (router decision, coordinator replication,
/// quorum fan-out, the anti-entropy round that finally heals the stale
/// replica) is recorded as a single span tree across endpoints.
///
/// Spans are recorded into a Tracer owned by the deployment's Observability
/// instance.  Wire spans open at send time and close at delivery, so their
/// duration is the modeled network flight time; a span that never closes is
/// a *lost message*, exported with `"lost": true` — scripted loss windows
/// are directly visible in the trace.  All timestamps are simulator
/// microseconds, so fixed-seed runs export byte-identical traces.
///
/// export_chrome_trace() emits the Chrome trace-event JSON format: load the
/// file in chrome://tracing (or https://ui.perfetto.dev) and each endpoint
/// appears as a process with its spans on the trace's timeline.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::obs {

/// The propagated causal context: which trace this work belongs to and
/// which span caused it.  trace == 0 means "untraced" — the common case,
/// checked with one branch everywhere.
struct TraceContext {
  std::uint64_t trace = 0;  ///< Trace id; 0 = not traced.
  std::uint32_t span = 0;   ///< Parent span id within the trace.

  [[nodiscard]] constexpr bool active() const { return trace != 0; }
};

/// One recorded span.  `name` must point at static-storage strings
/// (protocol literals) — the tracer stores the view, not a copy.
struct SpanRecord {
  std::uint64_t trace = 0;
  std::uint32_t id = 0;      ///< 1-based; index into the tracer's log + 1.
  std::uint32_t parent = 0;  ///< 0 = trace root.
  std::string_view name;
  NodeId endpoint = kNoNode;  ///< kNoNode renders as the "client" process.
  FileId file = 0;
  SimTime start = 0;
  SimTime end = -1;  ///< < start = never closed (lost message / open op).

  [[nodiscard]] bool finished() const { return end >= start; }
};

/// Append-only span log.  Ids are handed out sequentially, so recording is
/// deterministic and spans can be closed by id from another endpoint.
class Tracer {
 public:
  /// Mint a new trace rooted at a fresh span.  Returns the context child
  /// work should propagate.
  TraceContext start_trace(std::string_view name, NodeId endpoint,
                           FileId file, SimTime at);

  /// Open a child span under `parent`; no-op (inactive context) when the
  /// parent is untraced.
  TraceContext begin_span(const TraceContext& parent, std::string_view name,
                          NodeId endpoint, FileId file, SimTime at);

  /// Close a span by id (idempotent; unknown ids ignored).
  void end_span(std::uint32_t span_id, SimTime at);

  /// A zero-duration child span (decision points, applies).
  TraceContext instant(const TraceContext& parent, std::string_view name,
                       NodeId endpoint, FileId file, SimTime at);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const {
    return spans_;
  }
  [[nodiscard]] std::uint64_t traces_started() const {
    return next_trace_ - 1;
  }

  /// All spans of one trace, in recording order.
  [[nodiscard]] std::vector<SpanRecord> trace_spans(
      std::uint64_t trace) const;

  /// The whole span log as Chrome trace-event JSON ("X" complete events,
  /// pid = endpoint, tid = trace id, ts/dur in simulated microseconds).
  /// Byte-deterministic for fixed-seed runs.
  [[nodiscard]] std::string export_chrome_trace() const;

  void clear() { spans_.clear(); }

 private:
  std::vector<SpanRecord> spans_;
  std::uint64_t next_trace_ = 1;
};

}  // namespace idea::obs
