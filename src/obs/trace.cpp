#include "obs/trace.hpp"

#include <cstdio>

namespace idea::obs {

TraceContext Tracer::start_trace(std::string_view name, NodeId endpoint,
                                 FileId file, SimTime at) {
  const std::uint64_t trace = next_trace_++;
  return begin_span(TraceContext{trace, 0}, name, endpoint, file, at);
}

TraceContext Tracer::begin_span(const TraceContext& parent,
                                std::string_view name, NodeId endpoint,
                                FileId file, SimTime at) {
  if (!parent.active()) return {};
  SpanRecord span;
  span.trace = parent.trace;
  span.id = static_cast<std::uint32_t>(spans_.size() + 1);
  span.parent = parent.span;
  span.name = name;
  span.endpoint = endpoint;
  span.file = file;
  span.start = at;
  spans_.push_back(span);
  return TraceContext{span.trace, span.id};
}

void Tracer::end_span(std::uint32_t span_id, SimTime at) {
  if (span_id == 0 || span_id > spans_.size()) return;
  SpanRecord& span = spans_[span_id - 1];
  if (!span.finished()) span.end = at;
}

TraceContext Tracer::instant(const TraceContext& parent,
                             std::string_view name, NodeId endpoint,
                             FileId file, SimTime at) {
  const TraceContext ctx = begin_span(parent, name, endpoint, file, at);
  if (ctx.active()) end_span(ctx.span, at);
  return ctx;
}

std::vector<SpanRecord> Tracer::trace_spans(std::uint64_t trace) const {
  std::vector<SpanRecord> out;
  for (const SpanRecord& s : spans_) {
    if (s.trace == trace) out.push_back(s);
  }
  return out;
}

std::string Tracer::export_chrome_trace() const {
  std::string out;
  out.reserve(spans_.size() * 160 + 256);
  out += "{\"traceEvents\": [\n";
  char buf[320];

  // Name the per-endpoint "processes" so chrome://tracing labels rows
  // meaningfully.  Endpoints are discovered from the spans themselves;
  // kNoNode (the client's origin-less side) renders as pid -1.
  std::vector<std::int64_t> pids;
  for (const SpanRecord& s : spans_) {
    const std::int64_t pid =
        s.endpoint == kNoNode ? -1 : static_cast<std::int64_t>(s.endpoint);
    bool seen = false;
    for (std::int64_t p : pids) {
      if (p == pid) {
        seen = true;
        break;
      }
    }
    if (!seen) pids.push_back(pid);
  }
  bool first = true;
  for (std::int64_t pid : pids) {
    if (!first) out += ",\n";
    first = false;
    if (pid < 0) {
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                    "-1, \"args\": {\"name\": \"client\"}}");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                    "%lld, \"args\": {\"name\": \"endpoint %lld\"}}",
                    static_cast<long long>(pid), static_cast<long long>(pid));
    }
    out += buf;
  }

  for (const SpanRecord& s : spans_) {
    const bool lost = !s.finished();
    const SimDuration dur = lost ? 0 : s.end - s.start;
    const std::int64_t pid =
        s.endpoint == kNoNode ? -1 : static_cast<std::int64_t>(s.endpoint);
    if (!first) out += ",\n";
    first = false;
    std::snprintf(
        buf, sizeof(buf),
        "  {\"name\": \"%.*s\", \"ph\": \"X\", \"ts\": %lld, \"dur\": %lld, "
        "\"pid\": %lld, \"tid\": %llu, \"args\": {\"span\": %u, \"parent\": "
        "%u, \"file\": %u, \"lost\": %s}}",
        static_cast<int>(s.name.size()), s.name.data(),
        static_cast<long long>(s.start), static_cast<long long>(dur),
        static_cast<long long>(pid),
        static_cast<unsigned long long>(s.trace), s.id, s.parent, s.file,
        lost ? "true" : "false");
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace idea::obs
