#pragma once
/// \file observability.hpp
/// \brief Deployment-wide observability: per-endpoint metric registries, a
///        cluster-level aggregator, the tracer, and the escalation→repair
///        trace hand-off.
///
/// One Observability instance per ShardedCluster (created only when
/// ObservabilityConfig::enabled — the default-off path hands every
/// component a null Meter, so disabled observability costs one branch per
/// record site and changes no behavior).  Guarantees that matter:
///
///  * Enabling observability never perturbs the protocols: recording draws
///    no RNG, sends no messages, and trace ids ride in message fields that
///    do not count toward wire_bytes — fixed-seed runs stay byte-identical
///    to observability-off runs (golden-tested).
///
///  * export_metrics_json() is byte-deterministic: name-sorted metrics,
///    sim-clock values only, endpoints in id order.
///
/// The repair-trace hand-off closes the loop the ISSUE's acceptance
/// criterion asks for: when a traced read observes staleness (a bounded
/// read escalating, an eventual read served behind the coordinator), the
/// router parks the trace context under the file.  Anti-entropy rounds for
/// that file adopt the parked context — tagging the digest/repair exchange
/// without changing it — until a repair actually heals the replica, at
/// which point the agent clears the entry.  The exported span tree then
/// runs client → router decision → serving/escalation endpoints → the AE
/// round that repaired the staleness the read saw.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ids.hpp"

namespace idea::obs {

struct ObservabilityConfig {
  /// Master switch.  Off (default): no registries, no tracer, components
  /// hold null Meters — the one-branch null sink.
  bool enabled = false;
  /// Mint + propagate trace contexts for session operations.
  bool tracing = false;
  /// Trace every Nth operation per session (1 = all).  Sampling keeps the
  /// span log bounded on long runs while still catching escalations.
  std::uint32_t trace_sample_every = 1;
};

class Observability {
 public:
  Observability(std::uint32_t endpoints, ObservabilityConfig config);

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] const ObservabilityConfig& config() const { return config_; }

  // --- registries ------------------------------------------------------
  [[nodiscard]] MetricsRegistry& cluster() { return cluster_; }
  [[nodiscard]] const MetricsRegistry& cluster() const { return cluster_; }
  [[nodiscard]] MetricsRegistry& endpoint(NodeId id);
  [[nodiscard]] std::uint32_t endpoint_count() const {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

  [[nodiscard]] Meter cluster_meter() { return Meter(&cluster_); }
  [[nodiscard]] Meter endpoint_meter(NodeId id) {
    return Meter(&endpoint(id));
  }

  /// Grow the per-endpoint registries (elastic membership joins).
  void ensure_endpoints(std::uint32_t count);

  /// Cluster-level aggregate: the cluster registry folded together with
  /// every endpoint registry (counters add, histograms merge).
  [[nodiscard]] MetricsRegistry aggregate() const;

  /// The whole deployment's metrics as JSON: cluster registry, aggregate,
  /// then each endpoint in id order.  Byte-deterministic.
  [[nodiscard]] std::string export_metrics_json() const;

  // --- tracing ---------------------------------------------------------
  /// Null when tracing is disabled — callers branch once.
  [[nodiscard]] Tracer* tracer() { return tracer_.get(); }
  [[nodiscard]] const Tracer* tracer() const { return tracer_.get(); }

  /// Park `tc` under `file`: the next anti-entropy rounds for the file
  /// adopt it (see peek/clear below).  Overwrites an earlier parked trace.
  void note_repair_trace(FileId file, const TraceContext& tc);

  /// The parked context for `file` (inactive when none).  Not consumed:
  /// every AE round until the heal is tagged.
  [[nodiscard]] TraceContext peek_repair_trace(FileId file) const;

  /// Drop the parked context — called when a traced repair applied
  /// updates (the staleness healed) or the file is torn down.
  void clear_repair_trace(FileId file);

 private:
  ObservabilityConfig config_;
  MetricsRegistry cluster_;
  std::deque<MetricsRegistry> endpoints_;  ///< Stable refs across growth.
  std::unique_ptr<Tracer> tracer_;
  std::unordered_map<FileId, TraceContext> repair_traces_;
};

}  // namespace idea::obs
