#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <shared_mutex>

namespace idea::obs {
namespace {

/// Process-wide interning state, mirroring the MsgType registry: a deque so
/// the strings backing MetricId::name() views never move, plus an ordered
/// name index for lookup and name-sorted exports.
struct Registry {
  std::shared_mutex mu;
  std::deque<std::string> names;  // index = id; [0] reserved for "?"
  std::map<std::string, std::uint16_t, std::less<>> by_name;

  Registry() { names.emplace_back("?"); }
};

Registry& registry() {
  static Registry r;
  return r;
}

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof(buf) - 1));
}

}  // namespace

MetricId MetricId::intern(std::string_view name) {
  assert(!name.empty());
  Registry& r = registry();
  {
    std::shared_lock lock(r.mu);
    auto it = r.by_name.find(name);
    if (it != r.by_name.end()) return MetricId(it->second);
  }
  std::unique_lock lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return MetricId(it->second);
  if (r.names.size() > UINT16_MAX) {
    std::fprintf(stderr,
                 "MetricId registry exhausted (%zu metrics); cannot intern "
                 "\"%.*s\"\n",
                 r.names.size(), static_cast<int>(name.size()), name.data());
    std::abort();
  }
  const auto id = static_cast<std::uint16_t>(r.names.size());
  r.names.emplace_back(name);
  r.by_name.emplace(r.names.back(), id);
  return MetricId(id);
}

MetricId MetricId::lookup(std::string_view name) {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  auto it = r.by_name.find(name);
  return it == r.by_name.end() ? MetricId() : MetricId(it->second);
}

std::uint32_t MetricId::registered_count() {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return static_cast<std::uint32_t>(r.names.size());
}

std::string_view MetricId::name() const {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return id_ < r.names.size() ? std::string_view(r.names[id_])
                              : std::string_view("?");
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const std::uint64_t next = seen + buckets[b];
    if (static_cast<double>(next) >= target) {
      // Interpolate within the bucket's value range [lo, hi).
      const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      const double hi = b == 0 ? 1.0 : static_cast<double>(1ull << b);
      const double into =
          (target - static_cast<double>(seen)) /
          static_cast<double>(buckets[b]);
      return lo + into * (hi - lo);
    }
    seen = next;
  }
  return static_cast<double>(max);
}

void Histogram::merge(const Histogram& o) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += o.buckets[b];
  count += o.count;
  sum += o.sum;
  if (o.max > max) max = o.max;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters_by_name()
    const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t id = 0; id < counters_.size(); ++id) {
    if (counters_[id] == 0) continue;
    Registry& r = registry();
    std::shared_lock lock(r.mu);
    if (id < r.names.size()) out.emplace(r.names[id], counters_[id]);
  }
  return out;
}

bool MetricsRegistry::empty() const {
  for (std::uint64_t c : counters_) {
    if (c != 0) return false;
  }
  for (std::uint8_t s : gauge_set_) {
    if (s != 0) return false;
  }
  for (const auto& h : histograms_) {
    if (h != nullptr && h->count > 0) return false;
  }
  return true;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t id = 0; id < other.counters_.size(); ++id) {
    if (other.counters_[id] == 0) continue;
    grow(counters_, static_cast<std::uint16_t>(id));
    counters_[id] += other.counters_[id];
  }
  for (std::size_t id = 0; id < other.gauge_set_.size(); ++id) {
    if (other.gauge_set_[id] == 0) continue;
    grow(gauges_, static_cast<std::uint16_t>(id));
    grow(gauge_set_, static_cast<std::uint16_t>(id));
    gauges_[id] = other.gauges_[id];
    gauge_set_[id] = 1;
  }
  for (std::size_t id = 0; id < other.histograms_.size(); ++id) {
    if (other.histograms_[id] == nullptr) continue;
    grow(histograms_, static_cast<std::uint16_t>(id));
    if (histograms_[id] == nullptr) {
      histograms_[id] = std::make_unique<Histogram>();
    }
    histograms_[id]->merge(*other.histograms_[id]);
  }
}

void MetricsRegistry::reset() {
  counters_.clear();
  gauges_.clear();
  gauge_set_.clear();
  histograms_.clear();
}

void MetricsRegistry::append_json(std::string& out,
                                  const std::string& indent) const {
  // Collect (name, id) pairs per kind, name-sorted, so the dump is
  // byte-identical across runs regardless of interning order.
  auto named = [](auto&& pred) {
    std::vector<std::pair<std::string, std::uint16_t>> out_ids;
    Registry& r = registry();
    std::shared_lock lock(r.mu);
    for (const auto& [name, id] : r.by_name) {
      if (pred(id)) out_ids.emplace_back(name, id);
    }
    return out_ids;  // by_name iterates name-sorted already
  };

  const auto counters = named([&](std::uint16_t id) {
    return id < counters_.size() && counters_[id] != 0;
  });
  const auto gauges = named([&](std::uint16_t id) {
    return id < gauge_set_.size() && gauge_set_[id] != 0;
  });
  const auto hists = named([&](std::uint16_t id) {
    return id < histograms_.size() && histograms_[id] != nullptr &&
           histograms_[id]->count > 0;
  });

  out += "{\n";
  out += indent + "  \"counters\": {";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_fmt(out, "%s    \"%s\": %llu", indent.c_str(),
               counters[i].first.c_str(),
               static_cast<unsigned long long>(counters_[counters[i].second]));
  }
  out += counters.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent + "  \"gauges\": {";
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    append_fmt(out, "%s    \"%s\": %lld", indent.c_str(),
               gauges[i].first.c_str(),
               static_cast<long long>(gauges_[gauges[i].second]));
  }
  out += gauges.empty() ? "},\n" : "\n" + indent + "  },\n";
  out += indent + "  \"histograms\": {";
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const Histogram& h = *histograms_[hists[i].second];
    out += i == 0 ? "\n" : ",\n";
    append_fmt(out, "%s    \"%s\": {", indent.c_str(),
               hists[i].first.c_str());
    append_fmt(out, "\"count\": %llu, \"sum\": %llu, \"max\": %llu, ",
               static_cast<unsigned long long>(h.count),
               static_cast<unsigned long long>(h.sum),
               static_cast<unsigned long long>(h.max));
    append_fmt(out, "\"mean\": %.3f, \"p50\": %.1f, \"p95\": %.1f, ",
               h.mean(), h.quantile(0.5), h.quantile(0.95));
    out += "\"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) out += ", ";
      first = false;
      append_fmt(out, "[%zu, %llu]", b,
                 static_cast<unsigned long long>(h.buckets[b]));
    }
    out += "]}";
  }
  out += hists.empty() ? "}\n" : "\n" + indent + "  }\n";
  out += indent + "}";
}

}  // namespace idea::obs
