#include "obs/observability.hpp"

namespace idea::obs {

Observability::Observability(std::uint32_t endpoints,
                             ObservabilityConfig config)
    : config_(config) {
  ensure_endpoints(endpoints);
  if (config_.tracing) tracer_ = std::make_unique<Tracer>();
}

MetricsRegistry& Observability::endpoint(NodeId id) {
  if (id >= endpoints_.size()) ensure_endpoints(id + 1);
  return endpoints_[id];
}

void Observability::ensure_endpoints(std::uint32_t count) {
  while (endpoints_.size() < count) endpoints_.emplace_back();
}

MetricsRegistry Observability::aggregate() const {
  MetricsRegistry out;
  out.merge(cluster_);
  for (const MetricsRegistry& r : endpoints_) out.merge(r);
  return out;
}

std::string Observability::export_metrics_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"cluster\": ";
  cluster_.append_json(out, "  ");
  out += ",\n  \"aggregate\": ";
  aggregate().append_json(out, "  ");
  out += ",\n  \"endpoints\": [";
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    endpoints_[i].append_json(out, "    ");
  }
  out += endpoints_.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void Observability::note_repair_trace(FileId file, const TraceContext& tc) {
  if (tc.active()) repair_traces_[file] = tc;
}

TraceContext Observability::peek_repair_trace(FileId file) const {
  auto it = repair_traces_.find(file);
  return it == repair_traces_.end() ? TraceContext{} : it->second;
}

void Observability::clear_repair_trace(FileId file) {
  repair_traces_.erase(file);
}

}  // namespace idea::obs
