#pragma once
/// \file idea_node.hpp
/// \brief One IDEA middleware node: the public API of the library.
///
/// An IdeaNode sits between an application replica and the network.  It owns
/// the node's replica of one shared file, its temperature bookkeeping, its
/// view of the two-layer overlay, the inconsistency detector and the
/// resolution manager, and the adaptive controller.  Applications interact
/// through:
///
///  * write()/read()               — the data path;
///  * the Table-1 developer API    — set_consistency_metric, set_weight,
///    set_resolution, set_hint, demand_active_resolution,
///    set_background_freq;
///  * the end-user surface         — user_unsatisfied(), boost/weight
///    adjustment (§5.1);
///  * listeners                    — consistency-level updates, resolution
///    round stats, bottom-layer discrepancy alerts.

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/controller.hpp"
#include "core/formula.hpp"
#include "core/resolution.hpp"
#include "detect/detector.hpp"
#include "net/dispatcher.hpp"
#include "net/transport.hpp"
#include "overlay/gossip.hpp"
#include "overlay/ransub.hpp"
#include "overlay/temperature.hpp"
#include "overlay/two_layer.hpp"
#include "replica/store.hpp"

namespace idea::core {

/// Everything configurable about one IDEA node.  The nested structs carry
/// the per-module tunables; the fields here wire the protocol together.
struct IdeaConfig {
  vv::TripleWeights weights;
  vv::TripleMaxima maxima;
  ResolutionConfig resolution;
  detect::DetectorParams detector;
  ControllerConfig controller;
  overlay::TemperatureParams temperature;
  overlay::TwoLayerParams two_layer;
  overlay::RanSubParams ransub;
  overlay::GossipParams gossip;

  /// Period of the proactive top-layer detection rounds that keep the
  /// node's consistency level fresh ("periodically detecting inconsistency
  /// with sufficient frequency behind the scene" — §5.1).
  SimDuration detection_period = sec(1);
  /// Background-resolution period; 0 disables background resolution.
  SimDuration background_period = 0;
  /// Also run detect() on every local write (the paper's write trigger).
  bool detect_on_write = true;
  /// Alert threshold for top-vs-bottom layer disagreement (§4.4.2's "78%
  /// vs 80%" closeness test).
  double discrepancy_threshold = 0.05;
  /// If true, a discrepancy whose corrected level is unacceptable triggers
  /// a rollback to the last consistent point before resolving.
  bool auto_rollback = false;
};

/// A consistency-level observation delivered to the application.
struct LevelSample {
  double level = 1.0;
  vv::TactTriple triple;
  bool conflict = false;
  NodeId reference = kNoNode;
  SimTime at = 0;
};

/// Alert raised when the bottom layer contradicts the top-layer estimate.
struct DiscrepancyAlert {
  double top_layer_level = 1.0;
  double bottom_layer_level = 1.0;
  NodeId reporter = kNoNode;
  bool rolled_back = false;
  SimTime at = 0;
};

class IdeaNode {
 public:
  using LevelListener = std::function<void(const LevelSample&)>;
  using RoundListener = std::function<void(const RoundStats&)>;
  using DiscrepancyListener = std::function<void(const DiscrepancyAlert&)>;

  /// `attach_transport` controls whether the node claims the transport
  /// endpoint for its id.  Single-file deployments leave it true; an
  /// IdeaService managing several files per node attaches itself instead
  /// and routes by file id (§4.1: per-file top layers are independent).
  IdeaNode(NodeId self, FileId file, net::Transport& transport,
           IdeaConfig config, std::uint64_t seed,
           bool attach_transport = true);
  ~IdeaNode();

  IdeaNode(const IdeaNode&) = delete;
  IdeaNode& operator=(const IdeaNode&) = delete;

  /// Arm the periodic machinery (detection rounds, bottom scans, RanSub
  /// epoch timer on the root, background resolution).
  void start();

  // ------------------------------------------------------------------
  // Data path
  // ------------------------------------------------------------------

  /// Issue a local write.  Returns false (and applies nothing) while a
  /// resolution round blocks updates — the paper's §4.4.1 blocking rule.
  bool write(std::string content, double meta_delta);

  /// Read the replica in canonical order.  A read of a fresh file would
  /// trigger detection in the paper's protocol; pass `trigger_detection`
  /// accordingly.
  [[nodiscard]] std::vector<replica::Update> read(
      bool trigger_detection = false);

  /// Zero-copy read: a shared immutable canonical-order view of the
  /// replica (ReplicaStore::contents_snapshot).  The session read path
  /// serves gets from this, so fan-out reads share one allocation
  /// instead of copying the log per get.
  [[nodiscard]] std::shared_ptr<const std::vector<replica::Update>>
  read_view(bool trigger_detection = false);

  /// Record hosting activity for temperature purposes without issuing a
  /// write.  Sharded replicas call this when they ingest a replicated
  /// update: the whole replica group then stays hot and surfaces as the
  /// file's top layer, so detection and resolution span every durable
  /// copy rather than just the original writer.
  void note_replica_activity();

  // ------------------------------------------------------------------
  // Table-1 developer API
  // ------------------------------------------------------------------

  /// set_consistency_metric(a, b, c): calibrate the per-metric maxima that
  /// cast the application onto IDEA's metric space.
  void set_consistency_metric(double max_numerical, double max_order,
                              double max_staleness_sec);

  /// set_weight(a, b, c): weights of the three metrics in Formula 1.
  void set_weight(double w_numerical, double w_order, double w_staleness);

  /// set_resolution(r): 1 = invalidate both, 2 = user-ID, 3 = priority.
  void set_resolution(int policy);

  /// set_hint(h): 0 disables hint-based control, 1 tolerates nothing.
  void set_hint(double hint);

  /// demand_active_resolution(): explicit user/application demand.
  /// Returns false if a round is already running locally.
  bool demand_active_resolution();

  /// set_background_freq(f): background resolutions per second (0 stops).
  void set_background_freq(double hz);

  // ------------------------------------------------------------------
  // End-user interaction (§5.1)
  // ------------------------------------------------------------------

  /// The user saw the current level and is not satisfied: resolve now and
  /// learn a higher acceptable level (L1 + delta).
  void user_unsatisfied();

  /// The user re-weights the metrics without changing the overall target.
  void user_adjust_weights(double w_numerical, double w_order,
                           double w_staleness);

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  [[nodiscard]] double current_level() const { return level_.level; }
  [[nodiscard]] const LevelSample& last_sample() const { return level_; }
  [[nodiscard]] NodeId id() const { return self_; }
  [[nodiscard]] FileId file() const { return file_; }
  [[nodiscard]] const replica::ReplicaStore& store() const { return store_; }
  [[nodiscard]] replica::ReplicaStore& store() { return store_; }
  [[nodiscard]] AdaptiveController& controller() { return controller_; }
  [[nodiscard]] ResolutionManager& resolution() { return resolution_; }
  [[nodiscard]] detect::InconsistencyDetector& detector() {
    return detector_;
  }
  [[nodiscard]] const IdeaConfig& config() const { return config_; }
  [[nodiscard]] std::vector<NodeId> top_layer() const;
  [[nodiscard]] std::uint64_t blocked_writes() const {
    return blocked_writes_;
  }

  void set_level_listener(LevelListener cb) { on_level_ = std::move(cb); }
  void set_round_listener(RoundListener cb) { on_round_user_ = std::move(cb); }
  void set_discrepancy_listener(DiscrepancyListener cb) {
    on_discrepancy_ = std::move(cb);
  }

  /// Run one detection round immediately (also used by benches to align
  /// sampling instants); the callback variant exposes the full result.
  void probe(detect::InconsistencyDetector::DetectCallback cb = nullptr);

  /// The node's protocol demultiplexer (used by IdeaService routing).
  [[nodiscard]] net::Dispatcher& dispatcher() { return dispatcher_; }

 private:
  void on_detection(const detect::DetectionResult& result);
  void on_scan_report(const detect::ScanReport& report);
  void arm_background_timer(SimDuration period);
  void background_tick();
  [[nodiscard]] std::vector<NodeId> current_top_layer();

  NodeId self_;
  FileId file_;
  net::Transport& transport_;
  IdeaConfig config_;

  replica::ReplicaStore store_;
  overlay::TemperatureTracker temperature_;
  overlay::TwoLayerView two_layer_;
  net::Dispatcher dispatcher_;
  overlay::GossipAgent gossip_;
  overlay::RanSubAgent ransub_;
  detect::InconsistencyDetector detector_;
  ResolutionManager resolution_;
  AdaptiveController controller_;

  LevelSample level_;
  std::uint64_t detection_timer_ = 0;
  std::uint64_t background_timer_ = 0;
  SimDuration background_period_ = 0;
  std::uint64_t blocked_writes_ = 0;

  bool attached_ = false;
  LevelListener on_level_;
  RoundListener on_round_user_;
  DiscrepancyListener on_discrepancy_;
};

}  // namespace idea::core
