#pragma once
/// \file controller.hpp
/// \brief Adaptive consistency control (§4.6, §5): the three application
///        modes and the learning rules that make IDEA adaptive.
///
///  * on-demand       — the user reacts to displayed levels; when
///                      unsatisfied, IDEA resolves *and learns* the newly
///                      acceptable level (L1 + delta) so the user is not
///                      annoyed again;
///  * hint-based      — resolve whenever the level drops below the standing
///                      hint; hints can be re-set at runtime (Figure 8);
///  * fully-automatic — no user in the loop; the background-resolution
///                      frequency follows Formula 4 (bandwidth cap divided
///                      by per-round cost) clamped inside frequency bounds
///                      learned from overselling/underselling feedback.

#include <functional>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace idea::core {

enum class AdaptiveMode { kOnDemand = 0, kHintBased = 1, kFullyAutomatic = 2 };

struct ControllerConfig {
  AdaptiveMode mode = AdaptiveMode::kOnDemand;
  /// Initial hint L1 in [0,1]; 0 disables hint-triggered resolution
  /// (Table 1: "setting this value to 0 indicates that this is not a
  /// hint-based system").
  double hint = 0.0;
  /// Delta added to the hint each time the user reports dissatisfaction.
  double hint_delta = 0.02;
  /// Minimum spacing between hint-triggered resolution demands, so one dip
  /// does not fire a burst of redundant rounds.
  SimDuration demand_cooldown = sec(1);

  // --- fully-automatic mode ---
  /// Fraction x% of available bandwidth IDEA may consume (§4.6).
  double bandwidth_cap_fraction = 0.20;
  /// Available bandwidth b in bytes/second (a monitoring program would feed
  /// this; benches set it explicitly).
  double available_bandwidth = 128.0 * 1024.0;
  /// Absolute frequency clamps (Hz) before learned bounds apply.
  double min_freq_hz = 1.0 / 300.0;
  double max_freq_hz = 2.0;
  /// Multiplicative step when learning the over/undersell bounds.
  double bound_step = 1.10;
};

class AdaptiveController {
 public:
  /// `demand_resolution` triggers an active round; `set_background_period`
  /// re-arms the node's background-resolution timer.
  AdaptiveController(ControllerConfig config,
                     std::function<void()> demand_resolution,
                     std::function<void(SimDuration)> set_background_period);

  /// Feed one consistency-level observation (from a detection round).  In
  /// hint-based mode this is where resolution demands originate.  With a
  /// hint of exactly 1.0 ("the user does not tolerate any inconsistency",
  /// Table 1) any detected conflict demands resolution, even when this
  /// replica happens to be the reference state itself.
  void observe_level(double level, SimTime now, bool conflict = false);

  /// User interaction (§5.1): the user is unsatisfied with what they see.
  /// IDEA resolves now and raises the learned acceptable level to
  /// current-hint + delta so it will act earlier next time.
  void user_unsatisfied(SimTime now);

  /// Re-set the hint (set_hint API / Figure 8's mid-run change).
  void set_hint(double hint);
  [[nodiscard]] double hint() const { return hint_; }

  [[nodiscard]] AdaptiveMode mode() const { return config_.mode; }
  void set_mode(AdaptiveMode mode) { config_.mode = mode; }

  // --- fully-automatic mode ---

  /// Feed the measured communication cost of one background round (bytes).
  void observe_round_cost(double bytes);

  /// Feed the currently available bandwidth b (bytes/sec).
  void observe_bandwidth(double bytes_per_sec);

  /// Business feedback (§5.2): overselling means the frequency was too low
  /// — raise the learned lower bound; underselling means it was too high —
  /// lower the learned upper bound.
  void notify_oversell();
  void notify_undersell();

  /// Apply Formula 4 with the learned bounds; calls set_background_period.
  /// Returns the chosen frequency in Hz.
  double adjust_frequency();

  [[nodiscard]] double current_freq_hz() const { return freq_hz_; }
  [[nodiscard]] double learned_min_freq() const { return learned_min_hz_; }
  [[nodiscard]] double learned_max_freq() const { return learned_max_hz_; }
  [[nodiscard]] double round_cost_bytes() const {
    return round_cost_.primed() ? round_cost_.value() : 0.0;
  }
  [[nodiscard]] std::uint64_t demands_issued() const { return demands_; }

 private:
  void demand(SimTime now);

  ControllerConfig config_;
  std::function<void()> demand_resolution_;
  std::function<void(SimDuration)> set_background_period_;

  double hint_;
  SimTime last_demand_ = -sec(3600);
  std::uint64_t demands_ = 0;

  Ewma round_cost_{0.3};
  double bandwidth_;
  double freq_hz_ = 0.05;  // 20 s period by default
  double learned_min_hz_;
  double learned_max_hz_;
};

}  // namespace idea::core
