#include "core/policy.hpp"

#include <algorithm>

#include "detect/detector.hpp"

namespace idea::core {

NodeId choose_winner(const PolicyContext& ctx, const Gathered& participants) {
  if (participants.empty()) return kNoNode;
  switch (ctx.policy) {
    case ResolutionPolicy::kInvalidateBoth:
      return detect::choose_reference(participants);
    case ResolutionPolicy::kUserId: {
      NodeId best = participants.front().first;
      FairId best_fair = fair_id(best, ctx.deployment_seed);
      for (const auto& [node, evv] : participants) {
        const FairId f = fair_id(node, ctx.deployment_seed);
        if (f > best_fair) {
          best = node;
          best_fair = f;
        }
      }
      return best;
    }
    case ResolutionPolicy::kPriority: {
      auto prio = [&ctx](NodeId n) {
        auto it = ctx.priorities.find(n);
        return it == ctx.priorities.end() ? 0 : it->second;
      };
      NodeId best = participants.front().first;
      for (const auto& [node, evv] : participants) {
        const int pn = prio(node);
        const int pb = prio(best);
        if (pn > pb || (pn == pb && fair_id(node, ctx.deployment_seed) >
                                        fair_id(best, ctx.deployment_seed))) {
          best = node;
        }
      }
      return best;
    }
  }
  return participants.front().first;
}

SimTime group_last_consistent(const Gathered& participants) {
  SimTime cutoff = kNever;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    for (std::size_t j = i + 1; j < participants.size(); ++j) {
      cutoff = std::min(cutoff, participants[i].second.last_consistent_time(
                                    participants[j].second));
    }
  }
  if (cutoff == kNever) {
    // Zero or one participant: nothing conflicts; cutoff after everything.
    cutoff = 0;
    for (const auto& [node, evv] : participants) {
      cutoff = std::max(cutoff, evv.latest_update_time());
    }
  }
  return cutoff;
}

std::vector<std::pair<NodeId, std::uint64_t>> updates_after(
    const vv::ExtendedVersionVector& merged, SimTime cutoff) {
  std::vector<std::pair<NodeId, std::uint64_t>> out;
  // Walk each writer's stamp list; stamps are non-decreasing, so scan from
  // the back until we fall at or below the cutoff.
  const vv::VersionVector counts = merged.counts();
  for (const auto& [writer, count_unused] : counts.entries()) {
    const std::uint64_t count = merged.count_of(writer);
    for (std::uint64_t seq = count; seq >= 1; --seq) {
      if (merged.stamp_of(writer, seq) > cutoff) {
        out.emplace_back(writer, seq);
      } else {
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<NodeId, std::uint64_t>> updates_not_in(
    const vv::ExtendedVersionVector& merged,
    const vv::ExtendedVersionVector& winner) {
  return winner.missing_from(merged);
}

}  // namespace idea::core
