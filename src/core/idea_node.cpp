#include "core/idea_node.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace idea::core {

IdeaNode::IdeaNode(NodeId self, FileId file, net::Transport& transport,
                   IdeaConfig config, std::uint64_t seed,
                   bool attach_transport)
    : self_(self), file_(file), transport_(transport), config_(config),
      store_(self, file), temperature_(config.temperature),
      two_layer_(self, config.two_layer),
      gossip_(self, transport, config.gossip,
              [this](const overlay::GossipEnvelope& env) {
                detector_.on_gossip(env);
              },
              mix64(seed ^ 0x60551FULL ^ self)),
      ransub_(self, file, transport, config.ransub,
              [this] {
                std::vector<overlay::TempAd> ads;
                const SimTime now = transport_.now();
                ads.push_back(overlay::TempAd{
                    self_, file_, temperature_.temperature(file_, now), now});
                return ads;
              },
              [this](const std::vector<overlay::TempAd>& ads) {
                two_layer_.ingest(ads, transport_.now());
              },
              mix64(seed ^ 0x4A5ULL ^ self)),
      detector_(self, file, transport, store_, gossip_,
                [this] { return current_top_layer(); }, config.detector,
                mix64(seed ^ 0xDE7EC7ULL ^ self)),
      resolution_(self, file, transport, store_,
                  [this] { return current_top_layer(); }, config.resolution,
                  mix64(seed ^ 0x2E50ULL ^ self)),
      controller_(config.controller,
                  [this] { demand_active_resolution(); },
                  [this](SimDuration period) {
                    arm_background_timer(period);
                  }) {
  dispatcher_.route("ransub.", &ransub_);
  dispatcher_.route("gossip.", &gossip_);
  dispatcher_.route("detect.", &detector_);
  dispatcher_.route("resolve.", &resolution_);
  attached_ = attach_transport;
  if (attached_) transport_.attach(self_, &dispatcher_);

  detector_.set_report_callback(
      [this](const detect::ScanReport& r) { on_scan_report(r); });
  resolution_.set_round_callback([this](const RoundStats& s) {
    controller_.observe_round_cost(
        static_cast<double>(s.updates_shipped) * 256.0 +
        static_cast<double>(s.participants) * 512.0);
    if (on_round_user_) on_round_user_(s);
  });
}

IdeaNode::~IdeaNode() {
  if (detection_timer_ != 0) transport_.cancel_call(detection_timer_);
  if (background_timer_ != 0) transport_.cancel_call(background_timer_);
  if (attached_) transport_.detach(self_);
}

void IdeaNode::start() {
  ransub_.start();  // no-op except on the tree root
  detector_.start_background_scan();
  if (config_.detection_period > 0) {
    detection_timer_ = transport_.call_every(
        config_.detection_period, [this] { probe(); });
  }
  if (config_.background_period > 0) {
    arm_background_timer(config_.background_period);
  }
}

bool IdeaNode::write(std::string content, double meta_delta) {
  if (resolution_.busy()) {
    // §4.4.1: updates are blocked while a resolution is in flight, to
    // prevent writes on top of a state being replaced.
    ++blocked_writes_;
    return false;
  }
  const SimTime local_now = transport_.local_time(self_);
  store_.apply_local(local_now, std::move(content), meta_delta);
  note_replica_activity();
  if (config_.detect_on_write) probe();
  return true;
}

std::vector<replica::Update> IdeaNode::read(bool trigger_detection) {
  if (trigger_detection) probe();
  return store_.ordered_contents();
}

std::shared_ptr<const std::vector<replica::Update>> IdeaNode::read_view(
    bool trigger_detection) {
  if (trigger_detection) probe();
  return store_.contents_snapshot();
}

void IdeaNode::note_replica_activity() {
  const SimTime now = transport_.now();
  temperature_.record_update(file_, now);
  two_layer_.note_self(file_, temperature_.temperature(file_, now), now);
}

void IdeaNode::set_consistency_metric(double max_numerical, double max_order,
                                      double max_staleness_sec) {
  config_.maxima = vv::TripleMaxima{max_numerical, max_order,
                                    max_staleness_sec};
  assert(config_.maxima.valid());
}

void IdeaNode::set_weight(double w_numerical, double w_order,
                          double w_staleness) {
  config_.weights = vv::TripleWeights{w_numerical, w_order, w_staleness};
  assert(config_.weights.valid());
}

void IdeaNode::set_resolution(int policy) {
  assert(policy >= 1 && policy <= 3);
  config_.resolution.policy.policy = static_cast<ResolutionPolicy>(policy);
}

void IdeaNode::set_hint(double hint) { controller_.set_hint(hint); }

bool IdeaNode::demand_active_resolution() {
  return resolution_.start_active();
}

void IdeaNode::set_background_freq(double hz) {
  if (hz <= 0.0) {
    arm_background_timer(0);
  } else {
    arm_background_timer(sec_f(1.0 / hz));
  }
}

void IdeaNode::user_unsatisfied() {
  controller_.user_unsatisfied(transport_.now());
}

void IdeaNode::user_adjust_weights(double w_numerical, double w_order,
                                   double w_staleness) {
  set_weight(w_numerical, w_order, w_staleness);
}

std::vector<NodeId> IdeaNode::top_layer() const {
  auto tl = two_layer_.top_layer(file_, transport_.now());
  return tl;
}

void IdeaNode::probe(detect::InconsistencyDetector::DetectCallback cb) {
  detector_.detect([this, cb = std::move(cb)](
                       const detect::DetectionResult& result) {
    on_detection(result);
    if (cb) cb(result);
  });
}

void IdeaNode::on_detection(const detect::DetectionResult& result) {
  LevelSample sample;
  sample.level = consistency_level(result.triple, config_.weights,
                                   config_.maxima);
  sample.triple = result.triple;
  sample.conflict = result.conflict;
  sample.reference = result.reference;
  sample.at = transport_.now();
  level_ = sample;
  controller_.observe_level(sample.level, sample.at, sample.conflict);
  if (on_level_) on_level_(sample);
}

void IdeaNode::on_scan_report(const detect::ScanReport& report) {
  // Quantify our state against the reporter's: the bottom layer's verdict.
  const vv::TactTriple triple =
      store_.evv().triple_against(report.reporter_evv);
  const double bottom_level =
      consistency_level(triple, config_.weights, config_.maxima);
  const double top_level = level_.level;
  if (std::abs(bottom_level - top_level) <= config_.discrepancy_threshold) {
    return;  // §4.4.2: sufficiently close — keep the top-layer result.
  }
  DiscrepancyAlert alert;
  alert.top_layer_level = top_level;
  alert.bottom_layer_level = bottom_level;
  alert.reporter = report.reporter;
  alert.at = transport_.now();

  const double acceptable = controller_.hint();
  if (bottom_level < acceptable) {
    if (config_.auto_rollback) {
      const SimTime cutoff =
          store_.evv().last_consistent_time(report.reporter_evv);
      const std::size_t dropped = store_.rollback_to(cutoff);
      alert.rolled_back = dropped > 0;
      IDEA_LOG(kInfo) << node_name(self_) << " rolled back " << dropped
                      << " updates after bottom-layer discrepancy";
    }
    demand_active_resolution();
  }
  if (on_discrepancy_) on_discrepancy_(alert);
}

void IdeaNode::arm_background_timer(SimDuration period) {
  if (background_timer_ != 0) {
    transport_.cancel_call(background_timer_);
    background_timer_ = 0;
  }
  background_period_ = period;
  if (period > 0) {
    background_timer_ =
        transport_.call_every(period, [this] { background_tick(); });
  }
}

void IdeaNode::background_tick() {
  // "One replica (chosen by IDEA) in the top layer acts as the initiator"
  // (§4.5.2): the lowest-id top-layer member is the designated initiator;
  // everyone runs the timer, only the designee fires.
  const std::vector<NodeId> tl = current_top_layer();
  if (tl.empty()) return;
  if (tl.front() != self_) return;
  resolution_.start_background();
}

std::vector<NodeId> IdeaNode::current_top_layer() {
  const SimTime now = transport_.now();
  // Keep our own advertisement fresh before consulting the view.
  two_layer_.note_self(file_, temperature_.temperature(file_, now), now);
  return two_layer_.top_layer(file_, now);
}

}  // namespace idea::core
