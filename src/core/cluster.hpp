#pragma once
/// \file cluster.hpp
/// \brief Convenience harness: a whole IDEA deployment inside the simulator.
///
/// Builds the Planet-Lab-like latency model, the simulated transport, and N
/// IdeaNodes sharing one file, with consistent seeding.  Tests, benches and
/// examples use this instead of hand-wiring the stack.  `warm_up()` runs the
/// RanSub epochs and designated writers' first updates so that the top layer
/// has formed — the paper's "after warming up, the four writers form a top
/// layer of four nodes".

#include <memory>
#include <vector>

#include "core/idea_node.hpp"
#include "net/sim_transport.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"

namespace idea::core {

struct ClusterConfig {
  std::uint32_t nodes = 40;
  FileId file = 1;
  IdeaConfig idea;  ///< Per-node protocol configuration (shared).
  sim::PlanetLabParams latency;
  net::SimTransportOptions transport;
  std::uint64_t seed = 2007;

  ClusterConfig() {
    // Keep the nested per-module node counts in sync by default.
    sync_sizes();
  }

  /// Propagate `nodes` into every nested parameter that needs the
  /// deployment size.  Call after changing `nodes`.
  void sync_sizes() {
    latency.nodes = nodes;
    transport.node_count = nodes;
    idea.ransub.nodes = nodes;
    idea.gossip.nodes = nodes;
    idea.two_layer.all_nodes = nodes;
  }
};

class IdeaCluster {
 public:
  explicit IdeaCluster(ClusterConfig config);

  /// Start every node's periodic machinery.
  void start();

  /// Run the simulator for `d` of simulated time.
  void run_for(SimDuration d) { sim_.run_for(d); }
  void run_until(SimTime t) { sim_.run_until(t); }

  /// Have each node in `writers` issue one write, then run long enough for
  /// a few RanSub epochs so the temperature overlay includes them all.
  void warm_up(const std::vector<NodeId>& writers,
               SimDuration duration = sec(25));

  [[nodiscard]] IdeaNode& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const IdeaNode& node(NodeId id) const {
    return *nodes_.at(id);
  }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] net::SimTransport& transport() { return *transport_; }
  [[nodiscard]] sim::PlanetLabLatency& latency() { return *latency_; }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }

  /// True iff every node in `group` holds identical canonical contents.
  [[nodiscard]] bool converged(const std::vector<NodeId>& group) const;

 private:
  ClusterConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<sim::PlanetLabLatency> latency_;
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<IdeaNode>> nodes_;
};

}  // namespace idea::core
