#include "core/cluster.hpp"

namespace idea::core {

IdeaCluster::IdeaCluster(ClusterConfig config) : config_(std::move(config)) {
  config_.sync_sizes();
  sim::PlanetLabParams lat = config_.latency;
  lat.nodes = config_.nodes;
  lat.placement_seed = mix64(config_.seed ^ 0x9A7E11ULL);
  latency_ = std::make_unique<sim::PlanetLabLatency>(lat);

  net::SimTransportOptions topt = config_.transport;
  topt.node_count = config_.nodes;
  topt.seed = mix64(config_.seed ^ 0x7245ULL);
  transport_ = std::make_unique<net::SimTransport>(sim_, *latency_, topt);

  nodes_.reserve(config_.nodes);
  for (NodeId n = 0; n < config_.nodes; ++n) {
    IdeaConfig node_cfg = config_.idea;
    node_cfg.resolution.policy.deployment_seed = config_.seed;
    nodes_.push_back(std::make_unique<IdeaNode>(
        n, config_.file, *transport_, node_cfg,
        mix64(config_.seed ^ (0xBEEFULL + n))));
  }
}

void IdeaCluster::start() {
  for (auto& node : nodes_) node->start();
}

void IdeaCluster::warm_up(const std::vector<NodeId>& writers,
                          SimDuration duration) {
  for (NodeId w : writers) {
    node(w).write("warmup", 0.0);
  }
  run_for(duration);
}

bool IdeaCluster::converged(const std::vector<NodeId>& group) const {
  if (group.empty()) return true;
  const std::uint64_t digest = node(group.front()).store().content_digest();
  for (NodeId n : group) {
    if (node(n).store().content_digest() != digest) return false;
  }
  return true;
}

}  // namespace idea::core
