#pragma once
/// \file policy.hpp
/// \brief Inconsistency-resolution policies (§4.5.1).
///
/// When version vectors are incomparable, a policy arbitrates:
///  * invalidate-both — all updates issued after the group's last consistent
///    point are cleared on every replica (whiteboard fairness);
///  * user-ID based  — the participant with the largest randomized FairId
///    wins; losers' concurrent updates are invalidated (progress preserved);
///  * priority based — highest application-assigned priority wins, FairId
///    breaking ties.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "vv/extended_vv.hpp"

namespace idea::core {

enum class ResolutionPolicy : int {
  kInvalidateBoth = 1,
  kUserId = 2,
  kPriority = 3,
};

/// Everything a winner decision needs.
struct PolicyContext {
  ResolutionPolicy policy = ResolutionPolicy::kUserId;
  std::uint64_t deployment_seed = 0;  ///< FairId derivation seed.
  /// Priorities for kPriority (missing nodes default to 0).
  std::unordered_map<NodeId, int> priorities;
};

using Gathered = std::vector<std::pair<NodeId, vv::ExtendedVersionVector>>;

/// Choose the winning participant.  For kInvalidateBoth there is no winner
/// in the usual sense; the function returns the reference replica (highest
/// maximal id) since a reference is still needed to anchor the merge.
NodeId choose_winner(const PolicyContext& ctx, const Gathered& participants);

/// The group's last consistent time point: the minimum over all pairs of
/// ExtendedVersionVector::last_consistent_time.  Updates stamped after this
/// form the conflict window that invalidate-both clears.
SimTime group_last_consistent(const Gathered& participants);

/// Update keys (writer, seq) present in `merged` with stamps strictly after
/// `cutoff` — the conflict window.
std::vector<std::pair<NodeId, std::uint64_t>> updates_after(
    const vv::ExtendedVersionVector& merged, SimTime cutoff);

/// Keys in `merged` that the `winner` history lacks — the losers' concurrent
/// updates, invalidated under kUserId/kPriority.
std::vector<std::pair<NodeId, std::uint64_t>> updates_not_in(
    const vv::ExtendedVersionVector& merged,
    const vv::ExtendedVersionVector& winner);

}  // namespace idea::core
