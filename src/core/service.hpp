#pragma once
/// \file service.hpp
/// \brief Multi-file IDEA endpoint: several shared files on one node.
///
/// §4.1: "because consistency is associated with a single file, the concept
/// of top/bottom layer is also associated with a given shared file —
/// different files may have different top layers — and different top layers
/// do not interfere with one another.  For example, if a user joins
/// multiple virtual white boards, each white board is treated separately
/// and independently."
///
/// IdeaService realizes exactly that: it owns one IdeaNode per opened file,
/// claims the node's transport endpoint once, and routes incoming messages
/// to the right file's protocol stack by the message's file id.

#include <memory>
#include <unordered_map>

#include "core/idea_node.hpp"

namespace idea::core {

class IdeaService final : public net::MessageHandler {
 public:
  IdeaService(NodeId self, net::Transport& transport, std::uint64_t seed)
      : self_(self), transport_(transport), seed_(seed) {
    transport_.attach(self_, this);
  }

  ~IdeaService() override {
    // Drop the files before releasing the endpoint; their destructors must
    // not detach an endpoint they never owned.
    files_.clear();
    transport_.detach(self_);
  }

  IdeaService(const IdeaService&) = delete;
  IdeaService& operator=(const IdeaService&) = delete;

  /// Open (join) a shared file with its own configuration; returns the
  /// per-file IDEA stack.  Each file gets an independent overlay,
  /// detector, resolution manager and controller.
  ///
  /// Keep-first semantics: if the file is already open, the existing stack
  /// is returned unchanged and `config` is ignored — reconfiguring a live
  /// stack would silently discard its overlay/detector state, so callers
  /// that really want different settings must close() first and reopen.
  IdeaNode& open(FileId file, IdeaConfig config) {
    return open_via(file, std::move(config), transport_, self_,
                    /*inbound=*/nullptr);
  }

  /// Open a file whose protocol stack runs in a private id space over a
  /// custom transport.  Sharded deployments use this: each file's replica
  /// group gets a rank-translating group transport, `protocol_self` is
  /// this endpoint's dense rank within the group, and `inbound` (when
  /// non-null) receives the file's raw transport messages so the caller
  /// can translate ids before demultiplexing into the node's dispatcher.
  /// Keep-first, exactly as open().
  IdeaNode& open_via(FileId file, IdeaConfig config, net::Transport& via,
                     NodeId protocol_self,
                     net::MessageHandler* inbound = nullptr) {
    auto it = files_.find(file);
    if (it == files_.end()) {
      auto node = std::make_unique<IdeaNode>(
          protocol_self, file, via, std::move(config),
          mix64(seed_ ^ (0xF11EULL + file)),
          /*attach_transport=*/false);
      Entry entry;
      entry.sink = inbound != nullptr ? inbound : &node->dispatcher();
      entry.node = std::move(node);
      it = files_.emplace(file, std::move(entry)).first;
      index_sink(file, it->second.sink);
    }
    return *it->second.node;
  }

  /// Leave a shared file, tearing down its protocol stack.  Closing a file
  /// that was never opened (or already closed) is a harmless no-op; the
  /// return value says whether a stack was actually torn down.
  bool close(FileId file) {
    // Clear in place only: growing the dense array to null out an id that
    // was never opened would let a stray close(huge_id) inflate memory.
    if (file < sinks_.size()) sinks_[file] = nullptr;
    return files_.erase(file) > 0;
  }

  [[nodiscard]] IdeaNode* find(FileId file) {
    auto it = files_.find(file);
    return it == files_.end() ? nullptr : it->second.node.get();
  }

  /// Zero-copy read hook: the file's canonical contents as a shared
  /// immutable view (IdeaNode::read_view), or nullptr when the file is
  /// not open here.  The client session read path funnels through this
  /// instead of copying the log per get.
  [[nodiscard]] std::shared_ptr<const std::vector<replica::Update>>
  read_view(FileId file) {
    IdeaNode* node = find(file);
    return node == nullptr ? nullptr : node->read_view();
  }

  [[nodiscard]] std::size_t open_files() const { return files_.size(); }
  [[nodiscard]] NodeId id() const { return self_; }

  /// Route by the message's file id; messages for files this node has not
  /// joined are dropped (it is a bottom-layer bystander for them at most,
  /// and gossip dedup tolerates the loss).
  ///
  /// This runs once per delivered message on an endpoint hosting hundreds
  /// of files, so small file ids resolve through a dense sink array (one
  /// indexed load); only large/sparse ids fall back to the hash map.
  void on_message(const net::Message& msg) override {
    if (msg.file < sinks_.size()) {
      net::MessageHandler* sink = sinks_[msg.file];
      if (sink != nullptr) sink->on_message(msg);
      return;
    }
    auto it = files_.find(msg.file);
    if (it != files_.end()) it->second.sink->on_message(msg);
  }

 private:
  struct Entry {
    std::unique_ptr<IdeaNode> node;
    net::MessageHandler* sink = nullptr;  ///< Borrowed inbound handler.
  };

  /// Largest file id mirrored into the dense sink array (8 bytes/slot).
  static constexpr FileId kDenseFileLimit = 1u << 20;

  void index_sink(FileId file, net::MessageHandler* sink) {
    if (file >= kDenseFileLimit) return;
    if (file >= sinks_.size()) sinks_.resize(file + 1, nullptr);
    sinks_[file] = sink;
  }

  NodeId self_;
  net::Transport& transport_;
  std::uint64_t seed_;
  // Hash-indexed ownership: nothing iterates this map, so ordering is
  // irrelevant to determinism.
  std::unordered_map<FileId, Entry> files_;
  std::vector<net::MessageHandler*> sinks_;  ///< Dense file -> sink route.
};

}  // namespace idea::core
