#include "core/resolution.hpp"

#include <algorithm>
#include <cassert>

#include "util/log.hpp"

namespace idea::core {

namespace {

struct AttnPayload {
  std::uint64_t round_id;
};

struct AttnAckPayload {
  std::uint64_t round_id;
  bool ok;
};

struct CollectPayload {
  std::uint64_t round_id;
  vv::VersionVector initiator_counts;
};

struct CollectReplyPayload {
  std::uint64_t round_id;
  vv::ExtendedVersionVector evv;
  std::vector<replica::Update> updates;  ///< Ahead of initiator_counts.
};

struct CommitPayload {
  std::uint64_t round_id;
  NodeId winner;
  std::vector<replica::Update> updates;  ///< Missing at this member.
  std::vector<std::pair<NodeId, std::uint64_t>> invalidate;
};

struct DonePayload {
  std::uint64_t round_id;
};

std::uint32_t updates_wire_bytes(const std::vector<replica::Update>& v) {
  std::uint32_t bytes = 16;
  for (const auto& u : v) bytes += u.wire_bytes();
  return bytes;
}

}  // namespace

const net::MsgType ResolutionManager::kAttnType =
    net::MsgType::intern("resolve.attn");
const net::MsgType ResolutionManager::kAttnAckType =
    net::MsgType::intern("resolve.attn_ack");
const net::MsgType ResolutionManager::kCollectType =
    net::MsgType::intern("resolve.collect");
const net::MsgType ResolutionManager::kCollectReplyType =
    net::MsgType::intern("resolve.collect_reply");
const net::MsgType ResolutionManager::kCommitType =
    net::MsgType::intern("resolve.commit");
const net::MsgType ResolutionManager::kDoneType =
    net::MsgType::intern("resolve.done");

ResolutionManager::ResolutionManager(
    NodeId self, FileId file, net::Transport& transport,
    replica::ReplicaStore& store,
    std::function<std::vector<NodeId>()> top_layer, ResolutionConfig config,
    std::uint64_t seed)
    : self_(self), file_(file), transport_(transport), store_(store),
      top_layer_(std::move(top_layer)), config_(config), rng_(seed) {}

ResolutionManager::~ResolutionManager() {
  if (timer_ != 0) transport_.cancel_call(timer_);
  if (participant_timer_ != 0) transport_.cancel_call(participant_timer_);
}

bool ResolutionManager::busy() const {
  return state_ == State::kCollect || state_ == State::kCommitWait ||
         participating_round_ != 0;
}

bool ResolutionManager::start_active() {
  if (state_ != State::kIdle) return false;
  begin_round(/*active=*/true);
  return true;
}

bool ResolutionManager::start_background() {
  if (state_ != State::kIdle) return false;
  begin_round(/*active=*/false);
  return true;
}

void ResolutionManager::begin_round(bool active) {
  ++initiated_;
  round_id_ = (static_cast<std::uint64_t>(self_) << 40) | ++round_counter_;
  stats_ = RoundStats{};
  stats_.active = active;
  stats_.started_at = transport_.now();

  members_ = top_layer_();
  members_.erase(std::remove(members_.begin(), members_.end(), self_),
                 members_.end());
  std::sort(members_.begin(), members_.end());
  stats_.participants = members_.size() + 1;

  if (members_.empty()) {
    // Nothing to resolve against; succeed trivially.
    state_ = State::kIdle;
    stats_.succeeded = true;
    ++succeeded_;
    if (on_round_) on_round_(stats_);
    return;
  }

  if (active) {
    state_ = State::kAttnWait;
    send_attn();
  } else {
    begin_collect();
  }
}

void ResolutionManager::send_attn() {
  acks_pending_ = members_.size();
  ack_failed_ = false;
  // Crashed members never ack; a silent member is not initiating, so after
  // the timeout the round proceeds with whatever answers arrived.
  const std::uint64_t expected_round = round_id_;
  timer_ = transport_.call_after(
      config_.attn_timeout, [this, expected_round] {
        timer_ = 0;
        if (state_ != State::kAttnWait || round_id_ != expected_round) return;
        stats_.phase1_total = transport_.now() - stats_.started_at;
        if (ack_failed_) {
          enter_backoff();
        } else {
          begin_collect();
        }
      });
  // Phase 1 is dispatched in parallel; its cost is the local CPU work of
  // sending k messages (Table 2 measures exactly this).
  stats_.phase1_dispatch =
      static_cast<SimDuration>(members_.size()) * config_.cpu_per_send;
  for (NodeId peer : members_) {
    net::Message m;
    m.from = self_;
    m.to = peer;
    m.file = file_;
    m.type = kAttnType;
    m.payload = AttnPayload{round_id_};
    m.wire_bytes = 24;
    transport_.send(std::move(m));
  }
}

void ResolutionManager::handle_attn(const net::Message& msg) {
  const auto& p = msg.payload.as<AttnPayload>();
  // Positive iff we are not ourselves initiating and not mid-participation.
  const bool ok = state_ == State::kIdle && participating_round_ == 0;
  // An initiator waiting in backoff cancels in favour of the peer (§4.5.2:
  // "if one receives another's notice before it tries, it will simply
  // cancel its own resolution process").
  if (state_ == State::kBackoff) {
    if (timer_ != 0) {
      transport_.cancel_call(timer_);
      timer_ = 0;
    }
    state_ = State::kIdle;
    stats_.suppressed = true;
    finish_round(false);
  }
  net::Message reply;
  reply.from = self_;
  reply.to = msg.from;
  reply.file = file_;
  reply.type = kAttnAckType;
  reply.payload = AttnAckPayload{p.round_id, ok};
  reply.wire_bytes = 24;
  transport_.send(std::move(reply));
}

void ResolutionManager::handle_attn_ack(const net::Message& msg) {
  const auto& p = msg.payload.as<AttnAckPayload>();
  if (state_ != State::kAttnWait || p.round_id != round_id_) return;
  if (!p.ok) ack_failed_ = true;
  if (acks_pending_ > 0) --acks_pending_;
  if (acks_pending_ > 0) return;
  if (timer_ != 0) {
    transport_.cancel_call(timer_);
    timer_ = 0;
  }
  stats_.phase1_total = transport_.now() - stats_.started_at;
  if (ack_failed_) {
    enter_backoff();
  } else {
    begin_collect();
  }
}

void ResolutionManager::enter_backoff() {
  if (stats_.backoffs >= config_.max_backoffs) {
    state_ = State::kIdle;
    finish_round(false);
    return;
  }
  ++stats_.backoffs;
  state_ = State::kBackoff;
  const SimDuration wait =
      rng_.uniform_int(config_.backoff_min, config_.backoff_max);
  timer_ = transport_.call_after(wait, [this] {
    timer_ = 0;
    if (state_ != State::kBackoff) return;
    state_ = State::kAttnWait;
    send_attn();
  });
}

void ResolutionManager::begin_collect() {
  state_ = State::kCollect;
  phase2_started_ = transport_.now();
  gathered_.clear();
  gathered_.emplace_back(self_, store_.evv());
  next_member_ = 0;
  collect_outstanding_ = 0;

  if (config_.parallel_collect) {
    for (NodeId peer : members_) {
      net::Message m;
      m.from = self_;
      m.to = peer;
      m.file = file_;
      m.type = kCollectType;
      m.payload = CollectPayload{round_id_, store_.evv().counts()};
      m.wire_bytes = 64;
      transport_.send(std::move(m));
      ++collect_outstanding_;
    }
    timer_ = transport_.call_after(config_.collect_timeout, [this] {
      timer_ = 0;
      if (state_ == State::kCollect) commit_round();
    });
  } else {
    visit_next_member();
  }
}

void ResolutionManager::visit_next_member() {
  assert(!config_.parallel_collect);
  if (next_member_ >= members_.size()) {
    maybe_finish_collect();
    return;
  }
  const NodeId peer = members_[next_member_];
  net::Message m;
  m.from = self_;
  m.to = peer;
  m.file = file_;
  m.type = kCollectType;
  m.payload = CollectPayload{round_id_, store_.evv().counts()};
  m.wire_bytes = 64;
  transport_.send(std::move(m));
  // Skip the member if it does not answer in time.
  const std::uint64_t expected_round = round_id_;
  const std::size_t expected_index = next_member_;
  timer_ = transport_.call_after(
      config_.collect_timeout, [this, expected_round, expected_index] {
        timer_ = 0;
        if (state_ != State::kCollect || round_id_ != expected_round ||
            next_member_ != expected_index) {
          return;
        }
        IDEA_LOG(kWarn) << node_name(self_) << " collect timeout on member "
                        << node_name(members_[next_member_]);
        ++next_member_;
        visit_next_member();
      });
}

void ResolutionManager::handle_collect(const net::Message& msg) {
  const auto& p = msg.payload.as<CollectPayload>();
  const NodeId initiator = msg.from;
  participating_round_ = p.round_id;
  if (participant_timer_ != 0) transport_.cancel_call(participant_timer_);
  // Safety valve: release the write-block if the initiator disappears.
  participant_timer_ = transport_.call_after(
      config_.collect_timeout + config_.commit_timeout, [this, p] {
        participant_timer_ = 0;
        if (participating_round_ == p.round_id) participating_round_ = 0;
      });
  // Model the version-comparison / log-lookup work before replying.
  transport_.call_after(config_.collect_processing, [this, p, initiator] {
    net::Message reply;
    reply.from = self_;
    reply.to = initiator;
    reply.file = file_;
    reply.type = kCollectReplyType;
    CollectReplyPayload body;
    body.round_id = p.round_id;
    body.evv = store_.evv();
    body.updates = store_.updates_ahead_of(p.initiator_counts);
    reply.wire_bytes =
        store_.evv().wire_bytes() + updates_wire_bytes(body.updates);
    reply.payload = std::move(body);
    transport_.send(std::move(reply));
  });
}

void ResolutionManager::handle_collect_reply(const net::Message& msg) {
  const auto& p = msg.payload.as<CollectReplyPayload>();
  if (state_ != State::kCollect || p.round_id != round_id_) return;

  // Merge the member's updates into our store so the initiator ends up
  // holding the union of all histories.
  for (const replica::Update& u : p.updates) {
    if (!store_.has(u.key)) store_.apply_remote(u);
  }
  collect_member_done(msg.from, p.evv);
}

void ResolutionManager::collect_member_done(
    NodeId member, std::optional<vv::ExtendedVersionVector> evv) {
  if (evv.has_value()) gathered_.emplace_back(member, std::move(*evv));
  if (config_.parallel_collect) {
    if (collect_outstanding_ > 0) --collect_outstanding_;
    if (collect_outstanding_ == 0) maybe_finish_collect();
  } else {
    if (timer_ != 0) {
      transport_.cancel_call(timer_);
      timer_ = 0;
    }
    ++next_member_;
    visit_next_member();
  }
}

void ResolutionManager::maybe_finish_collect() {
  if (state_ != State::kCollect) return;
  if (timer_ != 0) {
    transport_.cancel_call(timer_);
    timer_ = 0;
  }
  stats_.phase2_collect = transport_.now() - phase2_started_;
  commit_round();
}

void ResolutionManager::commit_round() {
  state_ = State::kCommitWait;
  if (stats_.phase2_collect == 0) {
    stats_.phase2_collect = transport_.now() - phase2_started_;
  }

  // Decide the winner and the invalidation set from the gathered snapshots.
  const NodeId winner = choose_winner(config_.policy, gathered_);
  stats_.winner = winner;
  vv::ExtendedVersionVector winner_evv;
  for (const auto& [node, evv] : gathered_) {
    if (node == winner) winner_evv = evv;
  }

  // Merged state: our own EVV now reflects the union (we applied every
  // member's updates during collect).
  const vv::ExtendedVersionVector& merged = store_.evv();

  std::vector<std::pair<NodeId, std::uint64_t>> invalidate;
  if (config_.policy.policy == ResolutionPolicy::kInvalidateBoth) {
    invalidate = updates_after(merged, group_last_consistent(gathered_));
  } else {
    invalidate = updates_not_in(merged, winner_evv);
  }
  stats_.invalidated = invalidate.size();
  // Re-announce every invalidation we already know about: a member that
  // missed an earlier commit (message loss) must still converge on the same
  // invalidation set.  Idempotent at the receivers.
  for (const replica::UpdateKey& key : store_.invalidated_keys()) {
    invalidate.emplace_back(key.writer, key.seq);
  }
  std::sort(invalidate.begin(), invalidate.end());
  invalidate.erase(std::unique(invalidate.begin(), invalidate.end()),
                   invalidate.end());

  // Parallel commit to every member with exactly the updates it lacks.
  done_pending_ = 0;
  for (const auto& [node, member_evv] : gathered_) {
    if (node == self_) continue;
    CommitPayload body;
    body.round_id = round_id_;
    body.winner = winner;
    body.invalidate = invalidate;
    for (const auto& [w, seq] : member_evv.missing_from(merged)) {
      const replica::Update* u = store_.find(replica::UpdateKey{w, seq});
      if (u != nullptr) body.updates.push_back(*u);
    }
    std::sort(body.updates.begin(), body.updates.end(),
              [](const replica::Update& a, const replica::Update& b) {
                return a.key < b.key;
              });
    stats_.updates_shipped += body.updates.size();
    net::Message m;
    m.from = self_;
    m.to = node;
    m.file = file_;
    m.type = kCommitType;
    m.wire_bytes = 48 + updates_wire_bytes(body.updates) +
                   static_cast<std::uint32_t>(16 * body.invalidate.size());
    m.payload = std::move(body);
    transport_.send(std::move(m));
    ++done_pending_;
  }
  stats_.commit_dispatch =
      static_cast<SimDuration>(done_pending_) * config_.cpu_per_send;

  // Apply the decision locally.
  apply_commit_locally({}, invalidate);

  if (done_pending_ == 0) {
    finish_round(true);
    return;
  }
  timer_ = transport_.call_after(config_.commit_timeout, [this] {
    timer_ = 0;
    if (state_ == State::kCommitWait) finish_round(true);
  });
}

void ResolutionManager::handle_commit(const net::Message& msg) {
  const auto& p = msg.payload.as<CommitPayload>();
  apply_commit_locally(p.updates, p.invalidate);
  if (participating_round_ == p.round_id) {
    participating_round_ = 0;
    if (participant_timer_ != 0) {
      transport_.cancel_call(participant_timer_);
      participant_timer_ = 0;
    }
  }
  net::Message reply;
  reply.from = self_;
  reply.to = msg.from;
  reply.file = file_;
  reply.type = kDoneType;
  reply.payload = DonePayload{p.round_id};
  reply.wire_bytes = 16;
  transport_.send(std::move(reply));
}

void ResolutionManager::handle_done(const net::Message& msg) {
  const auto& p = msg.payload.as<DonePayload>();
  if (state_ != State::kCommitWait || p.round_id != round_id_) return;
  if (done_pending_ > 0) --done_pending_;
  if (done_pending_ == 0) {
    if (timer_ != 0) {
      transport_.cancel_call(timer_);
      timer_ = 0;
    }
    finish_round(true);
  }
}

void ResolutionManager::finish_round(bool succeeded) {
  stats_.succeeded = succeeded;
  stats_.total = transport_.now() - stats_.started_at;
  state_ = State::kIdle;
  if (succeeded) ++succeeded_;
  if (on_round_) on_round_(stats_);
}

void ResolutionManager::apply_commit_locally(
    const std::vector<replica::Update>& updates,
    const std::vector<std::pair<NodeId, std::uint64_t>>& invalidate) {
  for (const replica::Update& u : updates) {
    if (!store_.has(u.key)) store_.apply_remote(u);
  }
  for (const auto& [w, seq] : invalidate) {
    store_.invalidate(replica::UpdateKey{w, seq});
  }
  // The replica now matches the reference state; clear its error triple.
  store_.set_triple(vv::TactTriple{});
}

void ResolutionManager::on_message(const net::Message& msg) {
  if (msg.type == kAttnType) {
    handle_attn(msg);
  } else if (msg.type == kAttnAckType) {
    handle_attn_ack(msg);
  } else if (msg.type == kCollectType) {
    handle_collect(msg);
  } else if (msg.type == kCollectReplyType) {
    handle_collect_reply(msg);
  } else if (msg.type == kCommitType) {
    handle_commit(msg);
  } else if (msg.type == kDoneType) {
    handle_done(msg);
  }
}

}  // namespace idea::core
