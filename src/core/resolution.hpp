#pragma once
/// \file resolution.hpp
/// \brief Background and active inconsistency resolution (§4.5).
///
/// A resolution *round* is the paper's phase 2: the initiator sequentially
/// visits every top-layer member, collecting each member's extended version
/// vector plus the updates the initiator is missing; it then applies the
/// configured policy to pick a winner, computes per-member deltas (missing
/// updates + conflict-loser invalidations) and commits them in parallel.
/// After a round every participant holds the same update set and the same
/// invalidation marks, i.e. identical canonical contents.
///
/// *Active* resolution prepends the paper's phase 1: a parallel
/// call-for-attention; only when every member acknowledges that nobody else
/// is initiating does phase 2 start.  Competing initiators back off for a
/// random interval and cancel entirely if they observe another initiator's
/// call while waiting (§4.5.2).
///
/// *Background* resolution runs phase 2 directly on a timer.
///
/// While a node initiates or participates in a round, its local writes are
/// blocked (the paper's responsiveness trade-off; the booking application's
/// underselling comes exactly from this window).

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/policy.hpp"
#include "net/transport.hpp"
#include "replica/store.hpp"
#include "util/rng.hpp"

namespace idea::core {

struct ResolutionConfig {
  PolicyContext policy;
  /// Simulated local CPU cost of dispatching one protocol message; phase 1's
  /// measured cost in Table 2 is k messages' dispatch work.
  SimDuration cpu_per_send = usec(150);
  /// Peer-side processing before answering a collect (version comparison,
  /// log lookup).
  SimDuration collect_processing = msec(8);
  /// Per-peer wait before skipping an unresponsive member in phase 2.
  SimDuration collect_timeout = sec(3);
  /// Wait for commit acknowledgements before closing the round.
  SimDuration commit_timeout = sec(3);
  /// Wait for call-for-attention acks before deciding; a member that never
  /// answers (crashed) is treated as not-initiating, so the round proceeds.
  SimDuration attn_timeout = sec(2);
  /// Randomized retry window after a failed call-for-attention.
  SimDuration backoff_min = msec(100);
  SimDuration backoff_max = msec(800);
  int max_backoffs = 8;
  /// Ablation: visit members in parallel during phase 2 (the paper notes
  /// this option; default is the paper's sequential design).
  bool parallel_collect = false;
};

/// Timing/outcome record of one round, consumed by Table 2 / Figure 9.
struct RoundStats {
  bool active = false;      ///< Active (two-phase) vs background round.
  bool succeeded = false;   ///< Commit was sent.
  bool suppressed = false;  ///< Cancelled in favour of another initiator.
  SimTime started_at = 0;
  SimDuration phase1_dispatch = 0;  ///< Local cost of sending the calls.
  SimDuration phase1_total = 0;     ///< Until the last ack arrived.
  SimDuration phase2_collect = 0;   ///< Sequential (or parallel) traversal.
  SimDuration commit_dispatch = 0;  ///< Local cost of sending commits.
  SimDuration total = 0;            ///< Until the last done-ack arrived.
  std::size_t participants = 0;     ///< Top-layer size including initiator.
  int backoffs = 0;
  NodeId winner = kNoNode;
  std::size_t invalidated = 0;      ///< Conflict-loser updates cleared.
  std::size_t updates_shipped = 0;  ///< Updates pushed in commits.
};

class ResolutionManager final : public net::MessageHandler {
 public:
  using RoundCallback = std::function<void(const RoundStats&)>;

  ResolutionManager(NodeId self, FileId file, net::Transport& transport,
                    replica::ReplicaStore& store,
                    std::function<std::vector<NodeId>()> top_layer,
                    ResolutionConfig config, std::uint64_t seed);
  ~ResolutionManager() override;

  ResolutionManager(const ResolutionManager&) = delete;
  ResolutionManager& operator=(const ResolutionManager&) = delete;

  /// Start an active (user-demanded) resolution.  Returns false if a round
  /// is already in progress locally.
  bool start_active();

  /// Start a background round (no call-for-attention).  Returns false if a
  /// round is already in progress locally.
  bool start_background();

  /// True while local writes must be blocked (initiating phase 2 or
  /// participating between collect and commit).
  [[nodiscard]] bool busy() const;

  /// Fires once per initiated round with its stats.
  void set_round_callback(RoundCallback cb) { on_round_ = std::move(cb); }

  void on_message(const net::Message& msg) override;

  [[nodiscard]] std::uint64_t rounds_initiated() const { return initiated_; }
  [[nodiscard]] std::uint64_t rounds_succeeded() const { return succeeded_; }

  static const net::MsgType kAttnType;          ///< "resolve.attn"
  static const net::MsgType kAttnAckType;       ///< "resolve.attn_ack"
  static const net::MsgType kCollectType;       ///< "resolve.collect"
  static const net::MsgType kCollectReplyType;  ///< "resolve.collect_reply"
  static const net::MsgType kCommitType;        ///< "resolve.commit"
  static const net::MsgType kDoneType;          ///< "resolve.done"

 private:
  enum class State { kIdle, kAttnWait, kBackoff, kCollect, kCommitWait };

  void begin_round(bool active);
  void send_attn();
  void handle_attn(const net::Message& msg);
  void handle_attn_ack(const net::Message& msg);
  void enter_backoff();
  void begin_collect();
  void visit_next_member();
  void handle_collect(const net::Message& msg);
  void handle_collect_reply(const net::Message& msg);
  void collect_member_done(NodeId member,
                           std::optional<vv::ExtendedVersionVector> evv);
  void maybe_finish_collect();
  void commit_round();
  void handle_commit(const net::Message& msg);
  void handle_done(const net::Message& msg);
  void finish_round(bool succeeded);
  void apply_commit_locally(
      const std::vector<replica::Update>& updates,
      const std::vector<std::pair<NodeId, std::uint64_t>>& invalidate);

  NodeId self_;
  FileId file_;
  net::Transport& transport_;
  replica::ReplicaStore& store_;
  std::function<std::vector<NodeId>()> top_layer_;
  ResolutionConfig config_;
  Rng rng_;

  // --- initiator state ---
  State state_ = State::kIdle;
  std::uint64_t round_id_ = 0;
  std::uint64_t round_counter_ = 0;
  RoundStats stats_;
  std::vector<NodeId> members_;       ///< Peers to visit (self excluded).
  std::size_t next_member_ = 0;
  std::size_t acks_pending_ = 0;
  bool ack_failed_ = false;
  Gathered gathered_;                 ///< Snapshots incl. self.
  std::size_t collect_outstanding_ = 0;
  std::size_t done_pending_ = 0;
  std::uint64_t timer_ = 0;           ///< Backoff / timeout timer.
  SimTime phase2_started_ = 0;

  // --- participant state ---
  std::uint64_t participating_round_ = 0;  ///< 0 = free.
  std::uint64_t participant_timer_ = 0;

  RoundCallback on_round_;
  std::uint64_t initiated_ = 0;
  std::uint64_t succeeded_ = 0;
};

}  // namespace idea::core
