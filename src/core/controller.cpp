#include "core/controller.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace idea::core {

AdaptiveController::AdaptiveController(
    ControllerConfig config, std::function<void()> demand_resolution,
    std::function<void(SimDuration)> set_background_period)
    : config_(config), demand_resolution_(std::move(demand_resolution)),
      set_background_period_(std::move(set_background_period)),
      hint_(config.hint), bandwidth_(config.available_bandwidth),
      learned_min_hz_(config.min_freq_hz),
      learned_max_hz_(config.max_freq_hz) {}

void AdaptiveController::observe_level(double level, SimTime now,
                                       bool conflict) {
  if (config_.mode != AdaptiveMode::kHintBased) return;
  if (hint_ <= 0.0) return;
  if (level < hint_ || (conflict && hint_ >= 1.0)) demand(now);
}

void AdaptiveController::user_unsatisfied(SimTime now) {
  // Learn: keep the consistency above L1 + delta from now on (§2).
  hint_ = std::min(1.0, hint_ + config_.hint_delta);
  IDEA_LOG(kInfo) << "user unsatisfied; learned new acceptable level "
                  << hint_;
  demand(now);
}

void AdaptiveController::set_hint(double hint) {
  hint_ = std::clamp(hint, 0.0, 1.0);
}

void AdaptiveController::demand(SimTime now) {
  if (now - last_demand_ < config_.demand_cooldown) return;
  last_demand_ = now;
  ++demands_;
  demand_resolution_();
}

void AdaptiveController::observe_round_cost(double bytes) {
  round_cost_.add(bytes);
}

void AdaptiveController::observe_bandwidth(double bytes_per_sec) {
  bandwidth_ = bytes_per_sec;
}

void AdaptiveController::notify_oversell() {
  // Frequency was too low: consistency lagged and seats were double-sold.
  learned_min_hz_ =
      std::min(std::max(learned_min_hz_, freq_hz_ * config_.bound_step),
               config_.max_freq_hz);
}

void AdaptiveController::notify_undersell() {
  // Frequency was too high: resolution blocking cost us sales.
  learned_max_hz_ =
      std::max(std::min(learned_max_hz_, freq_hz_ / config_.bound_step),
               config_.min_freq_hz);
}

double AdaptiveController::adjust_frequency() {
  // Formula 4: optimal_rate = b * x% / c.
  double target = freq_hz_;
  if (round_cost_.primed() && round_cost_.value() > 0.0) {
    target = bandwidth_ * config_.bandwidth_cap_fraction /
             round_cost_.value();
  }
  // Learned business bounds may have crossed; the lower bound (oversell
  // protection) wins, as overselling has the direct monetary cost (§5.2).
  const double lo = learned_min_hz_;
  const double hi = std::max(learned_min_hz_, learned_max_hz_);
  target = std::clamp(target, lo, hi);
  target = std::clamp(target, config_.min_freq_hz, config_.max_freq_hz);
  freq_hz_ = target;
  if (set_background_period_) {
    set_background_period_(sec_f(1.0 / freq_hz_));
  }
  return freq_hz_;
}

}  // namespace idea::core
