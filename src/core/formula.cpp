#include "core/formula.hpp"

#include <algorithm>
#include <cassert>

namespace idea::core {

double consistency_level(const vv::TactTriple& triple,
                         const vv::TripleWeights& weights,
                         const vv::TripleMaxima& maxima) {
  assert(maxima.valid());
  assert(weights.valid());
  auto term = [](double err, double max_err) {
    const double clamped = std::clamp(err, 0.0, max_err);
    return (max_err - clamped) / max_err;
  };
  const double raw =
      weights.numerical * term(triple.numerical_error, maxima.numerical) +
      weights.order * term(triple.order_error, maxima.order) +
      weights.staleness * term(triple.staleness_sec, maxima.staleness_sec);
  return std::clamp(raw / weights.sum(), 0.0, 1.0);
}

double max_uniform_error_for_level(double level,
                                   const vv::TripleMaxima& maxima) {
  // With equal weights and err/max identical across metrics:
  //   level = 1 - err/max  =>  err = (1 - level) * max.
  const double frac = std::clamp(1.0 - level, 0.0, 1.0);
  return frac * std::min({maxima.numerical, maxima.order,
                          maxima.staleness_sec});
}

}  // namespace idea::core
