#pragma once
/// \file formula.hpp
/// \brief Formula 1 (§4.4): quantifying a consistency level in [0,1].
///
///   level = w_num   * (max_num   - num_err)   / max_num
///         + w_order * (max_order - order_err) / max_order
///         + w_stale * (max_stale - staleness) / max_stale
///
/// Errors are clamped to [0, max] so the level stays in [0,1]; weights are
/// normalized by their sum so <0.33,0.33,0.33> behaves as exact thirds (the
/// paper's "treat the three members equally").  A weight of 0 switches a
/// metric off entirely, as the set_weight API documents.

#include "vv/tact_triple.hpp"

namespace idea::core {

/// Evaluate Formula 1.  Precondition: maxima.valid() && weights.valid().
double consistency_level(const vv::TactTriple& triple,
                         const vv::TripleWeights& weights,
                         const vv::TripleMaxima& maxima);

/// Inverse helper for tests/benches: the largest per-metric error (applied
/// to all three metrics at once, equal weights) that still yields `level`.
double max_uniform_error_for_level(double level,
                                   const vv::TripleMaxima& maxima);

}  // namespace idea::core
