#pragma once
/// \file workload.hpp
/// \brief Synthetic update workloads (§6: "we use a synthetic workload that
///        assumes uniform distribution of the updating frequency").
///
/// Drives a set of writer nodes in a cluster: each writer issues one update
/// per interval (optionally jittered uniformly), for a bounded duration or
/// until stopped.  All updates are treated as conflicting, as in the paper's
/// evaluation setup.

#include <functional>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "util/rng.hpp"

namespace idea::apps {

struct WorkloadParams {
  SimDuration interval = sec(5);   ///< Nominal inter-update gap per writer.
  double jitter_frac = 0.0;        ///< Uniform jitter: ±frac of interval.
  SimDuration duration = sec(100); ///< Stop issuing after this long.
  SimDuration start_delay = 0;     ///< Delay before the first update.
};

/// Per-update content: returns (content, meta_delta).
using ContentGenerator =
    std::function<std::pair<std::string, double>(NodeId writer, int index)>;

/// Default generator: short stroke-like strings whose meta delta is the sum
/// of their ASCII codes scaled down (the paper's white-board meta-data).
ContentGenerator make_stroke_generator(std::uint64_t seed);

class UpdateWorkload {
 public:
  UpdateWorkload(core::IdeaCluster& cluster, std::vector<NodeId> writers,
                 WorkloadParams params, ContentGenerator generator,
                 std::uint64_t seed);

  /// Schedule all updates on the cluster's simulator.  Call once.
  void start();

  [[nodiscard]] std::uint64_t attempted() const { return attempted_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }
  [[nodiscard]] const std::vector<NodeId>& writers() const {
    return writers_;
  }

 private:
  void schedule_writer(NodeId writer, int index, SimTime when);

  core::IdeaCluster& cluster_;
  std::vector<NodeId> writers_;
  WorkloadParams params_;
  ContentGenerator generator_;
  Rng rng_;
  SimTime end_time_ = 0;
  std::uint64_t attempted_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace idea::apps
