#include "apps/workload.hpp"

namespace idea::apps {

ContentGenerator make_stroke_generator(std::uint64_t seed) {
  // Deterministic short "strokes"; meta delta = scaled ASCII sum (§4.4.1).
  return [seed](NodeId writer, int index) {
    Rng rng(mix64(seed ^ (static_cast<std::uint64_t>(writer) << 20) ^
                  static_cast<std::uint64_t>(index)));
    static constexpr const char* kWords[] = {
        "circle", "arrow", "note",  "box",   "line",
        "erase",  "label", "graph", "point", "mark"};
    std::string text = kWords[rng.next_below(10)];
    text += '-';
    text += std::to_string(rng.next_below(100));
    double ascii_sum = 0;
    for (char c : text) ascii_sum += static_cast<unsigned char>(c);
    return std::make_pair(text, ascii_sum / 100.0);
  };
}

UpdateWorkload::UpdateWorkload(core::IdeaCluster& cluster,
                               std::vector<NodeId> writers,
                               WorkloadParams params,
                               ContentGenerator generator,
                               std::uint64_t seed)
    : cluster_(cluster), writers_(std::move(writers)), params_(params),
      generator_(std::move(generator)), rng_(seed) {}

void UpdateWorkload::start() {
  const SimTime now = cluster_.sim().now();
  end_time_ = now + params_.start_delay + params_.duration;
  for (NodeId w : writers_) {
    schedule_writer(w, 0, now + params_.start_delay);
  }
}

void UpdateWorkload::schedule_writer(NodeId writer, int index, SimTime when) {
  if (when >= end_time_) return;
  cluster_.sim().schedule_at(when, [this, writer, index] {
    ++attempted_;
    auto [content, meta] = generator_(writer, index);
    if (!cluster_.node(writer).write(std::move(content), meta)) {
      ++blocked_;
    }
    SimDuration gap = params_.interval;
    if (params_.jitter_frac > 0.0) {
      const double j = rng_.uniform(-params_.jitter_frac,
                                    params_.jitter_frac);
      gap += static_cast<SimDuration>(static_cast<double>(gap) * j);
    }
    schedule_writer(writer, index + 1, cluster_.sim().now() + gap);
  });
}

}  // namespace idea::apps
