#include "apps/kvstore.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace idea::apps {

KvStore::KvStore(shard::ShardedCluster& cluster, KvStoreOptions options)
    : cluster_(cluster),
      options_(options),
      session_(cluster, options.session) {}

FileId KvStore::bucket_of(const std::string& key) const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a over the key bytes
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return options_.first_file +
         static_cast<FileId>(mix64(h) % options_.buckets);
}

double KvStore::pair_meta(const std::string& key, const std::string& value) {
  double sum = 0.0;
  for (const char c : key) sum += static_cast<unsigned char>(c);
  for (const char c : value) sum += static_cast<unsigned char>(c);
  return sum / 100.0;
}

bool KvStore::put(const std::string& key, const std::string& value) {
  const bool ok = session_
                      .put(bucket_of(key), key + kSeparator + value,
                           pair_meta(key, value))
                      .ok();
  ok ? ++puts_ : ++blocked_puts_;
  return ok;
}

std::optional<std::string> KvStore::get(const std::string& key) {
  ++gets_;
  const client::OpHandle<client::ReadResult> handle =
      session_.read(bucket_of(key));
  if (!handle.ok()) return std::nullopt;
  // Scan the routed view in place (a shared snapshot — no copy of the
  // bucket's history).  The view is in canonical order, so the last
  // live match is the value a reader of the rendered file sees as
  // current.
  const std::string prefix = key + kSeparator;
  const replica::Update* best = nullptr;
  for (const replica::Update& u : *handle->updates) {
    if (u.invalidated ||
        u.content.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    best = &u;
  }
  if (best == nullptr) return std::nullopt;
  ++hits_;
  return best->content.substr(prefix.size());
}

// ---------------------------------------------------------------------------
// KvWorkload
// ---------------------------------------------------------------------------

KvWorkload::KvWorkload(KvStore& store, sim::Simulator& sim,
                       KvWorkloadParams params, std::uint64_t seed)
    : store_(store), sim_(sim), params_(params), rng_(seed) {
  if (params_.zipf_s > 0.0 && params_.keyspace > 0) {
    zipf_cdf_.reserve(params_.keyspace);
    double total = 0.0;
    for (std::uint32_t rank = 1; rank <= params_.keyspace; ++rank) {
      total += 1.0 / std::pow(static_cast<double>(rank), params_.zipf_s);
      zipf_cdf_.push_back(total);
    }
    for (double& c : zipf_cdf_) c /= total;
  }
}

std::uint32_t KvWorkload::sample_key() {
  if (zipf_cdf_.empty()) {
    return static_cast<std::uint32_t>(rng_.next_below(params_.keyspace));
  }
  const double u = rng_.uniform01();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<std::uint32_t>(it - zipf_cdf_.begin());
}

void KvWorkload::start() {
  end_time_ = sim_.now() + params_.duration;
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    // Stagger client start so the first tick is not one giant burst.
    const auto offset = static_cast<SimDuration>(
        rng_.next_below(static_cast<std::uint64_t>(params_.interval) + 1));
    schedule_client(c, 0, sim_.now() + offset);
  }
}

void KvWorkload::schedule_client(std::uint32_t client,
                                 std::uint64_t op_index, SimTime when) {
  if (when > end_time_) return;
  sim_.schedule_at(when, [this, client, op_index] {
    const std::uint32_t key_index = sample_key();
    char key[16];
    std::snprintf(key, sizeof key, "k%06u", key_index);
    ++attempted_;
    if (params_.read_fraction > 0.0 && rng_.chance(params_.read_fraction)) {
      (void)store_.get(key);
    } else {
      char value[32];
      std::snprintf(value, sizeof value, "c%u-op%llu", client,
                    static_cast<unsigned long long>(op_index));
      if (!store_.put(key, value)) ++blocked_;
    }
    SimDuration gap = params_.interval;
    if (params_.jitter_frac > 0.0) {
      const double j = rng_.uniform(-params_.jitter_frac, params_.jitter_frac);
      gap = std::max<SimDuration>(
          1, gap + static_cast<SimDuration>(
                       j * static_cast<double>(params_.interval)));
    }
    schedule_client(client, op_index + 1, sim_.now() + gap);
  });
}

}  // namespace idea::apps
