#include "apps/whiteboard.hpp"

#include <algorithm>
#include <cassert>

#include "shard/sharded_cluster.hpp"

namespace idea::apps {

WhiteboardApp::WhiteboardApp(core::IdeaCluster& cluster,
                             std::vector<NodeId> participants)
    : cluster_(cluster), participants_(std::move(participants)) {}

double WhiteboardApp::stroke_meta(const std::string& text) {
  double ascii_sum = 0;
  for (char c : text) ascii_sum += static_cast<unsigned char>(c);
  return ascii_sum / 100.0;
}

bool WhiteboardApp::post(NodeId user, const std::string& text) {
  return cluster_.node(user).write(text, stroke_meta(text));
}

std::vector<std::string> WhiteboardApp::view(NodeId user) const {
  std::vector<std::string> out;
  for (const auto& u : cluster_.node(user).store().ordered_contents()) {
    if (!u.invalidated) out.push_back(u.content);
  }
  return out;
}

double WhiteboardApp::level(NodeId user) const {
  return cluster_.node(user).current_level();
}

void WhiteboardApp::attach_user(UserModel user) {
  users_.push_back(user);
  const std::size_t idx = users_.size() - 1;
  cluster_.node(user.node).set_level_listener(
      [this, idx](const core::LevelSample& sample) {
        UserModel& u = users_[idx];
        if (sample.level < u.real_tolerance) {
          ++u.times_annoyed;
          if (u.complains) {
            ++u.times_complained;
            cluster_.node(u.node).user_unsatisfied();
          }
        }
      });
}

void WhiteboardApp::sample_levels(SimTime now) {
  double worst = 1.0;
  double sum = 0.0;
  for (NodeId p : participants_) {
    const double lv = level(p);
    worst = std::min(worst, lv);
    sum += lv;
  }
  const double t = to_sec(now);
  worst_.add(t, worst);
  average_.add(t, sum / static_cast<double>(participants_.size()));
}

bool WhiteboardApp::boards_match() const {
  if (participants_.empty()) return true;
  const auto first = view(participants_.front());
  for (NodeId p : participants_) {
    if (view(p) != first) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SharedWhiteboard (sharded deployment, session API)
// ---------------------------------------------------------------------------

SharedWhiteboard::SharedWhiteboard(shard::ShardedCluster& cluster,
                                   FileId board,
                                   std::vector<NodeId> participants,
                                   client::ConsistencyLevel level)
    : board_(board),
      participants_(std::move(participants)),
      client_(cluster) {
  sessions_.reserve(participants_.size());
  for (NodeId p : participants_) {
    sessions_.push_back(
        client_.session({.level = level, .origin = p}));
  }
  if (!sessions_.empty()) sessions_.front().open(board_);
}

client::ClientSession& SharedWhiteboard::session_of(NodeId user) {
  const auto it =
      std::find(participants_.begin(), participants_.end(), user);
  assert(it != participants_.end() && "unknown whiteboard participant");
  return sessions_[static_cast<std::size_t>(it - participants_.begin())];
}

bool SharedWhiteboard::post(NodeId user, const std::string& text) {
  return session_of(user)
      .put(board_, text, WhiteboardApp::stroke_meta(text))
      .ok();
}

client::OpHandle<client::ReadResult> SharedWhiteboard::read(NodeId user) {
  return session_of(user).read(board_);
}

std::vector<std::string> SharedWhiteboard::view(NodeId user) {
  std::vector<std::string> out;
  const client::OpHandle<client::ReadResult> handle = read(user);
  if (!handle.ok()) return out;
  for (const replica::Update& u : *handle->updates) {
    if (!u.invalidated) out.push_back(u.content);
  }
  return out;
}

double SharedWhiteboard::level() {
  return sessions_.empty() ? 1.0 : sessions_.front().level(board_);
}

bool SharedWhiteboard::boards_match() {
  if (sessions_.empty()) return true;
  const client::OpHandle<client::ReadResult> strong =
      sessions_.front().read(board_, client::ConsistencyLevel::strong());
  if (!strong.ok()) return false;
  std::vector<std::string> reference;
  for (const replica::Update& u : *strong->updates) {
    if (!u.invalidated) reference.push_back(u.content);
  }
  for (NodeId p : participants_) {
    if (view(p) != reference) return false;
  }
  return true;
}

}  // namespace idea::apps
