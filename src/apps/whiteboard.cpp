#include "apps/whiteboard.hpp"

#include <algorithm>

namespace idea::apps {

WhiteboardApp::WhiteboardApp(core::IdeaCluster& cluster,
                             std::vector<NodeId> participants)
    : cluster_(cluster), participants_(std::move(participants)) {}

double WhiteboardApp::stroke_meta(const std::string& text) {
  double ascii_sum = 0;
  for (char c : text) ascii_sum += static_cast<unsigned char>(c);
  return ascii_sum / 100.0;
}

bool WhiteboardApp::post(NodeId user, const std::string& text) {
  return cluster_.node(user).write(text, stroke_meta(text));
}

std::vector<std::string> WhiteboardApp::view(NodeId user) const {
  std::vector<std::string> out;
  for (const auto& u : cluster_.node(user).store().ordered_contents()) {
    if (!u.invalidated) out.push_back(u.content);
  }
  return out;
}

double WhiteboardApp::level(NodeId user) const {
  return cluster_.node(user).current_level();
}

void WhiteboardApp::attach_user(UserModel user) {
  users_.push_back(user);
  const std::size_t idx = users_.size() - 1;
  cluster_.node(user.node).set_level_listener(
      [this, idx](const core::LevelSample& sample) {
        UserModel& u = users_[idx];
        if (sample.level < u.real_tolerance) {
          ++u.times_annoyed;
          if (u.complains) {
            ++u.times_complained;
            cluster_.node(u.node).user_unsatisfied();
          }
        }
      });
}

void WhiteboardApp::sample_levels(SimTime now) {
  double worst = 1.0;
  double sum = 0.0;
  for (NodeId p : participants_) {
    const double lv = level(p);
    worst = std::min(worst, lv);
    sum += lv;
  }
  const double t = to_sec(now);
  worst_.add(t, worst);
  average_.add(t, sum / static_cast<double>(participants_.size()));
}

bool WhiteboardApp::boards_match() const {
  if (participants_.empty()) return true;
  const auto first = view(participants_.front());
  for (NodeId p : participants_) {
    if (view(p) != first) return false;
  }
  return true;
}

}  // namespace idea::apps
