#include "apps/booking.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "shard/sharded_cluster.hpp"

namespace idea::apps {

BookingSystem::BookingSystem(core::IdeaCluster& cluster,
                             std::vector<NodeId> servers,
                             BookingParams params, std::uint64_t seed)
    : cluster_(cluster), servers_(std::move(servers)), params_(params),
      rng_(seed) {}

bool BookingSystem::try_book(NodeId server) {
  const std::int64_t viewed_remaining = seats_remaining_view(server);
  const std::uint64_t truly_sold = global_live_bookings();
  const bool seats_truly_available = truly_sold < params_.capacity;

  if (viewed_remaining <= 0) {
    ++sold_out_;
    // The view says full; if seats actually remain, this is underselling.
    if (seats_truly_available) ++undersold_;
    return false;
  }
  const double price = rng_.uniform(params_.price_min, params_.price_max);
  char content[64];
  std::snprintf(content, sizeof(content), "seat@%.2f", price);
  if (!cluster_.node(server).write(content, price)) {
    // Blocked by an in-flight resolution: the §5.2 "system is kind of
    // locked" window.  The customer walks away.
    ++blocked_;
    if (seats_truly_available) ++undersold_;
    return false;
  }
  ++sold_;
  return true;
}

std::int64_t BookingSystem::seats_remaining_view(NodeId server) const {
  return static_cast<std::int64_t>(params_.capacity) -
         static_cast<std::int64_t>(live_bookings(server));
}

std::uint64_t BookingSystem::live_bookings(NodeId server) const {
  std::uint64_t n = 0;
  for (const auto& u : cluster_.node(server).store().ordered_contents()) {
    if (!u.invalidated) ++n;
  }
  return n;
}

std::uint64_t BookingSystem::global_live_bookings() const {
  // Union of all servers' live histories — what a perfectly consistent
  // system would know.  Count distinct update keys across replicas.
  std::uint64_t best = 0;
  // Each booking is written exactly once, so the union size equals the sum
  // of per-writer maxima of sequence counts.
  std::map<NodeId, std::uint64_t> per_writer;
  for (NodeId s : servers_) {
    const vv::VersionVector counts = cluster_.node(s).store().evv().counts();
    for (const auto& [w, c] : counts.entries()) {
      auto& slot = per_writer[w];
      slot = std::max(slot, c);
    }
  }
  for (const auto& [w, c] : per_writer) best += c;
  return best;
}

std::int64_t BookingSystem::oversell_amount() const {
  return std::max<std::int64_t>(
      0, static_cast<std::int64_t>(global_live_bookings()) -
             static_cast<std::int64_t>(params_.capacity));
}

double BookingSystem::revenue_view(NodeId server) const {
  return cluster_.node(server).store().meta_value();
}

void BookingSystem::audit(NodeId controller_node) {
  auto& controller = cluster_.node(controller_node).controller();
  const std::int64_t oversell = oversell_amount();
  if (oversell > last_audited_oversell_) {
    controller.notify_oversell();
  }
  if (undersold_ > last_audited_undersell_) {
    controller.notify_undersell();
  }
  last_audited_oversell_ = oversell;
  last_audited_undersell_ = undersold_;
}

// ---------------------------------------------------------------------------
// BookingDesks (sharded deployment, session API)
// ---------------------------------------------------------------------------

BookingDesks::BookingDesks(shard::ShardedCluster& cluster, FileId flight,
                           std::vector<NodeId> desks, BookingParams params,
                           std::uint64_t seed, client::ConsistencyLevel level)
    : flight_(flight),
      desks_(std::move(desks)),
      params_(params),
      rng_(seed),
      client_(cluster) {
  sessions_.reserve(desks_.size());
  for (NodeId d : desks_) {
    sessions_.push_back(client_.session({.level = level, .origin = d}));
  }
  if (!sessions_.empty()) sessions_.front().open(flight_);
}

client::ClientSession& BookingDesks::session_of(NodeId desk) {
  const auto it = std::find(desks_.begin(), desks_.end(), desk);
  assert(it != desks_.end() && "unknown booking desk");
  return sessions_[static_cast<std::size_t>(it - desks_.begin())];
}

std::int64_t BookingDesks::live_bookings(const client::ReadResult& view) {
  std::int64_t n = 0;
  for (const replica::Update& u : *view.updates) {
    if (!u.invalidated) ++n;
  }
  return n;
}

std::int64_t BookingDesks::seats_remaining_view(NodeId desk) {
  const client::OpHandle<client::ReadResult> handle =
      session_of(desk).read(flight_);
  if (!handle.ok()) return static_cast<std::int64_t>(params_.capacity);
  return static_cast<std::int64_t>(params_.capacity) -
         live_bookings(handle.value());
}

bool BookingDesks::try_book(NodeId desk) {
  if (seats_remaining_view(desk) <= 0) {
    ++sold_out_;
    return false;
  }
  const double price = rng_.uniform(params_.price_min, params_.price_max);
  char content[64];
  std::snprintf(content, sizeof(content), "seat@%.2f", price);
  if (!session_of(desk).put(flight_, content, price).ok()) {
    ++blocked_;
    return false;
  }
  ++sold_;
  return true;
}

std::int64_t BookingDesks::oversell_amount() {
  if (sessions_.empty()) return 0;
  const client::OpHandle<client::ReadResult> strong =
      sessions_.front().read(flight_, client::ConsistencyLevel::strong());
  if (!strong.ok()) return 0;
  const std::int64_t sold = live_bookings(strong.value());
  const auto capacity = static_cast<std::int64_t>(params_.capacity);
  return sold > capacity ? sold - capacity : 0;
}

}  // namespace idea::apps
