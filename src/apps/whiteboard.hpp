#pragma once
/// \file whiteboard.hpp
/// \brief Emulated distributed white board (§3.1, §5.1) — the synchronous
///        collaboration application.
///
/// Each participant holds a local replica of the board; strokes are writes
/// whose meta-data is the (scaled) ASCII sum of the stroke text.  Scripted
/// users watch the consistency level IDEA attaches to their view: in
/// on-demand mode an unsatisfied user calls user_unsatisfied() (IDEA then
/// resolves and learns L1 + delta); hint-based users rely on the standing
/// hint and can re-hint mid-session (Figure 8).

#include <string>
#include <vector>

#include "client/session.hpp"
#include "core/cluster.hpp"
#include "util/stats.hpp"

namespace idea::shard {
class ShardedCluster;
}

namespace idea::apps {

/// Scripted stand-in for a human participant.
struct UserModel {
  NodeId node = kNoNode;
  /// The user's *real* tolerance: seeing a level below this annoys them.
  double real_tolerance = 0.9;
  /// In on-demand mode, an annoyed user complains (user_unsatisfied).
  bool complains = true;
  std::uint64_t times_annoyed = 0;
  std::uint64_t times_complained = 0;
};

class WhiteboardApp {
 public:
  WhiteboardApp(core::IdeaCluster& cluster, std::vector<NodeId> participants);

  /// Post a stroke as `user`; returns false while resolution blocks writes.
  bool post(NodeId user, const std::string& text);

  /// The board as `user` currently sees it (canonical order, live strokes).
  [[nodiscard]] std::vector<std::string> view(NodeId user) const;

  /// The consistency level attached to `user`'s latest view.
  [[nodiscard]] double level(NodeId user) const;

  /// Attach a scripted user; their reactions run on every level sample.
  void attach_user(UserModel user);

  /// Record one sample per participant into the time series (bench helper).
  void sample_levels(SimTime now);

  [[nodiscard]] const std::vector<NodeId>& participants() const {
    return participants_;
  }
  [[nodiscard]] const TimeSeries& worst_series() const { return worst_; }
  [[nodiscard]] const TimeSeries& average_series() const { return average_; }
  [[nodiscard]] const std::vector<UserModel>& users() const { return users_; }

  /// True iff all participants see identical boards.
  [[nodiscard]] bool boards_match() const;

  /// Meta value for a stroke: scaled ASCII sum, as in the paper.
  [[nodiscard]] static double stroke_meta(const std::string& text);

 private:
  core::IdeaCluster& cluster_;
  std::vector<NodeId> participants_;
  std::vector<UserModel> users_;
  TimeSeries worst_{"view from the user"};
  TimeSeries average_{"system average"};
};

/// The white board as a sharded-cluster tenant: one board file placed on
/// the ring, each participant a client session attached at its own
/// endpoint with the board's declared consistency level.  Strokes are
/// strong writes through the participant's session; views are routed
/// reads at the declared level — the sharded deployment of §3.1, driven
/// entirely through the unified client API.
class SharedWhiteboard {
 public:
  SharedWhiteboard(shard::ShardedCluster& cluster, FileId board,
                   std::vector<NodeId> participants,
                   client::ConsistencyLevel level);

  /// Post a stroke as `user`; returns false while resolution blocks
  /// writes.
  bool post(NodeId user, const std::string& text);

  /// The board as `user`'s session currently reads it (live strokes,
  /// canonical order, served per the declared level).
  [[nodiscard]] std::vector<std::string> view(NodeId user);

  /// The routed read behind view(), with its staleness/latency detail.
  [[nodiscard]] client::OpHandle<client::ReadResult> read(NodeId user);

  /// The consistency level IDEA attaches to the board's coordinator.
  [[nodiscard]] double level();

  /// True iff every participant's declared-level view currently matches
  /// the coordinator's strong view.
  [[nodiscard]] bool boards_match();

  [[nodiscard]] const std::vector<NodeId>& participants() const {
    return participants_;
  }
  [[nodiscard]] FileId board() const { return board_; }

 private:
  [[nodiscard]] client::ClientSession& session_of(NodeId user);

  FileId board_;
  std::vector<NodeId> participants_;
  client::Client client_;
  std::vector<client::ClientSession> sessions_;  ///< Parallel to participants_.
};

}  // namespace idea::apps
