#pragma once
/// \file booking.hpp
/// \brief Emulated airline ticket booking system (§3.2, §5.2) — the
///        asynchronous, fully-automatic application.
///
/// Several booking servers each track sales against one flight's replicated
/// record.  A server sells a seat if *its replica* shows seats remaining;
/// because other servers' sales propagate only at resolution time, the
/// system can oversell (sold more than capacity — discovered when histories
/// merge) or undersell (a customer turned away while resolution blocked the
/// server, or because stale double-counted state looked full).  The
/// controller's fully-automatic mode consumes these business signals to
/// learn the frequency bounds of §5.2.

#include <vector>

#include "client/session.hpp"
#include "core/cluster.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace idea::shard {
class ShardedCluster;
}

namespace idea::apps {

struct BookingParams {
  std::uint32_t capacity = 200;  ///< Seats on the flight.
  double price_min = 80.0;
  double price_max = 400.0;
};

class BookingSystem {
 public:
  BookingSystem(core::IdeaCluster& cluster, std::vector<NodeId> servers,
                BookingParams params, std::uint64_t seed);

  /// A customer asks `server` for a seat.  Returns true when a booking was
  /// written.  Refusals are classified: `blocked` (resolution in flight) or
  /// `sold_out_view` (the server's replica shows no seats).
  bool try_book(NodeId server);

  /// Seats this server believes remain (capacity minus live bookings in its
  /// replica).
  [[nodiscard]] std::int64_t seats_remaining_view(NodeId server) const;

  /// Bookings currently live (non-invalidated) in a server's replica.
  [[nodiscard]] std::uint64_t live_bookings(NodeId server) const;

  /// Business outcome from the most complete replica: amount sold beyond
  /// capacity (oversell) once all histories are merged.
  [[nodiscard]] std::int64_t oversell_amount() const;

  /// Customers turned away while seats were actually available system-wide.
  [[nodiscard]] std::uint64_t undersell_count() const {
    return undersold_;
  }

  [[nodiscard]] std::uint64_t sold() const { return sold_; }
  [[nodiscard]] std::uint64_t refused_blocked() const { return blocked_; }
  [[nodiscard]] std::uint64_t refused_sold_out() const { return sold_out_; }
  [[nodiscard]] double revenue_view(NodeId server) const;

  /// Periodic business audit (run on a sim timer by benches): detects
  /// oversell/undersell episodes since the last audit and feeds the
  /// designated node's adaptive controller.
  void audit(NodeId controller_node);

  [[nodiscard]] const std::vector<NodeId>& servers() const {
    return servers_;
  }

 private:
  /// Ground truth: total bookings ever written anywhere (live).
  [[nodiscard]] std::uint64_t global_live_bookings() const;

  core::IdeaCluster& cluster_;
  std::vector<NodeId> servers_;
  BookingParams params_;
  Rng rng_;

  std::uint64_t sold_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t sold_out_ = 0;
  std::uint64_t undersold_ = 0;
  std::int64_t last_audited_oversell_ = 0;
  std::uint64_t last_audited_undersell_ = 0;
};

/// The booking system as a sharded-cluster tenant: one flight-record
/// file placed on the ring, each selling desk a client session attached
/// at its own endpoint.  A desk decides from the view its declared
/// consistency level routes to — a stale nearest-replica view can
/// oversell exactly the way the paper's asynchronous servers do, while
/// Strong desks never see stale seat counts — and bookings are written
/// through the session as strong puts.
class BookingDesks {
 public:
  BookingDesks(
      shard::ShardedCluster& cluster, FileId flight,
      std::vector<NodeId> desks, BookingParams params, std::uint64_t seed,
      client::ConsistencyLevel level = client::ConsistencyLevel::strong());

  /// A customer asks `desk` for a seat.  True when a booking was
  /// written; refusals split into blocked (resolution in flight) and
  /// sold-out-view (the routed view shows no seats).
  bool try_book(NodeId desk);

  /// Seats this desk believes remain, per its session's routed view.
  [[nodiscard]] std::int64_t seats_remaining_view(NodeId desk);

  /// Amount sold beyond capacity per the coordinator's (strong) view.
  [[nodiscard]] std::int64_t oversell_amount();

  [[nodiscard]] std::uint64_t sold() const { return sold_; }
  [[nodiscard]] std::uint64_t refused_blocked() const { return blocked_; }
  [[nodiscard]] std::uint64_t refused_sold_out() const { return sold_out_; }
  [[nodiscard]] const std::vector<NodeId>& desks() const { return desks_; }

 private:
  [[nodiscard]] client::ClientSession& session_of(NodeId desk);
  [[nodiscard]] static std::int64_t live_bookings(
      const client::ReadResult& view);

  FileId flight_;
  std::vector<NodeId> desks_;
  BookingParams params_;
  Rng rng_;
  client::Client client_;
  std::vector<client::ClientSession> sessions_;  ///< Parallel to desks_.

  std::uint64_t sold_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t sold_out_ = 0;
};

}  // namespace idea::apps
