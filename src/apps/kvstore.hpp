#pragma once
/// \file kvstore.hpp
/// \brief Large-scale key-value-store workload over the sharded cluster.
///
/// The paper's applications (white board, ticket booking) are a handful of
/// hot shared files; a key-value store is the opposite corner of the
/// workload space — millions of keys, each lukewarm, spread over as many
/// shared files as the cluster hosts.  KvStore hashes keys into a fixed
/// universe of bucket files placed on the ring (several keys share a
/// bucket, like rows sharing a tablet), routes puts and gets through a
/// client session at a declared consistency level, and KvWorkload drives
/// scripted clients against it on the simulator with uniform or
/// Zipf-skewed key popularity.

#include <optional>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/rng.hpp"

namespace idea::apps {

struct KvStoreOptions {
  std::uint32_t buckets = 1024;  ///< Bucket files keys hash into.
  FileId first_file = 1;         ///< Bucket file ids: first..first+buckets-1.
  /// Session the store issues its operations under.  The default —
  /// Strong, no origin — reproduces coordinator reads byte-exactly.
  client::SessionOptions session;
};

class KvStore {
 public:
  /// Separator between key and value inside an update's content.  The
  /// ASCII unit separator keeps '='-bearing keys/values from aliasing
  /// each other on get(); keys must not contain it.
  static constexpr char kSeparator = '\x1f';

  KvStore(shard::ShardedCluster& cluster, KvStoreOptions options = {});

  /// The bucket file a key lives in (stable hash).
  [[nodiscard]] FileId bucket_of(const std::string& key) const;

  /// Route "key=value" to the bucket's coordinator; replicated from there.
  /// Returns false while the bucket's resolution blocks writes.
  bool put(const std::string& key, const std::string& value);

  /// Latest live value of `key` in the view the session's consistency
  /// level routes the read to (the bucket coordinator under Strong).
  [[nodiscard]] std::optional<std::string> get(const std::string& key);

  /// Meta-data contribution of one kv pair: scaled ASCII sum, like the
  /// white board's stroke meta (keeps the numerical-error metric live).
  [[nodiscard]] static double pair_meta(const std::string& key,
                                        const std::string& value);

  [[nodiscard]] std::uint64_t puts() const { return puts_; }
  [[nodiscard]] std::uint64_t blocked_puts() const { return blocked_puts_; }
  [[nodiscard]] std::uint64_t gets() const { return gets_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] const KvStoreOptions& options() const { return options_; }
  [[nodiscard]] shard::ShardedCluster& cluster() { return cluster_; }
  [[nodiscard]] client::ClientSession& session() { return session_; }

 private:
  shard::ShardedCluster& cluster_;
  KvStoreOptions options_;
  client::ClientSession session_;
  std::uint64_t puts_ = 0;
  std::uint64_t blocked_puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t hits_ = 0;
};

struct KvWorkloadParams {
  std::uint32_t clients = 8;        ///< Concurrent scripted clients.
  SimDuration interval = msec(500); ///< Nominal gap between a client's ops.
  double jitter_frac = 0.5;         ///< Uniform jitter: ±frac of interval.
  SimDuration duration = sec(30);   ///< Stop issuing after this long.
  std::uint32_t keyspace = 4096;    ///< Distinct keys, "k000042"-style.
  /// Zipf exponent of key popularity; 0 = uniform.  Skewed runs hammer a
  /// few hot buckets, the way real kv traffic does.
  double zipf_s = 0.0;
  double read_fraction = 0.0;       ///< Fraction of ops that are gets.
};

class KvWorkload {
 public:
  KvWorkload(KvStore& store, sim::Simulator& sim, KvWorkloadParams params,
             std::uint64_t seed);

  /// Schedule every client's op chain on the simulator.  Call once.
  void start();

  [[nodiscard]] std::uint64_t attempted() const { return attempted_; }
  [[nodiscard]] std::uint64_t blocked() const { return blocked_; }

 private:
  void schedule_client(std::uint32_t client, std::uint64_t op_index,
                       SimTime when);
  [[nodiscard]] std::uint32_t sample_key();

  KvStore& store_;
  sim::Simulator& sim_;
  KvWorkloadParams params_;
  Rng rng_;
  std::vector<double> zipf_cdf_;  ///< Empty when popularity is uniform.
  SimTime end_time_ = 0;
  std::uint64_t attempted_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace idea::apps
