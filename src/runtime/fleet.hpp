#pragma once
/// \file fleet.hpp
/// \brief Multicore deployment: the endpoint space partitioned into ring
///        segments, each segment a full ShardedCluster owned by one epoch
///        task, cross-segment traffic on the conveyor.
///
/// The partitioning exploits what the shard layer already guarantees: a
/// file's replica group is chosen from one ring, so giving every segment
/// its *own* ring (a disjoint slice of the endpoint space, seeded
/// per-segment) confines each replica group — and with it every piece of
/// endpoint-local state: IdeaService stacks, ReplicaStores, checkpoint
/// timers, obs registries, the event and message slabs — entirely inside
/// one segment.  One worker thread runs a segment per epoch, so none of
/// that state ever needs a lock; work stealing migrates whole segments
/// between workers only across pool barriers.
///
/// What crosses segments is the *client tier*: fleet operations originate
/// at one segment and may target files placed on another.  Those ride the
/// Conveyor as batched packets — accumulated while the source's epoch task
/// runs, sealed at the epoch edge, executed by the owning segment next
/// epoch, with the reply conveyed back the same way.  Delivery timestamps
/// are epoch-edge-deterministic, so the merged history is a pure function
/// of (config, seed, segment count) — never of `threads`.
///
/// Oracle mode: `config.runtime.threads == 1` runs the identical epoch
/// protocol inline on the calling thread, through the same per-segment
/// sim::Simulator kernels — the canonical sequential schedule.  A
/// fixed-seed run must produce byte-identical per-endpoint digests,
/// per-type message counts and metrics JSON at any thread count
/// (tests/runtime/ enforces it, including under churn and crashes).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/conveyor.hpp"
#include "runtime/options.hpp"
#include "runtime/parallel_sim.hpp"
#include "runtime/worker_pool.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::client {
class Client;
class ClientSession;
}  // namespace idea::client

namespace idea::runtime {

/// Open-loop fleet workload: every segment issues operations at a fixed
/// per-endpoint rate; a configurable fraction targets files owned by
/// *other* segments (the conveyor traffic).  Draws come from per-segment
/// forks of the deployment seed, so issuance is identical at any thread
/// count.
struct FleetWorkloadParams {
  double ops_per_endpoint_per_sec = 8.0;
  double read_fraction = 0.5;
  /// Fraction of operations targeting a file on another segment.
  double cross_segment_fraction = 0.25;
  SimDuration duration = sec(5);
};

/// One operation that crossed segments (or its reply riding back).
struct FleetMsg {
  enum class Kind : std::uint8_t { kPut, kGet, kPutReply, kGetReply };
  Kind kind = Kind::kGet;
  std::uint32_t origin = 0;  ///< Segment the op originated at.
  std::uint64_t op_id = 0;   ///< Origin-local id.
  FileId file = 0;
  SimTime issued_at = 0;  ///< Echoed through the reply for latency.
  std::string content;    ///< Put payload.
  double meta = 0.0;
  bool ok = false;             ///< Reply: operation outcome.
  std::uint64_t value_digest = 0;  ///< Reply: digest of the read value.
};

struct FleetStats {
  std::uint64_t local_ops = 0;    ///< Executed on the issuing segment.
  std::uint64_t remote_ops = 0;   ///< Shipped over the conveyor.
  std::uint64_t replies = 0;      ///< Remote completions received back.
  SimDuration remote_latency_total = 0;  ///< Sum of remote round trips.
  /// Order-sensitive digest over every remote completion (op id, outcome,
  /// value digest) — byte-equal across thread counts by contract.
  std::uint64_t op_digest = 0;
  ConveyorStats conveyor;
  WorkerPoolStats pool;
};

class ShardedFleet {
 public:
  /// `config.endpoints` is the fleet-wide endpoint count, split across
  /// `config.runtime.effective_segments()` segments (remainder endpoints
  /// go to the lowest segments).  Each segment derives its own seed from
  /// the deployment seed, so the fleet's behavior depends on the segment
  /// count but never on `config.runtime.threads`.
  explicit ShardedFleet(shard::ShardedClusterConfig config);
  ~ShardedFleet();

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  // ------------------------------------------------------------------
  // Setup (before run)
  // ------------------------------------------------------------------

  /// Place files first..first+count-1, each on the segment its id hashes
  /// to (then on that segment's own ring).
  void place(FileId first, std::uint32_t count);

  /// Install the open-loop workload (call once, before running).
  void set_workload(FleetWorkloadParams params);

  /// Schedule `fn` against a segment's cluster at sim time `t`; it runs
  /// inside the owning worker's epoch task, so it may freely mutate the
  /// segment (crash/restart/churn scenarios in tests and benches).
  void schedule_on(std::uint32_t segment, SimTime t,
                   std::function<void(shard::ShardedCluster&)> fn);

  // ------------------------------------------------------------------
  // Time
  // ------------------------------------------------------------------

  void run_for(SimDuration d) { psim_->run_for(d); }
  void run_until(SimTime t) { psim_->run_until(t); }
  [[nodiscard]] SimTime now() const { return psim_->now(); }

  // ------------------------------------------------------------------
  // Results (between runs / after the run)
  // ------------------------------------------------------------------

  /// Order-sensitive per-endpoint content digests, keyed by the global
  /// endpoint id (segment-major).  The oracle equality check's subject.
  [[nodiscard]] std::vector<std::pair<NodeId, std::uint64_t>>
  endpoint_digests();

  /// Per-type wire message counts summed across segments.
  [[nodiscard]] std::map<std::string, std::uint64_t> message_counts() const;

  /// Byte-deterministic metrics JSON: every segment's observability
  /// export, concatenated in segment order.  Empty when observability is
  /// off in the config.
  [[nodiscard]] std::string metrics_json() const;

  /// Files converged across their whole group, fleet-wide.
  [[nodiscard]] std::size_t converged_files();

  [[nodiscard]] FleetStats stats() const;

  // ------------------------------------------------------------------
  // Topology
  // ------------------------------------------------------------------

  [[nodiscard]] std::uint32_t segments() const;
  [[nodiscard]] shard::ShardedCluster& segment(std::uint32_t s);
  [[nodiscard]] std::uint32_t segment_of_file(FileId file) const;
  /// Endpoints hosted by segment `s` (their global ids are offset(s) +
  /// local id).
  [[nodiscard]] std::uint32_t segment_endpoints(std::uint32_t s) const;
  [[nodiscard]] NodeId global_endpoint(std::uint32_t s, NodeId local) const;
  [[nodiscard]] const RuntimeOptions& runtime() const {
    return config_.runtime;
  }

 private:
  class Segment;  // the Partition implementation

  shard::ShardedClusterConfig config_;
  std::vector<std::unique_ptr<Segment>> segments_;
  std::unique_ptr<Conveyor<FleetMsg>> conveyor_;
  std::unique_ptr<WorkerPool> pool_;
  std::unique_ptr<ParallelSimulator> psim_;
};

}  // namespace idea::runtime
