#pragma once
/// \file parallel_sim.hpp
/// \brief Epoch-barrier parallel driver over partitioned simulations.
///
/// A ParallelSimulator advances a set of Partitions — independent
/// discrete-event domains, each owning its own sim::Simulator — in
/// lockstep epochs: within [T, T+epoch) every partition runs its own
/// events in the canonical sequential order, and anything that must cross
/// partitions is handed over *at the epoch edge only* (the conveyor's
/// flush instant).  That yields the determinism contract the oracle mode
/// checks: all events at time <= T execute before any event > T is
/// visible across partitions, so the merged history is a function of the
/// model alone, never of thread scheduling.
///
/// The pool's barrier brackets each epoch on both sides; a partition's
/// state is touched by exactly one thread per epoch (whichever worker ran
/// its task — stealing migrates partitions between workers only across
/// barriers).

#include <cstdint>
#include <vector>

#include "runtime/worker_pool.hpp"
#include "util/time.hpp"

namespace idea::runtime {

/// One worker-owned shard domain.  All three hooks run on the executing
/// worker's thread; begin/run/end for one partition are always called in
/// order within an epoch, with pool barriers between epochs.
class Partition {
 public:
  virtual ~Partition() = default;

  /// Start of an epoch: drain inbound conveyor packets, scheduling their
  /// deliveries at times >= `start`.
  virtual void begin_epoch(SimTime start, std::uint64_t epoch) = 0;

  /// Run local events with time <= `end`; advance the local clock to it.
  virtual void run_until(SimTime end) = 0;

  /// End of an epoch: seal outbound packets stamped with `epoch`.
  virtual void end_epoch(SimTime end, std::uint64_t epoch) = 0;
};

class ParallelSimulator {
 public:
  /// `pool` and `partitions` are borrowed and must outlive the driver.
  ParallelSimulator(WorkerPool& pool, std::vector<Partition*> partitions,
                    SimDuration epoch_length);

  /// Advance every partition to exactly `t`, one barrier per epoch.
  void run_until(SimTime t);
  void run_for(SimDuration d) { run_until(now_ + d); }

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::uint64_t epochs() const { return epoch_; }
  [[nodiscard]] WorkerPool& pool() { return pool_; }

 private:
  WorkerPool& pool_;
  std::vector<Partition*> partitions_;
  const SimDuration epoch_length_;
  SimTime now_ = 0;
  std::uint64_t epoch_ = 0;
};

}  // namespace idea::runtime
