#include "runtime/worker_pool.hpp"

#include <cassert>

namespace idea::runtime {

WorkerPool::WorkerPool(std::uint32_t threads)
    : threads_(threads == 0 ? 1 : threads) {
  deques_.reserve(threads_);
  for (std::uint32_t w = 0; w < threads_; ++w) {
    deques_.push_back(std::make_unique<WorkStealingDeque>(256));
  }
  spawned_.reserve(threads_ - 1);
  for (std::uint32_t w = 1; w < threads_; ++w) {
    spawned_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(mu_);
    shutdown_ = true;
    ++generation_;
  }
  cv_start_.notify_all();
  for (std::thread& t : spawned_) t.join();
}

void WorkerPool::run_tasks(std::uint32_t task_count, const TaskBody& body) {
  ++stats_.batches;
  stats_.tasks_run += task_count;
  if (task_count == 0) return;

  if (threads_ == 1) {
    // Degenerate pool: the deterministic sequential schedule (ascending
    // task order on the calling thread) — the oracle mode's execution.
    for (std::uint32_t t = 0; t < task_count; ++t) body(t, 0);
    return;
  }

  // Grow deques when a batch could overflow them.  All workers are parked
  // and the pushes below happen-before they wake (via mu_), so replacing
  // the deques here is race-free.
  const std::size_t per_worker = task_count / threads_ + 2;
  if (per_worker > deque_capacity_) {
    deque_capacity_ = per_worker;
    for (auto& d : deques_) {
      d = std::make_unique<WorkStealingDeque>(deque_capacity_);
    }
  }

  // Seed: task i goes to deque i % threads.  LIFO pops mean worker w runs
  // its own tasks in descending order; cross-task order is unspecified by
  // contract, so the distribution only matters for balance.
  for (std::uint32_t t = 0; t < task_count; ++t) {
    deques_[t % threads_]->push(t);
  }

  {
    // Wait until every spawned worker is parked: always true between
    // batches (the tail wait below), but freshly spawned workers may not
    // have reached their first park yet.
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [this] { return parked_ == threads_ - 1; });
    body_ = &body;
    remaining_.store(static_cast<std::int64_t>(task_count),
                     std::memory_order_release);
    ++generation_;
    parked_ = 0;
  }
  cv_start_.notify_all();

  work(0);  // the caller is worker 0

  // Wait for every spawned worker to park again: after this, no thread
  // touches the deques or `body` until the next batch.
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return parked_ == threads_ - 1; });
  body_ = nullptr;
}

void WorkerPool::worker_loop(std::uint32_t worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock lock(mu_);
      ++parked_;
      cv_done_.notify_one();
      cv_start_.wait(lock, [this, seen_generation] {
        return generation_ != seen_generation;
      });
      seen_generation = generation_;
      if (shutdown_) return;
    }
    work(worker);
  }
}

void WorkerPool::work(std::uint32_t worker) {
  const TaskBody& body = *body_;
  std::uint64_t steals = 0;
  while (true) {
    const std::uint32_t task = find_task(worker, &steals);
    if (task == WorkStealingDeque::kEmpty) {
      if (remaining_.load(std::memory_order_acquire) == 0) break;
      std::this_thread::yield();  // tasks in flight elsewhere
      continue;
    }
    body(task, worker);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (steals > 0) {
    std::lock_guard lock(mu_);
    stats_.steals += steals;
  }
}

std::uint32_t WorkerPool::find_task(std::uint32_t worker,
                                    std::uint64_t* steals) {
  const std::uint32_t own = deques_[worker]->pop();
  if (own != WorkStealingDeque::kEmpty) return own;
  for (std::uint32_t i = 1; i < threads_; ++i) {
    const std::uint32_t victim = (worker + i) % threads_;
    const std::uint32_t stolen = deques_[victim]->steal();
    if (stolen != WorkStealingDeque::kEmpty) {
      ++*steals;
      return stolen;
    }
  }
  return WorkStealingDeque::kEmpty;
}

}  // namespace idea::runtime
