#pragma once
/// \file worker_pool.hpp
/// \brief Fixed pool of worker threads with per-worker work-stealing
///        deques, driven in barrier-synchronized batches.
///
/// The pool executes *batches*: run_tasks(N, body) distributes task ids
/// 0..N-1 round-robin across the workers' deques, wakes every thread, and
/// returns only when all N tasks ran and every worker parked again — a
/// full barrier on both sides, so the caller may mutate shared state
/// between batches without fences of its own.  Within a batch, a worker
/// drains its own deque LIFO and steals FIFO from the others when dry, so
/// unevenly sized tasks (hot segments) load-balance automatically.
///
/// The calling thread participates as worker 0; a pool built with
/// `threads == 1` spawns nothing and runs every task inline in ascending
/// order — the degenerate case is the deterministic sequential schedule
/// the oracle mode relies on.
///
/// Tasks must be independent: the pool guarantees nothing about cross-task
/// ordering within a batch beyond "all complete before run_tasks returns".

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/work_stealing.hpp"

namespace idea::runtime {

struct WorkerPoolStats {
  std::uint64_t batches = 0;    ///< run_tasks calls.
  std::uint64_t tasks_run = 0;  ///< Tasks executed across all batches.
  std::uint64_t steals = 0;     ///< Tasks obtained from another deque.
};

class WorkerPool {
 public:
  /// Task body: (task id, executing worker id).
  using TaskBody = std::function<void(std::uint32_t, std::uint32_t)>;

  explicit WorkerPool(std::uint32_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::uint32_t threads() const { return threads_; }

  /// Execute tasks 0..task_count-1, blocking until all completed and all
  /// workers parked.  `body` may be invoked concurrently from different
  /// threads for different tasks.
  void run_tasks(std::uint32_t task_count, const TaskBody& body);

  [[nodiscard]] const WorkerPoolStats& stats() const { return stats_; }

 private:
  void worker_loop(std::uint32_t worker);
  /// Drain deques (own first, then steal) until the batch completes.
  void work(std::uint32_t worker);
  /// Own pop, then round-robin steal.  kEmpty when nothing is runnable.
  std::uint32_t find_task(std::uint32_t worker, std::uint64_t* steals);

  const std::uint32_t threads_;
  std::vector<std::unique_ptr<WorkStealingDeque>> deques_;
  std::size_t deque_capacity_ = 256;  ///< Current per-deque capacity.

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;   ///< Bumped per batch (guarded by mu_).
  const TaskBody* body_ = nullptr; ///< Current batch body (guarded by mu_).
  std::uint32_t parked_ = 0;       ///< Spawned workers waiting (guarded).
  bool shutdown_ = false;
  std::atomic<std::int64_t> remaining_{0};  ///< Tasks not yet completed.

  WorkerPoolStats stats_;
  std::vector<std::thread> spawned_;  ///< Workers 1..threads_-1.
};

}  // namespace idea::runtime
