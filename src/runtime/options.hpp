#pragma once
/// \file options.hpp
/// \brief Multicore runtime knobs (dependency-free so shard/ can embed
///        them; consumed by runtime::ShardedFleet).

#include <cstdint>

#include "util/time.hpp"

namespace idea::runtime {

/// How a deployment executes.  `threads == 1` (the default) is the
/// determinism oracle: the whole epoch protocol runs inline on the
/// calling thread through the existing single-threaded sim::Simulator
/// kernels — nothing is spawned, nothing is atomic-contended, and the
/// schedule is the canonical sequential one.  `threads > 1` executes the
/// same epoch protocol on a work-stealing WorkerPool; a fixed-seed run
/// must produce byte-identical digests, message counts and metrics JSON
/// in both modes (tests/runtime/ enforces it).
struct RuntimeOptions {
  /// Worker threads (the caller participates as worker 0).
  std::uint32_t threads = 1;
  /// Ring segments the endpoint space is partitioned into — the unit of
  /// work stealing and of replica-group confinement (every group lives
  /// entirely inside one segment, so endpoint-local state never needs
  /// locks).  0 derives max(threads, 1).  Note results depend on the
  /// segment count (it shapes the ring) but never on `threads`.
  std::uint32_t segments = 0;
  /// Epoch length: the barrier cadence.  All events at time <= T execute
  /// before any event > T becomes visible across segments; cross-segment
  /// messages flush at epoch edges (conveyor semantics).
  SimDuration epoch = msec(50);
  /// Modeled one-way latency of a cross-segment hop, applied before the
  /// delivery is rounded up to the next epoch edge.
  SimDuration hop_latency = msec(20);

  [[nodiscard]] std::uint32_t effective_segments() const {
    if (segments != 0) return segments;
    return threads == 0 ? 1 : threads;
  }
};

}  // namespace idea::runtime
