#include "runtime/parallel_sim.hpp"

#include <algorithm>
#include <cassert>

namespace idea::runtime {

ParallelSimulator::ParallelSimulator(WorkerPool& pool,
                                     std::vector<Partition*> partitions,
                                     SimDuration epoch_length)
    : pool_(pool),
      partitions_(std::move(partitions)),
      epoch_length_(epoch_length) {
  assert(epoch_length_ > 0);
}

void ParallelSimulator::run_until(SimTime t) {
  while (now_ < t) {
    const SimTime start = now_;
    const SimTime end = std::min(now_ + epoch_length_, t);
    const std::uint64_t epoch = epoch_;
    pool_.run_tasks(
        static_cast<std::uint32_t>(partitions_.size()),
        [this, start, end, epoch](std::uint32_t task, std::uint32_t) {
          Partition* p = partitions_[task];
          p->begin_epoch(start, epoch);
          p->run_until(end);
          p->end_epoch(end, epoch);
        });
    now_ = end;
    ++epoch_;
  }
}

}  // namespace idea::runtime
