#pragma once
/// \file conveyor.hpp
/// \brief Cross-worker packet pipeline: per-(segment,segment) batching of
///        messages, flushed at epoch boundaries over SPSC lanes.
///
/// This is the thread-tier mirror of net::BatchingTransport's per-pair
/// wire coalescing, patterned on the micmac0 node runtime's conveyor: a
/// message crossing segments is *accumulated* into the (src,dst) outbox
/// while the source's epoch task runs (plain vector — only the thread
/// executing src touches it), *sealed* into one packet per destination
/// when the task ends, and *drained* by the destination's task at the
/// start of a later epoch.  Each (src,dst) lane is an SPSC ring: at any
/// moment at most one thread runs the source's task (producer) and one
/// the destination's (consumer), and the epoch barrier orders hand-offs —
/// so the pipeline is lock-free end to end.
///
/// Determinism contract: the destination drains sources in ascending
/// segment order, packets per lane in FIFO order, and messages within a
/// packet in post order.  None of that depends on which worker thread ran
/// which task, which is exactly why a parallel run replays identically to
/// the sequential oracle.
///
/// A packet sealed in epoch E is visible to drains with `current > E` —
/// the epoch edge is the flush instant.  Packets never expire; a lane's
/// ring being full makes seal() spin-yield (the consumer drains every
/// epoch, so the wait is bounded by one epoch in practice; counted in
/// stats().lane_stalls).

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/spsc_queue.hpp"

namespace idea::runtime {

struct ConveyorStats {
  std::uint64_t messages = 0;      ///< Messages posted across all lanes.
  std::uint64_t packets = 0;       ///< Packets sealed.
  std::uint64_t drained = 0;       ///< Packets delivered.
  std::uint64_t lane_stalls = 0;   ///< seal() waits on a full lane.
  std::size_t max_packet = 0;      ///< Largest packet sealed.
};

template <typename T>
class Conveyor {
 public:
  struct Packet {
    std::uint64_t epoch = 0;
    std::uint32_t src = 0;
    std::vector<T> msgs;
  };

  explicit Conveyor(std::uint32_t segments, std::size_t lane_capacity = 64)
      : segments_(segments) {
    outboxes_.resize(static_cast<std::size_t>(segments_) * segments_);
    lanes_.reserve(outboxes_.size());
    for (std::size_t i = 0; i < outboxes_.size(); ++i) {
      lanes_.push_back(std::make_unique<SpscQueue<Packet>>(lane_capacity));
    }
    stats_by_src_.resize(segments_);
  }

  [[nodiscard]] std::uint32_t segments() const { return segments_; }

  /// Accumulate a message from src's running epoch task.  Only the thread
  /// executing src's task may call this.
  void post(std::uint32_t src, std::uint32_t dst, T msg) {
    outboxes_[lane_index(src, dst)].push_back(std::move(msg));
    ++stats_by_src_[src].messages;
  }

  /// Seal src's non-empty outboxes into one packet per destination,
  /// stamped with `epoch`.  Called by src's task as it ends.
  void seal(std::uint32_t src, std::uint64_t epoch) {
    for (std::uint32_t dst = 0; dst < segments_; ++dst) {
      std::vector<T>& box = outboxes_[lane_index(src, dst)];
      if (box.empty()) continue;
      ConveyorStats& s = stats_by_src_[src];
      ++s.packets;
      if (box.size() > s.max_packet) s.max_packet = box.size();
      Packet pkt{epoch, src, std::move(box)};
      box.clear();
      SpscQueue<Packet>& lane = *lanes_[lane_index(src, dst)];
      while (!lane.try_push(std::move(pkt))) {
        ++s.lane_stalls;
        std::this_thread::yield();
      }
    }
  }

  /// Deliver to dst every packet sealed in an epoch < `current`, sources
  /// in ascending order, packets FIFO per lane.  Called by dst's task as
  /// it begins.  The handler receives (src segment, sealed epoch, msgs).
  void drain(std::uint32_t dst, std::uint64_t current,
             const std::function<void(std::uint32_t, std::uint64_t,
                                      std::vector<T>&)>& handler) {
    for (std::uint32_t src = 0; src < segments_; ++src) {
      SpscQueue<Packet>& lane = *lanes_[lane_index(src, dst)];
      Packet pkt;
      while (lane.try_pop_if(
          [current](const Packet& p) { return p.epoch < current; }, pkt)) {
        ++stats_by_src_[dst].drained;
        handler(src, pkt.epoch, pkt.msgs);
      }
    }
  }

  /// Whether every lane and outbox is empty.  Only meaningful between
  /// batches (at the barrier).
  [[nodiscard]] bool idle() const {
    for (const auto& lane : lanes_) {
      if (lane->size() != 0) return false;
    }
    for (const auto& box : outboxes_) {
      if (!box.empty()) return false;
    }
    return true;
  }

  /// Aggregate stats (sum over the per-segment shards; call at a barrier).
  [[nodiscard]] ConveyorStats stats() const {
    ConveyorStats total;
    for (const ConveyorStats& s : stats_by_src_) {
      total.messages += s.messages;
      total.packets += s.packets;
      total.drained += s.drained;
      total.lane_stalls += s.lane_stalls;
      if (s.max_packet > total.max_packet) total.max_packet = s.max_packet;
    }
    return total;
  }

 private:
  [[nodiscard]] std::size_t lane_index(std::uint32_t src,
                                       std::uint32_t dst) const {
    return static_cast<std::size_t>(src) * segments_ + dst;
  }

  const std::uint32_t segments_;
  /// Accumulators, row-owned: outboxes_[src*S+dst] is touched only by the
  /// thread running src's epoch task.
  std::vector<std::vector<T>> outboxes_;
  std::vector<std::unique_ptr<SpscQueue<Packet>>> lanes_;
  /// Stats sharded by segment (writer: the thread running that segment's
  /// task; drained is accounted at the destination).  Aggregated lazily.
  std::vector<ConveyorStats> stats_by_src_;
};

}  // namespace idea::runtime
