#pragma once
/// \file work_stealing.hpp
/// \brief Chase-Lev work-stealing deque (bounded, POD payloads).
///
/// Each pool worker owns one deque: it pushes and pops its own tasks at
/// the bottom (LIFO, cache-warm), idle workers steal from the top (FIFO,
/// oldest task — the one least likely to share cache lines with what the
/// owner is about to run).  The memory-order discipline follows Lê,
/// Pop, Cohen & Nardelli, "Correct and Efficient Work-Stealing for Weak
/// Memory Models" (PPoPP'13): the owner's pop and a thief's steal race on
/// `top` with a seq_cst CAS; everything else is acquire/release.
///
/// The payload is a 32-bit task index (segments, not closures), so a slot
/// is trivially copyable and the ABA-free generation tricks closures need
/// do not apply.  Capacity is fixed at construction — the pool sizes the
/// deque to the epoch's task count, so overflow cannot happen in use; a
/// debug assert guards the invariant.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

namespace idea::runtime {

class WorkStealingDeque {
 public:
  static constexpr std::uint32_t kEmpty = UINT32_MAX;

  explicit WorkStealingDeque(std::size_t min_capacity = 256) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    buffer_ = std::make_unique<std::atomic<std::uint32_t>[]>(cap);
    mask_ = cap - 1;
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner: push a task at the bottom.
  void push(std::uint32_t task) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    assert(b - t <= static_cast<std::int64_t>(mask_) &&
           "WorkStealingDeque overflow: size the deque to the task count");
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        task, std::memory_order_relaxed);
    // Publish the slot before the new bottom becomes visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner: pop the most recently pushed task.  kEmpty when drained.
  std::uint32_t pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {  // already empty: restore bottom
      bottom_.store(b + 1, std::memory_order_relaxed);
      return kEmpty;
    }
    std::uint32_t task =
        buffer_[static_cast<std::size_t>(b) & mask_].load(
            std::memory_order_relaxed);
    if (t != b) return task;  // more than one element: no race possible
    // Last element: race the thieves for it with the same CAS they use.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = kEmpty;  // a thief got it
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return task;
  }

  /// Thief: steal the oldest task.  kEmpty when nothing was stolen
  /// (empty deque or a lost race — the caller just tries another victim).
  std::uint32_t steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return kEmpty;
    const std::uint32_t task =
        buffer_[static_cast<std::size_t>(t) & mask_].load(
            std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return kEmpty;  // lost to the owner or another thief
    }
    return task;
  }

  /// Racy size estimate (diagnostics only).
  [[nodiscard]] std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  std::unique_ptr<std::atomic<std::uint32_t>[]> buffer_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
};

}  // namespace idea::runtime
