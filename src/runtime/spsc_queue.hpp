#pragma once
/// \file spsc_queue.hpp
/// \brief Bounded lock-free single-producer/single-consumer ring buffer.
///
/// The conveyor's cross-worker packet lanes are SPSC by construction: for
/// a given (source segment, destination segment) lane, at most one thread
/// runs the source's epoch task (producing packets) and at most one runs
/// the destination's (consuming them), and the epoch barrier orders the
/// hand-off.  A lock-free ring is all that is needed — the producer owns
/// `tail_`, the consumer owns `head_`, and each publishes with a release
/// store the other side acquires.
///
/// Capacity is fixed at construction (rounded up to a power of two).  A
/// full ring rejects the push — the conveyor falls back to an overflow
/// packet in that (rare) case rather than blocking an epoch task.

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace idea::runtime {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t min_capacity = 64) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    ring_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side.  Returns false when the ring is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    ring_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    out = std::move(ring_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pop only if the head element satisfies `pred`.  Lets
  /// the conveyor drain exactly the packets sealed in earlier epochs while
  /// the producer may already be appending the current epoch's packets
  /// behind them (FIFO order makes the predicate a prefix test).
  template <typename Pred>
  bool try_pop_if(Pred&& pred, T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    T& slot = ring_[head & mask_];
    if (!pred(static_cast<const T&>(slot))) return false;
    out = std::move(slot);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called from either endpoint's
  /// thread between its own operations).
  [[nodiscard]] std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> ring_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< Consumer cursor.
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< Producer cursor.
};

}  // namespace idea::runtime
