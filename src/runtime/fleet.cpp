#include "runtime/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "client/session.hpp"
#include "replica/store.hpp"
#include "util/rng.hpp"

namespace idea::runtime {

namespace {

/// FNV-1a over a byte string (explicit, so digests never depend on the
/// standard library's std::hash).
std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t read_value_digest(const client::ReadResult& r) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  if (r.updates != nullptr) {
    for (const replica::Update& u : *r.updates) {
      h = mix64(h ^ (static_cast<std::uint64_t>(u.key.writer) << 32 ^
                     u.key.seq));
      h = fnv1a(h, u.content);
    }
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------
// Segment: one ring slice — a full ShardedCluster plus the client tier
// that originates fleet operations.  Implements Partition; every method
// below runs on whichever worker thread owns the segment's epoch task.
// ---------------------------------------------------------------------

class ShardedFleet::Segment final : public Partition {
 public:
  Segment(ShardedFleet& fleet, std::uint32_t index, NodeId offset,
          shard::ShardedClusterConfig cfg)
      : fleet_(fleet),
        index_(index),
        offset_(offset),
        endpoints_(cfg.endpoints),
        cluster_(std::make_unique<shard::ShardedCluster>(std::move(cfg))),
        rng_(mix64(cluster_->config().seed ^ 0xF1EE70000ull ^ index)) {
    client_ = std::make_unique<client::Client>(*cluster_);
    session_ = std::make_unique<client::ClientSession>(
        client_->session(client::SessionOptions{}));
  }

  // ----------------------------------------------------------------
  // Partition
  // ----------------------------------------------------------------

  void begin_epoch(SimTime start, std::uint64_t epoch) override {
    // The pool barrier synchronized the hand-off; stamp the new owner.
    cluster_->sim().rebind_owner_thread();
    cluster_->transport().rebind_owner_thread();
    const SimDuration hop = fleet_.config_.runtime.hop_latency;
    fleet_.conveyor_->drain(
        index_, epoch,
        [&](std::uint32_t, std::uint64_t, std::vector<FleetMsg>& msgs) {
          for (FleetMsg& m : msgs) {
            // Cross-segment delivery lands at a deterministic instant:
            // the modeled hop, rounded up to this epoch's edge.
            const SimTime at = std::max(start, m.issued_at + hop);
            cluster_->sim().schedule_at(
                at, [this, msg = std::move(m)]() mutable { on_msg(msg); });
          }
        });
  }

  void run_until(SimTime end) override { cluster_->run_until(end); }

  void end_epoch(SimTime, std::uint64_t epoch) override {
    fleet_.conveyor_->seal(index_, epoch);
  }

  // ----------------------------------------------------------------
  // Workload (issuing side)
  // ----------------------------------------------------------------

  void arm_workload(const FleetWorkloadParams& params) {
    params_ = params;
    workload_end_ = cluster_->sim().now() + params.duration;
    const double rate =
        params.ops_per_endpoint_per_sec * static_cast<double>(endpoints_);
    if (rate <= 0.0) return;
    mean_gap_us_ = 1e6 / rate;
    schedule_next_op(cluster_->sim().now() + next_gap());
  }

  void on_msg(FleetMsg& m) {
    switch (m.kind) {
      case FleetMsg::Kind::kPut: {
        auto h = session_->put(m.file, std::move(m.content), m.meta);
        FleetMsg reply;
        reply.kind = FleetMsg::Kind::kPutReply;
        reply.origin = m.origin;
        reply.op_id = m.op_id;
        reply.file = m.file;
        reply.issued_at = m.issued_at;
        reply.ok = h.ok();
        post_reply(std::move(reply));
        break;
      }
      case FleetMsg::Kind::kGet: {
        auto h = session_->read(m.file);
        FleetMsg reply;
        reply.kind = FleetMsg::Kind::kGetReply;
        reply.origin = m.origin;
        reply.op_id = m.op_id;
        reply.file = m.file;
        reply.issued_at = m.issued_at;
        reply.ok = h.ok();
        if (h.ok()) reply.value_digest = read_value_digest(h.value());
        post_reply(std::move(reply));
        break;
      }
      case FleetMsg::Kind::kPutReply:
      case FleetMsg::Kind::kGetReply: {
        ++replies_;
        remote_latency_total_ += cluster_->sim().now() - m.issued_at;
        op_digest_ = mix64(op_digest_ ^ mix64(m.op_id * 0x9E3779B97F4A7C15ull) ^
                           (m.ok ? 0x5A5Aull : 0xA5A5ull) ^ m.value_digest);
        break;
      }
    }
  }

  // Accessors used by the fleet (between runs — the barrier makes the
  // segment quiescent).  Const-qualified but returning a mutable ref:
  // digests/metrics walks need non-const cluster entry points.
  [[nodiscard]] shard::ShardedCluster& cluster() const { return *cluster_; }
  [[nodiscard]] NodeId offset() const { return offset_; }
  [[nodiscard]] std::uint32_t endpoints() const { return endpoints_; }
  [[nodiscard]] const std::vector<FileId>& files() const { return files_; }
  void add_file(FileId f) { files_.push_back(f); }
  [[nodiscard]] std::uint64_t local_ops() const { return local_ops_; }
  [[nodiscard]] std::uint64_t remote_ops() const { return remote_ops_; }
  [[nodiscard]] std::uint64_t replies() const { return replies_; }
  [[nodiscard]] SimDuration remote_latency_total() const {
    return remote_latency_total_;
  }
  [[nodiscard]] std::uint64_t op_digest() const { return op_digest_; }

 private:
  [[nodiscard]] SimDuration next_gap() {
    const double gap = rng_.exponential(mean_gap_us_);
    return std::max<SimDuration>(1, static_cast<SimDuration>(gap));
  }

  void schedule_next_op(SimTime when) {
    if (when >= workload_end_) return;
    cluster_->sim().schedule_at(when, [this, when] {
      issue_op();
      schedule_next_op(when + next_gap());
    });
  }

  void issue_op() {
    const bool is_read = rng_.chance(params_.read_fraction);
    const std::uint32_t total_segments = fleet_.segments();
    const bool cross = total_segments > 1 &&
                       rng_.chance(params_.cross_segment_fraction);
    std::uint32_t target = index_;
    if (cross) {
      target = static_cast<std::uint32_t>(
          rng_.next_below(total_segments - 1));
      if (target >= index_) ++target;
    }
    const std::vector<FileId>& candidates = fleet_.segments_[target]->files();
    if (candidates.empty()) return;
    const FileId file =
        candidates[static_cast<std::size_t>(rng_.next_below(
            candidates.size()))];
    const std::uint64_t op_id = next_op_id_++;
    if (!cross) {
      ++local_ops_;
      if (is_read) {
        auto h = session_->read(file);
        if (h.ok()) {
          op_digest_ =
              mix64(op_digest_ ^ mix64(op_id) ^ read_value_digest(h.value()));
        }
      } else {
        (void)session_->put(file, op_content(op_id), 1.0);
      }
      return;
    }
    ++remote_ops_;
    FleetMsg m;
    m.kind = is_read ? FleetMsg::Kind::kGet : FleetMsg::Kind::kPut;
    m.origin = index_;
    m.op_id = op_id;
    m.file = file;
    m.issued_at = cluster_->sim().now();
    if (!is_read) {
      m.content = op_content(op_id);
      m.meta = 1.0;
    }
    fleet_.conveyor_->post(index_, target, std::move(m));
  }

  [[nodiscard]] std::string op_content(std::uint64_t op_id) const {
    return "s" + std::to_string(index_) + ":" + std::to_string(op_id);
  }

  void post_reply(FleetMsg reply) {
    // Replies to the segment's own ops short-circuit (a local op never
    // builds a FleetMsg, but keep the invariant anyway).
    if (reply.origin == index_) {
      on_msg(reply);
      return;
    }
    fleet_.conveyor_->post(index_, reply.origin, std::move(reply));
  }

  ShardedFleet& fleet_;
  const std::uint32_t index_;
  const NodeId offset_;
  const std::uint32_t endpoints_;
  std::unique_ptr<shard::ShardedCluster> cluster_;
  std::unique_ptr<client::Client> client_;
  std::unique_ptr<client::ClientSession> session_;
  Rng rng_;  ///< Per-segment stream: issuance identical at any threads.
  std::vector<FileId> files_;  ///< Placed here, ascending.

  FleetWorkloadParams params_;
  SimTime workload_end_ = 0;
  double mean_gap_us_ = 0.0;
  std::uint64_t next_op_id_ = 1;
  std::uint64_t local_ops_ = 0;
  std::uint64_t remote_ops_ = 0;
  std::uint64_t replies_ = 0;
  SimDuration remote_latency_total_ = 0;
  std::uint64_t op_digest_ = 0;
};

// ---------------------------------------------------------------------
// ShardedFleet
// ---------------------------------------------------------------------

ShardedFleet::ShardedFleet(shard::ShardedClusterConfig config)
    : config_(std::move(config)) {
  const std::uint32_t segs = config_.runtime.effective_segments();
  assert(segs > 0 && config_.endpoints >= segs &&
         "need at least one endpoint per segment");
  conveyor_ = std::make_unique<Conveyor<FleetMsg>>(segs);
  const std::uint32_t base = config_.endpoints / segs;
  const std::uint32_t extra = config_.endpoints % segs;
  NodeId offset = 0;
  for (std::uint32_t s = 0; s < segs; ++s) {
    shard::ShardedClusterConfig seg_cfg = config_;
    seg_cfg.endpoints = base + (s < extra ? 1 : 0);
    // Independent per-segment streams: the fleet's behavior is a function
    // of (seed, segment count), never of the thread count.
    seg_cfg.seed = mix64(config_.seed ^ (0x5E63E47ull + s));
    seg_cfg.transport.seed = mix64(seg_cfg.seed ^ 0x77ull);
    seg_cfg.sync_sizes();
    segments_.push_back(
        std::make_unique<Segment>(*this, s, offset, std::move(seg_cfg)));
    offset += base + (s < extra ? 1 : 0);
  }
  pool_ = std::make_unique<WorkerPool>(config_.runtime.threads);
  std::vector<Partition*> parts;
  parts.reserve(segments_.size());
  for (auto& seg : segments_) parts.push_back(seg.get());
  psim_ = std::make_unique<ParallelSimulator>(*pool_, std::move(parts),
                                              config_.runtime.epoch);
}

ShardedFleet::~ShardedFleet() = default;

void ShardedFleet::place(FileId first, std::uint32_t count) {
  for (FileId f = first; f < first + count; ++f) {
    const std::uint32_t s = segment_of_file(f);
    segments_[s]->cluster().ensure_open(f);
    segments_[s]->add_file(f);
  }
}

void ShardedFleet::set_workload(FleetWorkloadParams params) {
  for (auto& seg : segments_) seg->arm_workload(params);
}

void ShardedFleet::schedule_on(
    std::uint32_t segment, SimTime t,
    std::function<void(shard::ShardedCluster&)> fn) {
  Segment* seg = segments_.at(segment).get();
  seg->cluster().sim().schedule_at(
      t, [seg, fn = std::move(fn)] { fn(seg->cluster()); });
}

std::vector<std::pair<NodeId, std::uint64_t>>
ShardedFleet::endpoint_digests() {
  std::vector<std::pair<NodeId, std::uint64_t>> out;
  for (auto& seg : segments_) {
    shard::ShardedCluster& cluster = seg->cluster();
    for (NodeId local = 0; local < cluster.size(); ++local) {
      if (!cluster.has_endpoint(local)) continue;
      std::uint64_t d = 0;
      for (const FileId f : seg->files()) {
        core::IdeaNode* replica = cluster.replica(f, local);
        if (replica != nullptr) {
          d ^= replica->store().content_digest() * mix64(f * 2654435761ull);
        }
      }
      out.emplace_back(seg->offset() + local, d);
    }
  }
  return out;
}

std::map<std::string, std::uint64_t> ShardedFleet::message_counts() const {
  std::map<std::string, std::uint64_t> merged;
  for (const auto& seg : segments_) {
    for (const auto& [name, count] : seg->cluster().wire_counters().by_type()) {
      merged[name] += count;
    }
  }
  return merged;
}

std::string ShardedFleet::metrics_json() const {
  std::string out = "{\n";
  bool any = false;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    obs::Observability* obs = segments_[s]->cluster().obs();
    if (obs == nullptr) continue;
    if (any) out += ",\n";
    any = true;
    out += "\"segment_" + std::to_string(s) +
           "\": " + obs->export_metrics_json();
  }
  out += "\n}\n";
  return out;
}

std::size_t ShardedFleet::converged_files() {
  std::size_t n = 0;
  for (auto& seg : segments_) {
    for (const FileId f : seg->files()) {
      if (seg->cluster().converged(f)) ++n;
    }
  }
  return n;
}

FleetStats ShardedFleet::stats() const {
  FleetStats s;
  for (const auto& seg : segments_) {
    s.local_ops += seg->local_ops();
    s.remote_ops += seg->remote_ops();
    s.replies += seg->replies();
    s.remote_latency_total += seg->remote_latency_total();
    s.op_digest = mix64(s.op_digest ^ seg->op_digest());
  }
  s.conveyor = conveyor_->stats();
  s.pool = pool_->stats();
  return s;
}

std::uint32_t ShardedFleet::segments() const {
  return static_cast<std::uint32_t>(segments_.size());
}

shard::ShardedCluster& ShardedFleet::segment(std::uint32_t s) {
  return segments_.at(s)->cluster();
}

std::uint32_t ShardedFleet::segment_of_file(FileId file) const {
  return static_cast<std::uint32_t>(mix64(0xF11E5ull ^ file) %
                                    segments_.size());
}

std::uint32_t ShardedFleet::segment_endpoints(std::uint32_t s) const {
  return segments_.at(s)->endpoints();
}

NodeId ShardedFleet::global_endpoint(std::uint32_t s, NodeId local) const {
  return segments_.at(s)->offset() + local;
}

}  // namespace idea::runtime
