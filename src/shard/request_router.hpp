#pragma once
/// \file request_router.hpp
/// \brief Policy-driven request routing: the single choke point between
///        client sessions and the sharded cluster.
///
/// The old ShardRouter hard-wired every read to the file's coordinator.
/// RequestRouter owns replica selection instead: a read arrives with a
/// declared client::ConsistencyLevel and an origin endpoint, and the
/// router decides which replica(s) serve it —
///
///  * Strong            — the coordinator, unconditionally;
///  * EventualNearest   — the replica with the lowest latency-model RTT
///                        from the client's origin;
///  * BoundedStaleness  — a nearby replica picked with the help of the
///                        freshness hints piggybacked on anti-entropy
///                        digests, served only after an exact check that
///                        it is within the declared TACT-style bound
///                        (versions behind the coordinator, age of the
///                        oldest missing update); otherwise the read
///                        escalates to the coordinator;
///  * Quorum            — fan out to r replicas (always including the
///                        coordinator, since writes ack at W = 1), merge
///                        their logs by version vector, return the
///                        freshest view.
///
/// The router is migration-aware: while a file's post-migration state
/// stream is still in flight, non-coordinator replicas of the new group
/// are cold, so policy reads are pinned to the already-warm new
/// coordinator until the window passes.
///
/// Writes still go to the file's coordinator (rank 0), whose
/// ReplicaSyncAgent pushes the update to the rest of the group; that path
/// is byte-identical to the old ShardRouter's, which is what keeps the
/// fixed-seed determinism goldens valid.  A write carrying a client
/// WriteConcern{w > 1} additionally waits for w - 1 peer acks before its
/// callback fires, and routes around crashed members with sloppy-quorum
/// hinted handoff (see write_with_concern).

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "client/consistency.hpp"
#include "obs/observability.hpp"
#include "replica/update.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::core {
class IdeaNode;
}

namespace idea::adapt {
class ConsistencyController;
}

namespace idea::shard {

class ShardedCluster;

struct RouterStats {
  std::uint64_t opens = 0;  ///< Placements created on demand.
  std::uint64_t writes = 0;
  std::uint64_t blocked_writes = 0;  ///< Writes refused mid-resolution.
  /// Writes coordinated by a lower-ranked member because rank 0 was
  /// crashed (rank space is multi-writer, so failover is safe).
  std::uint64_t failover_writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t closes = 0;
  // Per-policy read counts.
  std::uint64_t strong_reads = 0;
  std::uint64_t nearest_reads = 0;
  std::uint64_t bounded_reads = 0;
  std::uint64_t bounded_escalations = 0;  ///< Bound exceeded; coordinator.
  std::uint64_t quorum_reads = 0;
  /// Adaptive reads the controller served at a level other than the
  /// session's declared one.
  std::uint64_t adapted_reads = 0;
  std::uint64_t migration_window_reads = 0;  ///< Pinned to warm coordinator.
  std::uint64_t freshness_hints = 0;  ///< Hint-table updates ingested.
  /// Decayed hint entries overwritten or purged (see note_freshness).
  std::uint64_t expired_hints = 0;
  // Write concerns (zero until a client declares w > 1).
  std::uint64_t wack_writes = 0;    ///< Writes dispatched with w > 1.
  std::uint64_t sloppy_writes = 0;  ///< Writes where a hint counted to w.
  std::uint64_t hinted_writes = 0;  ///< Hints queued at stand-ins.
  /// Ops handled per coordinator endpoint (load-balance probe).
  std::map<NodeId, std::uint64_t> coordinator_ops;
  /// Reads served per endpoint (shows policy reads spreading off the
  /// coordinators).
  std::map<NodeId, std::uint64_t> reads_served_by;
};

/// Per-read routing context beyond the declared level: whether the
/// session opted into adaptive consistency, and which tenant it belongs
/// to (for SLO accounting).  Default-constructed = a static session,
/// whose routing is byte-identical to the pre-adaptive build.
struct ReadContext {
  bool adaptive = false;
  std::uint32_t tenant = 0;
};

class RequestRouter {
 public:
  explicit RequestRouter(ShardedCluster& cluster) : cluster_(cluster) {}

  RequestRouter(const RequestRouter&) = delete;
  RequestRouter& operator=(const RequestRouter&) = delete;

  // ------------------------------------------------------------------
  // Placement / lifecycle
  // ------------------------------------------------------------------

  /// The file's replica group (primary first) per the current ring.
  [[nodiscard]] std::vector<NodeId> group_of(FileId file) const;

  /// The endpoint coordinating the file (kNoNode on an empty ring).
  [[nodiscard]] NodeId coordinator_of(FileId file) const;

  /// Ensure the file is open on its whole replica group; returns the
  /// coordinator's replica stack (nullptr on an empty ring).
  core::IdeaNode* open(FileId file);

  /// Close the file on every group member.  Returns whether it was open.
  bool close(FileId file);

  /// The consistency level the coordinator currently attaches to the
  /// file; 1.0 for files that were never opened.
  [[nodiscard]] double level(FileId file) const;

  // ------------------------------------------------------------------
  // Data path
  // ------------------------------------------------------------------

  /// Route a write to the file's coordinator, which replicates it to the
  /// group.  Opens the file on first touch.  A traced write (`tc` active)
  /// has its replication fan-out recorded under `tc`'s trace.
  bool write(FileId file, std::string content, double meta_delta,
             const obs::TraceContext& tc = {});

  /// What one write-concern dispatch decided (issue-time view; the ack
  /// outcome arrives through the callback).
  struct WriteDispatch {
    bool applied = false;        ///< Coordinator applied the write.
    NodeId coordinator = kNoNode;
    std::uint32_t effective_w = 1;  ///< Concern resolved against the group.
    std::uint32_t hinted = 0;    ///< Crashed members hinted to stand-ins.
  };

  /// Completion of a write-concern write: `acks` is the coordinator-side
  /// count of confirmed group applies (local one included, hinted
  /// stand-ins NOT — add `hinted`); 0 means the write never applied.
  /// `coordinator` is the acting coordinator that ran the put.
  using WriteAckCallback = std::function<void(
      bool satisfied, std::uint32_t acks, std::uint32_t hinted,
      NodeId coordinator)>;

  /// Route a write under a client-declared WriteConcern.  Resolves w
  /// against the file's group, and when fewer than w members are alive
  /// performs a sloppy-quorum write: each crashed member the concern
  /// needs is covered by a hint durably queued at a live stand-in
  /// endpoint (counting toward w), to be drained back through
  /// anti-entropy when the member restarts.  `on_result` fires exactly
  /// once — possibly synchronously (w already covered at dispatch, or
  /// the write was blocked/unroutable).  With w resolving to 1 and no
  /// callback this is behavior-identical to write().
  WriteDispatch write_with_concern(FileId file, std::string content,
                                   double meta_delta,
                                   const client::WriteConcern& concern,
                                   WriteAckCallback on_result,
                                   const obs::TraceContext& tc = {});

  /// Route a read under `level` from a client attached at `origin`.
  /// Returns an empty result (ok() == false) on an empty ring.  A traced
  /// read (`tc` active) records serve/escalate/fan-out decision spans,
  /// and a traced read that observes staleness parks `tc` as the file's
  /// pending repair trace so the healing anti-entropy round joins the
  /// span tree.  When `ctx.adaptive` and the cluster runs a
  /// ConsistencyController, the controller's current per-file target
  /// overrides `level` (ReadResult::effective_level says what was
  /// actually served); every routed read — adaptive or not — feeds the
  /// controller's contention signals.
  [[nodiscard]] client::ReadResult read(FileId file,
                                        const client::ConsistencyLevel& level,
                                        NodeId origin,
                                        const obs::TraceContext& tc = {},
                                        const ReadContext& ctx = {});

  // ------------------------------------------------------------------
  // Routing inputs (fed by the shard layer)
  // ------------------------------------------------------------------

  /// Ingest a freshness hint: `endpoint`'s replica of `file` was observed
  /// holding `versions` total updates at `at` (piggybacked on the
  /// anti-entropy digest/repair exchange).  Guides bounded-staleness
  /// replica selection; the serve-time bound check stays exact.  Hints
  /// age out on the sim clock (config.freshness_hint_ttl): a decayed
  /// entry stops informing selection and is overwritten by the next
  /// observation even if that one shows fewer versions — version counts
  /// are only monotone within a replica incarnation.
  void note_freshness(FileId file, NodeId endpoint, std::uint64_t versions,
                      SimTime at);

  /// Last hinted version count for (file, endpoint); 0 if never hinted
  /// or if the hint has aged past the decay horizon.
  [[nodiscard]] std::uint64_t freshness_hint(FileId file,
                                             NodeId endpoint) const;

  /// Mark the file as mid-migration until `window_end`: its new
  /// non-coordinator replicas are cold while the state stream is in
  /// flight, so policy reads pin to the new coordinator.
  void note_migration(FileId file, SimTime window_end);

  [[nodiscard]] bool in_migration_window(FileId file) const;

  /// Drop per-file routing state (hints, migration window) on teardown.
  void forget_file(FileId file);

  /// Drop every hint recorded about `endpoint` across all files.  Called
  /// when the endpoint crashes: hints describe a replica incarnation
  /// whose volatile state just died, so consulting them after a restart
  /// would prefer a replica that holds none of the hinted versions.
  void forget_endpoint(NodeId endpoint);

  /// Round-trip estimate between a client origin and an endpoint under
  /// the cluster's latency model (mean, not sampled — routing must not
  /// perturb the simulation's RNG streams).  kNoNode origins model a
  /// client co-located with the endpoint it talks to.  Sessions use the
  /// same estimate for write-ack completion, so read and write
  /// latencies always speak the same distance model.
  [[nodiscard]] SimDuration rtt(NodeId origin, NodeId endpoint) const;

  [[nodiscard]] const RouterStats& stats() const { return stats_; }

 private:
  struct Freshness {
    std::uint64_t versions = 0;
    SimTime at = 0;
  };

  /// Whether the hint is still inside the decay horizon (always true
  /// when decay is disabled via freshness_hint_ttl = 0).
  [[nodiscard]] bool hint_live(const Freshness& f) const;

  /// The live hint for (file, endpoint); nullptr when absent or decayed.
  [[nodiscard]] const Freshness* find_hint(FileId file,
                                           NodeId endpoint) const;

  /// The policy's preferred serving replica among `members` (rank order,
  /// coordinator first).  `use_hints` biases selection toward replicas
  /// recently hinted fresh (bounded staleness); otherwise pure latency.
  [[nodiscard]] NodeId pick_replica(FileId file,
                                    const std::vector<NodeId>& members,
                                    NodeId origin, bool use_hints) const;

  /// Exact staleness of `endpoint`'s replica vs the coordinator at serve
  /// time: versions behind, and the age of the oldest missing update.
  void measure_staleness(core::IdeaNode& coordinator, core::IdeaNode& replica,
                         std::uint64_t& versions, SimDuration& age) const;

  [[nodiscard]] client::ReadResult serve_single(
      FileId file, NodeId endpoint, NodeId origin,
      const obs::TraceContext& tc = {});

  [[nodiscard]] client::ReadResult serve_quorum(
      FileId file, const std::vector<NodeId>& members, NodeId origin,
      std::uint32_t r, const obs::TraceContext& tc = {});

  /// The policy dispatch read() wraps: routes one read at an
  /// already-resolved level.  This is the pre-adaptive read() body,
  /// byte-identical for static sessions.
  [[nodiscard]] client::ReadResult route_read(
      FileId file, const client::ConsistencyLevel& level, NodeId origin,
      const obs::TraceContext& tc);

  /// The deployment's observability (nullptr when disabled).
  [[nodiscard]] obs::Observability* observability() const;

  ShardedCluster& cluster_;
  RouterStats stats_;
  std::unordered_map<FileId, std::unordered_map<NodeId, Freshness>> hints_;
  std::unordered_map<FileId, SimTime> migration_until_;
};

}  // namespace idea::shard
