#pragma once
/// \file sharded_cluster.hpp
/// \brief Multi-tenant deployment: N IdeaService endpoints, files placed
///        across them by consistent hashing.
///
/// The seed system runs one IDEA stack per file on a handful of nodes;
/// this layer is the production-scale arrangement the ROADMAP asks for.
/// A ShardedCluster stands up `endpoints` IdeaService endpoints over one
/// simulated transport (optionally wrapped in a BatchingTransport so the
/// routing fan-out coalesces per tick), and places every file on the
/// replica group the HashRing assigns it.  Each file's protocol stack is
/// scoped to its group through a rank-translating GroupTransport, so the
/// group forms the file's private RanSub tree / gossip mesh / top layer —
/// §4.1's per-file independence, now across thousands of tenants.
///
/// Elastic membership: add_endpoint()/remove_endpoint() recompute the
/// ring and migrate exactly the files whose replica group changed (the
/// set HashRing::rebalance quantifies).  A migrated file's group is
/// rebuilt on the new members — a fresh group epoch: overlay and detector
/// state restart, rank ids are reassigned by the new ring order — and its
/// state moves by streaming: the union of the old replicas' logs seeds
/// the new coordinator synchronously (its durable hand-off), which then
/// streams the batch to the other ranks as "shard.migrate" messages over
/// the new GroupTransport, subject to real latency and loss.  Anti-
/// entropy (config.anti_entropy_period) heals whatever the stream or the
/// regular replication pushes lose.

#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "adapt/controller.hpp"
#include "core/service.hpp"
#include "net/batching_transport.hpp"
#include "net/sim_transport.hpp"
#include "obs/observability.hpp"
#include "replica/checkpoint.hpp"
#include "replica/hint_store.hpp"
#include "runtime/options.hpp"
#include "shard/group_transport.hpp"
#include "shard/hash_ring.hpp"
#include "shard/replica_sync.hpp"
#include "shard/request_router.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"

namespace idea::shard {

struct ShardedClusterConfig {
  std::uint32_t endpoints = 8;    ///< Service endpoints to stand up.
  std::uint32_t replication = 3;  ///< Replica-group size k per file.
  HashRingParams ring;
  core::IdeaConfig idea;  ///< Template; group-scoped copies per file.
  sim::PlanetLabParams latency;
  net::SimTransportOptions transport;
  bool batching = true;  ///< Coalesce same-pair sends per tick.
  net::BatchingOptions batch;
  std::uint64_t seed = 2007;
  /// Period of each replica's anti-entropy digest exchange; 0 disables it
  /// (the default keeps fixed-seed replays of push-only deployments
  /// byte-identical with earlier captures).
  SimDuration anti_entropy_period = 0;
  /// Cluster-wide observability (metrics registries + causal tracing).
  /// Off by default; enabling it is behavior-neutral — recording draws no
  /// RNG and sends no messages, so fixed-seed replays stay byte-identical
  /// (the determinism goldens run with it on).
  obs::ObservabilityConfig observability;
  /// Durable checkpointing for crash recovery (engine + period + retain).
  /// Off by default; enabling it is behavior-neutral too — checkpoint
  /// passes draw no RNG and send no messages, so existing goldens hold.
  replica::CheckpointConfig checkpoint;
  /// Per-group replication ack/re-send (see ReplicaSyncOptions).  0 keeps
  /// the ack machinery off and pre-existing replays byte-identical.
  SimDuration replication_resend_timeout = 0;
  std::uint32_t replication_max_resends = 2;
  /// Decay horizon for the router's freshness hints: a hint older than
  /// this stops informing bounded-staleness replica selection (the serve
  /// path's exact bound check was always the safety net — this keeps a
  /// replica hinted fresh once from attracting reads after it diverges).
  /// 0 disables decay (pre-fix behavior, for A/B in tests).  Routing
  /// consults hints without sending messages or drawing RNG, so the
  /// default does not perturb write/AE-only replays.
  SimDuration freshness_hint_ttl = sec(10);
  /// Detection-driven adaptive consistency (see adapt/controller.hpp).
  /// Off by default: no controller is constructed, routing is
  /// byte-identical to the pre-adaptive build, and existing goldens hold.
  adapt::ControllerConfig adapt;
  /// Multicore execution (see runtime/options.hpp).  Consumed by
  /// runtime::ShardedFleet, which splits `endpoints` across ring segments
  /// and drives them on a worker pool; a ShardedCluster itself is always
  /// single-threaded (`threads == 1`, the default, is the determinism
  /// oracle the fleet is checked against).
  runtime::RuntimeOptions runtime;

  ShardedClusterConfig() { sync_sizes(); }

  /// Propagate `endpoints` into the nested sizes.  Call after changing it.
  void sync_sizes() {
    latency.nodes = endpoints;
    transport.node_count = endpoints;
  }
};

/// What one add_endpoint()/remove_endpoint() call did.
struct MembershipChange {
  NodeId endpoint = kNoNode;  ///< The joining/leaving endpoint (kNoNode if
                              ///< the call was a no-op).
  /// The incarnation the endpoint joined with: 0 for a brand-new id,
  /// n > 0 for the (n+1)-th life of a reused id.
  std::uint32_t incarnation = 0;
  /// Ring-placement delta over the files that were placed at the time of
  /// the change; files_migrated must equal rebalance.group_changed.
  RebalanceStats rebalance;
  std::size_t files_migrated = 0;   ///< Groups torn down and rebuilt.
  std::size_t state_updates = 0;    ///< Snapshot updates handed over.
  std::size_t stream_messages = 0;  ///< "shard.migrate" messages sent.
};

/// What one crash_endpoint() call destroyed.
struct CrashReport {
  NodeId endpoint = kNoNode;  ///< kNoNode if the call was a no-op.
  std::uint32_t incarnation = 0;  ///< The life that just died.
  SimTime at = 0;
  std::size_t groups_affected = 0;  ///< Placed groups that lost a member.
  /// Applied updates the endpoint held in RAM at the crash (what durable
  /// checkpoints minus the gap get back).
  std::size_t volatile_updates_lost = 0;
};

/// What one restart_endpoint() call recovered.
struct RecoveryReport {
  NodeId endpoint = kNoNode;  ///< kNoNode if the call was a no-op.
  std::uint32_t incarnation = 0;  ///< The new life.
  SimTime downtime = 0;
  std::size_t files_recovered = 0;     ///< Groups rejoined.
  std::size_t checkpoint_files = 0;    ///< Files restored from a checkpoint.
  std::size_t checkpoint_updates = 0;  ///< Updates reloaded from durable
                                       ///< storage (no wire traffic).
  /// Own-writer continuation updates reloaded from survivors: writes this
  /// endpoint coordinated after its last checkpoint but before the crash
  /// live on in the group, and the restarted replica must re-adopt them
  /// before accepting new writes or it would reuse sequence numbers.
  std::size_t reconciled_updates = 0;
  /// Checkpoint→crash delta left for anti-entropy to stream — the O(delta)
  /// recovery traffic (vs O(log) when no checkpoint exists).
  std::size_t gap_updates = 0;
  /// Hinted-handoff drain: updates parked at stand-ins while this
  /// endpoint was down, handed to the acting coordinator on restart...
  std::size_t hinted_updates = 0;
  /// ...of which this many were already held there (exactly-once: a
  /// duplicate import is counted, never re-applied).
  std::size_t hinted_duplicates = 0;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterConfig config);
  ~ShardedCluster();

  // ------------------------------------------------------------------
  // Membership
  // ------------------------------------------------------------------

  /// Stand up a new endpoint, add it to the ring, and migrate every
  /// placed file whose replica group the new points intercept.  The id
  /// is the smallest free id when endpoints left before (reused with a
  /// bumped incarnation, so a long-lived churning cluster's id space
  /// stays dense instead of growing a hole per departure), else the next
  /// dense id.  Migration is synchronous up to the streaming sends: when
  /// this returns, placements and coordinators reflect the new ring, new
  /// coordinators already hold full state, and non-coordinator ranks warm
  /// up as the in-flight "shard.migrate" batches deliver.
  MembershipChange add_endpoint();

  /// Take an endpoint out of the ring, migrate its files to their new
  /// groups, then tear the endpoint down (its transport slot detaches and
  /// in-flight traffic to it drops).  The id goes on the free-list for
  /// the next add_endpoint().  No-op if the endpoint is unknown or
  /// already removed.
  MembershipChange remove_endpoint(NodeId endpoint);

  /// Whether `endpoint` is currently alive (constructed or added, and not
  /// removed or crashed).
  [[nodiscard]] bool has_endpoint(NodeId endpoint) const {
    return endpoint < services_.size() && services_[endpoint] != nullptr;
  }

  // ------------------------------------------------------------------
  // Crash / restart (the fault model; see replica/checkpoint.hpp)
  // ------------------------------------------------------------------

  /// Crash-stop `endpoint` right now: its volatile state (every hosted
  /// replica stack) is dropped, no goodbye messages are sent, and the
  /// transport loses all in-flight traffic to or from it.  The endpoint
  /// keeps its ring points and group memberships — its ranks simply go
  /// dark (pushes to them drop; reads and writes route around them via
  /// the acting coordinator) until restart_endpoint().  Durable
  /// checkpoints survive.  No-op on an unknown/removed/crashed endpoint.
  CrashReport crash_endpoint(NodeId endpoint);

  /// Restart a crashed endpoint as a new incarnation on the same ring
  /// points.  Every group it belongs to is rebuilt under a new group
  /// epoch (fencing pre-crash traffic); survivors re-adopt exactly their
  /// own pre-rebuild state, and the restarted member reloads each shard
  /// from its latest durable checkpoint plus the own-writer continuation
  /// held by survivors.  The checkpoint→crash gap is NOT streamed — the
  /// ordinary shard.digest/repair anti-entropy heals it, O(delta).
  /// No-op unless the endpoint is currently crashed.
  RecoveryReport restart_endpoint(NodeId endpoint);

  /// Whether `endpoint` is crashed (down, awaiting restart_endpoint()).
  [[nodiscard]] bool is_crashed(NodeId endpoint) const {
    return crashed_.count(endpoint) > 0;
  }

  // ------------------------------------------------------------------
  // Hinted handoff (sloppy-quorum writes; see replica/hint_store.hpp)
  // ------------------------------------------------------------------

  /// The stand-in endpoint a sloppy-quorum write would park a hint for
  /// `target` at: the first live endpoint in the file's ring successor
  /// walk that is not a group member (Dynamo's "next-N healthy nodes").
  /// kNoNode when every candidate is down or in the group.
  [[nodiscard]] NodeId stand_in_for(FileId file, NodeId target) const;

  /// Durably park `update` for the crashed `target` at `stand_in`.  The
  /// hint counts toward the write's w and drains on restart_endpoint().
  void queue_hint(FileId file, NodeId target, NodeId stand_in,
                  const replica::Update& update);

  /// The hinted-handoff queue (inspectable in tests/benches).
  [[nodiscard]] const replica::HintStore& hint_store() const {
    return hints_;
  }

  /// The durable checkpoint store (inspectable in tests/benches).
  [[nodiscard]] replica::DurableStorage& durable_storage() {
    return storage_;
  }
  /// The configured engine; nullptr when checkpointing is off.
  [[nodiscard]] replica::CheckpointEngine* checkpoint_engine() {
    return engine_.get();
  }

  /// Run one checkpoint pass for `endpoint` right now (what the periodic
  /// timer fires; exposed so tests and benches control epochs exactly).
  void checkpoint_endpoint(NodeId endpoint);

  /// Ids of the live endpoints, ascending.
  [[nodiscard]] std::vector<NodeId> endpoints() const;

  /// The incarnation `endpoint` is currently (or was last) alive with:
  /// 0 for a first life, n for the (n+1)-th life of a reused id.  Stale-
  /// incarnation traffic cannot reach a reused id's new service: every
  /// group the old incarnation belonged to was rebuilt under a new group
  /// epoch when it left, and GroupTransport fences on the epoch.
  [[nodiscard]] std::uint32_t incarnation(NodeId endpoint) const {
    return endpoint < incarnations_.size() ? incarnations_[endpoint] : 0;
  }

  /// Ids currently on the free-list awaiting reuse (diagnostics/tests).
  [[nodiscard]] const std::set<NodeId>& free_ids() const { return free_ids_; }

  // ------------------------------------------------------------------
  // Placement
  // ------------------------------------------------------------------

  /// Open files `first .. first+count-1` on their replica groups.
  void place(FileId first, std::uint32_t count);

  /// Ensure one file is open on its whole group (idempotent); returns the
  /// coordinator's replica stack, nullptr on an empty ring.
  core::IdeaNode* ensure_open(FileId file);

  /// Tear the file down on every group member.  Unknown files: no-op.
  bool close_file(FileId file);

  [[nodiscard]] bool is_placed(FileId file) const {
    return files_.count(file) > 0;
  }
  [[nodiscard]] std::size_t placed_files() const { return files_.size(); }

  /// The placed file's current group members (rank order, coordinator
  /// first) without a ring walk; nullptr when the file is not placed.
  /// The vector stays valid until the file migrates or closes.
  [[nodiscard]] const std::vector<NodeId>* members_of(FileId file) const {
    auto it = files_.find(file);
    return it == files_.end() ? nullptr : &it->second.members;
  }

  /// The replica group the ring assigns `file` (primary first).
  [[nodiscard]] std::vector<NodeId> group_of(FileId file) const {
    return ring_.replicas(file, config_.replication);
  }

  /// The endpoint coordinating `file`: the cached placement when the file
  /// is open (no ring walk on the hot routing path), the ring's answer
  /// otherwise.  kNoNode on an empty ring.
  [[nodiscard]] NodeId coordinator_endpoint(FileId file) const {
    auto it = files_.find(file);
    if (it != files_.end()) return it->second.members.front();
    return ring_.primary(file);
  }

  // ------------------------------------------------------------------
  // Access
  // ------------------------------------------------------------------

  /// The file's replica stack on `endpoint`; nullptr if that endpoint is
  /// not in the file's group or the file is not placed.
  [[nodiscard]] core::IdeaNode* replica(FileId file, NodeId endpoint);

  /// The file's replica stack at group rank `rank` (0 = coordinator).
  [[nodiscard]] core::IdeaNode* replica_at_rank(FileId file,
                                                std::uint32_t rank);

  /// The replication agent at group rank `rank` for a placed file.
  [[nodiscard]] ReplicaSyncAgent* sync_agent(FileId file,
                                             std::uint32_t rank);

  /// The acting coordinator's sync agent and endpoint id in one placement
  /// lookup (the router's per-op fast path): the lowest alive rank — rank
  /// 0 unless it crashed, in which case writes fail over down the rank
  /// order (rank space is multi-writer, so this is safe).  {nullptr,
  /// kNoNode} when the file is not placed or every member is down.
  [[nodiscard]] std::pair<ReplicaSyncAgent*, NodeId> coordinator(
      FileId file) {
    auto it = files_.find(file);
    if (it == files_.end()) return {nullptr, kNoNode};
    const FileGroup& group = it->second;
    for (std::size_t rank = 0; rank < group.sync.size(); ++rank) {
      if (group.sync[rank] != nullptr) {
        return {group.sync[rank].get(), group.members[rank]};
      }
    }
    return {nullptr, kNoNode};
  }

  /// True iff every group replica holds byte-identical canonical contents.
  [[nodiscard]] bool converged(FileId file);

  [[nodiscard]] core::IdeaService& service(NodeId endpoint) {
    return *services_.at(endpoint);
  }
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(services_.size());
  }

  /// The policy-driven request router every session operation funnels
  /// through (replica selection, freshness hints, migration awareness).
  [[nodiscard]] RequestRouter& router() { return *router_; }
  /// The adaptive consistency control loop; nullptr when
  /// config.adapt.enabled is false (the default).
  [[nodiscard]] adapt::ConsistencyController* controller() {
    return controller_.get();
  }
  /// The deployment's observability surface; nullptr when
  /// config.observability.enabled is false.
  [[nodiscard]] obs::Observability* obs() { return obs_.get(); }
  [[nodiscard]] HashRing& ring() { return ring_; }
  [[nodiscard]] const HashRing& ring() const { return ring_; }
  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  /// The latency model — the router's replica-selection distance oracle.
  [[nodiscard]] sim::PlanetLabLatency& latency() { return *latency_; }
  [[nodiscard]] const ShardedClusterConfig& config() const {
    return config_;
  }

  /// The transport endpoints attach to (batching decorator when enabled).
  [[nodiscard]] net::Transport& edge() {
    return batching_ ? static_cast<net::Transport&>(*batching_)
                     : *sim_transport_;
  }
  /// Null when batching is disabled.
  [[nodiscard]] net::BatchingTransport* batching() {
    return batching_.get();
  }
  /// The underlying simulated wire — fault-injection hooks (drop windows,
  /// partitions) live here.
  [[nodiscard]] net::SimTransport& transport() { return *sim_transport_; }
  /// What actually hit the simulated wire (envelopes after batching).
  [[nodiscard]] const net::MessageCounters& wire_counters() const {
    return sim_transport_->counters();
  }

  // ------------------------------------------------------------------
  // Time
  // ------------------------------------------------------------------

  void run_for(SimDuration d) { sim_.run_for(d); }
  void run_until(SimTime t) { sim_.run_until(t); }

 private:
  struct FileGroup {
    std::vector<NodeId> members;  ///< rank -> endpoint id
    std::vector<std::unique_ptr<GroupTransport>> transports;  ///< by rank
    std::vector<std::unique_ptr<ReplicaSyncAgent>> sync;      ///< by rank
  };

  /// Build the file's protocol stacks + sync agents on `members` (rank
  /// order as given).  The file must not currently be placed.  Members
  /// whose service is down (crashed) get null transport/sync slots at
  /// their rank: the group keeps its shape, protocol traffic to the dark
  /// ranks drops at the transport, and restart_endpoint() fills the
  /// slots by rebuilding the group.
  FileGroup& open_group(FileId file, std::vector<NodeId> members);

  /// Arm/cancel the per-endpoint periodic checkpoint timer.
  void arm_checkpoint_timer(NodeId endpoint);
  void cancel_checkpoint_timer(NodeId endpoint);

  /// Tear down and rebuild every placed file whose replica group differs
  /// between `before` and the current ring, streaming state to the new
  /// group; fills the migration counters of `change`.
  void migrate_changed_groups(const HashRing& before,
                              MembershipChange& change);

  ShardedClusterConfig config_;
  /// Declared before everything else: sync agents, the router and the
  /// transports hold Meters/pointers into it, so it must be destroyed last.
  std::unique_ptr<obs::Observability> obs_;
  sim::Simulator sim_;
  std::unique_ptr<sim::PlanetLabLatency> latency_;
  std::unique_ptr<net::SimTransport> sim_transport_;
  std::unique_ptr<net::BatchingTransport> batching_;
  HashRing ring_;
  /// Next group-epoch per file (see GroupTransport's fence): bumped every
  /// time a file's group is (re)built, so in-flight traffic from a torn-
  /// down incarnation can never reach the replacement stacks.
  std::unordered_map<FileId, std::uint32_t> epochs_;
  // files_ must outlive services_ (declared before = destroyed after):
  // IdeaNode destructors cancel timers through their GroupTransport.
  std::unordered_map<FileId, FileGroup> files_;
  std::vector<std::unique_ptr<core::IdeaService>> services_;
  /// Per-slot incarnation counters, parallel to services_ (0 = first
  /// life).  Bumped when add_endpoint() reuses an id off the free-list.
  std::vector<std::uint32_t> incarnations_;
  /// Ids of removed endpoints awaiting reuse, smallest first.
  std::set<NodeId> free_ids_;
  // Crash/recovery state.  Crashed ids stay out of free_ids_ (their ring
  // points and group memberships persist until restart).
  std::set<NodeId> crashed_;
  std::map<NodeId, SimTime> crashed_at_;
  replica::DurableStorage storage_;
  std::unique_ptr<replica::CheckpointEngine> engine_;
  /// Hinted-handoff queue (durable medium at the stand-ins, modeled
  /// cluster-wide like storage_).
  replica::HintStore hints_;
  /// Periodic checkpoint timer per endpoint id (0 = none armed).
  std::vector<std::uint64_t> checkpoint_timers_;
  std::unique_ptr<RequestRouter> router_;
  /// Constructed after router_ (its level probe calls into the router);
  /// null unless config.adapt.enabled.
  std::unique_ptr<adapt::ConsistencyController> controller_;
};

}  // namespace idea::shard
