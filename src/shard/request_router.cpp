#include "shard/request_router.hpp"

#include <algorithm>
#include <tuple>

#include "adapt/controller.hpp"
#include "core/idea_node.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::shard {
namespace {

/// The router's metric ids, interned once per process.
struct RouterMetrics {
  obs::MetricId reads = obs::MetricId::intern("router.reads");
  obs::MetricId writes = obs::MetricId::intern("router.writes");
  obs::MetricId escalated = obs::MetricId::intern("router.read.escalated");
  obs::MetricId staleness_versions =
      obs::MetricId::intern("router.read.staleness_versions");
  obs::MetricId staleness_age_us =
      obs::MetricId::intern("router.read.staleness_age_us");
  obs::MetricId hint_age_us = obs::MetricId::intern("router.hint.age_us");
  obs::MetricId migration_pinned =
      obs::MetricId::intern("router.read.migration_pinned");
  obs::MetricId read_served = obs::MetricId::intern("read.served");
  obs::MetricId write_failover =
      obs::MetricId::intern("router.write.failover");
  obs::MetricId write_wack = obs::MetricId::intern("router.write.wack");
  obs::MetricId write_sloppy =
      obs::MetricId::intern("router.write.sloppy");
  obs::MetricId hint_expired =
      obs::MetricId::intern("router.hint.expired");
  obs::MetricId read_adapted =
      obs::MetricId::intern("router.read.adapted");
};

const RouterMetrics& router_metrics() {
  static const RouterMetrics m;
  return m;
}

}  // namespace

std::vector<NodeId> RequestRouter::group_of(FileId file) const {
  return cluster_.group_of(file);
}

NodeId RequestRouter::coordinator_of(FileId file) const {
  return cluster_.coordinator_endpoint(file);
}

core::IdeaNode* RequestRouter::open(FileId file) {
  const std::size_t before = cluster_.placed_files();
  core::IdeaNode* coordinator = cluster_.ensure_open(file);
  if (coordinator != nullptr && cluster_.placed_files() > before) {
    ++stats_.opens;
  }
  return coordinator;
}

bool RequestRouter::write(FileId file, std::string content,
                          double meta_delta, const obs::TraceContext& tc) {
  if (open(file) == nullptr) return false;
  const auto [agent, endpoint] = cluster_.coordinator(file);
  if (agent == nullptr) return false;
  ++stats_.coordinator_ops[endpoint];
  const bool failover = endpoint != cluster_.coordinator_endpoint(file);
  if (failover) ++stats_.failover_writes;
  if (!agent->put(std::move(content), meta_delta, tc)) {
    ++stats_.blocked_writes;
    return false;
  }
  ++stats_.writes;
  if (adapt::ConsistencyController* ctl = cluster_.controller()) {
    ctl->on_write(file);
  }
  if (obs::Observability* o = observability()) {
    o->cluster_meter().add(router_metrics().writes);
    if (failover) o->cluster_meter().add(router_metrics().write_failover);
  }
  return true;
}

RequestRouter::WriteDispatch RequestRouter::write_with_concern(
    FileId file, std::string content, double meta_delta,
    const client::WriteConcern& concern, WriteAckCallback on_result,
    const obs::TraceContext& tc) {
  WriteDispatch d;
  // Unroutable (empty ring / every member down): not a blocked write,
  // mirroring write() — but the callback still gets its exactly-once fire.
  const auto fail = [&] {
    if (on_result) on_result(false, 0, 0, d.coordinator);
    return d;
  };
  if (open(file) == nullptr) return fail();
  const auto [agent, endpoint] = cluster_.coordinator(file);
  if (agent == nullptr) return fail();
  const std::vector<NodeId>* members = cluster_.members_of(file);
  if (members == nullptr || members->empty()) return fail();

  d.coordinator = endpoint;
  const auto k = static_cast<std::uint32_t>(members->size());
  const std::uint32_t w = concern.resolve(k);
  d.effective_w = w;
  ++stats_.coordinator_ops[endpoint];
  const bool failover = endpoint != cluster_.coordinator_endpoint(file);
  if (failover) ++stats_.failover_writes;

  // Sloppy quorum: when fewer than w members are alive, each crashed
  // member the concern still needs is covered by a durable hint at a
  // live stand-in outside the group, credited toward w and drained back
  // through anti-entropy when the member returns.
  std::vector<std::pair<NodeId, NodeId>> hint_plan;  // target -> stand-in
  if (w > 1) {
    std::uint32_t alive = 0;
    for (NodeId m : *members) {
      if (cluster_.has_endpoint(m)) ++alive;
    }
    for (NodeId m : *members) {
      if (alive + hint_plan.size() >= w) break;
      if (cluster_.has_endpoint(m)) continue;
      const NodeId stand_in = cluster_.stand_in_for(file, m);
      if (stand_in != kNoNode) hint_plan.emplace_back(m, stand_in);
    }
  }
  const auto hinted = static_cast<std::uint32_t>(hint_plan.size());
  d.hinted = hinted;

  PutConcern agent_concern;
  agent_concern.peer_acks_needed = w - 1 > hinted ? w - 1 - hinted : 0;
  if (on_result) {
    // The wrapper credits the hinted stand-ins and names the acting
    // coordinator; acks == 0 still means "never applied".
    agent_concern.on_result = [cb = std::move(on_result), hinted,
                               coordinator = endpoint](
                                  bool satisfied, std::uint32_t acks) {
      cb(satisfied, acks, hinted, coordinator);
    };
  }

  const replica::Update* applied = nullptr;
  if (!agent->put_with_concern(std::move(content), meta_delta,
                               std::move(agent_concern), tc, &applied)) {
    // The agent already failed the callback.
    ++stats_.blocked_writes;
    return d;
  }
  ++stats_.writes;
  d.applied = true;
  if (adapt::ConsistencyController* ctl = cluster_.controller()) {
    ctl->on_write(file);
  }
  if (w > 1) ++stats_.wack_writes;

  // Park the hints only after the local apply produced the real update.
  if (applied != nullptr && !hint_plan.empty()) {
    for (const auto& [target, stand_in] : hint_plan) {
      cluster_.queue_hint(file, target, stand_in, *applied);
      ++stats_.hinted_writes;
    }
    ++stats_.sloppy_writes;
  }

  if (obs::Observability* o = observability()) {
    obs::Meter meter = o->cluster_meter();
    meter.add(router_metrics().writes);
    if (failover) meter.add(router_metrics().write_failover);
    if (w > 1) meter.add(router_metrics().write_wack);
    if (hinted > 0) meter.add(router_metrics().write_sloppy);
  }
  return d;
}

obs::Observability* RequestRouter::observability() const {
  return cluster_.obs();
}

double RequestRouter::level(FileId file) const {
  if (!cluster_.is_placed(file)) return 1.0;
  core::IdeaNode* coordinator = cluster_.replica_at_rank(file, 0);
  return coordinator == nullptr ? 1.0 : coordinator->current_level();
}

bool RequestRouter::close(FileId file) {
  // close_file() drops this router's per-file state (hints, migration
  // window) as part of the teardown.
  const bool closed = cluster_.close_file(file);
  if (closed) ++stats_.closes;
  return closed;
}

SimDuration RequestRouter::rtt(NodeId origin, NodeId endpoint) const {
  // A client with no declared origin is modeled as co-located with the
  // endpoint it talks to.
  if (origin == kNoNode) origin = endpoint;
  return 2 * cluster_.latency().mean(origin, endpoint);
}

bool RequestRouter::hint_live(const Freshness& f) const {
  const SimDuration ttl = cluster_.config().freshness_hint_ttl;
  if (ttl <= 0) return true;  // decay disabled
  const SimTime now = cluster_.sim().now();
  return now <= f.at + ttl;
}

void RequestRouter::note_freshness(FileId file, NodeId endpoint,
                                   std::uint64_t versions, SimTime at) {
  Freshness& f = hints_[file][endpoint];
  // Hints may arrive out of order (digest vs repair of the same round);
  // versions are monotone per replica, so keep the maximum — but only
  // while the held hint is live.  A decayed hint yields to whatever the
  // next observation says, even a smaller count: the replica may have
  // restarted into a new incarnation whose history starts over.
  if (f.versions > 0 && !hint_live(f)) {
    ++stats_.expired_hints;
    if (obs::Observability* o = observability()) {
      o->cluster_meter().add(router_metrics().hint_expired);
    }
    f = Freshness{versions, at};
  } else if (versions >= f.versions) {
    f = Freshness{versions, at};
  }
  ++stats_.freshness_hints;
}

std::uint64_t RequestRouter::freshness_hint(FileId file,
                                            NodeId endpoint) const {
  const Freshness* f = find_hint(file, endpoint);
  return f == nullptr ? 0 : f->versions;
}

const RequestRouter::Freshness* RequestRouter::find_hint(
    FileId file, NodeId endpoint) const {
  auto fit = hints_.find(file);
  if (fit == hints_.end()) return nullptr;
  auto eit = fit->second.find(endpoint);
  if (eit == fit->second.end()) return nullptr;
  // A hint past the decay horizon no longer describes the replica:
  // treat it as absent (selection falls back to the optimistic lag-0
  // default, and the serve-time bound check stays the safety net).
  return hint_live(eit->second) ? &eit->second : nullptr;
}

void RequestRouter::note_migration(FileId file, SimTime window_end) {
  migration_until_[file] = window_end;
}

bool RequestRouter::in_migration_window(FileId file) const {
  auto it = migration_until_.find(file);
  return it != migration_until_.end() && cluster_.sim().now() < it->second;
}

void RequestRouter::forget_file(FileId file) {
  hints_.erase(file);
  migration_until_.erase(file);
}

void RequestRouter::forget_endpoint(NodeId endpoint) {
  for (auto& [file, by_endpoint] : hints_) {
    if (by_endpoint.erase(endpoint) > 0) ++stats_.expired_hints;
  }
}

NodeId RequestRouter::pick_replica(FileId file,
                                   const std::vector<NodeId>& members,
                                   NodeId origin, bool use_hints) const {
  // Selection key: (estimated versions behind, RTT, rank).  The lag
  // estimate comes from anti-entropy freshness hints and defaults to 0
  // when nothing was hinted yet — optimistic, but safe: the bounded
  // staleness serve path re-checks the bound exactly.
  std::uint64_t coordinator_total = 0;
  if (use_hints) {
    core::IdeaNode* coordinator = cluster_.replica_at_rank(file, 0);
    if (coordinator != nullptr) {
      coordinator_total = coordinator->store().evv().counts().total();
    }
  }
  NodeId best = kNoNode;
  std::tuple<std::uint64_t, SimDuration, std::uint32_t> best_key{
      UINT64_MAX, 0, 0};
  for (std::uint32_t rank = 0; rank < members.size(); ++rank) {
    const NodeId endpoint = members[rank];
    if (!cluster_.has_endpoint(endpoint)) continue;  // crashed: route around
    std::uint64_t lag = 0;
    if (use_hints && rank != 0) {
      // A replica nobody has hinted about yet stays at lag 0 (optimistic
      // — the serve path's exact bound check is the safety net); a
      // hinted one is ranked by how far behind its last digest showed it.
      const Freshness* hint = find_hint(file, endpoint);
      if (hint != nullptr && coordinator_total > hint->versions) {
        lag = coordinator_total - hint->versions;
      }
    }
    const std::tuple<std::uint64_t, SimDuration, std::uint32_t> key{
        lag, rtt(origin, endpoint), rank};
    if (key < best_key) {
      best_key = key;
      best = endpoint;
    }
  }
  return best == kNoNode ? members.front() : best;
}

void RequestRouter::measure_staleness(core::IdeaNode& coordinator,
                                      core::IdeaNode& replica,
                                      std::uint64_t& versions,
                                      SimDuration& age) const {
  const replica::ReplicaStore::StalenessProbe probe =
      coordinator.store().staleness_ahead_of(replica.store().evv().counts());
  versions = probe.versions;
  age = 0;
  if (probe.versions > 0) {
    const SimTime now = cluster_.sim().now();
    age = now > probe.oldest_stamp ? now - probe.oldest_stamp : 0;
  }
}

client::ReadResult RequestRouter::serve_single(FileId file, NodeId endpoint,
                                               NodeId origin,
                                               const obs::TraceContext& tc) {
  client::ReadResult res;
  core::IdeaNode* node = cluster_.replica(file, endpoint);
  if (node == nullptr) return res;
  res.updates = node->read_view();
  res.served_by = endpoint;
  res.replicas_contacted = 1;
  res.latency = rtt(origin, endpoint);
  ++stats_.reads_served_by[endpoint];
  if (obs::Observability* o = observability()) {
    o->endpoint_meter(endpoint).add(router_metrics().read_served);
    if (obs::Tracer* tr = o->tracer(); tr != nullptr && tc.active()) {
      // The serve span covers the modeled round trip to the replica.
      const SimTime now = cluster_.sim().now();
      const obs::TraceContext span =
          tr->begin_span(tc, "read.serve", endpoint, file, now);
      tr->end_span(span.span, now + res.latency);
    }
  }
  return res;
}

client::ReadResult RequestRouter::serve_quorum(
    FileId file, const std::vector<NodeId>& members, NodeId origin,
    std::uint32_t r, const obs::TraceContext& tc) {
  // Fan out to the coordinator plus the r-1 nearest other replicas: the
  // write path acks at the coordinator (W = 1), so including it keeps
  // R ∩ W nonempty and the merged view can never miss an acked write.
  // Crashed members cannot be contacted — the quorum forms over the
  // living, with the acting coordinator (lowest alive rank) first.
  std::vector<NodeId> alive;
  alive.reserve(members.size());
  for (NodeId e : members) {
    if (cluster_.has_endpoint(e)) alive.push_back(e);
  }
  if (alive.empty()) return {};
  std::vector<NodeId> targets{alive.front()};
  std::vector<NodeId> others(alive.begin() + 1, alive.end());
  std::stable_sort(others.begin(), others.end(),
                   [&](NodeId a, NodeId b) {
                     return rtt(origin, a) < rtt(origin, b);
                   });
  for (NodeId e : others) {
    if (targets.size() >= r) break;
    targets.push_back(e);
  }

  client::ReadResult res;
  std::vector<core::IdeaNode*> nodes;
  nodes.reserve(targets.size());
  SimDuration slowest = 0;
  NodeId freshest = targets.front();
  std::uint64_t freshest_total = 0;
  for (NodeId e : targets) {
    core::IdeaNode* node = cluster_.replica(file, e);
    if (node == nullptr) continue;
    nodes.push_back(node);
    slowest = std::max(slowest, rtt(origin, e));
    const std::uint64_t total = node->store().evv().counts().total();
    if (total > freshest_total) {
      freshest_total = total;
      freshest = e;
    }
  }
  if (nodes.empty()) return res;

  // Fast path: the coordinator dominates every contacted replica (the
  // steady state under push replication) — its snapshot IS the merge,
  // shared zero-copy.  Otherwise union the logs, OR-ing invalidation
  // flags, and render canonically.
  core::IdeaNode* coordinator = nodes.front();
  bool coordinator_dominates = true;
  for (core::IdeaNode* node : nodes) {
    if (!coordinator->store().evv().counts().dominates(
            node->store().evv().counts())) {
      coordinator_dominates = false;
      break;
    }
  }
  // Version counts cannot see invalidation (the update stays in the
  // log), so a contacted replica may know an update is invalidated
  // while the dominating coordinator still shows it live — the exact
  // divergence anti-entropy repair exists to heal.  Such a flag must
  // reach the merged view, so it forces the slow path.
  if (coordinator_dominates) {
    for (std::size_t i = 1; i < nodes.size() && coordinator_dominates;
         ++i) {
      for (const auto& [key, u] : nodes[i]->store().log()) {
        if (!u.invalidated) continue;
        const replica::Update* held = coordinator->store().find(key);
        if (held == nullptr || !held->invalidated) {
          coordinator_dominates = false;
          break;
        }
      }
    }
  }
  if (coordinator_dominates) {
    res.updates = coordinator->read_view();
    res.served_by = targets.front();
  } else {
    std::map<replica::UpdateKey, replica::Update> merged;
    for (core::IdeaNode* node : nodes) {
      for (const auto& [key, u] : node->store().log()) {
        auto [it, inserted] = merged.emplace(key, u);
        if (!inserted && u.invalidated) it->second.invalidated = true;
      }
    }
    auto out = std::make_shared<std::vector<replica::Update>>();
    out->reserve(merged.size());
    for (auto& [key, u] : merged) out->push_back(std::move(u));
    std::sort(out->begin(), out->end(), replica::CanonicalOrder{});
    res.updates = std::move(out);
    res.served_by = freshest;
  }
  res.replicas_contacted = static_cast<std::uint32_t>(nodes.size());
  res.latency = slowest;
  // The merge covers the coordinator, so the returned view never lags
  // it: staleness is 0 by construction.
  for (NodeId e : targets) ++stats_.reads_served_by[e];
  if (obs::Observability* o = observability()) {
    for (NodeId e : targets) {
      o->endpoint_meter(e).add(router_metrics().read_served);
    }
    if (obs::Tracer* tr = o->tracer(); tr != nullptr && tc.active()) {
      // One fan-out span per contacted replica, each covering its own
      // modeled round trip.
      const SimTime now = cluster_.sim().now();
      for (NodeId e : targets) {
        const obs::TraceContext span =
            tr->begin_span(tc, "read.fanout", e, file, now);
        tr->end_span(span.span, now + rtt(origin, e));
      }
    }
  }
  return res;
}

client::ReadResult RequestRouter::read(FileId file,
                                       const client::ConsistencyLevel& level,
                                       NodeId origin,
                                       const obs::TraceContext& tc,
                                       const ReadContext& ctx) {
  adapt::ConsistencyController* ctl = cluster_.controller();
  client::ConsistencyLevel effective = level;
  if (ctx.adaptive && ctl != nullptr) {
    effective = ctl->effective_level(file, ctx.tenant, level);
  }
  client::ReadResult res = route_read(file, effective, origin, tc);
  res.effective_level = effective.level;
  if (ctx.adaptive && !(effective == level)) {
    ++stats_.adapted_reads;
    if (obs::Observability* o = observability()) {
      o->cluster_meter().add(router_metrics().read_adapted);
    }
  }
  // Every routed read feeds the controller's per-file contention
  // signals; only adaptive reads enter tenant SLO accounting.
  if (ctl != nullptr && res.ok()) {
    ctl->on_read(file, ctx.tenant, ctx.adaptive, res);
  }
  return res;
}

client::ReadResult RequestRouter::route_read(
    FileId file, const client::ConsistencyLevel& level, NodeId origin,
    const obs::TraceContext& tc) {
  core::IdeaNode* coordinator = open(file);
  if (coordinator == nullptr) return {};
  const std::vector<NodeId>* members = cluster_.members_of(file);
  if (members == nullptr || members->empty()) return {};
  // Acting coordinator: the lowest alive rank — rank 0 unless it crashed,
  // in which case reads (like writes) fail over down the rank order.
  NodeId coord_ep = members->front();
  for (NodeId member : *members) {
    if (cluster_.has_endpoint(member)) {
      coord_ep = member;
      break;
    }
  }
  ++stats_.reads;

  obs::Observability* o = observability();
  obs::Meter meter = o == nullptr ? obs::Meter() : o->cluster_meter();
  meter.add(router_metrics().reads);

  // A traced read that observed real staleness parks its context so the
  // anti-entropy rounds healing that staleness join the same span tree.
  const auto record_staleness = [&](std::uint64_t versions,
                                    SimDuration age) {
    if (versions == 0) return;
    meter.observe(router_metrics().staleness_versions, versions);
    meter.observe(router_metrics().staleness_age_us,
                  static_cast<std::uint64_t>(age));
    if (o != nullptr && tc.active()) o->note_repair_trace(file, tc);
  };

  switch (level.level) {
    case client::Level::kStrong: {
      ++stats_.strong_reads;
      ++stats_.coordinator_ops[coord_ep];
      return serve_single(file, coord_ep, origin, tc);
    }

    case client::Level::kEventualNearest: {
      ++stats_.nearest_reads;
      if (in_migration_window(file)) {
        ++stats_.migration_window_reads;
        meter.add(router_metrics().migration_pinned);
        client::ReadResult res = serve_single(file, coord_ep, origin, tc);
        res.migration_window = true;
        return res;
      }
      const NodeId target =
          pick_replica(file, *members, origin, /*use_hints=*/false);
      client::ReadResult res = serve_single(file, target, origin, tc);
      if (target != coord_ep) {
        core::IdeaNode* node = cluster_.replica(file, target);
        measure_staleness(*coordinator, *node, res.staleness_versions,
                          res.staleness_age);
        record_staleness(res.staleness_versions, res.staleness_age);
      }
      return res;
    }

    case client::Level::kBoundedStaleness: {
      ++stats_.bounded_reads;
      if (in_migration_window(file)) {
        ++stats_.migration_window_reads;
        meter.add(router_metrics().migration_pinned);
        client::ReadResult res = serve_single(file, coord_ep, origin, tc);
        res.migration_window = true;
        return res;
      }
      const NodeId candidate =
          pick_replica(file, *members, origin, /*use_hints=*/true);
      // Age of the freshness hint that informed this selection — how
      // stale the router's own routing input was at use time.
      if (candidate != coord_ep && meter.enabled()) {
        if (const Freshness* hint = find_hint(file, candidate)) {
          const SimTime now = cluster_.sim().now();
          meter.observe(router_metrics().hint_age_us,
                        static_cast<std::uint64_t>(
                            now > hint->at ? now - hint->at : 0));
        }
      }
      if (candidate == coord_ep) {
        ++stats_.coordinator_ops[coord_ep];
        return serve_single(file, coord_ep, origin, tc);
      }
      core::IdeaNode* node = cluster_.replica(file, candidate);
      std::uint64_t versions = 0;
      SimDuration age = 0;
      measure_staleness(*coordinator, *node, versions, age);
      if (versions > level.max_versions ||
          (level.max_age > 0 && age > level.max_age)) {
        // Bound exceeded: escalate.  The client pays for the failed
        // probe plus the coordinator round trip.
        ++stats_.bounded_escalations;
        ++stats_.coordinator_ops[coord_ep];
        meter.add(router_metrics().escalated);
        record_staleness(versions, age);
        if (o != nullptr && tc.active() && o->tracer() != nullptr) {
          o->tracer()->instant(tc, "read.escalate", candidate, file,
                               cluster_.sim().now());
        }
        client::ReadResult res = serve_single(file, coord_ep, origin, tc);
        res.latency += rtt(origin, candidate);
        res.escalated = true;
        return res;
      }
      client::ReadResult res = serve_single(file, candidate, origin, tc);
      res.staleness_versions = versions;
      res.staleness_age = age;
      record_staleness(versions, age);
      return res;
    }

    case client::Level::kQuorum: {
      ++stats_.quorum_reads;
      const auto k = static_cast<std::uint32_t>(members->size());
      std::uint32_t r = level.quorum_r == 0 ? k / 2 + 1 : level.quorum_r;
      r = std::min(std::max<std::uint32_t>(r, 1), k);
      ++stats_.coordinator_ops[coord_ep];
      client::ReadResult res = serve_quorum(file, *members, origin, r, tc);
      res.migration_window = in_migration_window(file);
      return res;
    }
  }
  return {};
}

}  // namespace idea::shard
