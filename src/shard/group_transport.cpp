#include "shard/group_transport.hpp"

namespace idea::shard {

GroupTransport::GroupTransport(net::Transport& inner,
                               std::vector<NodeId> members,
                               std::uint32_t self_rank, std::uint32_t epoch)
    : inner_(inner),
      members_(std::move(members)),
      self_rank_(self_rank),
      epoch_(epoch) {}

NodeId GroupTransport::rank_of(NodeId endpoint) const {
  for (std::size_t r = 0; r < members_.size(); ++r) {
    if (members_[r] == endpoint) return static_cast<NodeId>(r);
  }
  return kNoNode;
}

void GroupTransport::send(net::Message msg) {
  // Protocol agents address ranks; out of range means a misconfigured
  // group size — drop rather than alias another endpoint.
  if (msg.to >= members_.size() || msg.from >= members_.size()) return;
  counters_.record(msg.type, msg.wire_bytes);
  msg.from = members_[msg.from];
  msg.to = members_[msg.to];
  msg.epoch = epoch_;
  inner_.send(std::move(msg));
}

SimTime GroupTransport::local_time(NodeId rank) const {
  if (rank < members_.size()) return inner_.local_time(members_[rank]);
  return inner_.now();
}

void GroupTransport::on_message(const net::Message& msg) {
  if (sink_ == nullptr) return;
  // Epoch fence: a message sent before a migration rebuilt this group
  // must not be demultiplexed into the new stacks — the sender's rank
  // mapping (and possibly the whole protocol state it speaks for) belongs
  // to the previous incarnation.
  if (msg.epoch != epoch_) return;
  const NodeId from_rank = rank_of(msg.from);
  if (from_rank == kNoNode) return;  // sender is not a group member
  net::Message translated = msg;
  translated.from = from_rank;
  translated.to = self_rank_;
  sink_->on_message(translated);
}

}  // namespace idea::shard
