#include "shard/replica_sync.hpp"

#include <utility>

namespace idea::shard {

const net::MsgType ReplicaSyncAgent::kReplicateType =
    net::MsgType::intern("shard.replicate");

ReplicaSyncAgent::ReplicaSyncAgent(core::IdeaNode& node,
                                   net::Transport& transport,
                                   std::uint32_t group_size)
    : node_(node), transport_(transport), group_size_(group_size) {
  node_.dispatcher().route("shard.", this);
}

ReplicaSyncAgent::~ReplicaSyncAgent() { node_.dispatcher().unroute("shard."); }

bool ReplicaSyncAgent::put(std::string content, double meta_delta) {
  if (!node_.write(std::move(content), meta_delta)) {
    ++stats_.blocked_puts;
    return false;
  }
  ++stats_.puts;

  const replica::ReplicaStore& store = node_.store();
  const replica::Update* u =
      store.find(replica::UpdateKey{node_.id(), store.local_seq()});
  if (u == nullptr) return true;  // defensive; apply_local just stored it

  // One shared allocation for the whole fan-out; each send refcounts it.
  const net::Payload payload = std::vector<replica::Update>{*u};
  const auto bytes = static_cast<std::uint32_t>(16 + u->wire_bytes());
  for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
    if (rank == node_.id()) continue;
    net::Message msg;
    msg.from = node_.id();
    msg.to = rank;
    msg.file = node_.file();
    msg.type = kReplicateType;
    msg.payload = payload;
    msg.wire_bytes = bytes;
    transport_.send(std::move(msg));
    ++stats_.pushed;
  }
  return true;
}

void ReplicaSyncAgent::on_message(const net::Message& msg) {
  if (msg.type != kReplicateType) return;
  const auto& updates = msg.payload.as<std::vector<replica::Update>>();
  bool any_applied = false;
  for (const replica::Update& u : updates) {
    if (node_.store().has(u.key)) {
      ++stats_.redundant;
      continue;
    }
    if (node_.store().apply_remote(u)) {
      ++stats_.applied;
      any_applied = true;
    }
  }
  if (any_applied) node_.note_replica_activity();
}

}  // namespace idea::shard
