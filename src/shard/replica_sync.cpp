#include "shard/replica_sync.hpp"

#include <memory>
#include <optional>
#include <string_view>
#include <utility>

#include "util/log.hpp"

namespace idea::shard {

const net::MsgType ReplicaSyncAgent::kReplicateType =
    net::MsgType::intern("shard.replicate");
const net::MsgType ReplicaSyncAgent::kDigestType =
    net::MsgType::intern("shard.digest");
const net::MsgType ReplicaSyncAgent::kRepairType =
    net::MsgType::intern("shard.repair");
const net::MsgType ReplicaSyncAgent::kMigrateType =
    net::MsgType::intern("shard.migrate");
const net::MsgType ReplicaSyncAgent::kAckType =
    net::MsgType::intern("shard.ack");

namespace {

std::uint32_t batch_wire_bytes(const std::vector<replica::Update>& updates) {
  std::uint32_t bytes = 24;  // header + count
  for (const replica::Update& u : updates) bytes += u.wire_bytes();
  return bytes;
}

/// The agent's metric ids, interned once per process.
struct AgentMetrics {
  obs::MetricId replicate_pushed = obs::MetricId::intern("replicate.pushed");
  obs::MetricId replicate_applied =
      obs::MetricId::intern("replicate.applied");
  obs::MetricId ae_rounds = obs::MetricId::intern("ae.rounds");
  obs::MetricId ae_digests_received =
      obs::MetricId::intern("ae.digests_received");
  obs::MetricId ae_repair_bytes = obs::MetricId::intern("ae.repair.bytes");
  obs::MetricId ae_repair_updates_sent =
      obs::MetricId::intern("ae.repair.updates_sent");
  obs::MetricId ae_repair_updates_applied =
      obs::MetricId::intern("ae.repair.updates_applied");
  obs::MetricId ae_heal_rounds = obs::MetricId::intern("ae.heal_rounds");
  obs::MetricId migrate_updates_applied =
      obs::MetricId::intern("migrate.updates_applied");
  obs::MetricId replicate_resends =
      obs::MetricId::intern("replicate.resends");
  obs::MetricId replicate_gaveups =
      obs::MetricId::intern("replicate.resend_gaveups");
  obs::MetricId gaveup_digests =
      obs::MetricId::intern("ae.gaveup_digests");
  obs::MetricId wack_satisfied = obs::MetricId::intern("wack.satisfied");
  obs::MetricId wack_failed = obs::MetricId::intern("wack.failed");
};

const AgentMetrics& agent_metrics() {
  static const AgentMetrics m;
  return m;
}

}  // namespace

ReplicaSyncAgent::ReplicaSyncAgent(core::IdeaNode& node,
                                   net::Transport& transport,
                                   std::uint32_t group_size,
                                   ReplicaSyncOptions options)
    : node_(node),
      transport_(transport),
      group_size_(group_size),
      options_(options) {
  node_.dispatcher().route("shard.", this);
}

ReplicaSyncAgent::~ReplicaSyncAgent() {
  stop_anti_entropy();
  for (auto& [key, pending] : pending_acks_) {
    transport_.cancel_call(pending.timer);
    // A write concern that never completed must not leave its client
    // handle pending forever: the group is tearing down (crash, epoch
    // rebuild, shutdown), so the honest answer is "ack target not met".
    finish_concern(pending, /*satisfied=*/false);
  }
  node_.dispatcher().unroute("shard.");
}

bool ReplicaSyncAgent::put(std::string content, double meta_delta,
                           const obs::TraceContext& tc) {
  return put_with_concern(std::move(content), meta_delta, PutConcern{}, tc);
}

bool ReplicaSyncAgent::put_with_concern(std::string content,
                                        double meta_delta, PutConcern concern,
                                        const obs::TraceContext& tc,
                                        const replica::Update** applied_out) {
  if (applied_out != nullptr) *applied_out = nullptr;
  if (!node_.write(std::move(content), meta_delta)) {
    ++stats_.blocked_puts;
    if (concern.on_result) concern.on_result(false, 0);
    return false;
  }
  ++stats_.puts;

  const replica::ReplicaStore& store = node_.store();
  const replica::Update* u =
      store.find(replica::UpdateKey{node_.id(), store.local_seq()});
  if (u == nullptr) {  // defensive; apply_local just stored it
    if (concern.on_result) concern.on_result(concern.peer_acks_needed == 0, 1);
    return true;
  }
  if (applied_out != nullptr) *applied_out = u;

  // One shared allocation for the whole fan-out; each send refcounts it.
  // A write-concern put asks for acks even when the group's resend
  // feature is off — the flag is metadata, so flows that never declare a
  // concern stay byte-identical.
  const bool want_ack =
      options_.resend_timeout > 0 || concern.peer_acks_needed > 0;
  const net::Payload payload = std::vector<replica::Update>{*u};
  const auto bytes = static_cast<std::uint32_t>(16 + u->wire_bytes());
  std::uint64_t pushed = 0;
  for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
    if (rank == node_.id()) continue;
    net::Message msg;
    msg.from = node_.id();
    msg.to = rank;
    msg.file = node_.file();
    msg.type = kReplicateType;
    msg.payload = payload;
    msg.wire_bytes = bytes;
    msg.want_ack = want_ack;
    stamp_wire_span(msg, tc, "msg.shard.replicate");
    transport_.send(std::move(msg));
    ++stats_.pushed;
    ++pushed;
  }
  if (pushed > 0) meter_.add(agent_metrics().replicate_pushed, pushed);

  if (concern.on_result && concern.peer_acks_needed == 0) {
    // w = 1 under the concern API: the local apply is the whole target.
    ++stats_.wack_satisfied;
    meter_.add(agent_metrics().wack_satisfied);
    concern.on_result(true, 1);
    concern.on_result = nullptr;
  }
  if (pushed > 0 && (options_.resend_timeout > 0 || concern.on_result)) {
    // track_pending fails the concern itself when tracking is impossible
    // (group too large for the rank bitmask).
    if (track_pending(*u, concern.peer_acks_needed,
                      std::move(concern.on_result)) &&
        concern.peer_acks_needed > 0) {
      ++stats_.wack_tracked;
    }
  } else if (concern.on_result) {
    // Nothing pushed (single-member group) but peer acks were required:
    // the target is unreachable by construction.
    ++stats_.wack_failed;
    meter_.add(agent_metrics().wack_failed);
    concern.on_result(false, 1);
  }
  return true;
}

SimDuration ReplicaSyncAgent::effective_resend_timeout() const {
  // Write-concern puts need the ack/re-send machinery even when the
  // deployment left it off; half a second spans several cross-continent
  // round trips under the latency model without dragging out give-ups.
  return options_.resend_timeout > 0 ? options_.resend_timeout : msec(500);
}

void ReplicaSyncAgent::finish_concern(PendingReplication& pending,
                                      bool satisfied) {
  if (!pending.on_result) return;
  if (satisfied) {
    ++stats_.wack_satisfied;
    meter_.add(agent_metrics().wack_satisfied);
  } else {
    ++stats_.wack_failed;
    meter_.add(agent_metrics().wack_failed);
  }
  WriteConcernCallback cb = std::move(pending.on_result);
  pending.on_result = nullptr;
  cb(satisfied, 1 + pending.acks_got);
}

bool ReplicaSyncAgent::track_pending(const replica::Update& u,
                                     std::uint32_t acks_needed,
                                     WriteConcernCallback on_result) {
  if (group_size_ > 64) {  // unacked is a rank bitmask
    if (on_result) {
      ++stats_.wack_failed;
      meter_.add(agent_metrics().wack_failed);
      on_result(false, 1);
    }
    return false;
  }
  PendingReplication pending;
  pending.update = u;
  for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
    if (rank != node_.id()) pending.unacked |= 1ull << rank;
  }
  pending.resends_left = options_.max_resends;
  pending.acks_needed = acks_needed;
  pending.on_result = std::move(on_result);
  auto [it, inserted] = pending_acks_.emplace(u.key, std::move(pending));
  if (!inserted) return false;  // defensive; keys are unique per put
  it->second.timer = transport_.call_after(
      effective_resend_timeout(),
      [this, key = u.key] { on_resend_timeout(key); });
  return true;
}

void ReplicaSyncAgent::on_resend_timeout(replica::UpdateKey key) {
  auto it = pending_acks_.find(key);
  if (it == pending_acks_.end()) return;
  PendingReplication& pending = it->second;
  if (pending.resends_left == 0) {
    // Budget exhausted: stop tracking — but never silently.  With
    // anti-entropy off (the default) an abandoned update would diverge
    // the group forever, so the give-up immediately digests the silent
    // ranks: if a peer merely lost the acks this is one cheap no-delta
    // exchange, and if it lost the update the repair re-delivers it.  A
    // pending write concern fails here (its targeted heal is already on
    // the wire, so failure means "unacked", not "lost").
    ++stats_.resend_gaveups;
    meter_.add(agent_metrics().replicate_gaveups);
    for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
      if ((pending.unacked & (1ull << rank)) == 0) continue;
      anti_entropy_with(rank);
      ++stats_.gaveup_ae_digests;
      meter_.add(agent_metrics().gaveup_digests);
    }
    finish_concern(pending, /*satisfied=*/false);
    pending_acks_.erase(it);
    return;
  }
  --pending.resends_left;
  const net::Payload payload = std::vector<replica::Update>{pending.update};
  const auto bytes =
      static_cast<std::uint32_t>(16 + pending.update.wire_bytes());
  std::uint64_t resent = 0;
  for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
    if ((pending.unacked & (1ull << rank)) == 0) continue;
    net::Message msg;
    msg.from = node_.id();
    msg.to = rank;
    msg.file = node_.file();
    msg.type = kReplicateType;
    msg.payload = payload;
    msg.wire_bytes = bytes;
    msg.want_ack = true;  // a tracked push always wants its ack back
    transport_.send(std::move(msg));
    ++stats_.resends;
    ++resent;
  }
  if (resent > 0) meter_.add(agent_metrics().replicate_resends, resent);
  pending.timer = transport_.call_after(
      effective_resend_timeout(), [this, key] { on_resend_timeout(key); });
}

void ReplicaSyncAgent::start_anti_entropy(SimDuration period) {
  stop_anti_entropy();
  if (period <= 0 || group_size_ < 2) return;
  anti_entropy_timer_ =
      transport_.call_every(period, [this] { anti_entropy_round(); });
}

void ReplicaSyncAgent::stop_anti_entropy() {
  if (anti_entropy_timer_ != 0) {
    transport_.cancel_call(anti_entropy_timer_);
    anti_entropy_timer_ = 0;
  }
}

void ReplicaSyncAgent::anti_entropy_round() {
  if (group_size_ < 2) return;
  ++stats_.ae_rounds;
  ++rounds_since_heal_;
  meter_.add(agent_metrics().ae_rounds);
  // Deterministic rotation: consecutive rounds visit every other rank
  // before repeating, so a pairwise exchange happens within k-1 periods.
  const std::uint32_t offset = 1 + (ae_rotation_++ % (group_size_ - 1));
  send_digest(static_cast<NodeId>((node_.id() + offset) % group_size_));
}

void ReplicaSyncAgent::anti_entropy_with(NodeId peer_rank) {
  if (peer_rank == node_.id() || peer_rank >= group_size_) return;
  send_digest(peer_rank);
}

void ReplicaSyncAgent::send_digest(NodeId peer) {
  net::Message msg;
  msg.from = node_.id();
  msg.to = peer;
  msg.file = node_.file();
  msg.type = kDigestType;
  // The digest is the store's shared EVV snapshot: zero-copy, and always
  // current because every store mutation invalidates the snapshot.
  msg.payload = net::Payload::wrap(node_.store().evv_snapshot());
  msg.wire_bytes = 16 + node_.store().evv().wire_bytes();
  // Adopt the repair trace the router parked for this file (a traced read
  // that observed staleness): the round is tagged, not altered, and the
  // parked context stays until a traced repair actually heals something.
  if (obs_ != nullptr) {
    stamp_wire_span(msg, obs_->peek_repair_trace(node_.file()),
                    "msg.shard.digest");
  }
  transport_.send(std::move(msg));
}

std::size_t ReplicaSyncAgent::stream_state(
    const std::vector<replica::Update>& updates) {
  if (group_size_ < 2) return 0;
  const net::Payload payload = updates;  // one allocation, shared below
  const std::uint32_t bytes = batch_wire_bytes(updates);
  std::size_t sent = 0;
  for (std::uint32_t rank = 0; rank < group_size_; ++rank) {
    if (rank == node_.id()) continue;
    net::Message msg;
    msg.from = node_.id();
    msg.to = rank;
    msg.file = node_.file();
    msg.type = kMigrateType;
    msg.payload = payload;
    msg.wire_bytes = bytes;
    transport_.send(std::move(msg));
    ++sent;
  }
  return sent;
}

std::size_t ReplicaSyncAgent::apply_batch(
    const std::vector<replica::Update>& updates,
    std::uint64_t& applied_stat) {
  std::size_t applied = 0;
  for (const replica::Update& u : updates) {
    const replica::Update* held = node_.store().find(u.key);
    if (held != nullptr) {
      // Counts cover the update, but its invalidation flag may be news
      // (the sender saw a resolution outcome this replica missed).
      if (u.invalidated && !held->invalidated) {
        node_.store().invalidate(u.key);
        ++stats_.invalidations_healed;
      } else {
        ++stats_.redundant;
      }
      continue;
    }
    if (node_.store().apply_remote(u)) {
      ++applied_stat;
      ++applied;
    }
  }
  if (applied > 0) node_.note_replica_activity();
  return applied;
}

void ReplicaSyncAgent::send_repair(NodeId to_rank,
                                   std::vector<replica::Update> updates,
                                   bool respond,
                                   const obs::TraceContext& tc) {
  RepairPayload body;
  body.sender_counts = node_.store().evv().counts();
  body.invalidated = node_.store().invalidated_keys();
  body.respond = respond;
  body.updates = std::move(updates);

  net::Message msg;
  msg.from = node_.id();
  msg.to = to_rank;
  msg.file = node_.file();
  msg.type = kRepairType;
  msg.wire_bytes =
      batch_wire_bytes(body.updates) +
      static_cast<std::uint32_t>(12 * body.sender_counts.writer_count()) +
      static_cast<std::uint32_t>(12 * body.invalidated.size());
  stats_.repair_updates_sent += body.updates.size();
  if (!body.updates.empty()) {
    meter_.add(agent_metrics().ae_repair_updates_sent, body.updates.size());
  }
  meter_.add(agent_metrics().ae_repair_bytes, msg.wire_bytes);
  stamp_wire_span(msg, tc, "msg.shard.repair");
  msg.payload = std::move(body);
  transport_.send(std::move(msg));
  ++stats_.repairs_sent;
}

void ReplicaSyncAgent::on_message(const net::Message& msg) {
  // Structured log context for everything this delivery triggers, and the
  // inbound trace: close the sender's wire span at delivery time, then
  // parent any work this handler records from it.
  std::optional<LogTagScope> tags;
  if (obs_ != nullptr) {
    tags.emplace(LogTags{transport_.now(), endpoint_, msg.trace});
  }
  const obs::TraceContext inbound{msg.trace, msg.span};
  obs::Tracer* tr = tracer();
  if (tr != nullptr && inbound.active()) {
    tr->end_span(msg.span, transport_.now());
  }

  if (msg.type == kReplicateType) {
    const auto& batch = msg.payload.as<std::vector<replica::Update>>();
    const std::size_t applied = apply_batch(batch, stats_.applied);
    if (applied > 0) meter_.add(agent_metrics().replicate_applied, applied);
    if (tr != nullptr && inbound.active() && applied > 0) {
      tr->instant(inbound, "replicate.apply", endpoint_, msg.file,
                  transport_.now());
    }
    // Ack every replicate (even redundant ones — the sender wants
    // delivery confirmation, and re-sends of an update we already hold
    // must still clear its pending slot over there).  Besides the
    // group-wide resend feature, individual pushes ask via want_ack
    // (write-concern puts in deployments that left the feature off).
    if ((options_.resend_timeout > 0 || msg.want_ack) && !batch.empty()) {
      net::Message ack;
      ack.from = node_.id();
      ack.to = msg.from;
      ack.file = node_.file();
      ack.type = kAckType;
      ack.payload = batch.front().key;  // a push carries one update
      ack.wire_bytes = 24;
      transport_.send(std::move(ack));
      ++stats_.acks_sent;
    }
    return;
  }
  if (msg.type == kAckType) {
    ++stats_.acks_received;
    auto it = pending_acks_.find(msg.payload.as<replica::UpdateKey>());
    if (it == pending_acks_.end()) return;  // already resolved/abandoned
    PendingReplication& pending = it->second;
    const std::uint64_t bit = 1ull << msg.from;
    if ((pending.unacked & bit) != 0) {
      // First ack from this rank (duplicates from re-sends don't
      // double-count toward a write concern).
      pending.unacked &= ~bit;
      ++pending.acks_got;
      if (pending.on_result && pending.acks_got >= pending.acks_needed) {
        finish_concern(pending, /*satisfied=*/true);
      }
    }
    if (pending.unacked == 0) {
      transport_.cancel_call(pending.timer);
      pending_acks_.erase(it);
    }
    return;
  }
  if (msg.type == kDigestType) {
    ++stats_.digests_received;
    meter_.add(agent_metrics().ae_digests_received);
    const auto& peer_evv = msg.payload.as<vv::ExtendedVersionVector>();
    if (on_freshness_) on_freshness_(msg.from, peer_evv.counts().total());
    // Always reply, even with nothing to offer: the initiator needs our
    // counts to push back the other half of the delta.  A traced digest's
    // repair joins the same trace.
    send_repair(msg.from,
                node_.store().updates_ahead_of(peer_evv.counts()),
                /*respond=*/true, inbound);
    return;
  }
  if (msg.type == kRepairType) {
    const auto& body = msg.payload.as<RepairPayload>();
    if (on_freshness_) on_freshness_(msg.from, body.sender_counts.total());
    const std::size_t applied =
        apply_batch(body.updates, stats_.repair_updates_applied);
    if (applied > 0) {
      meter_.add(agent_metrics().ae_repair_updates_applied, applied);
      meter_.observe(agent_metrics().ae_heal_rounds, rounds_since_heal_);
      rounds_since_heal_ = 0;
      if (tr != nullptr && inbound.active()) {
        tr->instant(inbound, "ae.repair.apply", endpoint_, msg.file,
                    transport_.now());
      }
      // This repair healed real staleness under the parked trace: the
      // escalation→heal loop the router asked to watch is closed.
      if (obs_ != nullptr && inbound.active() &&
          obs_->peek_repair_trace(msg.file).trace == inbound.trace) {
        obs_->clear_repair_trace(msg.file);
      }
    }
    for (const replica::UpdateKey& key : body.invalidated) {
      const replica::Update* held = node_.store().find(key);
      if (held != nullptr && !held->invalidated) {
        node_.store().invalidate(key);
        ++stats_.invalidations_healed;
      }
    }
    if (body.respond) {
      std::vector<replica::Update> back =
          node_.store().updates_ahead_of(body.sender_counts);
      if (!back.empty()) {
        send_repair(msg.from, std::move(back), /*respond=*/false, inbound);
      }
    }
    return;
  }
  if (msg.type == kMigrateType) {
    const std::size_t applied =
        apply_batch(msg.payload.as<std::vector<replica::Update>>(),
                    stats_.migrate_updates_applied);
    if (applied > 0) {
      meter_.add(agent_metrics().migrate_updates_applied, applied);
    }
  }
}

void ReplicaSyncAgent::set_observability(obs::Observability* observability,
                                         NodeId endpoint) {
  obs_ = observability;
  endpoint_ = endpoint;
  meter_ = obs_ == nullptr ? obs::Meter()
                           : obs_->endpoint_meter(endpoint);
}

void ReplicaSyncAgent::stamp_wire_span(net::Message& msg,
                                       const obs::TraceContext& tc,
                                       std::string_view span_name) {
  obs::Tracer* tr = tracer();
  if (tr == nullptr || !tc.active()) return;
  const obs::TraceContext wire =
      tr->begin_span(tc, span_name, endpoint_, msg.file, transport_.now());
  msg.trace = wire.trace;
  msg.span = wire.span;
}

}  // namespace idea::shard
