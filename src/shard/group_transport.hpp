#pragma once
/// \file group_transport.hpp
/// \brief Per-file transport adapter mapping replica-group ranks to real
///        endpoint ids.
///
/// The per-file protocol stack (RanSub tree, gossip peer sampling, the
/// two-layer view) addresses a dense id space 0..k-1 with node 0 as the
/// RanSub root.  A consistent-hash replica group, however, is an arbitrary
/// subset of endpoints, e.g. {3, 17, 29}.  GroupTransport bridges the two:
/// each group member's IdeaNode runs with its *rank* within the group as
/// its node id, outbound messages have rank ids translated to real
/// endpoint ids, and inbound messages are translated back before being
/// demultiplexed into the node's dispatcher.  Latency, loss and clock skew
/// still come from the real endpoint pair, so the group inherits the
/// simulated topology faithfully.

#include <vector>

#include "net/transport.hpp"

namespace idea::shard {

class GroupTransport final : public net::Transport,
                             public net::MessageHandler {
 public:
  /// `inner` is the endpoint-id-space transport (borrowed; must outlive
  /// this adapter *and* the IdeaNode using it, which cancels its timers
  /// through here on destruction).  `members` maps rank -> endpoint id and
  /// must be identical on every member, in the same order.  `epoch` fences
  /// group incarnations: outbound messages are stamped with it and inbound
  /// messages from another epoch are dropped, so traffic still in flight
  /// when a migration rebuilds the group cannot reach the new stacks under
  /// remapped ranks.  All members of one incarnation must share the epoch.
  GroupTransport(net::Transport& inner, std::vector<NodeId> members,
                 std::uint32_t self_rank, std::uint32_t epoch = 0);

  /// Where translated inbound messages go (the IdeaNode's dispatcher).
  /// Set after the node is constructed; messages arriving earlier drop.
  void set_sink(net::MessageHandler* sink) { sink_ = sink; }

  [[nodiscard]] const std::vector<NodeId>& members() const {
    return members_;
  }
  [[nodiscard]] std::uint32_t self_rank() const { return self_rank_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Rank of a real endpoint id within the group; kNoNode if absent.
  [[nodiscard]] NodeId rank_of(NodeId endpoint) const;

  // --- net::Transport (rank id space) ---------------------------------
  void attach(NodeId, net::MessageHandler*) override {}  // service-managed
  void detach(NodeId) override {}
  void send(net::Message msg) override;
  [[nodiscard]] SimTime now() const override { return inner_.now(); }
  [[nodiscard]] SimTime local_time(NodeId rank) const override;
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override {
    return inner_.call_after(delay, std::move(fn));
  }
  std::uint64_t call_every(SimDuration period,
                           std::function<void()> fn) override {
    return inner_.call_every(period, std::move(fn));
  }
  void cancel_call(std::uint64_t handle) override {
    inner_.cancel_call(handle);
  }

  // --- net::MessageHandler (endpoint id space, via IdeaService) --------
  void on_message(const net::Message& msg) override;

 private:
  net::Transport& inner_;
  std::vector<NodeId> members_;  ///< rank -> endpoint id
  std::uint32_t self_rank_;
  std::uint32_t epoch_;
  net::MessageHandler* sink_ = nullptr;
};

}  // namespace idea::shard
