#pragma once
/// \file replica_sync.hpp
/// \brief Pushes application writes to the rest of a file's replica group.
///
/// IDEA's own machinery ships update contents only inside resolution
/// rounds among top-layer writers; a replica group needs every durable
/// copy to hold the data even when a single coordinator does all the
/// writing.  ReplicaSyncAgent closes that gap: the coordinator's put()
/// applies the write locally, then pushes the new update to every other
/// rank as a "shard.replicate" message.  Receivers apply it idempotently
/// (ReplicaStore::apply_remote buffers out-of-order arrivals) and record
/// hosting activity so the whole group stays in the file's top layer —
/// from there, the stock detection/resolution protocols keep concurrently
/// written replicas convergent.

#include <string>
#include <vector>

#include "core/idea_node.hpp"
#include "net/transport.hpp"

namespace idea::shard {

struct ReplicaSyncStats {
  std::uint64_t puts = 0;            ///< Local writes accepted.
  std::uint64_t blocked_puts = 0;    ///< Writes refused mid-resolution.
  std::uint64_t pushed = 0;          ///< Updates sent to peers.
  std::uint64_t applied = 0;         ///< Remote updates applied here.
  std::uint64_t redundant = 0;       ///< Remote updates we already held.
};

class ReplicaSyncAgent final : public net::MessageHandler {
 public:
  /// `node` and `transport` are borrowed; `transport` is the file's
  /// rank-space group transport and `group_size` its member count.
  /// Registers itself on the node's dispatcher under "shard.".
  ReplicaSyncAgent(core::IdeaNode& node, net::Transport& transport,
                   std::uint32_t group_size);
  ~ReplicaSyncAgent() override;

  ReplicaSyncAgent(const ReplicaSyncAgent&) = delete;
  ReplicaSyncAgent& operator=(const ReplicaSyncAgent&) = delete;

  /// Apply a write locally and push it to every other group member.
  /// Returns false (nothing applied, nothing pushed) while resolution
  /// blocks updates, mirroring IdeaNode::write.
  bool put(std::string content, double meta_delta);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] const ReplicaSyncStats& stats() const { return stats_; }

  static const net::MsgType kReplicateType;  ///< Interned "shard.replicate".

 private:
  core::IdeaNode& node_;
  net::Transport& transport_;
  std::uint32_t group_size_;
  ReplicaSyncStats stats_;
};

}  // namespace idea::shard
