#pragma once
/// \file replica_sync.hpp
/// \brief Pushes application writes to the rest of a file's replica group,
///        heals cold replicas with periodic anti-entropy, and streams whole
///        replica states during membership migration.
///
/// IDEA's own machinery ships update contents only inside resolution
/// rounds among top-layer writers; a replica group needs every durable
/// copy to hold the data even when a single coordinator does all the
/// writing.  ReplicaSyncAgent closes that gap three ways:
///
///  * Push ("shard.replicate"): the coordinator's put() applies the write
///    locally, then pushes the new update to every other rank.  Receivers
///    apply it idempotently (ReplicaStore::apply_remote buffers
///    out-of-order arrivals) and record hosting activity so the whole
///    group stays in the file's top layer.
///
///  * Anti-entropy ("shard.digest" / "shard.repair"): a push lost to the
///    network would leave a replica cold forever, so each agent may run a
///    periodic push-pull round: it sends its EVV digest (the shared
///    ReplicaStore::evv_snapshot() allocation — no copy) to one rotating
///    peer; the peer replies with the updates the digest shows missing
///    (ReplicaStore::updates_ahead_of) plus its own counts, and the
///    initiator pushes back whatever the peer lacks in turn.  Any single
///    surviving copy of an update therefore spreads to the whole group in
///    O(group size) rounds, whatever the loss pattern was.
///
///  * State streaming ("shard.migrate"): when membership changes move a
///    file to a new replica group, the new coordinator adopts the merged
///    log and streams it to the other ranks as one batch message each.
///
///  * Acked replication ("shard.ack", opt-in): with a resend timeout
///    configured, every replicate push is tracked until each peer acks
///    it; unacked peers get a bounded number of re-sends.  This is the
///    crash-model plumbing — a coordinator whose replica died mid-
///    replication retries for a while and then gives up cleanly instead
///    of wedging, and a briefly-unreachable replica still converges
///    without waiting for anti-entropy.  A give-up is never silent: the
///    abandoned update's silent ranks get an immediate targeted digest,
///    so the group converges even with periodic anti-entropy off.
///
///  * Write concerns (put_with_concern): a client-declared WriteConcern{w}
///    rides the same ack machinery — the put completes its callback once
///    w - 1 peers confirmed their apply (pushes carry a want_ack flag so
///    acks flow even when the group's resend feature is off), or fails it
///    when the re-send budget runs out first.

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/idea_node.hpp"
#include "net/transport.hpp"
#include "obs/observability.hpp"
#include "vv/version_vector.hpp"

namespace idea::shard {

struct ReplicaSyncStats {
  std::uint64_t puts = 0;            ///< Local writes accepted.
  std::uint64_t blocked_puts = 0;    ///< Writes refused mid-resolution.
  std::uint64_t pushed = 0;          ///< Updates sent to peers.
  std::uint64_t applied = 0;         ///< Remote updates applied here.
  std::uint64_t redundant = 0;       ///< Remote updates we already held.
  // Anti-entropy.
  std::uint64_t ae_rounds = 0;        ///< Digest rounds initiated here.
  std::uint64_t digests_received = 0;
  std::uint64_t repairs_sent = 0;     ///< Repair messages sent.
  std::uint64_t repair_updates_sent = 0;
  std::uint64_t repair_updates_applied = 0;
  std::uint64_t invalidations_healed = 0;  ///< Flags OR'd in via repair.
  // Migration streaming.
  std::uint64_t migrate_updates_applied = 0;
  // Acked replication (all zero while the feature is off).
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t resends = 0;          ///< Re-sent replicate messages.
  std::uint64_t resend_gaveups = 0;   ///< Updates abandoned after budget.
  /// Targeted digests sent at give-up time so an abandoned update cannot
  /// silently diverge the group (see on_resend_timeout).
  std::uint64_t gaveup_ae_digests = 0;
  // Write-concern puts (all zero until a client declares w > 1).
  std::uint64_t wack_tracked = 0;    ///< Puts awaiting a peer-ack target.
  std::uint64_t wack_satisfied = 0;  ///< Ack target reached.
  std::uint64_t wack_failed = 0;     ///< Abandoned before the target.
};

/// Opt-in replication ack/re-send behavior.  The zero default keeps every
/// pre-existing fixed-seed replay byte-identical: no acks are sent, no
/// timers armed.
struct ReplicaSyncOptions {
  /// Per-push ack timeout; a push unacked after this long is re-sent to
  /// the silent ranks.  0 disables acks and re-sends entirely.
  SimDuration resend_timeout = 0;
  /// Re-send budget per update; exhausted pushes are abandoned (bounded —
  /// anti-entropy owns healing a peer that stays dark, and a peer that
  /// crashed for good must not pin sender state forever).
  std::uint32_t max_resends = 2;
};

/// Outcome callback of one write-concern put: fired exactly once, either
/// when the ack target is reached (`satisfied`) or when the re-send budget
/// runs out / the agent tears down first.  `acks` counts confirmed group
/// applies including the coordinator's own; hinted stand-ins are credited
/// by the routing layer, not here.
using WriteConcernCallback =
    std::function<void(bool satisfied, std::uint32_t acks)>;

/// Ack requirement of one put (see ReplicaSyncAgent::put_with_concern).
struct PutConcern {
  /// Peer applies required beyond the coordinator's local one.  0 with an
  /// on_result set means w = 1: the callback fires synchronously.
  std::uint32_t peer_acks_needed = 0;
  WriteConcernCallback on_result;
};

/// Body of a "shard.repair" message: the updates the digest sender was
/// missing, plus the replier's own counts so the initiator can push back
/// the other half of the delta (`respond` asks for exactly one such reply,
/// keeping a round at three messages, not a ping-pong).
///
/// `invalidated` carries the replier's full invalidated-key set: version
/// counts cannot express invalidation (the update stays in the log), so a
/// replica that missed a resolution's invalidate message would otherwise
/// diverge forever — no digest would ever re-send an update its counts
/// already cover.  Receivers OR the flags in; the set is tiny in practice
/// (only conflict-resolved updates carry it).
struct RepairPayload {
  std::vector<replica::Update> updates;
  std::vector<replica::UpdateKey> invalidated;
  vv::VersionVector sender_counts;
  bool respond = false;
};

class ReplicaSyncAgent final : public net::MessageHandler {
 public:
  /// `node` and `transport` are borrowed; `transport` is the file's
  /// rank-space group transport and `group_size` its member count.
  /// Registers itself on the node's dispatcher under "shard.".  All
  /// members of one group must share `options` (receivers only ack when
  /// the feature is on).
  ReplicaSyncAgent(core::IdeaNode& node, net::Transport& transport,
                   std::uint32_t group_size, ReplicaSyncOptions options = {});
  ~ReplicaSyncAgent() override;

  ReplicaSyncAgent(const ReplicaSyncAgent&) = delete;
  ReplicaSyncAgent& operator=(const ReplicaSyncAgent&) = delete;

  /// Apply a write locally and push it to every other group member.
  /// Returns false (nothing applied, nothing pushed) while resolution
  /// blocks updates, mirroring IdeaNode::write.  A traced write (`tc`
  /// active) records each replication push as a wire span of `tc`'s
  /// trace, closed by the receiving rank at delivery.
  bool put(std::string content, double meta_delta,
           const obs::TraceContext& tc = {});

  /// put() plus a write-concern: the push fan-out asks receivers for
  /// delivery acks (even when the group's resend feature is off — the
  /// messages carry a want_ack flag), the put is tracked against the
  /// group's resend budget, and `concern.on_result` fires exactly once —
  /// satisfied when `peer_acks_needed` distinct ranks confirmed their
  /// apply, failed when the budget runs out first (at which point the
  /// give-up path has already scheduled targeted anti-entropy, so the
  /// data still converges even though the ack did not).  With an empty
  /// concern this is byte-identical to put().  `applied_out`, when
  /// non-null, receives the locally applied update (for hint queueing).
  bool put_with_concern(std::string content, double meta_delta,
                        PutConcern concern, const obs::TraceContext& tc = {},
                        const replica::Update** applied_out = nullptr);

  /// Arm the periodic anti-entropy exchange (idempotent re-arm; 0 stops).
  /// Rounds rotate deterministically over the other ranks, so every pair
  /// digests each other within group_size - 1 periods.
  void start_anti_entropy(SimDuration period);
  void stop_anti_entropy();

  /// Run one anti-entropy round right now (what the timer fires; exposed
  /// so tests and benches can count rounds-to-convergence exactly).
  void anti_entropy_round();

  /// One targeted digest exchange with `peer_rank`, outside the periodic
  /// rotation (it does not advance the round-robin cursor).  Used by the
  /// give-up path and by the cluster to heal a specific returning member
  /// (hinted-handoff drain) without waiting for the rotation to come
  /// around.  No-op on self/out-of-range ranks.
  void anti_entropy_with(NodeId peer_rank);

  /// Observer for peer version counts learned from the digest/repair
  /// exchange: called as (peer_rank, peer_total_versions) whenever a
  /// digest or repair reveals how much a peer holds.  The shard layer
  /// uses this to piggyback per-replica freshness hints to the request
  /// router without any extra messages.
  using FreshnessListener =
      std::function<void(NodeId peer_rank, std::uint64_t versions)>;
  void set_freshness_listener(FreshnessListener fn) {
    on_freshness_ = std::move(fn);
  }

  /// Hook this rank into the deployment's observability: `endpoint` is
  /// the rank's *global* endpoint id (node_.id() is the group rank), used
  /// for the per-endpoint registry, span placement and log tags.  The
  /// agent records replicate/AE/migrate metrics into the endpoint
  /// registry, stamps wire spans onto traced messages, and adopts the
  /// pending repair trace the router parks for stale reads (the
  /// escalation→heal causal link).
  void set_observability(obs::Observability* observability, NodeId endpoint);

  /// Stream a full state batch to every other rank as "shard.migrate"
  /// messages sharing one payload allocation.  Used by the cluster after
  /// seeding this (coordinator) replica's store during migration; returns
  /// the number of messages sent.
  std::size_t stream_state(const std::vector<replica::Update>& updates);

  void on_message(const net::Message& msg) override;

  [[nodiscard]] const ReplicaSyncStats& stats() const { return stats_; }
  [[nodiscard]] bool anti_entropy_running() const {
    return anti_entropy_timer_ != 0;
  }

  /// Replicate pushes currently awaiting acks (0 when the feature is off
  /// or everything acked — a crashed peer cannot pin this forever).
  [[nodiscard]] std::size_t pending_acks() const {
    return pending_acks_.size();
  }

  static const net::MsgType kReplicateType;  ///< Interned "shard.replicate".
  static const net::MsgType kDigestType;     ///< Interned "shard.digest".
  static const net::MsgType kRepairType;     ///< Interned "shard.repair".
  static const net::MsgType kMigrateType;    ///< Interned "shard.migrate".
  static const net::MsgType kAckType;        ///< Interned "shard.ack".

 private:
  /// Apply a batch of updates (repair or migration), bumping `applied_stat`
  /// per newly applied update and noting replica activity once.
  std::size_t apply_batch(const std::vector<replica::Update>& updates,
                          std::uint64_t& applied_stat);
  void send_repair(NodeId to_rank, std::vector<replica::Update> updates,
                   bool respond, const obs::TraceContext& tc = {});

  /// The deployment tracer (nullptr when untraced/unwired).
  [[nodiscard]] obs::Tracer* tracer() const {
    return obs_ == nullptr ? nullptr : obs_->tracer();
  }
  /// Open a wire span for `msg` under `tc` and stamp the trace/span ids
  /// onto the message; no-op (message untouched) when untraced.
  void stamp_wire_span(net::Message& msg, const obs::TraceContext& tc,
                       std::string_view span_name);

  /// One tracked replicate push awaiting acks.
  struct PendingReplication {
    replica::Update update;       ///< Kept for re-sends.
    std::uint64_t unacked = 0;    ///< Bitmask of silent ranks.
    std::uint32_t resends_left = 0;
    std::uint64_t timer = 0;
    // Write-concern bookkeeping (inert for plain tracked puts).
    std::uint32_t acks_needed = 0;  ///< Peer acks the concern requires.
    std::uint32_t acks_got = 0;     ///< Distinct ranks confirmed so far.
    WriteConcernCallback on_result;  ///< Unfired iff non-null.
  };

  /// Build and send one digest message to `peer` (the shared anti-entropy
  /// body of the periodic round and the targeted exchange).
  void send_digest(NodeId peer);

  /// The ack timeout tracked puts run under: the configured resend
  /// timeout, or a fixed default when a write concern needs tracking
  /// while the group's resend feature is off.
  [[nodiscard]] SimDuration effective_resend_timeout() const;

  /// Start tracking a just-pushed update; returns false when the group is
  /// too large for the rank bitmask (the caller fails the concern).
  bool track_pending(const replica::Update& u, std::uint32_t acks_needed,
                     WriteConcernCallback on_result);
  void on_resend_timeout(replica::UpdateKey key);
  /// Fire-and-clear a pending put's concern callback (exactly-once).
  void finish_concern(PendingReplication& pending, bool satisfied);

  core::IdeaNode& node_;
  net::Transport& transport_;
  std::uint32_t group_size_;
  ReplicaSyncOptions options_;
  ReplicaSyncStats stats_;
  std::map<replica::UpdateKey, PendingReplication> pending_acks_;
  std::uint64_t anti_entropy_timer_ = 0;
  std::uint32_t ae_rotation_ = 0;  ///< Round-robin peer cursor.
  FreshnessListener on_freshness_;
  obs::Observability* obs_ = nullptr;
  NodeId endpoint_ = kNoNode;  ///< Global endpoint id of this rank.
  obs::Meter meter_;           ///< This endpoint's registry (null = off).
  std::uint64_t rounds_since_heal_ = 0;  ///< AE rounds since last repair.
};

}  // namespace idea::shard
