#pragma once
/// \file hash_ring.hpp
/// \brief Consistent-hash placement ring: FileId -> home replica group.
///
/// The multi-tenant cluster layer spreads files across service endpoints
/// the standard way: every endpoint owns `vnodes_per_node` pseudo-random
/// points on a 64-bit ring, a file hashes to a ring position, and its
/// replica group is the next k *distinct* endpoints clockwise.  Virtual
/// nodes smooth the per-endpoint load; consistent hashing guarantees that
/// an endpoint joining or leaving only remaps the keys it gains or loses
/// (~1/N of the keyspace), never reshuffling the rest — the property the
/// rebalance() helper quantifies and tests/shard/hash_ring_test.cpp pins.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/ids.hpp"

namespace idea::shard {

struct HashRingParams {
  /// Ring points per endpoint.  More points = smoother load at the cost of
  /// ring size; 64-128 is the usual sweet spot.
  std::uint32_t vnodes_per_node = 96;
  /// Salt for the point/key hash streams, so independent rings (e.g. a
  /// planned-next-epoch ring) can be compared without aliasing.
  std::uint64_t seed = 0x51A2DULL;
};

/// What a membership change did to a keyset's placement.
struct RebalanceStats {
  std::size_t keys = 0;           ///< Keys examined.
  std::size_t moved = 0;          ///< Keys whose primary endpoint changed.
  std::size_t group_changed = 0;  ///< Keys whose replica group changed.

  [[nodiscard]] double moved_fraction() const {
    return keys == 0 ? 0.0 : static_cast<double>(moved) /
                                 static_cast<double>(keys);
  }
  [[nodiscard]] double group_changed_fraction() const {
    return keys == 0 ? 0.0 : static_cast<double>(group_changed) /
                                 static_cast<double>(keys);
  }
};

class HashRing {
 public:
  explicit HashRing(HashRingParams params = {});

  /// Add an endpoint's virtual nodes to the ring.  Idempotent (a present
  /// node is left unchanged, whatever incarnation it joined with).
  ///
  /// `incarnation` distinguishes successive lives of a *reused* endpoint
  /// id: a long-lived cluster recycles the ids of removed endpoints
  /// (ShardedCluster keeps the free-list), and each re-add bumps the
  /// incarnation so the new life gets its own vnode positions — placement
  /// decisions can never alias a dead incarnation's.  Incarnation 0
  /// hashes exactly as the pre-incarnation ring did, keeping fixed-seed
  /// placements of never-reusing deployments byte-identical.
  void add_node(NodeId node, std::uint32_t incarnation = 0);

  /// Remove an endpoint.  Returns false if it was not on the ring.
  bool remove_node(NodeId node);

  [[nodiscard]] bool contains(NodeId node) const {
    return nodes_.count(node) > 0;
  }

  /// The incarnation `node` currently lives on the ring with (0 if absent
  /// or never re-added).
  [[nodiscard]] std::uint32_t incarnation_of(NodeId node) const {
    auto it = incarnations_.find(node);
    return it == incarnations_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const std::set<NodeId>& nodes() const { return nodes_; }

  /// The endpoint owning `file`'s ring position (kNoNode on an empty ring).
  [[nodiscard]] NodeId primary(FileId file) const;

  /// The first min(k, node_count) distinct endpoints clockwise from the
  /// file's position — its replica group, primary first.  The order is
  /// deterministic, so every caller derives the same group (and the same
  /// rank assignment within it).
  [[nodiscard]] std::vector<NodeId> replicas(FileId file,
                                             std::uint32_t k) const;

  /// Compare key placement between two ring states (typically before and
  /// after a membership change) over an explicit keyset.
  static RebalanceStats rebalance(const HashRing& before,
                                  const HashRing& after,
                                  const std::vector<FileId>& keys,
                                  std::uint32_t k);

  /// Per-endpoint primary-key counts over a keyset (load-balance probe).
  [[nodiscard]] std::map<NodeId, std::size_t> primary_load(
      const std::vector<FileId>& keys) const;

  [[nodiscard]] std::size_t point_count() const { return ring_.size(); }
  [[nodiscard]] const HashRingParams& params() const { return params_; }

 private:
  [[nodiscard]] std::uint64_t point_hash(NodeId node, std::uint32_t vnode,
                                         std::uint32_t incarnation) const;
  [[nodiscard]] std::uint64_t key_hash(FileId file) const;

  HashRingParams params_;
  std::map<std::uint64_t, NodeId> ring_;  ///< point -> owning endpoint
  std::set<NodeId> nodes_;
  /// Nonzero incarnations of present nodes (reused ids only).
  std::map<NodeId, std::uint32_t> incarnations_;
};

}  // namespace idea::shard
