#pragma once
/// \file router.hpp
/// \brief Application-facing front door of the sharded cluster.
///
/// Clients name files; the router resolves each file's replica group on
/// the consistent-hash ring and forwards opens, writes, reads and closes
/// to the right endpoints.  Writes go to the file's coordinator (the
/// primary replica, rank 0) whose ReplicaSyncAgent pushes the update to
/// the rest of the group; reads are served by the coordinator's replica.
/// The router keeps per-coordinator op counts so deployments can check
/// that the ring is actually spreading load.

#include <cstdint>
#include <map>
#include <vector>

#include "replica/update.hpp"
#include "util/ids.hpp"

namespace idea::core {
class IdeaNode;
}

namespace idea::shard {

class ShardedCluster;

struct RouterStats {
  std::uint64_t opens = 0;           ///< Placements created on demand.
  std::uint64_t writes = 0;
  std::uint64_t blocked_writes = 0;  ///< Writes refused mid-resolution.
  std::uint64_t reads = 0;
  std::uint64_t closes = 0;
  /// Ops handled per coordinator endpoint (load-balance probe).
  std::map<NodeId, std::uint64_t> coordinator_ops;
};

class ShardRouter {
 public:
  explicit ShardRouter(ShardedCluster& cluster) : cluster_(cluster) {}

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// The file's replica group (primary first) per the current ring.
  [[nodiscard]] std::vector<NodeId> group_of(FileId file) const;

  /// The endpoint coordinating the file (kNoNode on an empty ring).
  [[nodiscard]] NodeId coordinator_of(FileId file) const;

  /// Ensure the file is open on its whole replica group; returns the
  /// coordinator's replica stack (nullptr on an empty ring).
  core::IdeaNode* open(FileId file);

  /// Route a write to the file's coordinator, which replicates it to the
  /// group.  Opens the file on first touch.
  bool write(FileId file, std::string content, double meta_delta);

  /// Read the file in canonical order from its coordinator replica.
  [[nodiscard]] std::vector<replica::Update> read(FileId file);

  /// The coordinator replica for reading in place without copying the
  /// log (still counted as a routed read).  nullptr on an empty ring.
  [[nodiscard]] core::IdeaNode* read_replica(FileId file);

  /// The consistency level the coordinator currently attaches to the
  /// file; 1.0 for files that were never opened.
  [[nodiscard]] double level(FileId file) const;

  /// Close the file on every group member.  Returns whether it was open.
  bool close(FileId file);

  [[nodiscard]] const RouterStats& stats() const { return stats_; }

 private:
  ShardedCluster& cluster_;
  RouterStats stats_;
};

}  // namespace idea::shard
