#include "shard/sharded_cluster.hpp"

#include <algorithm>

namespace idea::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)), ring_(config_.ring) {
  // Re-sync unconditionally: a caller that set `endpoints` but forgot
  // sync_sizes() would otherwise hand the latency model a smaller node
  // count and read out of bounds on the first cross-endpoint message.
  config_.sync_sizes();
  latency_ = std::make_unique<sim::PlanetLabLatency>(config_.latency);
  sim_transport_ = std::make_unique<net::SimTransport>(
      sim_, *latency_, config_.transport);
  if (config_.batching) {
    batching_ = std::make_unique<net::BatchingTransport>(*sim_transport_,
                                                         config_.batch);
  }
  services_.reserve(config_.endpoints);
  for (NodeId n = 0; n < config_.endpoints; ++n) {
    ring_.add_node(n);
    services_.push_back(std::make_unique<core::IdeaService>(
        n, edge(), mix64(config_.seed ^ (0x5E4D1CEULL + n))));
  }
  router_ = std::make_unique<ShardRouter>(*this);
}

ShardedCluster::~ShardedCluster() {
  // Teardown order matters: sync agents unroute from their node's
  // dispatcher, so they go before the services destroy the nodes; the
  // nodes cancel timers through their GroupTransport, so the group
  // transports (in files_) must outlive the services.
  for (auto& [file, group] : files_) group.sync.clear();
  services_.clear();
  files_.clear();
}

void ShardedCluster::place(FileId first, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) ensure_open(first + i);
}

core::IdeaNode* ShardedCluster::ensure_open(FileId file) {
  auto it = files_.find(file);
  if (it != files_.end()) {
    return services_[it->second.members.front()]->find(file);
  }
  const std::vector<NodeId> members = group_of(file);
  if (members.empty()) return nullptr;
  // Refuse to adopt a file someone opened directly on a service: its
  // stack runs in endpoint-id space over the shared transport, so wiring
  // a rank-space replication group around it would misroute every push
  // (open_via's keep-first would hand us that node unchanged).
  for (NodeId member : members) {
    if (services_[member]->find(file) != nullptr) return nullptr;
  }

  // Scope the per-file protocol to the group: the RanSub tree, gossip peer
  // space and bottom layer all cover exactly the k replicas, in rank space.
  core::IdeaConfig idea = config_.idea;
  const auto k = static_cast<std::uint32_t>(members.size());
  idea.ransub.nodes = k;
  idea.gossip.nodes = k;
  idea.two_layer.all_nodes = k;

  FileGroup group;
  group.members = members;
  group.transports.reserve(members.size());
  group.sync.reserve(members.size());
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    auto transport =
        std::make_unique<GroupTransport>(edge(), members, rank);
    core::IdeaNode& node = services_[members[rank]]->open_via(
        file, idea, *transport, rank, transport.get());
    transport->set_sink(&node.dispatcher());
    group.sync.push_back(
        std::make_unique<ReplicaSyncAgent>(node, *transport, k));
    group.transports.push_back(std::move(transport));
    node.start();
  }
  core::IdeaNode* coordinator = services_[members.front()]->find(file);
  files_.emplace(file, std::move(group));
  return coordinator;
}

bool ShardedCluster::close_file(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return false;
  // Sync agents and nodes unhook from each other's dispatcher; drop the
  // agents first, then the stacks, then the group transports they used.
  it->second.sync.clear();
  for (NodeId member : it->second.members) services_[member]->close(file);
  files_.erase(it);
  return true;
}

core::IdeaNode* ShardedCluster::replica(FileId file, NodeId endpoint) {
  auto it = files_.find(file);
  if (it == files_.end()) return nullptr;
  const auto& members = it->second.members;
  if (std::find(members.begin(), members.end(), endpoint) == members.end()) {
    return nullptr;
  }
  return services_[endpoint]->find(file);
}

core::IdeaNode* ShardedCluster::replica_at_rank(FileId file,
                                                std::uint32_t rank) {
  auto it = files_.find(file);
  if (it == files_.end() || rank >= it->second.members.size()) {
    return nullptr;
  }
  return services_[it->second.members[rank]]->find(file);
}

ReplicaSyncAgent* ShardedCluster::sync_agent(FileId file,
                                             std::uint32_t rank) {
  auto it = files_.find(file);
  if (it == files_.end() || rank >= it->second.sync.size()) return nullptr;
  return it->second.sync[rank].get();
}

bool ShardedCluster::converged(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return true;  // nothing placed, nothing diverged
  std::uint64_t digest = 0;
  bool first = true;
  for (NodeId member : it->second.members) {
    core::IdeaNode* node = services_[member]->find(file);
    if (node == nullptr) return false;
    const std::uint64_t d = node->store().content_digest();
    if (first) {
      digest = d;
      first = false;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

}  // namespace idea::shard
