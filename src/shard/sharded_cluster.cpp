#include "shard/sharded_cluster.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace idea::shard {

ShardedCluster::ShardedCluster(ShardedClusterConfig config)
    : config_(std::move(config)),
      ring_(config_.ring),
      storage_(config_.checkpoint.retain),
      engine_(replica::make_checkpoint_engine(config_.checkpoint.engine)) {
  // Re-sync unconditionally: a caller that set `endpoints` but forgot
  // sync_sizes() would otherwise hand the latency model a smaller node
  // count and read out of bounds on the first cross-endpoint message.
  config_.sync_sizes();
  if (config_.observability.enabled) {
    obs_ = std::make_unique<obs::Observability>(config_.endpoints,
                                                config_.observability);
  }
  latency_ = std::make_unique<sim::PlanetLabLatency>(config_.latency);
  sim_transport_ = std::make_unique<net::SimTransport>(
      sim_, *latency_, config_.transport);
  if (config_.batching) {
    batching_ = std::make_unique<net::BatchingTransport>(*sim_transport_,
                                                         config_.batch);
  }
  if (obs_ != nullptr) {
    sim_.set_metrics(obs_->cluster_meter());
    if (batching_ != nullptr) batching_->set_metrics(obs_->cluster_meter());
  }
  services_.reserve(config_.endpoints);
  incarnations_.assign(config_.endpoints, 0);
  checkpoint_timers_.assign(config_.endpoints, 0);
  for (NodeId n = 0; n < config_.endpoints; ++n) {
    ring_.add_node(n);
    services_.push_back(std::make_unique<core::IdeaService>(
        n, edge(), mix64(config_.seed ^ (0x5E4D1CEULL + n))));
    arm_checkpoint_timer(n);
  }
  router_ = std::make_unique<RequestRouter>(*this);
  if (config_.adapt.enabled) {
    controller_ = std::make_unique<adapt::ConsistencyController>(
        sim_, config_.adapt, obs_.get());
    // The detector probe: what consistency level the coordinator's stack
    // currently attaches to the file (1.0 = fully consistent).
    controller_->set_level_probe(
        [this](FileId file) { return router_->level(file); });
    controller_->start();
  }
}

ShardedCluster::~ShardedCluster() {
  // Teardown order matters: sync agents unroute from their node's
  // dispatcher, so they go before the services destroy the nodes; the
  // nodes cancel timers through their GroupTransport, so the group
  // transports (in files_) must outlive the services.
  for (auto& [file, group] : files_) group.sync.clear();
  services_.clear();
  files_.clear();
}

std::vector<NodeId> ShardedCluster::endpoints() const {
  std::vector<NodeId> out;
  out.reserve(services_.size());
  for (NodeId n = 0; n < services_.size(); ++n) {
    if (services_[n] != nullptr) out.push_back(n);
  }
  return out;
}

void ShardedCluster::place(FileId first, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) ensure_open(first + i);
}

ShardedCluster::FileGroup& ShardedCluster::open_group(
    FileId file, std::vector<NodeId> members) {
  // Scope the per-file protocol to the group: the RanSub tree, gossip peer
  // space and bottom layer all cover exactly the k replicas, in rank space.
  core::IdeaConfig idea = config_.idea;
  const auto k = static_cast<std::uint32_t>(members.size());
  idea.ransub.nodes = k;
  idea.gossip.nodes = k;
  idea.two_layer.all_nodes = k;

  const std::uint32_t epoch = ++epochs_[file];
  FileGroup group;
  group.members = std::move(members);
  group.transports.reserve(k);
  group.sync.reserve(k);
  for (std::uint32_t rank = 0; rank < k; ++rank) {
    if (services_[group.members[rank]] == nullptr) {
      // Crashed member: its rank stays dark until restart rebuilds the
      // group.  Sends addressed to it drop at the transport's crash
      // window, exactly like a live-but-dead endpoint would behave.
      group.transports.push_back(nullptr);
      group.sync.push_back(nullptr);
      continue;
    }
    auto transport = std::make_unique<GroupTransport>(
        edge(), group.members, rank, epoch);
    core::IdeaNode& node = services_[group.members[rank]]->open_via(
        file, idea, *transport, rank, transport.get());
    transport->set_sink(&node.dispatcher());
    group.sync.push_back(std::make_unique<ReplicaSyncAgent>(
        node, *transport, k,
        ReplicaSyncOptions{config_.replication_resend_timeout,
                           config_.replication_max_resends}));
    if (obs_ != nullptr) {
      group.sync.back()->set_observability(obs_.get(), group.members[rank]);
    }
    // Freshness hints piggyback on the anti-entropy digest/repair
    // exchange: whenever this rank learns a peer's version count, the
    // router's per-(file, endpoint) hint table learns it too, feeding
    // bounded-staleness replica selection.
    group.sync.back()->set_freshness_listener(
        [this, file, members = group.members](NodeId peer_rank,
                                              std::uint64_t versions) {
          if (router_ != nullptr && peer_rank < members.size()) {
            router_->note_freshness(file, members[peer_rank], versions,
                                    sim_.now());
          }
        });
    if (config_.anti_entropy_period > 0) {
      group.sync.back()->start_anti_entropy(config_.anti_entropy_period);
    }
    group.transports.push_back(std::move(transport));
    node.start();
  }
  return files_.emplace(file, std::move(group)).first->second;
}

core::IdeaNode* ShardedCluster::ensure_open(FileId file) {
  auto it = files_.find(file);
  if (it != files_.end()) {
    // Acting coordinator: the lowest alive rank (rank 0 unless crashed).
    for (NodeId member : it->second.members) {
      if (services_[member] != nullptr) {
        return services_[member]->find(file);
      }
    }
    return nullptr;  // every member is down
  }
  const std::vector<NodeId> members = group_of(file);
  if (members.empty()) return nullptr;
  // Refuse to adopt a file someone opened directly on a service: its
  // stack runs in endpoint-id space over the shared transport, so wiring
  // a rank-space replication group around it would misroute every push
  // (open_via's keep-first would hand us that node unchanged).
  for (NodeId member : members) {
    if (services_[member] != nullptr &&
        services_[member]->find(file) != nullptr) {
      return nullptr;
    }
  }
  FileGroup& group = open_group(file, members);
  for (NodeId member : group.members) {
    if (services_[member] != nullptr) return services_[member]->find(file);
  }
  return nullptr;
}

MembershipChange ShardedCluster::add_endpoint() {
  const HashRing before = ring_;
  NodeId id;
  std::uint32_t incarnation = 0;
  if (!free_ids_.empty()) {
    // Reuse the smallest freed id under a bumped incarnation: long-lived
    // churn keeps the id space dense.  Stale traffic addressed to the old
    // incarnation is already fenced — every group it belonged to was
    // rebuilt under a new group epoch when it left.
    id = *free_ids_.begin();
    free_ids_.erase(free_ids_.begin());
    incarnation = ++incarnations_[id];
  } else {
    id = static_cast<NodeId>(services_.size());
    services_.push_back(nullptr);
    incarnations_.push_back(0);
    checkpoint_timers_.push_back(0);
  }
  // Grow the latency topology and the transport's per-node state first:
  // the new endpoint's IdeaService attaches to the transport immediately.
  // (No-ops for a reused id — its coordinates and clock skew persist.)
  latency_->ensure_nodes(id + 1);
  sim_transport_->ensure_node(id);
  ring_.add_node(id, incarnation);
  services_[id] = std::make_unique<core::IdeaService>(
      id, edge(),
      mix64(config_.seed ^ (0x5E4D1CEULL + id) ^
            (static_cast<std::uint64_t>(incarnation) << 40)));
  if (obs_ != nullptr) {
    obs_->ensure_endpoints(static_cast<std::uint32_t>(services_.size()));
  }
  arm_checkpoint_timer(id);

  MembershipChange change;
  change.endpoint = id;
  change.incarnation = incarnation;
  migrate_changed_groups(before, change);
  return change;
}

MembershipChange ShardedCluster::remove_endpoint(NodeId endpoint) {
  MembershipChange change;
  if (!has_endpoint(endpoint) || !ring_.contains(endpoint)) return change;
  change.endpoint = endpoint;
  change.incarnation = incarnations_[endpoint];
  const HashRing before = ring_;
  ring_.remove_node(endpoint);
  // Migrate while the leaving endpoint is still alive: its replicas are
  // part of the state hand-off union (it may hold updates nobody else
  // received yet).
  migrate_changed_groups(before, change);
  cancel_checkpoint_timer(endpoint);
  services_[endpoint].reset();  // detaches its transport slot
  free_ids_.insert(endpoint);
  return change;
}

void ShardedCluster::migrate_changed_groups(const HashRing& before,
                                            MembershipChange& change) {
  // files_ is hash-ordered; walk the placed set sorted so migration (and
  // therefore every streaming send) happens in a reproducible order.
  std::vector<FileId> placed;
  placed.reserve(files_.size());
  for (const auto& [file, group] : files_) placed.push_back(file);
  std::sort(placed.begin(), placed.end());

  change.rebalance =
      HashRing::rebalance(before, ring_, placed, config_.replication);

  for (FileId file : placed) {
    auto it = files_.find(file);
    std::vector<NodeId> members = ring_.replicas(file, config_.replication);
    if (members == it->second.members) continue;

    // 1. Union snapshot of every old replica's log: under loss the old
    //    coordinator may be missing updates a peer applied, and the
    //    leaving endpoint may hold updates nobody else received yet.
    //    Invalidation flags survive by OR (resolution may have reached
    //    only part of the old group when the membership change hit).
    std::map<replica::UpdateKey, replica::Update> merged;
    for (NodeId member : it->second.members) {
      if (services_[member] == nullptr) continue;  // crashed: state is gone
      core::IdeaNode* node = services_[member]->find(file);
      if (node == nullptr) continue;
      for (replica::Update& u : node->store().export_log()) {
        const bool invalidated = u.invalidated;
        auto [mit, inserted] = merged.emplace(u.key, std::move(u));
        if (!inserted && invalidated) mit->second.invalidated = true;
      }
    }
    // Parked hints may hold the *only* surviving copy of a sloppy-quorum
    // write (every live old member may have missed it under loss).  Fold
    // them into the union: the snapshot imports keys unchanged and the
    // adopter continues the lineage writer sequence past them, so the
    // rank-space keys stay valid across the membership change — the old
    // member vector is only needed to decide, below, which hints still
    // owe a crashed member of the *new* group a hand-off.
    std::vector<replica::HintedWrite> parked = hints_.take_file(file);
    for (const replica::HintedWrite& h : parked) {
      const bool invalidated = h.update.invalidated;
      auto [mit, inserted] = merged.emplace(h.update.key, h.update);
      if (!inserted && invalidated) mit->second.invalidated = true;
    }
    std::vector<replica::Update> snapshot;
    snapshot.reserve(merged.size());
    for (auto& [key, u] : merged) snapshot.push_back(std::move(u));

    // 2. Tear down the old group epoch (agents first: they unroute from
    //    the dispatchers the node teardown destroys).
    it->second.sync.clear();
    for (NodeId member : it->second.members) {
      if (services_[member] != nullptr) services_[member]->close(file);
    }
    files_.erase(it);

    if (members.empty()) {
      // Last endpoint left; the file is unplaced and its parked hints
      // have no group to hand back to.
      hints_.retire(parked.size());
      continue;
    }

    // 3. Fresh stacks on the new members; the new coordinator adopts the
    //    snapshot synchronously (the durable hand-off — this also advances
    //    its writer-0 sequence so routed writes continue the old history),
    //    then streams it to the other ranks over the wire.
    FileGroup& group = open_group(file, std::move(members));
    if (router_ != nullptr) router_->forget_file(file);
    // Re-mint the parked hints against the new membership: a hint whose
    // target is a still-crashed member of the new group keeps its durable
    // hand-off obligation (at a fresh stand-in outside the new group);
    // every other hint retires — its update now lives in the snapshot the
    // live group adopted, which is strictly stronger than a parked copy.
    std::size_t retired = 0;
    for (replica::HintedWrite& h : parked) {
      const bool still_owed =
          is_crashed(h.target) &&
          std::find(group.members.begin(), group.members.end(), h.target) !=
              group.members.end();
      if (!still_owed) {
        ++retired;
        continue;
      }
      const NodeId stand_in = stand_in_for(file, h.target);
      if (stand_in != kNoNode) h.stand_in = stand_in;
      hints_.re_mint(std::move(h));
    }
    hints_.retire(retired);
    // The adopting rank is the lowest alive one: rank 0 unless that
    // member is crashed, in which case the next alive rank takes the
    // snapshot (rank space is multi-writer, so this is safe).
    std::size_t adopter = 0;
    while (adopter < group.sync.size() && group.sync[adopter] == nullptr) {
      ++adopter;
    }
    if (!snapshot.empty() && adopter < group.sync.size()) {
      core::IdeaNode* coordinator =
          services_[group.members[adopter]]->find(file);
      coordinator->store().import_log(snapshot);
      change.state_updates += snapshot.size();
      const std::size_t streamed =
          group.sync[adopter]->stream_state(snapshot);
      change.stream_messages += streamed;
      if (obs_ != nullptr) {
        obs::Meter meter = obs_->cluster_meter();
        meter.add(obs::MetricId::intern("shard.migrate.state_updates"),
                  snapshot.size());
        meter.add(obs::MetricId::intern("shard.migrate.stream_messages"),
                  streamed);
      }
      // Until the stream lands, the other ranks of the new group are
      // cold; tell the router so policy reads pin to the already-warm
      // new coordinator for the window.  Two one-way trips (batching
      // flush + delivery) plus slack bounds the in-flight time.
      if (router_ != nullptr && group.members.size() > 1) {
        SimDuration horizon = 0;
        for (std::size_t rank = 1; rank < group.members.size(); ++rank) {
          horizon = std::max(horizon, latency_->mean(group.members.front(),
                                                     group.members[rank]));
        }
        const SimDuration window = 2 * horizon + msec(100);
        router_->note_migration(file, sim_.now() + window);
        if (obs_ != nullptr) {
          obs_->cluster_meter().observe(
              obs::MetricId::intern("shard.migration_pin_us"),
              static_cast<std::uint64_t>(window));
        }
      }
    }
    ++change.files_migrated;
    if (obs_ != nullptr) {
      obs_->cluster_meter().add(obs::MetricId::intern("shard.migrations"));
    }
  }
}

NodeId ShardedCluster::stand_in_for(FileId file, NodeId target) const {
  const std::vector<NodeId>* members = members_of(file);
  const std::vector<NodeId> group =
      members != nullptr ? *members : group_of(file);
  // Walk the ring successors past the replica group: ask for enough
  // candidates to skip every member plus every currently-down endpoint.
  const auto want = static_cast<std::uint32_t>(
      group.size() + crashed_.size() + 1);
  std::vector<NodeId> candidates;
  for (NodeId candidate : ring_.replicas(file, want)) {
    if (!has_endpoint(candidate)) continue;
    if (std::find(group.begin(), group.end(), candidate) != group.end()) {
      continue;
    }
    candidates.push_back(candidate);
  }
  if (candidates.empty()) return kNoNode;
  // Spread distinct crashed members over distinct stand-ins (when there
  // are enough): the target's group rank indexes the successor list, so
  // one sloppy write with two dark members parks its two hints at two
  // different endpoints, like Dynamo's per-node hinted replicas.
  const auto rank = static_cast<std::size_t>(
      std::find(group.begin(), group.end(), target) - group.begin());
  return candidates[rank % candidates.size()];
}

void ShardedCluster::queue_hint(FileId file, NodeId target, NodeId stand_in,
                                const replica::Update& update) {
  hints_.enqueue(replica::HintedWrite{stand_in, target, file, update,
                                      sim_.now()});
  if (obs_ != nullptr) {
    obs::Meter meter = obs_->cluster_meter();
    meter.add(obs::MetricId::intern("hints.queued"));
    meter.set_gauge(obs::MetricId::intern("hints.queue_depth"),
                    static_cast<std::int64_t>(hints_.depth()));
  }
}

bool ShardedCluster::close_file(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return false;
  // Sync agents and nodes unhook from each other's dispatcher; drop the
  // agents first, then the stacks, then the group transports they used.
  it->second.sync.clear();
  for (NodeId member : it->second.members) {
    if (services_[member] != nullptr) services_[member]->close(file);
  }
  files_.erase(it);
  if (router_ != nullptr) router_->forget_file(file);
  hints_.drop_file(file);
  return true;
}

core::IdeaNode* ShardedCluster::replica(FileId file, NodeId endpoint) {
  auto it = files_.find(file);
  if (it == files_.end()) return nullptr;
  const auto& members = it->second.members;
  if (std::find(members.begin(), members.end(), endpoint) == members.end()) {
    return nullptr;
  }
  if (services_[endpoint] == nullptr) return nullptr;  // crashed member
  return services_[endpoint]->find(file);
}

core::IdeaNode* ShardedCluster::replica_at_rank(FileId file,
                                                std::uint32_t rank) {
  auto it = files_.find(file);
  if (it == files_.end() || rank >= it->second.members.size()) {
    return nullptr;
  }
  const NodeId endpoint = it->second.members[rank];
  if (services_[endpoint] == nullptr) return nullptr;  // crashed member
  return services_[endpoint]->find(file);
}

ReplicaSyncAgent* ShardedCluster::sync_agent(FileId file,
                                             std::uint32_t rank) {
  auto it = files_.find(file);
  if (it == files_.end() || rank >= it->second.sync.size()) return nullptr;
  return it->second.sync[rank].get();
}

bool ShardedCluster::converged(FileId file) {
  auto it = files_.find(file);
  if (it == files_.end()) return true;  // nothing placed, nothing diverged
  std::uint64_t digest = 0;
  bool first = true;
  for (NodeId member : it->second.members) {
    if (services_[member] == nullptr) continue;  // crashed: judge the living
    core::IdeaNode* node = services_[member]->find(file);
    if (node == nullptr) return false;
    const std::uint64_t d = node->store().content_digest();
    if (first) {
      digest = d;
      first = false;
    } else if (d != digest) {
      return false;
    }
  }
  return true;
}

void ShardedCluster::arm_checkpoint_timer(NodeId endpoint) {
  if (!config_.checkpoint.enabled()) return;
  if (endpoint >= checkpoint_timers_.size()) {
    checkpoint_timers_.resize(endpoint + 1, 0);
  }
  if (checkpoint_timers_[endpoint] != 0) return;
  checkpoint_timers_[endpoint] = sim_.schedule_periodic(
      config_.checkpoint.period,
      [this, endpoint] { checkpoint_endpoint(endpoint); });
}

void ShardedCluster::cancel_checkpoint_timer(NodeId endpoint) {
  if (endpoint < checkpoint_timers_.size() &&
      checkpoint_timers_[endpoint] != 0) {
    sim_.cancel(checkpoint_timers_[endpoint]);
    checkpoint_timers_[endpoint] = 0;
  }
}

void ShardedCluster::checkpoint_endpoint(NodeId endpoint) {
  if (engine_ == nullptr || !has_endpoint(endpoint)) return;
  // Sorted file walk so the durable record/epoch stream replays
  // identically under a fixed seed (files_ is hash-ordered).
  std::vector<FileId> placed;
  placed.reserve(files_.size());
  for (const auto& [file, group] : files_) {
    if (std::find(group.members.begin(), group.members.end(), endpoint) !=
        group.members.end()) {
      placed.push_back(file);
    }
  }
  std::sort(placed.begin(), placed.end());

  std::vector<replica::ReplicaRef> refs;
  refs.reserve(placed.size());
  for (FileId file : placed) {
    const FileGroup& group = files_.find(file)->second;
    core::IdeaNode* node = services_[endpoint]->find(file);
    if (node == nullptr) continue;
    refs.push_back({file, &node->store(), &group.members});
  }
  const replica::CheckpointRunStats run = engine_->checkpoint(
      endpoint, incarnations_[endpoint], refs, sim_.now(), storage_);

  if (obs_ != nullptr) {
    obs::Meter meter = obs_->endpoint_meter(endpoint);
    meter.add(obs::MetricId::intern("ckpt.runs"));
    meter.add(obs::MetricId::intern("ckpt.files_written"),
              run.files_written);
    meter.add(obs::MetricId::intern("ckpt.files_clean"), run.files_clean);
    meter.add(obs::MetricId::intern("ckpt.updates_written"),
              run.updates_written);
    meter.add(obs::MetricId::intern("ckpt.bytes_written"),
              run.bytes_written);
    const std::uint64_t offered = run.files_written + run.files_clean;
    if (offered > 0) {
      meter.observe(obs::MetricId::intern("ckpt.dirty_ratio_pct"),
                    100 * run.files_written / offered);
    }
  }
}

CrashReport ShardedCluster::crash_endpoint(NodeId endpoint) {
  CrashReport report;
  if (!has_endpoint(endpoint) || is_crashed(endpoint)) return report;
  report.endpoint = endpoint;
  report.incarnation = incarnations_[endpoint];
  report.at = sim_.now();
  // Sever the wire first: from this instant nothing reaches or leaves the
  // endpoint, and every message already in flight dies with its
  // connection (crash windows act on the whole flight, not the send).
  sim_transport_->crash_node(endpoint, sim_.now());
  cancel_checkpoint_timer(endpoint);
  // Darken the endpoint's rank in every placed group.  Agents go first
  // (they unroute from the dispatchers the service teardown destroys);
  // the GroupTransports stay alive with a null sink because the node
  // destructors cancel their timers through them.  Sorted walk for a
  // reproducible report.
  std::vector<FileId> placed;
  placed.reserve(files_.size());
  for (const auto& [file, group] : files_) placed.push_back(file);
  std::sort(placed.begin(), placed.end());
  for (FileId file : placed) {
    FileGroup& group = files_.find(file)->second;
    for (std::size_t rank = 0; rank < group.members.size(); ++rank) {
      if (group.members[rank] != endpoint || group.sync[rank] == nullptr) {
        continue;
      }
      ++report.groups_affected;
      core::IdeaNode* node = services_[endpoint]->find(file);
      if (node != nullptr) {
        report.volatile_updates_lost += node->store().update_count();
      }
      group.sync[rank].reset();
      group.transports[rank]->set_sink(nullptr);
      // A trace parked on this file waiting for a heal may have been
      // watching the replica that just died; the restart rebuilds the
      // group under a new epoch, so the old causal thread is moot.
      if (obs_ != nullptr) obs_->clear_repair_trace(file);
    }
  }
  services_[endpoint].reset();
  // The endpoint's freshness hints describe volatile state that no
  // longer exists; a restarted incarnation must not be preferred on its
  // pre-crash reputation.
  if (router_ != nullptr) router_->forget_endpoint(endpoint);
  crashed_.insert(endpoint);
  crashed_at_[endpoint] = sim_.now();
  if (obs_ != nullptr) {
    obs_->cluster_meter().add(obs::MetricId::intern("crash.crashes"));
  }
  return report;
}

RecoveryReport ShardedCluster::restart_endpoint(NodeId endpoint) {
  RecoveryReport report;
  if (!is_crashed(endpoint)) return report;
  report.endpoint = endpoint;
  report.downtime = sim_.now() - crashed_at_[endpoint];
  crashed_.erase(endpoint);
  crashed_at_.erase(endpoint);
  sim_transport_->revive_node(endpoint, sim_.now());
  const std::uint32_t incarnation = ++incarnations_[endpoint];
  report.incarnation = incarnation;
  services_[endpoint] = std::make_unique<core::IdeaService>(
      endpoint, edge(),
      mix64(config_.seed ^ (0x5E4D1CEULL + endpoint) ^
            (static_cast<std::uint64_t>(incarnation) << 40)));
  arm_checkpoint_timer(endpoint);

  // Rebuild every group the endpoint belongs to under a fresh epoch, in
  // sorted file order so the rebuild's sends replay deterministically.
  std::vector<FileId> placed;
  placed.reserve(files_.size());
  for (const auto& [file, group] : files_) {
    if (std::find(group.members.begin(), group.members.end(), endpoint) !=
        group.members.end()) {
      placed.push_back(file);
    }
  }
  std::sort(placed.begin(), placed.end());

  for (FileId file : placed) {
    auto it = files_.find(file);
    const std::vector<NodeId> members = it->second.members;
    const auto self_rank = static_cast<NodeId>(
        std::find(members.begin(), members.end(), endpoint) -
        members.begin());

    // 1. Capture each survivor's own log.  Survivors re-import exactly
    //    what they held (NOT the union): the restarted member's
    //    checkpoint→crash gap must stay a gap so the ordinary
    //    anti-entropy exchange — not a migration stream — heals it.
    std::map<NodeId, std::vector<replica::Update>> survivor_logs;
    std::size_t survivor_max_updates = 0;
    for (NodeId member : members) {
      if (member == endpoint || services_[member] == nullptr) continue;
      core::IdeaNode* node = services_[member]->find(file);
      if (node == nullptr) continue;
      auto log = node->store().export_log();
      survivor_max_updates = std::max(survivor_max_updates, log.size());
      survivor_logs.emplace(member, std::move(log));
    }

    // 2. Latest durable checkpoint.  Updates are keyed by rank-space
    //    writer ids, so a record from a different membership (rank
    //    mapping) is unusable — discard it and recover from zero + AE.
    const replica::CheckpointRecord* ckpt = storage_.latest(endpoint, file);
    if (ckpt != nullptr && ckpt->members != members) ckpt = nullptr;
    std::uint64_t ckpt_own_max = 0;
    if (ckpt != nullptr) {
      for (const replica::Update& u : ckpt->updates) {
        if (u.key.writer == self_rank) {
          ckpt_own_max = std::max(ckpt_own_max, u.key.seq);
        }
      }
    }

    // 3. Own-writer continuation: writes this endpoint coordinated after
    //    its last checkpoint live on in the survivors; re-adopting them
    //    before traffic resumes keeps its writer sequence from reusing
    //    numbers the group already saw.
    std::map<replica::UpdateKey, replica::Update> reconcile;
    for (const auto& [member, log] : survivor_logs) {
      for (const replica::Update& u : log) {
        if (u.key.writer == self_rank && u.key.seq > ckpt_own_max) {
          reconcile.emplace(u.key, u);
        }
      }
    }

    // 4. Rebuild under a new group epoch: stale pre-crash traffic fences
    //    at the GroupTransports.
    it->second.sync.clear();
    for (NodeId member : members) {
      if (services_[member] != nullptr) services_[member]->close(file);
    }
    files_.erase(it);
    open_group(file, members);
    if (router_ != nullptr) router_->forget_file(file);

    // 5. Survivors resume exactly where they were.
    for (const auto& [member, log] : survivor_logs) {
      core::IdeaNode* node = services_[member]->find(file);
      if (node != nullptr) node->store().import_log(log);
    }

    // 6. The restarted member = durable checkpoint + own-writer
    //    continuation; whatever is still missing is the O(delta) gap
    //    anti-entropy streams.
    core::IdeaNode* self = services_[endpoint]->find(file);
    std::size_t restored = 0;
    if (ckpt != nullptr && self != nullptr) {
      const replica::ReplicaStore::ImportReport r = self->store().import_log(ckpt->updates);
      restored += r.applied;
      ++report.checkpoint_files;
      report.checkpoint_updates += r.applied;
    }
    if (!reconcile.empty() && self != nullptr) {
      std::vector<replica::Update> batch;
      batch.reserve(reconcile.size());
      for (const auto& [key, u] : reconcile) batch.push_back(u);
      const replica::ReplicaStore::ImportReport r = self->store().import_log(batch);
      report.reconciled_updates += r.applied;
      restored += r.applied;
    }
    if (survivor_max_updates > restored) {
      report.gap_updates += survivor_max_updates - restored;
    }
    ++report.files_recovered;
  }

  // Hinted-handoff drain: updates parked at stand-ins while this
  // endpoint was down come home.  Each file's batch is imported into the
  // acting coordinator's store exactly once (ImportReport counts the
  // duplicates — typically all of them when the coordinator itself wrote
  // the updates), then a targeted digest pushes the delta to the
  // restarted rank over the ordinary shard.digest/repair wire path.
  std::vector<replica::HintedWrite> drained = hints_.drain_for(endpoint);
  if (!drained.empty()) {
    std::map<FileId, std::vector<replica::Update>> by_file;
    for (replica::HintedWrite& h : drained) {
      by_file[h.file].push_back(std::move(h.update));
    }
    for (auto& [file, batch] : by_file) {
      if (files_.find(file) == files_.end()) continue;  // closed meanwhile
      const auto [agent, coord_ep] = coordinator(file);
      if (agent == nullptr) continue;
      core::IdeaNode* node = services_[coord_ep]->find(file);
      if (node == nullptr) continue;
      const replica::ReplicaStore::ImportReport r =
          node->store().import_log(batch);
      report.hinted_updates += batch.size();
      report.hinted_duplicates += r.duplicates;
      if (coord_ep != endpoint) {
        const std::vector<NodeId>& members = files_.find(file)->second.members;
        const auto self_rank = static_cast<NodeId>(
            std::find(members.begin(), members.end(), endpoint) -
            members.begin());
        agent->anti_entropy_with(self_rank);
      }
    }
    if (obs_ != nullptr) {
      obs::Meter meter = obs_->cluster_meter();
      meter.add(obs::MetricId::intern("hints.drained"), drained.size());
      meter.add(obs::MetricId::intern("hints.drain_duplicates"),
                report.hinted_duplicates);
      meter.set_gauge(obs::MetricId::intern("hints.queue_depth"),
                      static_cast<std::int64_t>(hints_.depth()));
    }
  }

  if (obs_ != nullptr) {
    obs::Meter meter = obs_->cluster_meter();
    meter.add(obs::MetricId::intern("crash.restarts"));
    meter.observe(obs::MetricId::intern("recovery.downtime_us"),
                  static_cast<std::uint64_t>(report.downtime));
    meter.observe(obs::MetricId::intern("recovery.checkpoint_updates"),
                  report.checkpoint_updates);
    meter.observe(obs::MetricId::intern("recovery.gap_updates"),
                  report.gap_updates);
  }
  return report;
}

}  // namespace idea::shard
