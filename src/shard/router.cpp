#include "shard/router.hpp"

#include "shard/sharded_cluster.hpp"

namespace idea::shard {

std::vector<NodeId> ShardRouter::group_of(FileId file) const {
  return cluster_.group_of(file);
}

NodeId ShardRouter::coordinator_of(FileId file) const {
  return cluster_.coordinator_endpoint(file);
}

core::IdeaNode* ShardRouter::open(FileId file) {
  const std::size_t before = cluster_.placed_files();
  core::IdeaNode* coordinator = cluster_.ensure_open(file);
  if (coordinator != nullptr && cluster_.placed_files() > before) {
    ++stats_.opens;
  }
  return coordinator;
}

bool ShardRouter::write(FileId file, std::string content,
                        double meta_delta) {
  if (open(file) == nullptr) return false;
  const auto [agent, endpoint] = cluster_.coordinator(file);
  if (agent == nullptr) return false;
  ++stats_.coordinator_ops[endpoint];
  if (!agent->put(std::move(content), meta_delta)) {
    ++stats_.blocked_writes;
    return false;
  }
  ++stats_.writes;
  return true;
}

core::IdeaNode* ShardRouter::read_replica(FileId file) {
  core::IdeaNode* coordinator = open(file);
  if (coordinator == nullptr) return nullptr;
  ++stats_.reads;
  ++stats_.coordinator_ops[cluster_.coordinator(file).second];
  return coordinator;
}

std::vector<replica::Update> ShardRouter::read(FileId file) {
  core::IdeaNode* coordinator = read_replica(file);
  return coordinator == nullptr ? std::vector<replica::Update>{}
                                : coordinator->read();
}

double ShardRouter::level(FileId file) const {
  if (!cluster_.is_placed(file)) return 1.0;
  core::IdeaNode* coordinator = cluster_.replica_at_rank(file, 0);
  return coordinator == nullptr ? 1.0 : coordinator->current_level();
}

bool ShardRouter::close(FileId file) {
  const bool closed = cluster_.close_file(file);
  if (closed) ++stats_.closes;
  return closed;
}

}  // namespace idea::shard
