#include "shard/hash_ring.hpp"

#include <algorithm>

namespace idea::shard {

HashRing::HashRing(HashRingParams params) : params_(params) {}

std::uint64_t HashRing::point_hash(NodeId node, std::uint32_t vnode,
                                   std::uint32_t incarnation) const {
  // Double mixing decorrelates the (node, vnode) lattice; a single mix64
  // over the packed pair leaves visible stripes for small vnode counts.
  // Incarnation 0 must hash exactly as the pre-incarnation ring did, so
  // the salt only folds in for reused ids.
  std::uint64_t seed = params_.seed;
  if (incarnation != 0) seed ^= mix64(0x14CA'0000ULL + incarnation);
  return mix64(seed ^ mix64((static_cast<std::uint64_t>(node) << 32) | vnode));
}

std::uint64_t HashRing::key_hash(FileId file) const {
  return mix64(params_.seed ^ (0xF17EULL << 32) ^ file);
}

void HashRing::add_node(NodeId node, std::uint32_t incarnation) {
  if (!nodes_.insert(node).second) return;
  if (incarnation != 0) incarnations_[node] = incarnation;
  for (std::uint32_t v = 0; v < params_.vnodes_per_node; ++v) {
    // Collisions across 64 bits are vanishingly rare; keep the first owner
    // so add/remove of another node can never silently reassign a point.
    ring_.emplace(point_hash(node, v, incarnation), node);
  }
}

bool HashRing::remove_node(NodeId node) {
  if (nodes_.erase(node) == 0) return false;
  incarnations_.erase(node);
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node ? ring_.erase(it) : std::next(it);
  }
  return true;
}

NodeId HashRing::primary(FileId file) const {
  if (ring_.empty()) return kNoNode;
  auto it = ring_.lower_bound(key_hash(file));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::vector<NodeId> HashRing::replicas(FileId file, std::uint32_t k) const {
  std::vector<NodeId> group;
  if (ring_.empty() || k == 0) return group;
  const std::size_t want =
      std::min<std::size_t>(k, nodes_.size());
  group.reserve(want);
  auto it = ring_.lower_bound(key_hash(file));
  while (group.size() < want) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(group.begin(), group.end(), it->second) == group.end()) {
      group.push_back(it->second);
    }
    ++it;
  }
  return group;
}

RebalanceStats HashRing::rebalance(const HashRing& before,
                                   const HashRing& after,
                                   const std::vector<FileId>& keys,
                                   std::uint32_t k) {
  RebalanceStats stats;
  stats.keys = keys.size();
  for (FileId key : keys) {
    if (before.primary(key) != after.primary(key)) ++stats.moved;
    if (before.replicas(key, k) != after.replicas(key, k)) {
      ++stats.group_changed;
    }
  }
  return stats;
}

std::map<NodeId, std::size_t> HashRing::primary_load(
    const std::vector<FileId>& keys) const {
  std::map<NodeId, std::size_t> load;
  for (NodeId n : nodes_) load[n] = 0;
  for (FileId key : keys) {
    const NodeId owner = primary(key);
    if (owner != kNoNode) ++load[owner];
  }
  return load;
}

}  // namespace idea::shard
