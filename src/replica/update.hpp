#pragma once
/// \file update.hpp
/// \brief The unit of replicated state change.
///
/// An Update is one write issued by one node against one shared file (a
/// white-board stroke, a ticket booking, ...).  Identity is (writer, seq);
/// a writer's own updates are totally ordered, updates of different writers
/// may conflict.  `meta_delta` is the update's contribution to the file's
/// critical meta-data value (§4.4.1: sum of ASCII codes, sale price, ...).

#include <cstdint>
#include <string>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::replica {

/// Globally unique identity of an update.
struct UpdateKey {
  NodeId writer = kNoNode;
  std::uint64_t seq = 0;  ///< 1-based within the writer's history.

  friend bool operator==(const UpdateKey&, const UpdateKey&) = default;
  friend auto operator<=>(const UpdateKey&, const UpdateKey&) = default;
};

struct UpdateKeyHash {
  std::size_t operator()(const UpdateKey& k) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(k.writer) << 32) ^ k.seq));
  }
};

struct Update {
  UpdateKey key;
  FileId file = 0;
  SimTime stamp = 0;        ///< Writer-local timestamp of the write.
  std::string content;      ///< Opaque application payload.
  double meta_delta = 0.0;  ///< Contribution to the critical meta value.
  bool invalidated = false; ///< Set by the invalidate-both policy.

  /// Estimated serialized size for message accounting.
  [[nodiscard]] std::uint32_t wire_bytes() const {
    return static_cast<std::uint32_t>(40 + content.size());
  }
};

/// Canonical display order: by stamp, ties by writer then seq.  All replicas
/// holding the same update set render the same sequence, which is what the
/// white board's "order preservation" means.
struct CanonicalOrder {
  bool operator()(const Update& a, const Update& b) const {
    if (a.stamp != b.stamp) return a.stamp < b.stamp;
    return a.key < b.key;
  }
};

}  // namespace idea::replica
