#include "replica/hint_store.hpp"

#include <algorithm>
#include <utility>

namespace idea::replica {

void HintStore::enqueue(HintedWrite hint) {
  hints_.push_back(std::move(hint));
  ++stats_.queued;
}

std::vector<HintedWrite> HintStore::drain_for(NodeId target) {
  std::vector<HintedWrite> out;
  auto keep = hints_.begin();
  for (auto it = hints_.begin(); it != hints_.end(); ++it) {
    if (it->target == target) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  hints_.erase(keep, hints_.end());
  stats_.drained += out.size();
  return out;
}

std::size_t HintStore::drop_file(FileId file) {
  const std::size_t before = hints_.size();
  hints_.erase(std::remove_if(
                   hints_.begin(), hints_.end(),
                   [file](const HintedWrite& h) { return h.file == file; }),
               hints_.end());
  const std::size_t dropped = before - hints_.size();
  stats_.dropped += dropped;
  return dropped;
}

std::vector<HintedWrite> HintStore::take_file(FileId file) {
  std::vector<HintedWrite> out;
  auto keep = hints_.begin();
  for (auto it = hints_.begin(); it != hints_.end(); ++it) {
    if (it->file == file) {
      out.push_back(std::move(*it));
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  hints_.erase(keep, hints_.end());
  return out;
}

void HintStore::re_mint(HintedWrite hint) {
  hints_.push_back(std::move(hint));
  ++stats_.reminted;
}

std::size_t HintStore::depth_for(NodeId target) const {
  return static_cast<std::size_t>(
      std::count_if(hints_.begin(), hints_.end(),
                    [target](const HintedWrite& h) {
                      return h.target == target;
                    }));
}

}  // namespace idea::replica
