#pragma once
/// \file hint_store.hpp
/// \brief Durable hinted-handoff queue for sloppy-quorum writes.
///
/// When a write carries a WriteConcern the coordinator must collect w
/// replica applies, but a group member sitting inside a crash window can
/// neither apply nor ack.  Dynamo's answer — which this reproduces — is a
/// *sloppy* quorum: the coordinator parks the update at a live stand-in
/// endpoint outside the group, counts the hint toward w, and the stand-in
/// hands the update back when the member returns, at which point the
/// ordinary shard.digest/repair anti-entropy exchange spreads it over the
/// real wire path.
///
/// Like replica/checkpoint.hpp's DurableStorage, the store models the
/// durable medium itself (the stand-in's disk): it survives the crash of
/// everything volatile, costs no wire traffic to write, and is drained —
/// not read in place — exactly once per returning target.  Updates are
/// keyed in rank space; when a file's group membership changes the old
/// member vector is what translates those keys.  Migration *re-mints*
/// hints instead of dropping them: the migration folds each hint's update
/// into the union snapshot (the key survives unchanged — the snapshot is
/// imported as-is and the new coordinator continues the lineage writer
/// sequence) and re-queues hints whose target is a still-crashed member
/// of the new group, so sloppy durability survives membership changes.
/// Only close_file() still drops.
///
/// Everything here is deterministic: hints drain in queue order and all
/// state derives from protocol events, never wall-clock — fixed-seed
/// replays that use hinted handoff are as replayable as ones that don't.

#include <cstdint>
#include <vector>

#include "replica/update.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::replica {

/// One parked write awaiting its target's return.
struct HintedWrite {
  NodeId stand_in = kNoNode;  ///< Live non-member holding the hint.
  NodeId target = kNoNode;    ///< Crashed group member it is meant for.
  FileId file = 0;
  Update update;              ///< The applied update, rank-space key.
  SimTime queued_at = 0;
};

struct HintStoreStats {
  std::uint64_t queued = 0;
  std::uint64_t drained = 0;  ///< Handed back on a target's return.
  std::uint64_t dropped = 0;  ///< Purged with a closed file.
  /// Re-queued across a migration: the hint's target is a crashed member
  /// of the file's *new* group, so the parked update still owes it a
  /// durable hand-off.
  std::uint64_t reminted = 0;
  /// Retired across a migration: the target is no longer a (crashed)
  /// member of the new group, and the hint's update was folded into the
  /// migration snapshot — the obligation moved to the live group.
  std::uint64_t retired = 0;
};

class HintStore {
 public:
  void enqueue(HintedWrite hint);

  /// Remove and return every hint parked for `target`, in queue order
  /// (deterministic — the drain replays identically under a fixed seed).
  [[nodiscard]] std::vector<HintedWrite> drain_for(NodeId target);

  /// Purge the file's hints (the file is being closed for good).  Returns
  /// how many were dropped.
  std::size_t drop_file(FileId file);

  /// Remove and return the file's hints in queue order, *without*
  /// counting them dropped — the migration path decides per hint whether
  /// to re_mint() or retire() it.
  [[nodiscard]] std::vector<HintedWrite> take_file(FileId file);

  /// Re-queue a hint that survived a migration (target still a crashed
  /// member of the new group).
  void re_mint(HintedWrite hint);

  /// Account `count` hints whose obligation a migration absorbed (their
  /// updates were folded into the state snapshot).
  void retire(std::size_t count) { stats_.retired += count; }

  /// Hints currently parked (across all targets / for one target).
  [[nodiscard]] std::size_t depth() const { return hints_.size(); }
  [[nodiscard]] std::size_t depth_for(NodeId target) const;

  /// Read-only view of the parked queue (tests, obs dumps).
  [[nodiscard]] const std::vector<HintedWrite>& hints() const {
    return hints_;
  }

  [[nodiscard]] const HintStoreStats& stats() const { return stats_; }

 private:
  std::vector<HintedWrite> hints_;  ///< Queue order; scanned on drain.
  HintStoreStats stats_;
};

}  // namespace idea::replica
