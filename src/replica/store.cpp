#include "replica/store.hpp"

#include <algorithm>
#include <cassert>

namespace idea::replica {

const Update& ReplicaStore::apply_local(SimTime local_now,
                                        std::string content,
                                        double meta_delta) {
  Update u;
  u.key = UpdateKey{node_, ++local_seq_};
  u.file = file_;
  u.stamp = local_now;
  u.content = std::move(content);
  u.meta_delta = meta_delta;
  auto [it, inserted] = log_.emplace(u.key, std::move(u));
  assert(inserted);
  evv_.record_update(node_, it->second.stamp, 0.0);
  recompute_meta();
  return it->second;
}

bool ReplicaStore::apply_remote(const Update& u) {
  assert(u.file == file_);
  if (log_.count(u.key) > 0) return true;
  const std::uint64_t known = evv_.count_of(u.key.writer);
  if (u.key.seq > known + 1) {
    // A predecessor is still in flight; park this update until it lands.
    pending_.emplace(u.key, u);
    return false;
  }
  if (u.key.seq <= known) return true;  // duplicate of an applied update
  log_.emplace(u.key, u);
  evv_.record_update(u.key.writer, u.stamp, 0.0);
  if (u.key.writer == node_ && u.key.seq > local_seq_) {
    local_seq_ = u.key.seq;  // rejoining after rollback of our own state
  }
  // Drain any parked successors that are now applicable.
  for (auto it = pending_.find(UpdateKey{u.key.writer, u.key.seq + 1});
       it != pending_.end() &&
       it->first.writer == u.key.writer &&
       it->first.seq == evv_.count_of(u.key.writer) + 1;
       it = pending_.find(
           UpdateKey{u.key.writer, evv_.count_of(u.key.writer) + 1})) {
    log_.emplace(it->first, it->second);
    evv_.record_update(it->first.writer, it->second.stamp, 0.0);
    if (it->first.writer == node_ && it->first.seq > local_seq_) {
      local_seq_ = it->first.seq;
    }
    pending_.erase(it);
  }
  recompute_meta();
  return true;
}

bool ReplicaStore::has(const UpdateKey& key) const {
  return log_.count(key) > 0;
}

const Update* ReplicaStore::find(const UpdateKey& key) const {
  auto it = log_.find(key);
  return it == log_.end() ? nullptr : &it->second;
}

std::vector<Update> ReplicaStore::updates_ahead_of(
    const vv::VersionVector& peer_counts) const {
  std::vector<Update> out;
  for (const auto& [key, u] : log_) {
    if (key.seq > peer_counts.get(key.writer)) out.push_back(u);
  }
  // Per-writer sequence order is implied by the map's key order; sort whole
  // batch canonically so receivers apply writers' histories in seq order.
  std::sort(out.begin(), out.end(), [](const Update& a, const Update& b) {
    return a.key < b.key;
  });
  return out;
}

ReplicaStore::StalenessProbe ReplicaStore::staleness_ahead_of(
    const vv::VersionVector& peer_counts) const {
  StalenessProbe probe;
  for (const auto& [key, u] : log_) {
    if (key.seq > peer_counts.get(key.writer)) {
      if (probe.versions == 0 || u.stamp < probe.oldest_stamp) {
        probe.oldest_stamp = u.stamp;
      }
      ++probe.versions;
    }
  }
  return probe;
}

std::vector<Update> ReplicaStore::export_log() const {
  std::vector<Update> out;
  out.reserve(log_.size());
  for (const auto& [key, u] : log_) out.push_back(u);
  return out;
}

ReplicaStore::ImportReport ReplicaStore::import_log(
    const std::vector<Update>& updates) {
  ImportReport report;
  const std::size_t before = log_.size();
  for (const Update& u : updates) {
    auto it = log_.find(u.key);
    if (it != log_.end()) {
      if (u.invalidated && !it->second.invalidated) {
        it->second.invalidated = true;
        recompute_meta();
        ++report.invalidation_merges;
      } else {
        ++report.duplicates;
      }
      continue;
    }
    if (u.key.seq <= evv_.count_of(u.key.writer)) {
      // Covered by the counts but absent from the log — a hole rollback
      // can leave; nothing to (re)apply.
      ++report.duplicates;
      continue;
    }
    apply_remote(u);
  }
  // An exported log is per-writer complete, so nothing from this batch
  // stays parked in the reorder buffer; the size delta also counts any
  // previously parked successors the batch unblocked.
  report.applied = log_.size() - before;
  return report;
}

bool ReplicaStore::invalidate(const UpdateKey& key) {
  auto it = log_.find(key);
  if (it == log_.end()) return false;
  if (!it->second.invalidated) {
    it->second.invalidated = true;
    recompute_meta();
  }
  return true;
}

std::vector<UpdateKey> ReplicaStore::invalidated_keys() const {
  std::vector<UpdateKey> out;
  for (const auto& [key, u] : log_) {
    if (u.invalidated) out.push_back(key);
  }
  return out;
}

std::size_t ReplicaStore::rollback_to(SimTime t) {
  std::size_t dropped = 0;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.stamp > t) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = log_.begin(); it != log_.end();) {
    if (it->second.stamp > t) {
      it = log_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) {
    // Rebuild the EVV from the surviving log.  A writer's stamps are
    // non-decreasing, so dropping stamp > t removes a per-writer suffix and
    // the remaining history is still a valid prefix.
    const double saved_meta = evv_.meta();
    (void)saved_meta;
    vv::ExtendedVersionVector fresh;
    for (const auto& [key, u] : log_) {
      fresh.record_update(key.writer, u.stamp, 0.0);
    }
    fresh.set_triple(evv_.triple());
    evv_ = std::move(fresh);
    local_seq_ = evv_.count_of(node_);
    recompute_meta();
  }
  return dropped;
}

std::vector<Update> ReplicaStore::ordered_contents() const {
  std::vector<Update> out;
  out.reserve(log_.size());
  for (const auto& [key, u] : log_) out.push_back(u);
  std::sort(out.begin(), out.end(), CanonicalOrder{});
  return out;
}

std::uint64_t ReplicaStore::content_digest() const {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ file_;
  for (const Update& u : ordered_contents()) {
    if (u.invalidated) continue;
    h = mix64(h ^ u.key.writer);
    h = mix64(h ^ u.key.seq);
    h = mix64(h ^ static_cast<std::uint64_t>(u.stamp));
    for (char c : u.content) h = mix64(h ^ static_cast<std::uint8_t>(c));
  }
  return h;
}

void ReplicaStore::recompute_meta() {
  ++mutation_count_;
  double meta = 0.0;
  for (const auto& [key, u] : log_) {
    if (!u.invalidated) meta += u.meta_delta;
  }
  evv_.set_meta(meta);
  // Every content mutation funnels through here; drop the shared message
  // and read-view snapshots so the next send/read sees the new state.
  snapshot_.reset();
  contents_snapshot_.reset();
}

}  // namespace idea::replica
