#pragma once
/// \file store.hpp
/// \brief Per-node replica of one shared file: update log + extended VV.
///
/// This is the "general distributed file system" the paper assumes beneath
/// IDEA: it guarantees read/write correctness for the local replica (apply
/// is idempotent, the log is the source of truth, meta-data is recomputed
/// deterministically) and exposes exactly what the consistency layer needs:
/// the extended version vector, the updates a peer is missing, snapshots and
/// rollback.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "replica/update.hpp"
#include "vv/extended_vv.hpp"

namespace idea::replica {

class ReplicaStore {
 public:
  ReplicaStore(NodeId node, FileId file) : node_(node), file_(file) {}

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] FileId file() const { return file_; }

  /// Issue a local write stamped with the node's local clock.  Returns the
  /// stored update (with its assigned sequence number).
  const Update& apply_local(SimTime local_now, std::string content,
                            double meta_delta);

  /// Learn a remote update.  Idempotent.  A writer's history must be applied
  /// in sequence order; updates arriving ahead of their predecessors (the
  /// network may reorder messages) are buffered and applied automatically
  /// once the gap fills.  Returns true if the update is now applied.
  bool apply_remote(const Update& u);

  /// Out-of-order updates currently parked awaiting predecessors.
  [[nodiscard]] std::size_t pending_remote() const {
    return pending_.size();
  }

  [[nodiscard]] bool has(const UpdateKey& key) const;
  [[nodiscard]] const Update* find(const UpdateKey& key) const;

  /// Updates this replica holds that `peer_counts` does not — the payload of
  /// a resolution/anti-entropy push.
  [[nodiscard]] std::vector<Update> updates_ahead_of(
      const vv::VersionVector& peer_counts) const;

  /// How far a peer at `peer_counts` lags this replica: number of updates
  /// it is missing and the stamp of the oldest one.  Counts in place — no
  /// update copies — so the read router can probe staleness per routed
  /// read without touching contents.
  struct StalenessProbe {
    std::uint64_t versions = 0;
    SimTime oldest_stamp = 0;  ///< Meaningless when versions == 0.
  };
  [[nodiscard]] StalenessProbe staleness_ahead_of(
      const vv::VersionVector& peer_counts) const;

  /// The full applied log as a flat batch, in (writer, seq) order — the
  /// state a migration streams to a file's new replica group.  Carries
  /// invalidation flags, so the importer reproduces the meta value too.
  [[nodiscard]] std::vector<Update> export_log() const;

  /// What one import_log() call did, per update in the batch.
  struct ImportReport {
    std::size_t applied = 0;     ///< Newly added to the log (including any
                                 ///< parked successors the batch unblocked).
    std::size_t duplicates = 0;  ///< Already held (or covered by counts).
    /// Invalidation flags OR'd onto updates already held un-flagged: the
    /// batch knew a resolution outcome this replica had missed.
    std::size_t invalidation_merges = 0;
  };

  /// Ingest a state batch (typically another replica's export_log()).
  /// Every new update goes through apply_remote, so the import is
  /// idempotent, tolerates overlap with updates already held, and adjusts
  /// local_seq when the batch contains this node's own writer history (a
  /// migrated or restarted coordinator continues its predecessor's
  /// sequence).  Updates already held contribute at most their
  /// invalidation flag, which is OR'd in.
  ImportReport import_log(const std::vector<Update>& updates);

  /// Mark an update invalidated (invalidate-both policy) and recompute the
  /// meta value.  Returns false if the update is unknown.
  bool invalidate(const UpdateKey& key);

  /// Keys of every invalidated update in the log.
  [[nodiscard]] std::vector<UpdateKey> invalidated_keys() const;

  /// Drop every update with stamp > t and rebuild the version vector; the
  /// rollback path of §4.4.2 (bottom layer contradicted the top layer).
  /// Returns the number of updates discarded.
  std::size_t rollback_to(SimTime t);

  /// The extended version vector describing this replica.
  [[nodiscard]] const vv::ExtendedVersionVector& evv() const { return evv_; }

  /// Shared immutable copy of the EVV for zero-copy message bodies: every
  /// probe/reply/scan between two replica mutations refcounts one
  /// allocation instead of copying the stamp lists per message.  Rebuilt
  /// lazily after any mutation (updates, invalidation, rollback, triple).
  [[nodiscard]] const std::shared_ptr<const vv::ExtendedVersionVector>&
  evv_snapshot() const {
    if (snapshot_ == nullptr) {
      snapshot_ = std::make_shared<const vv::ExtendedVersionVector>(evv_);
    }
    return snapshot_;
  }

  /// Attach a freshly computed error triple (done by the detection layer).
  void set_triple(const vv::TactTriple& t) {
    evv_.set_triple(t);
    snapshot_.reset();
  }

  /// Updates in canonical display order (what a reader sees).
  [[nodiscard]] std::vector<Update> ordered_contents() const;

  /// Shared immutable canonical-order view of the contents for zero-copy
  /// reads: every get between two replica mutations refcounts one
  /// allocation instead of copying the whole log.  Rebuilt lazily after
  /// any content mutation (updates, invalidation, rollback).
  [[nodiscard]] const std::shared_ptr<const std::vector<Update>>&
  contents_snapshot() const {
    if (contents_snapshot_ == nullptr) {
      contents_snapshot_ =
          std::make_shared<const std::vector<Update>>(ordered_contents());
    }
    return contents_snapshot_;
  }

  /// Read-only view of the raw update log, keyed by (writer, seq) — not
  /// canonical order.  Lets scans (e.g. a kv lookup for one key) walk the
  /// log in place instead of copying every update.
  [[nodiscard]] const std::map<UpdateKey, Update>& log() const {
    return log_;
  }

  /// Order-sensitive digest of the canonical contents; equal digests mean
  /// replicas converged byte-for-byte.  Used heavily by convergence tests.
  [[nodiscard]] std::uint64_t content_digest() const;

  /// Current critical meta-data value (sum of live meta_deltas).
  [[nodiscard]] double meta_value() const { return evv_.meta(); }

  [[nodiscard]] std::size_t update_count() const { return log_.size(); }
  [[nodiscard]] std::uint64_t local_seq() const { return local_seq_; }

  /// Monotone count of content mutations (every apply/invalidate/rollback
  /// that changed what a reader would see).  The incremental checkpoint
  /// engine's dirty test: a replica whose mutation_count is unchanged
  /// since the last checkpoint epoch has nothing new to persist.
  [[nodiscard]] std::uint64_t mutation_count() const {
    return mutation_count_;
  }

 private:
  void recompute_meta();

  NodeId node_;
  FileId file_;
  std::uint64_t local_seq_ = 0;
  std::uint64_t mutation_count_ = 0;
  std::map<UpdateKey, Update> log_;
  std::map<UpdateKey, Update> pending_;  ///< Reorder buffer.
  vv::ExtendedVersionVector evv_;
  mutable std::shared_ptr<const vv::ExtendedVersionVector> snapshot_;
  mutable std::shared_ptr<const std::vector<Update>> contents_snapshot_;
};

}  // namespace idea::replica
