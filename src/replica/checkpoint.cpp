#include "replica/checkpoint.hpp"

#include <utility>

namespace idea::replica {

std::uint64_t checkpoint_bytes(const CheckpointRecord& record) {
  std::uint64_t bytes = 32 + 4 * record.members.size();
  for (const Update& u : record.updates) bytes += u.wire_bytes();
  return bytes;
}

std::uint64_t DurableStorage::put(CheckpointRecord record) {
  const Key key{record.endpoint, record.file};
  record.epoch = ++next_epoch_[key];
  record.bytes = checkpoint_bytes(record);
  records_written_ += 1;
  bytes_written_ += record.bytes;
  updates_written_ += record.updates.size();
  std::deque<CheckpointRecord>& history = records_[key];
  history.push_back(std::move(record));
  while (history.size() > retain_) history.pop_front();
  return history.back().epoch;
}

const CheckpointRecord* DurableStorage::latest(NodeId endpoint,
                                               FileId file) const {
  auto it = records_.find(Key{endpoint, file});
  if (it == records_.end() || it->second.empty()) return nullptr;
  return &it->second.back();
}

std::size_t DurableStorage::record_count() const {
  std::size_t n = 0;
  for (const auto& [key, history] : records_) n += history.size();
  return n;
}

namespace {

CheckpointRecord make_record(NodeId endpoint, std::uint32_t incarnation,
                             const ReplicaRef& ref, SimTime now) {
  CheckpointRecord record;
  record.endpoint = endpoint;
  record.incarnation = incarnation;
  record.file = ref.file;
  record.taken_at = now;
  if (ref.members != nullptr) record.members = *ref.members;
  record.updates = ref.store->export_log();
  return record;
}

void account(CheckpointRunStats& run, CheckpointRunStats& totals,
             std::uint64_t updates, std::uint64_t bytes) {
  run.files_written += 1;
  run.updates_written += updates;
  run.bytes_written += bytes;
  totals.files_written += 1;
  totals.updates_written += updates;
  totals.bytes_written += bytes;
}

}  // namespace

CheckpointRunStats FullSnapshotEngine::checkpoint(
    NodeId endpoint, std::uint32_t incarnation,
    const std::vector<ReplicaRef>& replicas, SimTime now,
    DurableStorage& storage) {
  CheckpointRunStats run;
  for (const ReplicaRef& ref : replicas) {
    if (ref.store == nullptr) continue;
    CheckpointRecord record = make_record(endpoint, incarnation, ref, now);
    const std::uint64_t updates = record.updates.size();
    const std::uint64_t bytes = checkpoint_bytes(record);
    storage.put(std::move(record));
    account(run, totals_, updates, bytes);
  }
  return run;
}

CheckpointRunStats IncrementalEngine::checkpoint(
    NodeId endpoint, std::uint32_t incarnation,
    const std::vector<ReplicaRef>& replicas, SimTime now,
    DurableStorage& storage) {
  CheckpointRunStats run;
  for (const ReplicaRef& ref : replicas) {
    if (ref.store == nullptr) continue;
    const std::pair<NodeId, FileId> key{endpoint, ref.file};
    auto it = last_.find(key);
    // Dirty test: unchanged mutation count within the same life means the
    // previous checkpoint still describes this replica exactly.  A new
    // incarnation is always dirty — its store was rebuilt from recovery
    // and the counter restarted.
    if (it != last_.end() && it->second.incarnation == incarnation &&
        it->second.mutations == ref.store->mutation_count()) {
      run.files_clean += 1;
      totals_.files_clean += 1;
      continue;
    }
    CheckpointRecord record = make_record(endpoint, incarnation, ref, now);
    const std::uint64_t updates = record.updates.size();
    const std::uint64_t bytes = checkpoint_bytes(record);
    storage.put(std::move(record));
    account(run, totals_, updates, bytes);
    last_[key] = Seen{incarnation, ref.store->mutation_count()};
  }
  return run;
}

std::unique_ptr<CheckpointEngine> make_checkpoint_engine(
    CheckpointEngineKind kind) {
  switch (kind) {
    case CheckpointEngineKind::kNone:
      return nullptr;
    case CheckpointEngineKind::kFull:
      return std::make_unique<FullSnapshotEngine>();
    case CheckpointEngineKind::kIncremental:
      return std::make_unique<IncrementalEngine>();
  }
  return nullptr;
}

}  // namespace idea::replica
