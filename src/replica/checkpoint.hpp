#pragma once
/// \file checkpoint.hpp
/// \brief Durable checkpoint engines for crash-stop/restart recovery.
///
/// A crashed endpoint loses its volatile state (every ReplicaStore it
/// hosted); what survives is whatever a CheckpointEngine persisted into
/// DurableStorage before the crash.  On restart the endpoint reloads each
/// owned shard from its latest durable checkpoint and heals only the
/// checkpoint→crash gap through the ordinary shard.digest/repair
/// anti-entropy exchange — O(delta) instead of the O(log) migration
/// stream a clean leave/rejoin would pay.
///
/// Two engines expose the classic write-amplification vs recovery-bytes
/// trade-off (libcrpm's undolog vs dirtybit split):
///
///  * FullSnapshotEngine — persists every hosted replica's full
///    export_log() image each period.  Maximum write amplification,
///    recovery always finds a complete image.
///
///  * IncrementalEngine — dirty-file tracking: a replica is persisted
///    only when its ReplicaStore::mutation_count() moved since the last
///    checkpoint epoch (an incarnation change always counts as dirty).
///    Clean files cost nothing per period; recovery still finds a
///    complete image, because an unchanged replica's previous checkpoint
///    is by definition still current.
///
/// DurableStorage is a deterministic in-sim device: records are keyed by
/// (endpoint, shard/file, checkpoint epoch) and stamped with the writing
/// incarnation, held in ordered containers so iteration and retention
/// pruning replay identically under a fixed seed.  "Durable" means it
/// lives outside the endpoint's service object: crash_endpoint() drops
/// the service, the storage survives.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "replica/store.hpp"
#include "replica/update.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::replica {

/// One durable checkpoint of one endpoint's replica of one file.
struct CheckpointRecord {
  NodeId endpoint = kNoNode;
  std::uint32_t incarnation = 0;  ///< Life of the endpoint that wrote it.
  FileId file = 0;
  std::uint64_t epoch = 0;  ///< Per-(endpoint, file) monotone counter.
  SimTime taken_at = 0;
  /// Rank -> endpoint map of the replica group at checkpoint time.  The
  /// updates are keyed by rank-space writer ids, so a checkpoint is only
  /// loadable while the group membership (and thus the rank mapping) is
  /// unchanged; recovery discards records whose members moved.
  std::vector<NodeId> members;
  std::vector<Update> updates;
  std::uint64_t bytes = 0;  ///< Modeled serialized size.
};

/// Deterministic in-sim durable store for checkpoint records.
class DurableStorage {
 public:
  /// `retain` bounds history per (endpoint, file): older records are
  /// pruned as new ones land (always keeping at least the newest).
  explicit DurableStorage(std::uint32_t retain = 2)
      : retain_(retain < 1 ? 1 : retain) {}

  /// Persist a record.  Assigns the next checkpoint epoch for its
  /// (endpoint, file) key and prunes history beyond the retention bound.
  /// Returns the assigned epoch.
  std::uint64_t put(CheckpointRecord record);

  /// The newest record for (endpoint, file) regardless of incarnation —
  /// durable state belongs to the endpoint slot, not one of its lives.
  /// nullptr when nothing was ever checkpointed.
  [[nodiscard]] const CheckpointRecord* latest(NodeId endpoint,
                                               FileId file) const;

  /// Records currently held (after pruning).
  [[nodiscard]] std::size_t record_count() const;

  // Lifetime write accounting (pruning does not subtract).
  [[nodiscard]] std::uint64_t records_written() const {
    return records_written_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::uint64_t updates_written() const {
    return updates_written_;
  }

  [[nodiscard]] std::uint32_t retain() const { return retain_; }

 private:
  using Key = std::pair<NodeId, FileId>;
  std::map<Key, std::deque<CheckpointRecord>> records_;
  std::map<Key, std::uint64_t> next_epoch_;
  std::uint32_t retain_;
  std::uint64_t records_written_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t updates_written_ = 0;
};

/// One hosted replica offered to an engine's checkpoint pass.
struct ReplicaRef {
  FileId file = 0;
  const ReplicaStore* store = nullptr;
  const std::vector<NodeId>* members = nullptr;  ///< rank -> endpoint.
};

/// What one checkpoint pass over one endpoint did.
struct CheckpointRunStats {
  std::uint64_t files_written = 0;
  std::uint64_t files_clean = 0;  ///< Skipped as unchanged (incremental).
  std::uint64_t updates_written = 0;
  std::uint64_t bytes_written = 0;
};

/// Strategy interface: how an endpoint's hosted replicas are persisted.
class CheckpointEngine {
 public:
  virtual ~CheckpointEngine() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Persist `replicas` (the endpoint's hosted stores, sorted by file id
  /// by the caller) into `storage`.  Called on the simulator clock; must
  /// draw no RNG and send no messages, so enabling checkpoints never
  /// perturbs a fixed-seed replay.
  virtual CheckpointRunStats checkpoint(NodeId endpoint,
                                        std::uint32_t incarnation,
                                        const std::vector<ReplicaRef>& replicas,
                                        SimTime now,
                                        DurableStorage& storage) = 0;

  /// Lifetime totals across every checkpoint() call.
  [[nodiscard]] const CheckpointRunStats& totals() const { return totals_; }

 protected:
  CheckpointRunStats totals_;
};

/// Full-image engine: every hosted replica is written every pass.
class FullSnapshotEngine final : public CheckpointEngine {
 public:
  [[nodiscard]] const char* name() const override { return "full"; }
  CheckpointRunStats checkpoint(NodeId endpoint, std::uint32_t incarnation,
                                const std::vector<ReplicaRef>& replicas,
                                SimTime now, DurableStorage& storage) override;
};

/// Dirty-file engine: a replica is written only when its mutation count
/// moved since this engine last persisted it (libcrpm dirtybit-style).
class IncrementalEngine final : public CheckpointEngine {
 public:
  [[nodiscard]] const char* name() const override { return "incremental"; }
  CheckpointRunStats checkpoint(NodeId endpoint, std::uint32_t incarnation,
                                const std::vector<ReplicaRef>& replicas,
                                SimTime now, DurableStorage& storage) override;

 private:
  struct Seen {
    std::uint32_t incarnation = 0;
    std::uint64_t mutations = 0;
  };
  /// Last persisted (incarnation, mutation_count) per (endpoint, file).
  std::map<std::pair<NodeId, FileId>, Seen> last_;
};

enum class CheckpointEngineKind {
  kNone,  ///< No durable state; a restarted endpoint recovers via AE only.
  kFull,
  kIncremental,
};

/// Cluster-level checkpoint configuration (embedded in the shard config).
struct CheckpointConfig {
  CheckpointEngineKind engine = CheckpointEngineKind::kNone;
  /// Per-endpoint checkpoint period on the simulator clock; 0 disables
  /// the timers even when an engine is selected.
  SimDuration period = 0;
  /// Records retained per (endpoint, file) in durable storage.
  std::uint32_t retain = 2;

  [[nodiscard]] bool enabled() const {
    return engine != CheckpointEngineKind::kNone && period > 0;
  }
};

/// nullptr for kNone.
std::unique_ptr<CheckpointEngine> make_checkpoint_engine(
    CheckpointEngineKind kind);

/// Modeled serialized size of one record (header + member map + updates).
std::uint64_t checkpoint_bytes(const CheckpointRecord& record);

}  // namespace idea::replica
