#pragma once
/// \file slo.hpp
/// \brief Tenant-declared service-level objectives for adaptive sessions.
///
/// The paper's controller needs a target to adapt *toward*: a tenant
/// declares what it can tolerate (staleness) and what it must deliver
/// (latency), and the ConsistencyController renegotiates the tenant's
/// bounded-staleness bound against both.  The two axes pull in opposite
/// directions — a tighter bound escalates more reads to the coordinator
/// (latency up, staleness down), a looser bound serves more reads nearby
/// (latency down, staleness up) — which is exactly the trade the ROADMAP
/// item 4 example ("p99 staleness <= 2 versions, p95 read <= 50 ms")
/// describes.

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace idea::adapt {

/// A composite objective: both clauses must hold for the SLO to be
/// attained.  Defaults match the ROADMAP's worked example.
struct Slo {
  /// p99 of observed per-read staleness must stay at or under this many
  /// versions behind the coordinator.
  std::uint64_t p99_staleness_versions = 2;
  /// p95 of client-observed read latency must stay at or under this.
  SimDuration p95_read_latency = msec(50);

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Slo&, const Slo&) = default;
};

}  // namespace idea::adapt
