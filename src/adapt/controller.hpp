#pragma once
/// \file controller.hpp
/// \brief Detection-driven adaptive consistency: the per-file/per-tenant
///        control loop that closes ROADMAP item 4.
///
/// The paper's thesis is that *detecting* inconsistency and adapting beats
/// statically chosen levels.  Every signal the loop needs already exists —
/// the detector attaches a consistency level to each file, the router
/// counts escalations and measures exact per-read staleness, and obs
/// records all of it deterministically.  The ConsistencyController is the
/// missing consumer: a periodic sim-clock tick that turns those signals
/// into a per-file consistency *target*, plus a per-tenant negotiator that
/// retunes bounded-staleness bounds against a declared Slo.
///
/// Control rules (each evaluated once per tick window):
///
///  * Escalate  — a file that saw >= hot_writes writes in the window AND
///    any contention evidence (bounded escalations, stale policy reads, or
///    the detector's consistency level dropping under detector_floor) has
///    its target raised to Strong (or Quorum{r} when escalate_to_quorum):
///    hot contended files are served from the coordinator until they calm.
///  * Step down — an escalated file with hold_windows consecutive calm
///    windows (no contention evidence AND write volume below hot_writes)
///    returns to the session's declared level.
///  * Relax     — a file with cold_windows consecutive write-free windows,
///    the last of them quiet (no escalations or stale reads — replicas
///    proved healed), relaxes to EventualNearest: nothing is changing, so
///    the nearest replica is as good as any.  A renewed write rewarms the
///    file to the declared level synchronously (inside on_write, before
///    any later read routes), since Eventual has no bound to cap what a
///    read between the write and the next tick would see.
///  * Renegotiate — per tenant, the window's reads are scored against the
///    declared Slo: too many reads over the latency clause loosens the
///    tenant's staleness bound by one version (fewer escalations, lower
///    latency); too many stale-beyond-SLO reads tightens it.
///
/// Determinism: the controller runs on the sim clock, iterates files and
/// tenants in ordered-map order, draws no RNG, and appends every decision
/// to a reproducible decision log whose FNV/mix64 digest is golden-testable
/// — two same-seed adaptive runs produce byte-identical logs.  With
/// `enabled = false` (default) the controller is never constructed and
/// every routing path is byte-identical to the pre-adaptive build.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "adapt/slo.hpp"
#include "client/consistency.hpp"
#include "obs/observability.hpp"
#include "sim/simulator.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::adapt {

struct ControllerConfig {
  /// Master switch: off (default) means the cluster never constructs a
  /// controller and the routing hot path is byte-identical to today.
  bool enabled = false;
  /// Control-loop tick period.
  SimDuration period = msec(500);
  /// Writes per window at or above which a file counts as hot.
  std::uint32_t hot_writes = 4;
  /// Bounded escalations per window at or above which a hot file counts
  /// as contended.
  std::uint32_t escalation_trigger = 1;
  /// Detector consistency level under which a hot file counts as
  /// contended (the detector's level is 1.0 when fully consistent).
  double detector_floor = 0.75;
  /// Consecutive write-free windows before a file relaxes to Eventual.
  std::uint32_t cold_windows = 4;
  /// Consecutive calm windows before an escalated file steps down.
  std::uint32_t hold_windows = 2;
  /// Escalate to Quorum{quorum_r} instead of Strong.
  bool escalate_to_quorum = false;
  std::uint32_t quorum_r = 0;
  /// Ceiling for a renegotiated staleness bound (versions).
  std::uint64_t max_bound = 8;
  /// Fraction of a tenant's window reads allowed over the latency clause
  /// before the bound loosens.
  double latency_pressure = 0.05;
  /// Fraction allowed over the staleness clause before the bound
  /// tightens.
  double staleness_pressure = 0.01;
};

struct ControllerStats {
  std::uint64_t ticks = 0;
  std::uint64_t decisions = 0;     ///< Log lines appended.
  std::uint64_t escalations = 0;   ///< Declared/eventual -> strong/quorum.
  std::uint64_t step_downs = 0;    ///< Escalated -> declared.
  std::uint64_t relaxations = 0;   ///< Declared -> eventual.
  std::uint64_t rewarms = 0;       ///< Eventual -> declared on new writes.
  std::uint64_t renegotiations = 0;  ///< Tenant bound shifts.
  std::uint64_t reads_observed = 0;
  std::uint64_t writes_observed = 0;
};

/// The per-file/per-tenant adaptive consistency control loop.  One per
/// ShardedCluster; sessions opt in per SessionOptions::adaptive and the
/// RequestRouter consults effective_level() at serve time.
class ConsistencyController {
 public:
  /// What the controller currently wants for a file, relative to the
  /// session's declared level.
  enum class Target : std::uint8_t {
    kDeclared,  ///< No override: serve the declared level (default).
    kEventual,  ///< Cold file: relax to EventualNearest.
    kStrong,    ///< Hot contended file: coordinator reads.
    kQuorum,    ///< Hot contended file: quorum reads.
  };

  /// `probe` answers "what consistency level does the detector attach to
  /// this file right now" (RequestRouter::level); wired by the cluster.
  ConsistencyController(sim::Simulator& sim, ControllerConfig config,
                        obs::Observability* obs);

  ConsistencyController(const ConsistencyController&) = delete;
  ConsistencyController& operator=(const ConsistencyController&) = delete;

  void set_level_probe(std::function<double(FileId)> probe) {
    probe_ = std::move(probe);
  }

  /// Begin ticking on the sim clock; idempotent.
  void start();
  void stop();

  /// Declare (or replace) a tenant's SLO.  Tenants that never declare one
  /// keep their sessions' bounds untouched.
  void declare_slo(std::uint32_t tenant, const Slo& slo);

  // ------------------------------------------------------------------
  // Feedback (called by the router on every routed op)
  // ------------------------------------------------------------------

  /// Record a completed read.  `adaptive` marks reads from opted-in
  /// sessions (only those feed tenant SLO accounting); static-session
  /// reads still inform per-file contention signals.
  void on_read(FileId file, std::uint32_t tenant, bool adaptive,
               const client::ReadResult& result);

  /// Record a write routed to `file`.
  void on_write(FileId file);

  // ------------------------------------------------------------------
  // Consultation (router serve time)
  // ------------------------------------------------------------------

  /// The level an adaptive session should actually be served at, given
  /// its declared level: the file's current target override, with
  /// bounded-staleness bounds renegotiated per the tenant's SLO shift.
  [[nodiscard]] client::ConsistencyLevel effective_level(
      FileId file, std::uint32_t tenant,
      const client::ConsistencyLevel& declared) const;

  /// The raw per-file target (kDeclared for unknown files).
  [[nodiscard]] Target target_of(FileId file) const;

  /// The tenant's current bound shift in versions (0 when never
  /// renegotiated).
  [[nodiscard]] std::int64_t bound_shift(std::uint32_t tenant) const;

  /// Run one control window now (also runs periodically after start()).
  void tick();

  [[nodiscard]] const ControllerStats& stats() const { return stats_; }

  /// Every decision the controller ever made, one fixed-format line per
  /// decision, in decision order.  Reproducible across same-seed runs.
  [[nodiscard]] const std::vector<std::string>& decision_log() const {
    return log_;
  }

  /// FNV-1a over each log line, folded order-sensitively with mix64 —
  /// the golden-testable fingerprint of the whole control history.
  [[nodiscard]] std::uint64_t decision_digest() const;

 private:
  struct FileState {
    Target target = Target::kDeclared;
    // Window accumulators (reset every tick).
    std::uint32_t writes = 0;
    std::uint32_t reads = 0;
    std::uint32_t escalations = 0;
    std::uint32_t stale_reads = 0;
    // Cross-window bookkeeping.
    std::uint32_t idle_windows = 0;  ///< Consecutive write-free windows.
    std::uint32_t calm_windows = 0;  ///< Consecutive uncontended windows.
  };

  struct TenantState {
    Slo slo;
    bool declared = false;
    std::int64_t shift = 0;  ///< Versions added to declared bounds.
    // Window accumulators (adaptive reads only; reset every tick).
    std::uint64_t reads = 0;
    std::uint64_t over_latency = 0;
    std::uint64_t over_staleness = 0;
  };

  /// `file` is signed so tenant-scope decisions can log file=-1.
  void decide(const char* verb, std::int64_t file, std::uint32_t tenant,
              const std::string& detail);

  sim::Simulator& sim_;
  ControllerConfig config_;
  obs::Observability* obs_;
  std::function<double(FileId)> probe_;
  // Ordered maps: tick() iterates them, and decision order must be
  // reproducible.  File states are never GC'd — a target must outlive
  // the window that set it.
  std::map<FileId, FileState> files_;
  std::map<std::uint32_t, TenantState> tenants_;
  std::vector<std::string> log_;
  ControllerStats stats_;
  sim::EventId tick_event_{};
  bool running_ = false;
};

}  // namespace idea::adapt
