#include "adapt/controller.hpp"

#include <cinttypes>
#include <cstdio>

#include "util/ids.hpp"

namespace idea::adapt {

namespace {

/// Interned once; recording is an array index (see metrics.hpp).
struct ControllerMetrics {
  obs::MetricId ticks = obs::MetricId::intern("adapt.ticks");
  obs::MetricId decisions = obs::MetricId::intern("adapt.decisions");
  obs::MetricId escalations = obs::MetricId::intern("adapt.escalations");
  obs::MetricId step_downs = obs::MetricId::intern("adapt.step_downs");
  obs::MetricId relaxations = obs::MetricId::intern("adapt.relaxations");
  obs::MetricId rewarms = obs::MetricId::intern("adapt.rewarms");
  obs::MetricId renegotiations =
      obs::MetricId::intern("adapt.renegotiations");
  obs::MetricId overridden = obs::MetricId::intern("adapt.files.overridden");
  obs::MetricId window_writes =
      obs::MetricId::intern("adapt.window.writes_per_file");
};

const ControllerMetrics& metrics() {
  static const ControllerMetrics m;
  return m;
}

const char* target_name(ConsistencyController::Target t) {
  switch (t) {
    case ConsistencyController::Target::kDeclared:
      return "declared";
    case ConsistencyController::Target::kEventual:
      return "eventual";
    case ConsistencyController::Target::kStrong:
      return "strong";
    case ConsistencyController::Target::kQuorum:
      return "quorum";
  }
  return "?";
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string Slo::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "slo{p99_staleness<=%" PRIu64 "v p95_read<=%" PRId64 "us}",
                p99_staleness_versions,
                static_cast<std::int64_t>(p95_read_latency));
  return buf;
}

ConsistencyController::ConsistencyController(sim::Simulator& sim,
                                             ControllerConfig config,
                                             obs::Observability* obs)
    : sim_(sim), config_(config), obs_(obs) {}

void ConsistencyController::start() {
  if (running_) return;
  running_ = true;
  tick_event_ =
      sim_.schedule_periodic(config_.period, [this] { tick(); });
}

void ConsistencyController::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(tick_event_);
  tick_event_ = sim::kInvalidEvent;
}

void ConsistencyController::declare_slo(std::uint32_t tenant,
                                        const Slo& slo) {
  TenantState& t = tenants_[tenant];
  t.slo = slo;
  t.declared = true;
  decide("slo", -1, tenant, slo.describe());
}

void ConsistencyController::on_read(FileId file, std::uint32_t tenant,
                                    bool adaptive,
                                    const client::ReadResult& result) {
  ++stats_.reads_observed;
  FileState& f = files_[file];
  ++f.reads;
  if (result.escalated) ++f.escalations;
  if (result.staleness_versions > 0) ++f.stale_reads;
  if (!adaptive) return;
  TenantState& t = tenants_[tenant];
  if (!t.declared) return;
  ++t.reads;
  if (result.latency > t.slo.p95_read_latency) ++t.over_latency;
  if (result.staleness_versions > t.slo.p99_staleness_versions) {
    ++t.over_staleness;
  }
}

void ConsistencyController::on_write(FileId file) {
  ++stats_.writes_observed;
  FileState& f = files_[file];
  ++f.writes;
  // Rewarm immediately, not at the next tick: an Eventual-relaxed file
  // has no staleness bound, so every read between a renewed write and
  // the next window boundary could serve arbitrarily stale data.  The
  // declared level's bound takes effect on the very next read instead.
  if (f.target == Target::kEventual) {
    f.target = Target::kDeclared;
    f.idle_windows = 0;
    ++stats_.rewarms;
    if (obs_ != nullptr) obs_->cluster().add(metrics().rewarms);
    decide("rewarm", static_cast<std::int64_t>(file), 0, "write");
  }
}

client::ConsistencyLevel ConsistencyController::effective_level(
    FileId file, std::uint32_t tenant,
    const client::ConsistencyLevel& declared) const {
  auto it = files_.find(file);
  const Target target = it == files_.end() ? Target::kDeclared : it->second.target;
  switch (target) {
    case Target::kStrong:
      return client::ConsistencyLevel::strong();
    case Target::kQuorum:
      return client::ConsistencyLevel::quorum(config_.quorum_r);
    case Target::kEventual:
      return client::ConsistencyLevel::eventual_nearest();
    case Target::kDeclared:
      break;
  }
  if (declared.level == client::Level::kBoundedStaleness) {
    auto t = tenants_.find(tenant);
    if (t != tenants_.end() && t->second.shift != 0) {
      const std::int64_t shifted =
          static_cast<std::int64_t>(declared.max_versions) + t->second.shift;
      const std::uint64_t bound =
          shifted < 0 ? 0
                      : (static_cast<std::uint64_t>(shifted) > config_.max_bound
                             ? config_.max_bound
                             : static_cast<std::uint64_t>(shifted));
      return client::ConsistencyLevel::bounded_staleness(bound,
                                                         declared.max_age);
    }
  }
  return declared;
}

ConsistencyController::Target ConsistencyController::target_of(
    FileId file) const {
  auto it = files_.find(file);
  return it == files_.end() ? Target::kDeclared : it->second.target;
}

std::int64_t ConsistencyController::bound_shift(std::uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.shift;
}

void ConsistencyController::tick() {
  ++stats_.ticks;
  obs::Meter meter =
      obs_ != nullptr ? obs_->cluster_meter() : obs::Meter();
  meter.add(metrics().ticks);

  const Target hot_target =
      config_.escalate_to_quorum ? Target::kQuorum : Target::kStrong;
  std::uint64_t overridden = 0;

  for (auto& [file, f] : files_) {
    meter.observe(metrics().window_writes, f.writes);
    // Contention evidence: enough writes this window AND any of router
    // escalations, stale policy reads, or the detector's level sagging.
    // The detector probe is consulted last — it is the most expensive
    // signal and only breaks ties.
    const bool hot = f.writes >= config_.hot_writes;
    const bool contended =
        hot && (f.escalations >= config_.escalation_trigger ||
                f.stale_reads > 0 ||
                (probe_ && probe_(file) < config_.detector_floor));

    f.idle_windows = f.writes == 0 ? f.idle_windows + 1 : 0;
    // An escalated file served Strong/Quorum produces no escalations or
    // stale reads by construction, so "calm" must also require the write
    // pressure to have subsided — otherwise every escalation would step
    // down after hold_windows and immediately re-escalate.
    const bool escalated =
        f.target == Target::kStrong || f.target == Target::kQuorum;
    f.calm_windows =
        (contended || (escalated && hot)) ? 0 : f.calm_windows + 1;

    if (contended && f.target != hot_target) {
      char detail[96];
      std::snprintf(detail, sizeof(detail),
                    "%s->%s w=%u esc=%u stale=%u", target_name(f.target),
                    target_name(hot_target), f.writes, f.escalations,
                    f.stale_reads);
      f.target = hot_target;
      ++stats_.escalations;
      meter.add(metrics().escalations);
      decide("escalate", static_cast<std::int64_t>(file), 0, detail);
      // Hand the escalation to the trace tree: if a traced read parked a
      // repair trace for this file, tag the adaptation decision onto it.
      if (obs_ != nullptr && obs_->tracer() != nullptr) {
        const obs::TraceContext parked = obs_->peek_repair_trace(file);
        if (parked.active()) {
          obs_->tracer()->instant(parked, "adapt.escalate", kNoNode, file,
                                  sim_.now());
        }
      }
    } else if ((f.target == Target::kStrong || f.target == Target::kQuorum) &&
               f.calm_windows >= config_.hold_windows) {
      f.target = Target::kDeclared;
      ++stats_.step_downs;
      meter.add(metrics().step_downs);
      decide("step_down", static_cast<std::int64_t>(file), 0, "calm");
    } else if (f.target == Target::kDeclared &&
               f.idle_windows >= config_.cold_windows && f.reads > 0 &&
               f.escalations == 0 && f.stale_reads == 0) {
      // Relax requires the window to be *quiet*, not just write-free:
      // right after a loss window an idle file's replicas can still lag
      // (anti-entropy has not healed them yet), and Eventual has no
      // bound to catch that.  Escalations/stale reads in the window are
      // exactly that evidence, so relaxation waits for repair.
      f.target = Target::kEventual;
      ++stats_.relaxations;
      meter.add(metrics().relaxations);
      decide("relax", static_cast<std::int64_t>(file), 0, "cold");
    }

    if (f.target != Target::kDeclared) ++overridden;
    f.writes = 0;
    f.reads = 0;
    f.escalations = 0;
    f.stale_reads = 0;
  }
  meter.set_gauge(metrics().overridden,
                  static_cast<std::int64_t>(overridden));

  for (auto& [tenant, t] : tenants_) {
    if (!t.declared || t.reads == 0) continue;
    const double reads = static_cast<double>(t.reads);
    const double stale_frac = static_cast<double>(t.over_staleness) / reads;
    const double lat_frac = static_cast<double>(t.over_latency) / reads;
    std::int64_t step = 0;
    // Staleness pressure wins ties: the bound exists to cap staleness,
    // and tightening is the only lever that restores it.
    if (stale_frac > config_.staleness_pressure) {
      step = -1;
    } else if (lat_frac > config_.latency_pressure) {
      step = 1;
    }
    if (step != 0) {
      const std::int64_t limit =
          static_cast<std::int64_t>(config_.max_bound);
      std::int64_t next = t.shift + step;
      if (next > limit) next = limit;
      if (next < -limit) next = -limit;
      if (next != t.shift) {
        char detail[96];
        std::snprintf(detail, sizeof(detail),
                      "shift=%+" PRId64 " stale=%.3f lat=%.3f", next,
                      stale_frac, lat_frac);
        t.shift = next;
        ++stats_.renegotiations;
        meter.add(metrics().renegotiations);
        decide("renegotiate", -1, tenant, detail);
      }
    }
    t.reads = 0;
    t.over_latency = 0;
    t.over_staleness = 0;
  }
}

void ConsistencyController::decide(const char* verb, std::int64_t file,
                                   std::uint32_t tenant,
                                   const std::string& detail) {
  char line[192];
  std::snprintf(line, sizeof(line),
                "t=%" PRId64 " %s file=%" PRId64 " tenant=%u %s",
                static_cast<std::int64_t>(sim_.now()), verb, file, tenant,
                detail.c_str());
  log_.emplace_back(line);
  ++stats_.decisions;
  if (obs_ != nullptr) obs_->cluster().add(metrics().decisions);
}

std::uint64_t ConsistencyController::decision_digest() const {
  std::uint64_t digest = 0x9E3779B97F4A7C15ull;
  for (const std::string& line : log_) {
    digest = mix64(digest ^ fnv1a(line));
  }
  return digest;
}

}  // namespace idea::adapt
