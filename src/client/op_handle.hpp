#pragma once
/// \file op_handle.hpp
/// \brief Async completion handle for session operations.
///
/// The replicas live in-process, so the data plane of an operation
/// applies at issue time — but the *client* only observes completion
/// after the routed round trips elapse on the simulator clock.  An
/// OpHandle carries both timelines: value() is available immediately for
/// code running "at the server" (tests, oracles), while done() and
/// on_complete() speak the client's clock, which is what lets callers
/// stop blocking on the simulator loop.  Handles are cheap shared
/// references; copies observe the same operation.

#include <cassert>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace idea::client {

template <typename T>
class OpHandle {
 public:
  OpHandle() = default;

  OpHandle(sim::Simulator& sim, T value, SimDuration latency, bool ok)
      : state_(std::make_shared<State>(State{&sim, std::move(value), sim.now(),
                                             latency, ok, /*resolved=*/true,
                                             {}})) {}

  /// A handle whose completion instant is not yet known — a write waiting
  /// on a replication ack quorum rather than a modeled round trip.  The
  /// value carries the issue-time view; resolve() later fixes the final
  /// value, latency and outcome.  Until then done() is false and
  /// on_complete() callbacks queue.
  [[nodiscard]] static OpHandle pending(sim::Simulator& sim, T value) {
    OpHandle h(sim, std::move(value), /*latency=*/0, /*ok=*/false);
    h.state_->resolved = false;
    return h;
  }

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Whether the operation was accepted (write applied / read served).
  /// An invalid (default-constructed) handle is not ok.
  [[nodiscard]] bool ok() const { return valid() && state_->ok; }

  [[nodiscard]] SimTime issued_at() const {
    assert(valid());
    return state_->issued_at;
  }

  /// Client-observed latency the routing implies (round trip to the
  /// serving replica; slowest round trip of a quorum fan-out).
  [[nodiscard]] SimDuration latency() const {
    assert(valid());
    return state_->latency;
  }

  [[nodiscard]] SimTime ready_at() const {
    return issued_at() + latency();
  }

  /// Whether the simulator clock has passed the completion instant.  A
  /// pending handle is never done until resolve() fixes that instant.
  [[nodiscard]] bool done() const {
    return valid() && state_->resolved && state_->sim->now() >= ready_at();
  }

  /// Whether the completion instant is known yet (always true for
  /// fixed-latency handles; false for a pending() handle before resolve).
  [[nodiscard]] bool resolved() const { return valid() && state_->resolved; }

  [[nodiscard]] const T& value() const {
    assert(valid());
    return state_->value;
  }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Mutable view of the value for the layer driving a pending handle
  /// (the session fills in ack counts before resolving).
  [[nodiscard]] T& mutable_value() const {
    assert(valid());
    return state_->value;
  }

  /// Fix a pending handle's outcome: completion lands `latency` after
  /// issue (clamped so it never completes in the past), and queued
  /// on_complete callbacks are dispatched.  No-op on an already-resolved
  /// handle, so the resolving layer need not track double fires.
  void resolve(SimDuration latency, bool ok) const {
    assert(valid());
    if (state_->resolved) return;
    const SimTime now = state_->sim->now();
    if (state_->issued_at + latency < now) latency = now - state_->issued_at;
    state_->latency = latency;
    state_->ok = ok;
    state_->resolved = true;
    std::vector<std::function<void(const OpHandle&)>> waiters;
    waiters.swap(state_->waiters);
    for (auto& fn : waiters) on_complete(std::move(fn));
  }

  /// Run `fn` when the operation completes on the simulator clock —
  /// synchronously if it already has, else via a scheduled event (or, for
  /// a pending handle, queued until resolve() fixes the instant).  The
  /// callback receives this handle (keeping the state alive).
  void on_complete(std::function<void(const OpHandle&)> fn) const {
    assert(valid());
    if (!state_->resolved) {
      state_->waiters.push_back(std::move(fn));
      return;
    }
    if (done()) {
      fn(*this);
      return;
    }
    state_->sim->schedule_at(ready_at(),
                             [self = *this, fn = std::move(fn)] { fn(self); });
  }

 private:
  struct State {
    sim::Simulator* sim;
    T value;
    SimTime issued_at;
    SimDuration latency;
    bool ok;
    bool resolved = true;
    /// Callbacks parked on a pending handle until resolve().
    std::vector<std::function<void(const OpHandle&)>> waiters;
  };

  std::shared_ptr<State> state_;
};

}  // namespace idea::client
