#pragma once
/// \file op_handle.hpp
/// \brief Async completion handle for session operations.
///
/// The replicas live in-process, so the data plane of an operation
/// applies at issue time — but the *client* only observes completion
/// after the routed round trips elapse on the simulator clock.  An
/// OpHandle carries both timelines: value() is available immediately for
/// code running "at the server" (tests, oracles), while done() and
/// on_complete() speak the client's clock, which is what lets callers
/// stop blocking on the simulator loop.  Handles are cheap shared
/// references; copies observe the same operation.

#include <cassert>
#include <functional>
#include <memory>
#include <utility>

#include "sim/simulator.hpp"
#include "util/time.hpp"

namespace idea::client {

template <typename T>
class OpHandle {
 public:
  OpHandle() = default;

  OpHandle(sim::Simulator& sim, T value, SimDuration latency, bool ok)
      : state_(std::make_shared<State>(
            State{&sim, std::move(value), sim.now(), latency, ok})) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  /// Whether the operation was accepted (write applied / read served).
  /// An invalid (default-constructed) handle is not ok.
  [[nodiscard]] bool ok() const { return valid() && state_->ok; }

  [[nodiscard]] SimTime issued_at() const {
    assert(valid());
    return state_->issued_at;
  }

  /// Client-observed latency the routing implies (round trip to the
  /// serving replica; slowest round trip of a quorum fan-out).
  [[nodiscard]] SimDuration latency() const {
    assert(valid());
    return state_->latency;
  }

  [[nodiscard]] SimTime ready_at() const {
    return issued_at() + latency();
  }

  /// Whether the simulator clock has passed the completion instant.
  [[nodiscard]] bool done() const {
    return valid() && state_->sim->now() >= ready_at();
  }

  [[nodiscard]] const T& value() const {
    assert(valid());
    return state_->value;
  }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Run `fn` when the operation completes on the simulator clock —
  /// synchronously if it already has, else via a scheduled event.  The
  /// callback receives this handle (keeping the state alive).
  void on_complete(std::function<void(const OpHandle&)> fn) const {
    assert(valid());
    if (done()) {
      fn(*this);
      return;
    }
    state_->sim->schedule_at(ready_at(),
                             [self = *this, fn = std::move(fn)] { fn(self); });
  }

 private:
  struct State {
    sim::Simulator* sim;
    T value;
    SimTime issued_at;
    SimDuration latency;
    bool ok;
  };

  std::shared_ptr<State> state_;
};

}  // namespace idea::client
