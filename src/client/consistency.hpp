#pragma once
/// \file consistency.hpp
/// \brief Declared consistency levels for client sessions.
///
/// The paper's thesis is that applications *declare* the consistency they
/// need and the infrastructure adapts.  The session API makes that literal:
/// a ClientSession carries a ConsistencyLevel, and the RequestRouter turns
/// it into a replica-selection policy per read.
///
///  * Strong            — read the file's coordinator (today's behavior;
///                        every acked write is visible).
///  * BoundedStaleness  — serve from a non-coordinator replica only if it
///                        is within a declared TACT-style bound (versions
///                        behind the coordinator, and age of the oldest
///                        missing update); otherwise escalate to the
///                        coordinator.
///  * EventualNearest   — latency-model-aware nearest replica, whatever
///                        its freshness.
///  * Quorum            — fan out to r replicas, merge their logs by
///                        version vector, return the freshest view.  Read
///                        quorums always include the acting coordinator,
///                        so with the default W = 1 write side R ∩ W ≠ ∅
///                        by construction; declaring WriteConcern{w} with
///                        R + W > N keeps that intersection through any
///                        single replica failure as well.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "replica/update.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::client {

enum class Level : std::uint8_t {
  kStrong,
  kBoundedStaleness,
  kEventualNearest,
  kQuorum,
};

/// A declared consistency level plus its policy parameters.  Construct via
/// the named factories; default-constructed is Strong.
struct ConsistencyLevel {
  Level level = Level::kStrong;
  /// BoundedStaleness: maximum versions a serving replica may lag the
  /// coordinator by.
  std::uint64_t max_versions = 0;
  /// BoundedStaleness: maximum age of the oldest update the serving
  /// replica is missing; 0 means "no age bound".
  SimDuration max_age = 0;
  /// Quorum: replicas to contact; 0 means majority (k/2 + 1).
  std::uint32_t quorum_r = 0;

  [[nodiscard]] static ConsistencyLevel strong() { return {}; }

  [[nodiscard]] static ConsistencyLevel bounded_staleness(
      std::uint64_t max_versions, SimDuration max_age = 0) {
    ConsistencyLevel c;
    c.level = Level::kBoundedStaleness;
    c.max_versions = max_versions;
    c.max_age = max_age;
    return c;
  }

  [[nodiscard]] static ConsistencyLevel eventual_nearest() {
    ConsistencyLevel c;
    c.level = Level::kEventualNearest;
    return c;
  }

  [[nodiscard]] static ConsistencyLevel quorum(std::uint32_t r = 0) {
    ConsistencyLevel c;
    c.level = Level::kQuorum;
    c.quorum_r = r;
    return c;
  }

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const ConsistencyLevel&,
                         const ConsistencyLevel&) = default;
};

/// Declared write-side durability: how many replica applies a put must
/// collect before its OpHandle completes.  The read-side dual of
/// ConsistencyLevel — together they span the R×W matrix (R + W > N makes
/// quorum reads immune to any single stale replica, because every read
/// quorum intersects every write quorum).
///
///  * w = 1 (default) — ack at the coordinator alone: today's behavior,
///    byte-identical to the pre-WriteConcern write path.
///  * w = 0           — majority (k/2 + 1), mirroring Quorum{r = 0}.
///  * w = n           — n applies, clamped to the group size.
///
/// When a group member sits inside a crash window the coordinator may
/// count a *hinted* stand-in toward w (a sloppy quorum): the update is
/// durably parked at a live non-member and drains back through
/// anti-entropy when the member returns.
struct WriteConcern {
  /// Replica applies (coordinator included) required to ack; 0 = majority.
  std::uint32_t w = 1;

  [[nodiscard]] static WriteConcern one() { return {1}; }
  [[nodiscard]] static WriteConcern majority() { return {0}; }
  /// Every group member (clamped to k at dispatch time).
  [[nodiscard]] static WriteConcern all() { return {UINT32_MAX}; }

  /// The ack target for a replica group of `k`.
  [[nodiscard]] std::uint32_t resolve(std::uint32_t k) const {
    const std::uint32_t target = w == 0 ? k / 2 + 1 : w;
    return target < 1 ? 1 : (target > k ? k : target);
  }

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const WriteConcern&, const WriteConcern&) = default;
};

/// What one routed read returned, beyond the data itself: where it was
/// served, how stale the served view was relative to the coordinator at
/// serve time, and the client-observed latency the routing implies.
struct ReadResult {
  /// Canonical-order view of the served replica (shared immutable
  /// snapshot — single-replica reads are zero-copy; quorum reads own a
  /// freshly merged vector).
  std::shared_ptr<const std::vector<replica::Update>> updates;
  NodeId served_by = kNoNode;  ///< Endpoint whose view won.
  std::uint32_t replicas_contacted = 0;
  /// BoundedStaleness fell back to the coordinator (bound exceeded).
  bool escalated = false;
  /// Read was routed during a migration stream window (served by the
  /// already-warm new coordinator).
  bool migration_window = false;
  /// Versions the served view lagged the coordinator by at serve time.
  std::uint64_t staleness_versions = 0;
  /// Age of the oldest update the served view was missing (0 if none).
  SimDuration staleness_age = 0;
  /// Client-observed latency under the latency model: round trip to the
  /// serving replica, or the slowest round trip of a quorum fan-out.
  SimDuration latency = 0;
  /// The level the read was actually served at.  Equals the declared
  /// level for static sessions; adaptive sessions may see the
  /// controller's current per-file override instead.
  Level effective_level = Level::kStrong;

  [[nodiscard]] bool ok() const { return updates != nullptr; }
};

}  // namespace idea::client
