#include "client/consistency.hpp"

namespace idea::client {

std::string ConsistencyLevel::describe() const {
  switch (level) {
    case Level::kStrong:
      return "strong";
    case Level::kBoundedStaleness:
      return "bounded(" + std::to_string(max_versions) + "v," +
             std::to_string(max_age / 1000) + "ms)";
    case Level::kEventualNearest:
      return "eventual-nearest";
    case Level::kQuorum:
      return quorum_r == 0 ? std::string("quorum(majority)")
                           : "quorum(" + std::to_string(quorum_r) + ")";
  }
  return "?";
}

std::string WriteConcern::describe() const {
  if (w == 0) return "w(majority)";
  if (w == UINT32_MAX) return "w(all)";
  return "w(" + std::to_string(w) + ")";
}

}  // namespace idea::client
