#pragma once
/// \file session.hpp
/// \brief ClientSession — the application-facing surface of the sharded
///        cluster.
///
/// Sessions replace the old ShardRouter front door.  A session is opened
/// against a ShardedCluster with a declared ConsistencyLevel and an
/// origin endpoint (where the client attaches); every operation funnels
/// through the cluster's RequestRouter, which owns replica selection:
///
///   Client client(cluster);
///   ClientSession s =
///       client.session({.level = ConsistencyLevel::quorum(), .origin = 3});
///   s.put(file, "stroke", 1.0);
///   auto read = s.read(file);                 // declared level
///   auto strong = s.read(file, ConsistencyLevel::strong());  // override
///
/// Reads and writes return OpHandles: the value is computed at issue
/// time (in-process replicas), completion follows the routed round trips
/// on the simulator clock, so callers chain on_complete() instead of
/// blocking on the loop.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "adapt/slo.hpp"
#include "client/consistency.hpp"
#include "client/op_handle.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::shard {
class ShardedCluster;
}

namespace idea::client {

struct SessionOptions {
  /// Declared consistency for this session's reads (per-op overridable).
  ConsistencyLevel level = ConsistencyLevel::strong();
  /// Declared durability for this session's writes (per-op overridable).
  /// w = 1 keeps the pre-WriteConcern path byte-identical.
  WriteConcern write_concern = {};
  /// Endpoint the client attaches at — the latency model measures
  /// replica distance from here.  kNoNode models a client co-located
  /// with whatever endpoint serves it.
  NodeId origin = kNoNode;
  /// Serve repeat reads from the session's last snapshot of the file,
  /// with zero router traffic, while the snapshot is *provably* inside
  /// the declared bound.  Only a BoundedStaleness level with an age
  /// bound qualifies: the age of a cached view grows exactly with the
  /// sim clock (age_at_serve + elapsed), so the bound check needs no
  /// cluster contact — a versions bound does not have that property.
  /// The cache is invalidated by the session's own writes to the file,
  /// by close(), and by bound expiry.
  bool cache_reads = false;
  /// Opt into detection-driven adaptive consistency: the cluster's
  /// ConsistencyController (config.adapt.enabled) may serve this
  /// session's reads at a different level than declared — hot contended
  /// files escalate toward Strong/Quorum, cold files relax to Eventual,
  /// and BoundedStaleness bounds are renegotiated against the tenant's
  /// SLO.  Off (default) keeps the session byte-identical to a static
  /// one even on an adaptive cluster.
  bool adaptive = false;
  /// Tenant this session belongs to (SLO accounting + renegotiation
  /// scope).  Only meaningful with `adaptive`.
  std::uint32_t tenant = 0;
  /// Declare `slo` for `tenant` on the controller when the session
  /// opens.  Later declarations for the same tenant overwrite.
  bool declare_slo = false;
  adapt::Slo slo;
};

/// Ack of one routed write.
struct WriteAck {
  bool applied = false;  ///< false: resolution blocked the write.
  NodeId coordinator = kNoNode;
  /// Confirmed replica applies (coordinator included; hinted stand-ins
  /// not).  1 under the default WriteConcern.
  std::uint32_t acks = 0;
  /// Crashed group members covered by hinted stand-ins (sloppy quorum).
  std::uint32_t hinted = 0;
  /// Whether the declared WriteConcern was met (acks + hinted >= w).
  /// Always equals `applied` under the default w = 1.
  bool w_satisfied = false;
};

struct SessionStats {
  std::uint64_t puts = 0;
  std::uint64_t blocked_puts = 0;
  std::uint64_t reads = 0;
  std::uint64_t escalated_reads = 0;
  /// Sum of per-read observed staleness (versions behind coordinator),
  /// for mean-staleness reporting.
  std::uint64_t staleness_versions_total = 0;
  SimDuration read_latency_total = 0;
  // Write concerns (zero under the default w = 1).
  std::uint64_t wack_puts = 0;         ///< Puts dispatched with w > 1.
  std::uint64_t wack_failed_puts = 0;  ///< Concern not met (give-up).
  std::uint64_t hinted_puts = 0;       ///< Puts that hinted a stand-in.
  // Session read cache (zero unless cache_reads is on).
  std::uint64_t cache_hits = 0;      ///< Reads served router-free.
  std::uint64_t cache_expiries = 0;  ///< Snapshots aged past the bound.
};

class ClientSession {
 public:
  ClientSession(shard::ShardedCluster& cluster, SessionOptions options);

  ClientSession(ClientSession&&) = default;
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Route a write under the session's declared WriteConcern.  With the
  /// default w = 1 the handle acks once the coordinator applied and
  /// began replicating (one modeled round trip); with w > 1 the handle
  /// is *pending* and resolves only when w replica applies are confirmed
  /// (or the replication budget gives up — handle.ok() false, with
  /// value().acks still reporting what was confirmed).
  OpHandle<WriteAck> put(FileId file, std::string content,
                         double meta_delta = 0.0);

  /// Route a write under a per-operation override concern.
  OpHandle<WriteAck> put(FileId file, std::string content, double meta_delta,
                         const WriteConcern& concern);

  /// Route a read under the session's declared consistency level.
  OpHandle<ReadResult> read(FileId file);

  /// Route a read under a per-operation override level.
  OpHandle<ReadResult> read(FileId file, const ConsistencyLevel& level);

  /// Ensure the file is placed on its replica group (idempotent).
  bool open(FileId file);

  /// Close the file cluster-wide.  Returns whether it was open.
  bool close(FileId file);

  /// The consistency level IDEA currently attaches to the file's
  /// coordinator replica (1.0 for files never opened).
  [[nodiscard]] double level(FileId file) const;

  [[nodiscard]] const SessionOptions& options() const { return options_; }
  [[nodiscard]] const SessionStats& stats() const { return *stats_; }
  [[nodiscard]] shard::ShardedCluster& cluster() { return cluster_; }

 private:
  /// One cached read snapshot: the result as served, plus when.  The
  /// snapshot's provable staleness age at any later instant T is
  /// staleness_age + (T - served_at) — every update the replica was
  /// missing at serve time only gets older, and nothing newer is claimed.
  struct CachedRead {
    ReadResult snapshot;
    SimTime served_at = 0;
  };

  shard::ShardedCluster& cluster_;
  SessionOptions options_;
  /// Shared so in-flight write-concern callbacks outlive a moved-from
  /// session (sessions are movable; the callbacks capture the pointer).
  std::shared_ptr<SessionStats> stats_;
  /// Last served snapshot per file (only populated with cache_reads on).
  std::unordered_map<FileId, CachedRead> cache_;
  /// Operations issued — the trace-sampling counter (every Nth op mints a
  /// trace when the cluster's observability has tracing on).
  std::uint64_t ops_ = 0;
};

/// Unified entry point (`idea::client::Client`): opens sessions against
/// one sharded cluster.  Apps, examples and benches construct a Client
/// and talk sessions; nothing outside the shard layer touches the
/// router or the cluster's per-endpoint services for data-path work.
class Client {
 public:
  explicit Client(shard::ShardedCluster& cluster) : cluster_(cluster) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Open a session.  Sessions are independent; open as many as there
  /// are logical clients (e.g. one per scripted workload client).
  [[nodiscard]] ClientSession session(SessionOptions options = {}) {
    ++sessions_opened_;
    return ClientSession(cluster_, options);
  }

  [[nodiscard]] shard::ShardedCluster& cluster() { return cluster_; }
  [[nodiscard]] std::uint64_t sessions_opened() const {
    return sessions_opened_;
  }

 private:
  shard::ShardedCluster& cluster_;
  std::uint64_t sessions_opened_ = 0;
};

}  // namespace idea::client
