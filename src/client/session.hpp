#pragma once
/// \file session.hpp
/// \brief ClientSession — the application-facing surface of the sharded
///        cluster.
///
/// Sessions replace the old ShardRouter front door.  A session is opened
/// against a ShardedCluster with a declared ConsistencyLevel and an
/// origin endpoint (where the client attaches); every operation funnels
/// through the cluster's RequestRouter, which owns replica selection:
///
///   Client client(cluster);
///   ClientSession s =
///       client.session({.level = ConsistencyLevel::quorum(), .origin = 3});
///   s.put(file, "stroke", 1.0);
///   auto read = s.read(file);                 // declared level
///   auto strong = s.read(file, ConsistencyLevel::strong());  // override
///
/// Reads and writes return OpHandles: the value is computed at issue
/// time (in-process replicas), completion follows the routed round trips
/// on the simulator clock, so callers chain on_complete() instead of
/// blocking on the loop.

#include <cstdint>
#include <string>

#include "client/consistency.hpp"
#include "client/op_handle.hpp"
#include "util/ids.hpp"

namespace idea::shard {
class ShardedCluster;
}

namespace idea::client {

struct SessionOptions {
  /// Declared consistency for this session's reads (per-op overridable).
  ConsistencyLevel level = ConsistencyLevel::strong();
  /// Endpoint the client attaches at — the latency model measures
  /// replica distance from here.  kNoNode models a client co-located
  /// with whatever endpoint serves it.
  NodeId origin = kNoNode;
};

/// Ack of one routed write.
struct WriteAck {
  bool applied = false;  ///< false: resolution blocked the write.
  NodeId coordinator = kNoNode;
};

struct SessionStats {
  std::uint64_t puts = 0;
  std::uint64_t blocked_puts = 0;
  std::uint64_t reads = 0;
  std::uint64_t escalated_reads = 0;
  /// Sum of per-read observed staleness (versions behind coordinator),
  /// for mean-staleness reporting.
  std::uint64_t staleness_versions_total = 0;
  SimDuration read_latency_total = 0;
};

class ClientSession {
 public:
  ClientSession(shard::ShardedCluster& cluster, SessionOptions options);

  ClientSession(ClientSession&&) = default;
  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  /// Route a write to the file's coordinator (writes are always strong:
  /// they ack once the coordinator applied and began replicating).
  OpHandle<WriteAck> put(FileId file, std::string content,
                         double meta_delta = 0.0);

  /// Route a read under the session's declared consistency level.
  OpHandle<ReadResult> read(FileId file);

  /// Route a read under a per-operation override level.
  OpHandle<ReadResult> read(FileId file, const ConsistencyLevel& level);

  /// Ensure the file is placed on its replica group (idempotent).
  bool open(FileId file);

  /// Close the file cluster-wide.  Returns whether it was open.
  bool close(FileId file);

  /// The consistency level IDEA currently attaches to the file's
  /// coordinator replica (1.0 for files never opened).
  [[nodiscard]] double level(FileId file) const;

  [[nodiscard]] const SessionOptions& options() const { return options_; }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }
  [[nodiscard]] shard::ShardedCluster& cluster() { return cluster_; }

 private:
  shard::ShardedCluster& cluster_;
  SessionOptions options_;
  SessionStats stats_;
  /// Operations issued — the trace-sampling counter (every Nth op mints a
  /// trace when the cluster's observability has tracing on).
  std::uint64_t ops_ = 0;
};

/// Unified entry point (`idea::client::Client`): opens sessions against
/// one sharded cluster.  Apps, examples and benches construct a Client
/// and talk sessions; nothing outside the shard layer touches the
/// router or the cluster's per-endpoint services for data-path work.
class Client {
 public:
  explicit Client(shard::ShardedCluster& cluster) : cluster_(cluster) {}

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Open a session.  Sessions are independent; open as many as there
  /// are logical clients (e.g. one per scripted workload client).
  [[nodiscard]] ClientSession session(SessionOptions options = {}) {
    ++sessions_opened_;
    return ClientSession(cluster_, options);
  }

  [[nodiscard]] shard::ShardedCluster& cluster() { return cluster_; }
  [[nodiscard]] std::uint64_t sessions_opened() const {
    return sessions_opened_;
  }

 private:
  shard::ShardedCluster& cluster_;
  std::uint64_t sessions_opened_ = 0;
};

}  // namespace idea::client
