#include "client/session.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::client {
namespace {

/// Per-consistency-level metric ids, indexed by Level (see consistency.hpp
/// for the enum order the name arrays mirror).
obs::MetricId read_latency_metric(Level level) {
  static const std::array<obs::MetricId, 4> ids = {
      obs::MetricId::intern("session.read.latency_us.strong"),
      obs::MetricId::intern("session.read.latency_us.bounded"),
      obs::MetricId::intern("session.read.latency_us.eventual"),
      obs::MetricId::intern("session.read.latency_us.quorum"),
  };
  return ids[static_cast<std::size_t>(level)];
}

obs::MetricId read_staleness_metric(Level level) {
  static const std::array<obs::MetricId, 4> ids = {
      obs::MetricId::intern("session.read.staleness.strong"),
      obs::MetricId::intern("session.read.staleness.bounded"),
      obs::MetricId::intern("session.read.staleness.eventual"),
      obs::MetricId::intern("session.read.staleness.quorum"),
  };
  return ids[static_cast<std::size_t>(level)];
}

/// Session-level metric ids, interned once per process.
struct SessionMetrics {
  obs::MetricId reads = obs::MetricId::intern("session.reads");
  obs::MetricId puts = obs::MetricId::intern("session.puts");
  obs::MetricId escalated = obs::MetricId::intern("session.read.escalated");
  obs::MetricId stale = obs::MetricId::intern("session.read.stale");
  obs::MetricId put_latency = obs::MetricId::intern("session.put.latency_us");
};

const SessionMetrics& session_metrics() {
  static const SessionMetrics m;
  return m;
}

}  // namespace

ClientSession::ClientSession(shard::ShardedCluster& cluster,
                             SessionOptions options)
    : cluster_(cluster), options_(options) {}

OpHandle<WriteAck> ClientSession::put(FileId file, std::string content,
                                      double meta_delta) {
  obs::Observability* o = cluster_.obs();
  obs::TraceContext tc;
  if (o != nullptr && o->tracer() != nullptr &&
      ops_ % std::max<std::uint32_t>(1, o->config().trace_sample_every) ==
          0) {
    tc = o->tracer()->start_trace("session.put", options_.origin, file,
                                  cluster_.sim().now());
  }
  ++ops_;

  const bool applied =
      cluster_.router().write(file, std::move(content), meta_delta, tc);
  const NodeId coordinator = cluster_.coordinator_endpoint(file);
  applied ? ++stats_.puts : ++stats_.blocked_puts;
  // The write acks from the coordinator: one round trip from the
  // client's origin (the replication fan-out proceeds asynchronously),
  // estimated by the router's distance model like every read.
  const SimDuration latency =
      coordinator == kNoNode
          ? 0
          : cluster_.router().rtt(options_.origin, coordinator);
  if (o != nullptr && applied) {
    obs::Meter meter = o->cluster_meter();
    meter.add(session_metrics().puts);
    meter.observe(session_metrics().put_latency,
                  static_cast<std::uint64_t>(latency));
  }
  if (tc.active()) {
    o->tracer()->end_span(tc.span, cluster_.sim().now() + latency);
  }
  return OpHandle<WriteAck>(cluster_.sim(), WriteAck{applied, coordinator},
                            latency, applied);
}

OpHandle<ReadResult> ClientSession::read(FileId file) {
  return read(file, options_.level);
}

OpHandle<ReadResult> ClientSession::read(FileId file,
                                         const ConsistencyLevel& level) {
  obs::Observability* o = cluster_.obs();
  obs::TraceContext tc;
  if (o != nullptr && o->tracer() != nullptr &&
      ops_ % std::max<std::uint32_t>(1, o->config().trace_sample_every) ==
          0) {
    tc = o->tracer()->start_trace("session.read", options_.origin, file,
                                  cluster_.sim().now());
  }
  ++ops_;

  ReadResult result =
      cluster_.router().read(file, level, options_.origin, tc);
  const bool ok = result.ok();
  ++stats_.reads;
  if (result.escalated) ++stats_.escalated_reads;
  stats_.staleness_versions_total += result.staleness_versions;
  stats_.read_latency_total += result.latency;
  if (o != nullptr && ok) {
    obs::Meter meter = o->cluster_meter();
    meter.add(session_metrics().reads);
    meter.observe(read_latency_metric(level.level),
                  static_cast<std::uint64_t>(result.latency));
    meter.observe(read_staleness_metric(level.level),
                  result.staleness_versions);
    if (result.escalated) meter.add(session_metrics().escalated);
    if (result.staleness_versions > 0) meter.add(session_metrics().stale);
  }
  // The root span covers the whole client-observed operation: issued now,
  // completed when the modeled round trips are over.
  if (tc.active()) {
    o->tracer()->end_span(tc.span, cluster_.sim().now() + result.latency);
  }
  const SimDuration latency = result.latency;
  return OpHandle<ReadResult>(cluster_.sim(), std::move(result), latency, ok);
}

bool ClientSession::open(FileId file) {
  return cluster_.router().open(file) != nullptr;
}

bool ClientSession::close(FileId file) {
  return cluster_.router().close(file);
}

double ClientSession::level(FileId file) const {
  return cluster_.router().level(file);
}

}  // namespace idea::client
