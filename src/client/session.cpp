#include "client/session.hpp"

#include <utility>

#include "shard/sharded_cluster.hpp"

namespace idea::client {

ClientSession::ClientSession(shard::ShardedCluster& cluster,
                             SessionOptions options)
    : cluster_(cluster), options_(options) {}

OpHandle<WriteAck> ClientSession::put(FileId file, std::string content,
                                      double meta_delta) {
  const bool applied =
      cluster_.router().write(file, std::move(content), meta_delta);
  const NodeId coordinator = cluster_.coordinator_endpoint(file);
  applied ? ++stats_.puts : ++stats_.blocked_puts;
  // The write acks from the coordinator: one round trip from the
  // client's origin (the replication fan-out proceeds asynchronously),
  // estimated by the router's distance model like every read.
  const SimDuration latency =
      coordinator == kNoNode
          ? 0
          : cluster_.router().rtt(options_.origin, coordinator);
  return OpHandle<WriteAck>(cluster_.sim(), WriteAck{applied, coordinator},
                            latency, applied);
}

OpHandle<ReadResult> ClientSession::read(FileId file) {
  return read(file, options_.level);
}

OpHandle<ReadResult> ClientSession::read(FileId file,
                                         const ConsistencyLevel& level) {
  ReadResult result = cluster_.router().read(file, level, options_.origin);
  const bool ok = result.ok();
  ++stats_.reads;
  if (result.escalated) ++stats_.escalated_reads;
  stats_.staleness_versions_total += result.staleness_versions;
  stats_.read_latency_total += result.latency;
  const SimDuration latency = result.latency;
  return OpHandle<ReadResult>(cluster_.sim(), std::move(result), latency, ok);
}

bool ClientSession::open(FileId file) {
  return cluster_.router().open(file) != nullptr;
}

bool ClientSession::close(FileId file) {
  return cluster_.router().close(file);
}

double ClientSession::level(FileId file) const {
  return cluster_.router().level(file);
}

}  // namespace idea::client
