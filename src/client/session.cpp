#include "client/session.hpp"

#include <algorithm>
#include <array>
#include <utility>

#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::client {
namespace {

/// Per-consistency-level metric ids, indexed by Level (see consistency.hpp
/// for the enum order the name arrays mirror).
obs::MetricId read_latency_metric(Level level) {
  static const std::array<obs::MetricId, 4> ids = {
      obs::MetricId::intern("session.read.latency_us.strong"),
      obs::MetricId::intern("session.read.latency_us.bounded"),
      obs::MetricId::intern("session.read.latency_us.eventual"),
      obs::MetricId::intern("session.read.latency_us.quorum"),
  };
  return ids[static_cast<std::size_t>(level)];
}

obs::MetricId read_staleness_metric(Level level) {
  static const std::array<obs::MetricId, 4> ids = {
      obs::MetricId::intern("session.read.staleness.strong"),
      obs::MetricId::intern("session.read.staleness.bounded"),
      obs::MetricId::intern("session.read.staleness.eventual"),
      obs::MetricId::intern("session.read.staleness.quorum"),
  };
  return ids[static_cast<std::size_t>(level)];
}

/// Session-level metric ids, interned once per process.
struct SessionMetrics {
  obs::MetricId reads = obs::MetricId::intern("session.reads");
  obs::MetricId puts = obs::MetricId::intern("session.puts");
  obs::MetricId escalated = obs::MetricId::intern("session.read.escalated");
  obs::MetricId stale = obs::MetricId::intern("session.read.stale");
  obs::MetricId put_latency = obs::MetricId::intern("session.put.latency_us");
  obs::MetricId wack_latency =
      obs::MetricId::intern("session.put.wack_latency_us");
  obs::MetricId wack_failed =
      obs::MetricId::intern("session.put.wack_failed");
  obs::MetricId cache_hits = obs::MetricId::intern("session.read.cache_hits");
};

const SessionMetrics& session_metrics() {
  static const SessionMetrics m;
  return m;
}

}  // namespace

ClientSession::ClientSession(shard::ShardedCluster& cluster,
                             SessionOptions options)
    : cluster_(cluster),
      options_(options),
      stats_(std::make_shared<SessionStats>()) {
  if (options_.adaptive && options_.declare_slo) {
    if (adapt::ConsistencyController* ctl = cluster_.controller()) {
      ctl->declare_slo(options_.tenant, options_.slo);
    }
  }
}

OpHandle<WriteAck> ClientSession::put(FileId file, std::string content,
                                      double meta_delta) {
  return put(file, std::move(content), meta_delta, options_.write_concern);
}

OpHandle<WriteAck> ClientSession::put(FileId file, std::string content,
                                      double meta_delta,
                                      const WriteConcern& concern) {
  // Read-your-writes: the session's own write makes any cached snapshot
  // of the file unservable (it cannot contain this update).
  cache_.erase(file);

  obs::Observability* o = cluster_.obs();
  obs::TraceContext tc;
  if (o != nullptr && o->tracer() != nullptr &&
      ops_ % std::max<std::uint32_t>(1, o->config().trace_sample_every) ==
          0) {
    tc = o->tracer()->start_trace("session.put", options_.origin, file,
                                  cluster_.sim().now());
  }
  ++ops_;

  if (concern.w == 1) {
    // Default concern: the pre-WriteConcern path, byte-identical on the
    // wire (no want_ack flags, no pending-ack tracking beyond resends).
    const bool applied =
        cluster_.router().write(file, std::move(content), meta_delta, tc);
    const NodeId coordinator = cluster_.coordinator_endpoint(file);
    applied ? ++stats_->puts : ++stats_->blocked_puts;
    // The write acks from the coordinator: one round trip from the
    // client's origin (the replication fan-out proceeds asynchronously),
    // estimated by the router's distance model like every read.
    const SimDuration latency =
        coordinator == kNoNode
            ? 0
            : cluster_.router().rtt(options_.origin, coordinator);
    if (o != nullptr && applied) {
      obs::Meter meter = o->cluster_meter();
      meter.add(session_metrics().puts);
      meter.observe(session_metrics().put_latency,
                    static_cast<std::uint64_t>(latency));
    }
    if (tc.active()) {
      o->tracer()->end_span(tc.span, cluster_.sim().now() + latency);
    }
    return OpHandle<WriteAck>(
        cluster_.sim(),
        WriteAck{applied, coordinator, applied ? 1u : 0u, 0, applied},
        latency, applied);
  }

  // w > 1: the handle stays pending until the coordinator confirms w
  // replica applies (hinted stand-ins counting), or the replication
  // budget gives up.  The callback fires exactly once — possibly
  // synchronously, inside write_with_concern.
  ++stats_->wack_puts;
  OpHandle<WriteAck> handle =
      OpHandle<WriteAck>::pending(cluster_.sim(), WriteAck{});
  shard::ShardedCluster* cluster = &cluster_;
  cluster_.router().write_with_concern(
      file, std::move(content), meta_delta, concern,
      [handle, stats = stats_, cluster, o, tc, origin = options_.origin](
          bool satisfied, std::uint32_t acks, std::uint32_t hinted,
          NodeId coordinator) {
        WriteAck& ack = handle.mutable_value();
        ack.applied = acks >= 1;
        ack.coordinator = coordinator;
        ack.acks = acks;
        ack.hinted = hinted;
        ack.w_satisfied = satisfied;
        ack.applied ? ++stats->puts : ++stats->blocked_puts;
        if (!satisfied) ++stats->wack_failed_puts;
        if (hinted > 0) ++stats->hinted_puts;
        // Client-observed latency: the replication time already elapsed
        // on the sim clock, plus the ack's trip back to the client —
        // never less than a plain round trip (the synchronous case,
        // where nothing has elapsed yet).  On failure the router may be
        // mid-teardown, so skip the distance model; resolve() clamps
        // the latency up to the elapsed give-up budget.
        SimDuration latency = 0;
        if (satisfied && coordinator != kNoNode) {
          const SimDuration rtt = cluster->router().rtt(origin, coordinator);
          const SimDuration elapsed =
              cluster->sim().now() - handle.issued_at();
          latency = std::max(rtt, elapsed + rtt / 2);
        }
        handle.resolve(latency, satisfied);
        if (o != nullptr) {
          obs::Meter meter = o->cluster_meter();
          if (ack.applied) meter.add(session_metrics().puts);
          if (satisfied) {
            meter.observe(session_metrics().wack_latency,
                          static_cast<std::uint64_t>(handle.latency()));
          } else {
            meter.add(session_metrics().wack_failed);
          }
        }
        if (tc.active()) {
          o->tracer()->end_span(tc.span, handle.ready_at());
        }
      },
      tc);
  return handle;
}

OpHandle<ReadResult> ClientSession::read(FileId file) {
  return read(file, options_.level);
}

OpHandle<ReadResult> ClientSession::read(FileId file,
                                         const ConsistencyLevel& level) {
  obs::Observability* o = cluster_.obs();
  // Session read cache: serve a repeat read from the last snapshot with
  // zero router traffic iff the snapshot is *provably* inside the
  // declared bound.  Only the age bound is provable without contacting
  // the cluster — a cached view's staleness age grows exactly with the
  // sim clock — so hits require BoundedStaleness with max_age > 0; the
  // versions bound was enforced when the snapshot was originally served.
  if (options_.cache_reads && level.level == Level::kBoundedStaleness &&
      level.max_age > 0) {
    auto it = cache_.find(file);
    if (it != cache_.end()) {
      const SimTime now = cluster_.sim().now();
      const SimDuration age = it->second.snapshot.staleness_age +
                              (now - it->second.served_at);
      if (age <= level.max_age) {
        ++ops_;
        ++stats_->reads;
        ++stats_->cache_hits;
        ReadResult result = it->second.snapshot;
        result.staleness_age = age;
        result.latency = 0;  // local, no routed round trip
        stats_->staleness_versions_total += result.staleness_versions;
        if (o != nullptr) {
          obs::Meter meter = o->cluster_meter();
          meter.add(session_metrics().reads);
          meter.add(session_metrics().cache_hits);
          // A hit is a real client-observed read: latency 0, staleness
          // as measured at the original serve — recorded into the same
          // per-level histograms as routed reads so operators (and the
          // bench) see the cache's effect, not a gap.
          meter.observe(read_latency_metric(level.level), 0);
          meter.observe(read_staleness_metric(level.level),
                        result.staleness_versions);
          if (result.staleness_versions > 0) {
            meter.add(session_metrics().stale);
          }
        }
        return OpHandle<ReadResult>(cluster_.sim(), std::move(result),
                                    /*latency=*/0, /*ok=*/true);
      }
      // Aged past the declared bound: the snapshot can never be served
      // under this level again (age only grows).
      ++stats_->cache_expiries;
      cache_.erase(it);
    }
  }
  obs::TraceContext tc;
  if (o != nullptr && o->tracer() != nullptr &&
      ops_ % std::max<std::uint32_t>(1, o->config().trace_sample_every) ==
          0) {
    tc = o->tracer()->start_trace("session.read", options_.origin, file,
                                  cluster_.sim().now());
  }
  ++ops_;

  const shard::ReadContext ctx{options_.adaptive, options_.tenant};
  ReadResult result =
      cluster_.router().read(file, level, options_.origin, tc, ctx);
  const bool ok = result.ok();
  ++stats_->reads;
  if (result.escalated) ++stats_->escalated_reads;
  stats_->staleness_versions_total += result.staleness_versions;
  stats_->read_latency_total += result.latency;
  if (options_.cache_reads && ok) {
    cache_[file] = CachedRead{result, cluster_.sim().now()};
  }
  if (o != nullptr && ok) {
    obs::Meter meter = o->cluster_meter();
    meter.add(session_metrics().reads);
    // Bin by the level the read was actually served at: identical to the
    // declared level for static sessions, the controller's override for
    // adaptive ones (so the per-level histograms stay truthful).
    meter.observe(read_latency_metric(result.effective_level),
                  static_cast<std::uint64_t>(result.latency));
    meter.observe(read_staleness_metric(result.effective_level),
                  result.staleness_versions);
    if (result.escalated) meter.add(session_metrics().escalated);
    if (result.staleness_versions > 0) meter.add(session_metrics().stale);
  }
  // The root span covers the whole client-observed operation: issued now,
  // completed when the modeled round trips are over.
  if (tc.active()) {
    o->tracer()->end_span(tc.span, cluster_.sim().now() + result.latency);
  }
  const SimDuration latency = result.latency;
  return OpHandle<ReadResult>(cluster_.sim(), std::move(result), latency, ok);
}

bool ClientSession::open(FileId file) {
  return cluster_.router().open(file) != nullptr;
}

bool ClientSession::close(FileId file) {
  cache_.erase(file);
  return cluster_.router().close(file);
}

double ClientSession::level(FileId file) const {
  return cluster_.router().level(file);
}

}  // namespace idea::client
