#pragma once
/// \file time.hpp
/// \brief Simulated-time primitives shared by every IDEA module.
///
/// The whole stack (simulator, overlays, detection, resolution) measures time
/// in integer microseconds.  Integers keep event ordering exact and make runs
/// bit-reproducible across platforms, which floating-point seconds would not.

#include <cstdint>
#include <string>

namespace idea {

/// A point in simulated time, in microseconds since the start of the run.
using SimTime = std::int64_t;

/// A span of simulated time, in microseconds.
using SimDuration = std::int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr SimTime kNever = INT64_MAX;

/// Convert microseconds to a SimDuration (identity; spells out intent).
constexpr SimDuration usec(std::int64_t n) { return n; }

/// Convert milliseconds to a SimDuration.
constexpr SimDuration msec(std::int64_t n) { return n * 1000; }

/// Convert seconds to a SimDuration.
constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000; }

/// Convert a fractional number of milliseconds to a SimDuration.
constexpr SimDuration msec_f(double n) {
  return static_cast<SimDuration>(n * 1000.0);
}

/// Convert a fractional number of seconds to a SimDuration.
constexpr SimDuration sec_f(double n) {
  return static_cast<SimDuration>(n * 1'000'000.0);
}

/// A SimDuration expressed as fractional milliseconds (for reporting).
constexpr double to_ms(SimDuration d) { return static_cast<double>(d) / 1000.0; }

/// A SimDuration expressed as fractional seconds (for reporting).
constexpr double to_sec(SimDuration d) {
  return static_cast<double>(d) / 1'000'000.0;
}

/// Render a time point as "12.345s" for logs and traces.
std::string format_time(SimTime t);

}  // namespace idea
