#include "util/table.hpp"

#include <cassert>
#include <cstdio>

namespace idea {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::percent(double frac, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, frac * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "  ";
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
    }
    line += '\n';
    return line;
  };
  std::string out = emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

void TextTable::write_csv(const std::string& path) const {
  std::ofstream f(path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) f << ',';
      f << row[c];
    }
    f << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

SeriesCsv::SeriesCsv(const std::string& path) : out_(path) {
  out_ << "series,t,value\n";
}

void SeriesCsv::add(const std::string& series, double t, double value) {
  out_ << series << ',' << t << ',' << value << '\n';
}

}  // namespace idea
