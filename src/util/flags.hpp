#pragma once
/// \file flags.hpp
/// \brief Minimal command-line flag parsing for bench and example binaries.
///
/// Supports `--name value` and `--name=value`; unknown flags are reported.
/// This keeps the bench binaries dependency-free and scriptable
/// (e.g. `fig7_hint --hint 0.85 --seed 42 --csv out.csv`).

#include <cstdint>
#include <map>
#include <string>

namespace idea {

class Flags {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  Flags(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Name of the executable (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
};

}  // namespace idea
