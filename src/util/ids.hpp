#pragma once
/// \file ids.hpp
/// \brief Identifier types for nodes, files and updates.
///
/// The paper assigns every node a randomized identifier (e.g. the MD5 hash of
/// its IP address) so that ID-based conflict resolution is fair (§4.5.1).  We
/// model that with a small dense index (`NodeId`) used for routing plus a
/// 64-bit `FairId` drawn from a seeded hash, used only by resolution policies.

#include <cstdint>
#include <functional>
#include <string>

namespace idea {

/// Dense node index: 0..N-1 within a deployment. Used for addressing.
using NodeId = std::uint32_t;

/// Identifier of a shared file/object (a white board, a flight record, ...).
using FileId = std::uint32_t;

/// Randomized fairness identifier used by the "user ID based" resolution
/// policy.  Distinct from NodeId so that routing order never biases who wins
/// a conflict.
using FairId = std::uint64_t;

inline constexpr NodeId kNoNode = UINT32_MAX;

/// SplitMix64 hash step; the standard 64-bit finalizer.  Used to derive
/// FairIds and to hash (node, file) pairs deterministically.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive the fairness ID for a node from a deployment-wide seed.  Mirrors
/// the paper's "hash value of their IP address via MD5".
constexpr FairId fair_id(NodeId node, std::uint64_t deployment_seed) {
  return mix64(deployment_seed ^ (0xA5A5'0000ULL + node));
}

/// A (node, file) key usable in hash maps.
struct NodeFileKey {
  NodeId node = kNoNode;
  FileId file = 0;
  friend bool operator==(const NodeFileKey&, const NodeFileKey&) = default;
};

struct NodeFileKeyHash {
  std::size_t operator()(const NodeFileKey& k) const {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(k.node) << 32) | k.file));
  }
};

/// Human-readable node name for traces: "n07".
std::string node_name(NodeId id);

}  // namespace idea
