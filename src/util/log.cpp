#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace idea {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mu;
Log::Sink g_sink;  // empty => stderr default

void default_sink(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", Log::level_name(level), msg.c_str());
}
}  // namespace

LogLevel Log::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Log::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

Log::Sink Log::set_sink(Sink sink) {
  std::scoped_lock lock(g_sink_mu);
  Sink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void Log::write(LogLevel level, const std::string& message) {
  std::scoped_lock lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogCapture::LogCapture(LogLevel threshold)
    : previous_threshold_(Log::threshold()) {
  Log::set_threshold(threshold);
  previous_sink_ = Log::set_sink([this](LogLevel level, const std::string& m) {
    std::scoped_lock lock(mu_);
    buffer_ += Log::level_name(level);
    buffer_ += ": ";
    buffer_ += m;
    buffer_ += '\n';
  });
}

LogCapture::~LogCapture() {
  Log::set_sink(std::move(previous_sink_));
  Log::set_threshold(previous_threshold_);
}

std::string LogCapture::text() const {
  std::scoped_lock lock(mu_);
  return buffer_;
}

bool LogCapture::contains(const std::string& needle) const {
  std::scoped_lock lock(mu_);
  return buffer_.find(needle) != std::string::npos;
}

}  // namespace idea
