#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace idea {

namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mu;
Log::Sink g_sink;  // empty => stderr default

void default_sink(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", Log::level_name(level), msg.c_str());
}

thread_local LogTags g_tags;
}  // namespace

LogLevel Log::threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void Log::set_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

Log::Sink Log::set_sink(Sink sink) {
  std::scoped_lock lock(g_sink_mu);
  Sink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void Log::write(LogLevel level, const std::string& message) {
  // With tags set, prefix the structured context; without (the default)
  // the line is untouched, keeping pre-tagging output byte-identical.
  const std::string* out = &message;
  std::string tagged;
  if (g_tags.any()) {
    tagged.reserve(message.size() + 48);
    tagged += '[';
    if (g_tags.sim_time >= 0) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "t=%.6fs",
                    static_cast<double>(g_tags.sim_time) / 1e6);
      tagged += buf;
    }
    if (g_tags.endpoint != kNoNode) {
      if (tagged.size() > 1) tagged += ' ';
      tagged += "n=";
      tagged += std::to_string(g_tags.endpoint);
    }
    if (g_tags.trace != 0) {
      if (tagged.size() > 1) tagged += ' ';
      tagged += "trace=";
      tagged += std::to_string(g_tags.trace);
    }
    tagged += "] ";
    tagged += message;
    out = &tagged;
  }
  std::scoped_lock lock(g_sink_mu);
  if (g_sink) {
    g_sink(level, *out);
  } else {
    default_sink(level, *out);
  }
}

void Log::set_tags(const LogTags& tags) { g_tags = tags; }

void Log::clear_tags() { g_tags = LogTags{}; }

LogTags Log::tags() { return g_tags; }

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogCapture::LogCapture(LogLevel threshold)
    : previous_threshold_(Log::threshold()) {
  Log::set_threshold(threshold);
  previous_sink_ = Log::set_sink([this](LogLevel level, const std::string& m) {
    std::scoped_lock lock(mu_);
    buffer_ += Log::level_name(level);
    buffer_ += ": ";
    buffer_ += m;
    buffer_ += '\n';
  });
}

LogCapture::~LogCapture() {
  Log::set_sink(std::move(previous_sink_));
  Log::set_threshold(previous_threshold_);
}

std::string LogCapture::text() const {
  std::scoped_lock lock(mu_);
  return buffer_;
}

bool LogCapture::contains(const std::string& needle) const {
  std::scoped_lock lock(mu_);
  return buffer_.find(needle) != std::string::npos;
}

}  // namespace idea
