#pragma once
/// \file stats.hpp
/// \brief Statistics accumulators used by benches and the adaptive controller.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace idea {

/// Online mean/variance/min/max (Welford).  O(1) memory; numerically stable.
class RunningStat {
 public:
  void add(double x);
  void merge(const RunningStat& other);
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;   ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact-percentile accumulator: stores samples, sorts on demand.
/// Fine for bench-scale sample counts (<= millions).
class PercentileStat {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// Linear-interpolated percentile; q in [0,100].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double mean() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] double bucket_hi(std::size_t i) const;

  /// ASCII rendering for terminal reports.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Exponentially-weighted moving average, used by the fully-automatic
/// controller to smooth load/consistency observations.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x);
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool primed() const { return primed_; }
  void reset();

 private:
  double alpha_;
  double value_ = 0.0;
  bool primed_ = false;
};

/// A labelled time series: (t_seconds, value) pairs plus helpers for the
/// figure benches (min over a window, mean, CSV dump).
class TimeSeries {
 public:
  explicit TimeSeries(std::string label) : label_(std::move(label)) {}

  void add(double t, double v);
  [[nodiscard]] const std::string& label() const { return label_; }
  [[nodiscard]] std::size_t size() const { return ts_.size(); }
  [[nodiscard]] double time_at(std::size_t i) const { return ts_[i]; }
  [[nodiscard]] double value_at(std::size_t i) const { return vs_[i]; }
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double mean_value() const;
  /// Minimum of samples with t in [t0, t1).
  [[nodiscard]] double min_in_window(double t0, double t1) const;

 private:
  std::string label_;
  std::vector<double> ts_, vs_;
};

}  // namespace idea
