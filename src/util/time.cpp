#include "util/time.hpp"

#include <cstdio>

namespace idea {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", to_sec(t));
  return buf;
}

}  // namespace idea
