#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace idea {

void RunningStat::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void PercentileStat::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double PercentileStat::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank =
      (q / 100.0) * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double PercentileStat::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;  // fp edge
    ++counts_[i];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(counts_[i] * width / peak);
    std::snprintf(line, sizeof(line), "[%8.3f,%8.3f) %8llu |", bucket_lo(i),
                  bucket_hi(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

void Ewma::add(double x) {
  if (!primed_) {
    value_ = x;
    primed_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  value_ = 0.0;
  primed_ = false;
}

void TimeSeries::add(double t, double v) {
  ts_.push_back(t);
  vs_.push_back(v);
}

double TimeSeries::min_value() const {
  double m = std::numeric_limits<double>::infinity();
  for (double v : vs_) m = std::min(m, v);
  return vs_.empty() ? 0.0 : m;
}

double TimeSeries::mean_value() const {
  if (vs_.empty()) return 0.0;
  double s = 0.0;
  for (double v : vs_) s += v;
  return s / static_cast<double>(vs_.size());
}

double TimeSeries::min_in_window(double t0, double t1) const {
  double m = std::numeric_limits<double>::infinity();
  bool any = false;
  for (std::size_t i = 0; i < ts_.size(); ++i) {
    if (ts_[i] >= t0 && ts_[i] < t1) {
      m = std::min(m, vs_[i]);
      any = true;
    }
  }
  return any ? m : 0.0;
}

}  // namespace idea
