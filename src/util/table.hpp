#pragma once
/// \file table.hpp
/// \brief Plain-text and CSV table rendering for the benchmark harnesses.
///
/// Every bench binary prints the rows the paper's table/figure reports, in a
/// stable aligned format, and can optionally mirror them to a CSV file for
/// plotting.

#include <fstream>
#include <string>
#include <vector>

namespace idea {

/// A simple column-aligned text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string num(double v, int precision = 3);
  static std::string integer(long long v);
  static std::string percent(double frac, int precision = 1);

  /// Render with column alignment and a header underline.
  [[nodiscard]] std::string render() const;

  /// Write headers + rows as CSV.
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writer for long-form series CSVs: one (series,t,value) triple per line.
class SeriesCsv {
 public:
  explicit SeriesCsv(const std::string& path);
  void add(const std::string& series, double t, double value);

 private:
  std::ofstream out_;
};

}  // namespace idea
