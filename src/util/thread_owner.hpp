#pragma once
/// \file thread_owner.hpp
/// \brief Debug-mode single-owner stamp for thread-confined structures.
///
/// The simulator's event-slot slab and the transport's in-flight message
/// slab are single-threaded by design: in the parallel runtime, exactly
/// one worker thread touches a segment's kernels per epoch, and segments
/// migrate between workers only across pool barriers.  A violation of
/// that confinement (a stray cross-thread send, a callback captured onto
/// the wrong segment) corrupts a slab silently long before anything
/// crashes.  ThreadOwner makes it fail fast instead: the first toucher
/// after a rebind() claims the structure, every later touch asserts it is
/// the same thread.
///
/// The checks compile away in release builds; sanitizer builds and Debug
/// keep them (IDEA_OWNER_CHECKS — the TSan CI job runs with them on).
/// Legitimate ownership hand-offs (the fleet handing a segment to the
/// worker that won its epoch task) call rebind() at the hand-off point,
/// which must itself be properly synchronized — the pool barrier is.

#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <thread>

#if !defined(NDEBUG) && !defined(IDEA_OWNER_CHECKS)
#define IDEA_OWNER_CHECKS 1
#endif

namespace idea::util {

class ThreadOwner {
 public:
  /// Release ownership: the next toucher claims.  Call only at properly
  /// synchronized hand-off points (e.g. a pool barrier).
  void rebind() { owner_.store(0, std::memory_order_relaxed); }

  /// Claim-or-check: true iff unclaimed (claims it) or already owned by
  /// the calling thread.
  bool owned_by_current() {
    const std::size_t me =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
    std::size_t cur = owner_.load(std::memory_order_relaxed);
    if (cur == me) return true;
    if (cur == 0) {
      // Two unsynchronized first-touchers racing here is itself the bug
      // being hunted; either interleaving leaves one of them failing.
      return owner_.compare_exchange_strong(cur, me,
                                            std::memory_order_relaxed) ||
             cur == me;
    }
    return false;
  }

 private:
  std::atomic<std::size_t> owner_{0};  ///< Hashed thread id; 0 = unclaimed.
};

[[noreturn]] inline void thread_owner_violation(const char* file, int line) {
  std::fprintf(stderr,
               "%s:%d: cross-thread access to a thread-confined slab "
               "(missing rebind at a synchronized hand-off, or a stray "
               "foreign call)\n",
               file, line);
  std::abort();
}

}  // namespace idea::util

/// Assert the calling thread owns `owner` (claiming it if unclaimed).
/// Compiled out unless IDEA_OWNER_CHECKS; aborts even under NDEBUG so
/// sanitizer builds (RelWithDebInfo) keep the check armed.
#ifdef IDEA_OWNER_CHECKS
#define IDEA_ASSERT_OWNED(owner)                                     \
  do {                                                               \
    if (!(owner).owned_by_current()) {                               \
      ::idea::util::thread_owner_violation(__FILE__, __LINE__);      \
    }                                                                \
  } while (0)
#else
#define IDEA_ASSERT_OWNED(owner) ((void)0)
#endif
