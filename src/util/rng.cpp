#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace idea {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // SplitMix64 expansion; guarantees a non-zero state.
  std::uint64_t s = seed;
  for (auto& w : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    w = mix64(s);
  }
}

Rng Rng::fork(std::uint64_t stream) const {
  return Rng(mix64(state_[0] ^ mix64(stream ^ 0xF0F0'F0F0'1234'5678ULL)));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * (u * factor);
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n,
                                                           std::uint32_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected insertions, unbiased.
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::uint32_t j = n - k; j < n; ++j) {
    auto t = static_cast<std::uint32_t>(next_below(j + 1));
    bool seen = false;
    for (std::uint32_t x : out) {
      if (x == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace idea
