#include "util/ids.hpp"

#include <cstdio>

namespace idea {

std::string node_name(NodeId id) {
  if (id == kNoNode) return "n--";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "n%02u", id);
  return buf;
}

}  // namespace idea
