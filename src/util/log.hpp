#pragma once
/// \file log.hpp
/// \brief Lightweight leveled logging with per-run capture.
///
/// The simulator runs millions of events; logging must be cheap when
/// disabled.  `IDEA_LOG(level)` short-circuits before formatting.  A
/// `LogCapture` can be installed in tests to assert on protocol traces.

#include <functional>
#include <mutex>
#include <sstream>
#include <string>

namespace idea {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global logger facade.  Thread-safe: the sink is called under a mutex.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Replace the sink (default writes to stderr).  Returns the previous one.
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

/// RAII helper that redirects log output into a string buffer, for tests.
class LogCapture {
 public:
  explicit LogCapture(LogLevel threshold = LogLevel::kTrace);
  ~LogCapture();

  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  [[nodiscard]] std::string text() const;
  [[nodiscard]] bool contains(const std::string& needle) const;

 private:
  Log::Sink previous_sink_;
  LogLevel previous_threshold_;
  mutable std::mutex mu_;
  std::string buffer_;
};

namespace detail {
/// Stream-collecting helper behind IDEA_LOG.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace idea

/// Usage: IDEA_LOG(kInfo) << "resolved " << n << " conflicts";
#define IDEA_LOG(level)                                            \
  if (::idea::LogLevel::level < ::idea::Log::threshold()) {        \
  } else                                                           \
    ::idea::detail::LogLine(::idea::LogLevel::level)
