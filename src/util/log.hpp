#pragma once
/// \file log.hpp
/// \brief Lightweight leveled logging with per-run capture.
///
/// The simulator runs millions of events; logging must be cheap when
/// disabled.  `IDEA_LOG(level)` short-circuits before formatting.  A
/// `LogCapture` can be installed in tests to assert on protocol traces.

#include <cstdint>
#include <functional>
#include <mutex>
#include <sstream>
#include <string>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Structured context stamped onto log lines while protocol code runs:
/// which endpoint is executing, at what simulated time, under which causal
/// trace.  Thread-local; unset tags (the default) leave the log format
/// completely unchanged, so observability-off output is byte-identical to
/// the pre-tagging format.
struct LogTags {
  SimTime sim_time = -1;       ///< < 0 = unset.
  NodeId endpoint = kNoNode;   ///< kNoNode = unset.
  std::uint64_t trace = 0;     ///< 0 = untraced.

  [[nodiscard]] bool any() const {
    return sim_time >= 0 || endpoint != kNoNode || trace != 0;
  }
};

/// Global logger facade.  Thread-safe: the sink is called under a mutex.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel threshold();
  static void set_threshold(LogLevel level);

  /// Replace the sink (default writes to stderr).  Returns the previous one.
  static Sink set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);

  /// Install/replace the calling thread's structured tags; write() prefixes
  /// messages with "[t=<sec> n=<endpoint> trace=<id>]" while any tag is set.
  static void set_tags(const LogTags& tags);
  static void clear_tags();
  static LogTags tags();
};

/// RAII tag scope: sets the thread's LogTags for the duration of a protocol
/// handler, restoring the previous tags on exit (handlers nest during
/// same-endpoint fast paths).
class LogTagScope {
 public:
  explicit LogTagScope(const LogTags& tags) : previous_(Log::tags()) {
    Log::set_tags(tags);
  }
  ~LogTagScope() { Log::set_tags(previous_); }

  LogTagScope(const LogTagScope&) = delete;
  LogTagScope& operator=(const LogTagScope&) = delete;

 private:
  LogTags previous_;
};

/// RAII helper that redirects log output into a string buffer, for tests.
class LogCapture {
 public:
  explicit LogCapture(LogLevel threshold = LogLevel::kTrace);
  ~LogCapture();

  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  [[nodiscard]] std::string text() const;
  [[nodiscard]] bool contains(const std::string& needle) const;

 private:
  Log::Sink previous_sink_;
  LogLevel previous_threshold_;
  mutable std::mutex mu_;
  std::string buffer_;
};

namespace detail {
/// Stream-collecting helper behind IDEA_LOG.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace idea

/// Usage: IDEA_LOG(kInfo) << "resolved " << n << " conflicts";
#define IDEA_LOG(level)                                            \
  if (::idea::LogLevel::level < ::idea::Log::threshold()) {        \
  } else                                                           \
    ::idea::detail::LogLine(::idea::LogLevel::level)
