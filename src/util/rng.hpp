#pragma once
/// \file rng.hpp
/// \brief Deterministic random-number generation for the whole stack.
///
/// Every stochastic component (latency model, gossip fanout selection,
/// back-off timers, workload generators) draws from an Rng seeded from a
/// single deployment seed, so a run is exactly reproducible.  The generator
/// is xoshiro256**, which is fast, has a 256-bit state and passes BigCrush —
/// more than enough for protocol simulation.

#include <array>
#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace idea {

/// xoshiro256** PRNG with convenience distributions.
///
/// Not thread-safe by design (CP.3: minimize shared writable state); give
/// each thread or simulated node its own stream via `fork()`.
class Rng {
 public:
  /// Seed via SplitMix64 expansion so that nearby seeds give unrelated
  /// streams.
  explicit Rng(std::uint64_t seed = 0x1D2A2007ULL);

  /// Derive an independent stream, e.g. one per node: `root.fork(node_id)`.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Marsaglia polar method.
  double normal(double mean, double stddev);

  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial.
  bool chance(double p);

  /// Sample k distinct elements from [0, n) (k <= n), uniformly, in
  /// O(k) expected time.  Order of the returned sample is unspecified.
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n,
                                                        std::uint32_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element; container must be non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace idea
