#pragma once
/// \file baseline.hpp
/// \brief Comparator consistency protocols for the Figure 2 tradeoff.
///
/// The paper positions IDEA between optimistic consistency (fast, weak) and
/// strong consistency (slow, strict) and cites TACT as the bounded middle
/// ground.  To regenerate Figure 2 as a *measured* plot we implement all
/// three against the same ReplicaStore/Transport substrate:
///
///  * OptimisticNode — Bayou-style anti-entropy: writes commit locally;
///    a periodic timer push-pulls updates with one random peer.
///  * StrongNode — primary-copy eager replication: writes are forwarded to
///    the primary, which sequences and synchronously fans them out; the
///    write completes only after every replica acknowledged.
///  * TactNode — error-bounded push: writes commit locally, but each node
///    bounds how many of its updates any peer has not seen (order-error
///    bound) and how long they may remain unseen (staleness bound); when a
///    bound would be exceeded it pushes synchronously.

#include <functional>
#include <optional>
#include <vector>

#include "net/transport.hpp"
#include "replica/store.hpp"
#include "util/rng.hpp"

namespace idea::baseline {

/// Common surface the tradeoff bench drives.
class BaselineNode : public net::MessageHandler {
 public:
  BaselineNode(NodeId self, FileId file, net::Transport& transport)
      : self_(self), file_(file), transport_(transport),
        store_(self, file) {}
  ~BaselineNode() override = default;

  /// Issue a write; `done` fires when the protocol considers it committed
  /// (immediately for optimistic/TACT, after full fan-out for strong).
  virtual void write(std::string content, double meta_delta,
                     std::function<void()> done) = 0;

  /// Arm periodic machinery, if any.
  virtual void start() {}

  [[nodiscard]] replica::ReplicaStore& store() { return store_; }
  [[nodiscard]] const replica::ReplicaStore& store() const { return store_; }
  [[nodiscard]] NodeId id() const { return self_; }

 protected:
  NodeId self_;
  FileId file_;
  net::Transport& transport_;
  replica::ReplicaStore store_;
};

// ---------------------------------------------------------------------------

struct OptimisticParams {
  SimDuration anti_entropy_period = sec(10);
  std::uint32_t nodes = 0;
};

/// Bayou-style optimistic replication [24]: local commit + periodic random
/// push-pull anti-entropy sessions.
class OptimisticNode final : public BaselineNode {
 public:
  OptimisticNode(NodeId self, FileId file, net::Transport& transport,
                 OptimisticParams params, std::uint64_t seed);
  ~OptimisticNode() override;

  void write(std::string content, double meta_delta,
             std::function<void()> done) override;
  void start() override;
  void on_message(const net::Message& msg) override;

  static const net::MsgType kRequestType;  ///< "optimistic.request"
  static const net::MsgType kPushType;     ///< "optimistic.push"
  static const net::MsgType kPullType;     ///< "optimistic.pull"

 private:
  void anti_entropy_round();

  OptimisticParams params_;
  Rng rng_;
  std::uint64_t timer_ = 0;
};

// ---------------------------------------------------------------------------

struct StrongParams {
  NodeId primary = 0;
  std::uint32_t nodes = 0;
  SimDuration ack_timeout = sec(5);
};

/// Primary-copy strong consistency [1-style]: a total order at the primary,
/// synchronous fan-out, client completion after all replica acks.
class StrongNode final : public BaselineNode {
 public:
  StrongNode(NodeId self, FileId file, net::Transport& transport,
             StrongParams params);
  ~StrongNode() override;

  void write(std::string content, double meta_delta,
             std::function<void()> done) override;
  void on_message(const net::Message& msg) override;

  static const net::MsgType kSubmitType;      ///< "strong.submit"
  static const net::MsgType kReplicateType;   ///< "strong.replicate"
  static const net::MsgType kReplicaAckType;  ///< "strong.replica_ack"
  static const net::MsgType kCommittedType;   ///< "strong.committed"

 private:
  struct PendingCommit {
    NodeId origin = kNoNode;
    std::uint64_t client_tag = 0;
    std::size_t acks_needed = 0;
  };

  void primary_apply_and_replicate(NodeId origin, std::uint64_t client_tag,
                                   std::string content, double meta_delta);

  StrongParams params_;
  std::uint64_t next_tag_ = 1;
  std::unordered_map<std::uint64_t, std::function<void()>> local_waiting_;
  // Primary-side: update key (writer,seq hashed) -> pending fan-out.
  std::unordered_map<std::uint64_t, PendingCommit> pending_;
  std::uint64_t next_commit_id_ = 1;
};

// ---------------------------------------------------------------------------

struct TactParams {
  std::uint32_t nodes = 0;
  /// Push once this many of our updates are unseen by some peer
  /// (order-error bound).
  std::uint32_t order_bound = 3;
  /// ... or once the oldest unseen update is older than this (staleness
  /// bound).
  SimDuration staleness_bound = sec(15);
  SimDuration check_period = sec(1);
};

/// TACT-style bounded-inconsistency push [26], simplified to one conit per
/// file with order and staleness bounds.
class TactNode final : public BaselineNode {
 public:
  TactNode(NodeId self, FileId file, net::Transport& transport,
           TactParams params);
  ~TactNode() override;

  void write(std::string content, double meta_delta,
             std::function<void()> done) override;
  void start() override;
  void on_message(const net::Message& msg) override;

  static const net::MsgType kPushType;  ///< "tact.push"

 private:
  void check_bounds();
  void push_to(NodeId peer);

  TactParams params_;
  /// What each peer has acknowledged of *our* updates (seq high-water).
  std::vector<std::uint64_t> peer_seen_;
  /// Stamp of our oldest update not yet seen by the slowest peer.
  std::uint64_t timer_ = 0;
};

}  // namespace idea::baseline
