#include "baseline/baseline.hpp"

#include <algorithm>
#include <cassert>

namespace idea::baseline {

namespace {

struct UpdateBatch {
  std::vector<replica::Update> updates;
  vv::VersionVector sender_counts;  ///< For push-pull reconciliation.
};

std::uint32_t batch_bytes(const UpdateBatch& b) {
  std::uint32_t bytes = 64;
  for (const auto& u : b.updates) bytes += u.wire_bytes();
  return bytes;
}

struct StrongSubmit {
  std::uint64_t client_tag;
  std::string content;
  double meta_delta;
};

struct StrongReplicate {
  std::uint64_t commit_id;
  replica::Update update;
};

struct StrongReplicaAck {
  std::uint64_t commit_id;
};

struct StrongCommitted {
  std::uint64_t client_tag;
};

}  // namespace

const net::MsgType OptimisticNode::kRequestType =
    net::MsgType::intern("optimistic.request");
const net::MsgType OptimisticNode::kPushType =
    net::MsgType::intern("optimistic.push");
const net::MsgType OptimisticNode::kPullType =
    net::MsgType::intern("optimistic.pull");
const net::MsgType StrongNode::kSubmitType =
    net::MsgType::intern("strong.submit");
const net::MsgType StrongNode::kReplicateType =
    net::MsgType::intern("strong.replicate");
const net::MsgType StrongNode::kReplicaAckType =
    net::MsgType::intern("strong.replica_ack");
const net::MsgType StrongNode::kCommittedType =
    net::MsgType::intern("strong.committed");
const net::MsgType TactNode::kPushType = net::MsgType::intern("tact.push");

// ---------------------------------------------------------------------------
// OptimisticNode
// ---------------------------------------------------------------------------

OptimisticNode::OptimisticNode(NodeId self, FileId file,
                               net::Transport& transport,
                               OptimisticParams params, std::uint64_t seed)
    : BaselineNode(self, file, transport), params_(params), rng_(seed) {
  assert(params_.nodes > 1);
}

OptimisticNode::~OptimisticNode() {
  if (timer_ != 0) transport_.cancel_call(timer_);
}

void OptimisticNode::write(std::string content, double meta_delta,
                           std::function<void()> done) {
  store_.apply_local(transport_.local_time(self_), std::move(content),
                     meta_delta);
  if (done) done();  // optimistic: committed the moment it is local
}

void OptimisticNode::start() {
  timer_ = transport_.call_every(params_.anti_entropy_period,
                                 [this] { anti_entropy_round(); });
}

void OptimisticNode::anti_entropy_round() {
  // Classic Bayou session with a random partner: send our version vector,
  // the partner answers with the updates we miss (plus its own vector), and
  // we complete the push-pull with what it misses.  Three messages total.
  const NodeId peer = [&] {
    auto r = static_cast<NodeId>(rng_.next_below(params_.nodes - 1));
    return r >= self_ ? r + 1 : r;
  }();
  net::Message m;
  m.from = self_;
  m.to = peer;
  m.file = file_;
  m.type = kRequestType;
  m.wire_bytes = 64;
  m.payload = store_.evv().counts();
  transport_.send(std::move(m));
}

void OptimisticNode::on_message(const net::Message& msg) {
  if (msg.type == kRequestType) {
    const auto& peer_counts =
        msg.payload.as<vv::VersionVector>();
    UpdateBatch reply;
    reply.sender_counts = store_.evv().counts();
    reply.updates = store_.updates_ahead_of(peer_counts);
    net::Message m;
    m.from = self_;
    m.to = msg.from;
    m.file = file_;
    m.type = kPushType;
    m.wire_bytes = batch_bytes(reply);
    m.payload = std::move(reply);
    transport_.send(std::move(m));
  } else if (msg.type == kPushType) {
    const auto& batch = msg.payload.as<UpdateBatch>();
    for (const auto& u : batch.updates) {
      if (!store_.has(u.key)) store_.apply_remote(u);
    }
    // Pull half of the session: send back what the partner is missing.
    UpdateBatch reply;
    reply.sender_counts = store_.evv().counts();
    reply.updates = store_.updates_ahead_of(batch.sender_counts);
    if (!reply.updates.empty()) {
      net::Message m;
      m.from = self_;
      m.to = msg.from;
      m.file = file_;
      m.type = kPullType;
      m.wire_bytes = batch_bytes(reply);
      m.payload = std::move(reply);
      transport_.send(std::move(m));
    }
  } else if (msg.type == kPullType) {
    const auto& batch = msg.payload.as<UpdateBatch>();
    for (const auto& u : batch.updates) {
      if (!store_.has(u.key)) store_.apply_remote(u);
    }
  }
}

// ---------------------------------------------------------------------------
// StrongNode
// ---------------------------------------------------------------------------

StrongNode::StrongNode(NodeId self, FileId file, net::Transport& transport,
                       StrongParams params)
    : BaselineNode(self, file, transport), params_(params) {
  assert(params_.nodes > 0);
}

StrongNode::~StrongNode() = default;

void StrongNode::write(std::string content, double meta_delta,
                       std::function<void()> done) {
  const std::uint64_t tag = next_tag_++;
  if (done) local_waiting_[tag] = std::move(done);
  if (self_ == params_.primary) {
    primary_apply_and_replicate(self_, tag, std::move(content), meta_delta);
    return;
  }
  net::Message m;
  m.from = self_;
  m.to = params_.primary;
  m.file = file_;
  m.type = kSubmitType;
  m.wire_bytes = static_cast<std::uint32_t>(48 + content.size());
  m.payload = StrongSubmit{tag, std::move(content), meta_delta};
  transport_.send(std::move(m));
}

void StrongNode::primary_apply_and_replicate(NodeId origin,
                                             std::uint64_t client_tag,
                                             std::string content,
                                             double meta_delta) {
  // The primary is the only writer in the store's eyes: a single total
  // order, so version vectors never conflict.
  const replica::Update& u = store_.apply_local(
      transport_.local_time(self_), std::move(content), meta_delta);
  const std::uint64_t commit_id = next_commit_id_++;
  PendingCommit pc;
  pc.origin = origin;
  pc.client_tag = client_tag;
  pc.acks_needed = params_.nodes - 1;
  if (pc.acks_needed == 0) {
    // Single-replica deployment: committed immediately.
    if (origin == self_) {
      auto it = local_waiting_.find(client_tag);
      if (it != local_waiting_.end()) {
        it->second();
        local_waiting_.erase(it);
      }
    }
    return;
  }
  pending_[commit_id] = std::move(pc);
  for (NodeId n = 0; n < params_.nodes; ++n) {
    if (n == self_) continue;
    net::Message m;
    m.from = self_;
    m.to = n;
    m.file = file_;
    m.type = kReplicateType;
    m.wire_bytes = 32 + u.wire_bytes();
    m.payload = StrongReplicate{commit_id, u};
    transport_.send(std::move(m));
  }
}

void StrongNode::on_message(const net::Message& msg) {
  if (msg.type == kSubmitType) {
    const auto& s = msg.payload.as<StrongSubmit>();
    primary_apply_and_replicate(msg.from, s.client_tag, s.content,
                                s.meta_delta);
  } else if (msg.type == kReplicateType) {
    const auto& r = msg.payload.as<StrongReplicate>();
    if (!store_.has(r.update.key)) store_.apply_remote(r.update);
    net::Message ack;
    ack.from = self_;
    ack.to = msg.from;
    ack.file = file_;
    ack.type = kReplicaAckType;
    ack.wire_bytes = 16;
    ack.payload = StrongReplicaAck{r.commit_id};
    transport_.send(std::move(ack));
  } else if (msg.type == kReplicaAckType) {
    const auto& a = msg.payload.as<StrongReplicaAck>();
    auto it = pending_.find(a.commit_id);
    if (it == pending_.end()) return;
    if (--it->second.acks_needed > 0) return;
    const PendingCommit pc = it->second;
    pending_.erase(it);
    if (pc.origin == self_) {
      auto wit = local_waiting_.find(pc.client_tag);
      if (wit != local_waiting_.end()) {
        wit->second();
        local_waiting_.erase(wit);
      }
    } else {
      net::Message m;
      m.from = self_;
      m.to = pc.origin;
      m.file = file_;
      m.type = kCommittedType;
      m.wire_bytes = 16;
      m.payload = StrongCommitted{pc.client_tag};
      transport_.send(std::move(m));
    }
  } else if (msg.type == kCommittedType) {
    const auto& c = msg.payload.as<StrongCommitted>();
    auto it = local_waiting_.find(c.client_tag);
    if (it != local_waiting_.end()) {
      it->second();
      local_waiting_.erase(it);
    }
  }
}

// ---------------------------------------------------------------------------
// TactNode
// ---------------------------------------------------------------------------

TactNode::TactNode(NodeId self, FileId file, net::Transport& transport,
                   TactParams params)
    : BaselineNode(self, file, transport), params_(params),
      peer_seen_(params.nodes, 0) {
  assert(params_.nodes > 1);
}

TactNode::~TactNode() {
  if (timer_ != 0) transport_.cancel_call(timer_);
}

void TactNode::write(std::string content, double meta_delta,
                     std::function<void()> done) {
  store_.apply_local(transport_.local_time(self_), std::move(content),
                     meta_delta);
  check_bounds();
  if (done) done();
}

void TactNode::start() {
  timer_ = transport_.call_every(params_.check_period,
                                 [this] { check_bounds(); });
}

void TactNode::check_bounds() {
  const std::uint64_t my_seq = store_.local_seq();
  const SimTime now = transport_.now();
  for (NodeId peer = 0; peer < params_.nodes; ++peer) {
    if (peer == self_) continue;
    const std::uint64_t unseen = my_seq - peer_seen_[peer];
    if (unseen == 0) continue;
    bool must_push = unseen >= params_.order_bound;
    if (!must_push) {
      // Staleness bound: oldest unseen update too old?
      const SimTime oldest =
          store_.evv().stamp_of(self_, peer_seen_[peer] + 1);
      if (oldest != kNever && now - oldest >= params_.staleness_bound) {
        must_push = true;
      }
    }
    if (must_push) push_to(peer);
  }
}

void TactNode::push_to(NodeId peer) {
  UpdateBatch batch;
  vv::VersionVector assumed;
  assumed.set(self_, peer_seen_[peer]);
  // Push only our own pending updates; relayed third-party updates travel
  // via their writers' own bounds.
  for (const auto& u : store_.updates_ahead_of(assumed)) {
    if (u.key.writer == self_) batch.updates.push_back(u);
  }
  if (batch.updates.empty()) return;
  batch.sender_counts = store_.evv().counts();
  peer_seen_[peer] = store_.local_seq();
  net::Message m;
  m.from = self_;
  m.to = peer;
  m.file = file_;
  m.type = kPushType;
  m.wire_bytes = batch_bytes(batch);
  m.payload = std::move(batch);
  transport_.send(std::move(m));
}

void TactNode::on_message(const net::Message& msg) {
  if (msg.type != kPushType) return;
  const auto& batch = msg.payload.as<UpdateBatch>();
  for (const auto& u : batch.updates) {
    if (!store_.has(u.key)) store_.apply_remote(u);
  }
}

}  // namespace idea::baseline
