#pragma once
/// \file ransub.hpp
/// \brief RanSub (Kostić et al. [9]): epoch-based uniform random subset
///        distribution over a tree, carrying temperature advertisements.
///
/// Nodes are arranged in a k-ary tree by id.  Each epoch has two waves:
///
///  * collect — leaves send their own state up; each internal node merges
///    its children's samples with its own state into a uniform sample of its
///    subtree (weighted reservoir merge) and forwards it to its parent;
///  * distribute — the root takes the whole-tree sample and pushes a uniform
///    random subset down; every node ends the epoch holding a random subset
///    of (node, temperature) advertisements drawn from the entire tree.
///
/// IDEA's temperature overlay consumes these subsets: hot writers appear in
/// everyone's samples within a few epochs, which is how the top layer forms
/// ("after warming up, the four writers form a top layer" — §6.1).

#include <functional>
#include <unordered_map>
#include <vector>

#include "net/msg_type.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace idea::overlay {

/// One advertisement travelling in RanSub samples.
struct TempAd {
  NodeId node = kNoNode;
  FileId file = 0;
  double temperature = 0.0;
  SimTime stamped_at = 0;
};

struct RanSubParams {
  std::uint32_t arity = 4;          ///< Tree fan-out.
  std::uint32_t sample_size = 8;    ///< Ads per sample.
  SimDuration epoch = sec(5);       ///< Epoch length (root timer).
  std::uint32_t nodes = 0;          ///< Total node count (tree shape).
  /// How long an internal node waits for its children's collect samples
  /// before proceeding without the stragglers.  A crashed child must not
  /// stall the wave (and with it the whole overlay).
  SimDuration collect_deadline = sec(2);
};

/// Static k-ary tree helper (node 0 is the root).
struct KaryTree {
  std::uint32_t arity;
  std::uint32_t nodes;

  [[nodiscard]] NodeId parent(NodeId n) const {
    return n == 0 ? kNoNode : (n - 1) / arity;
  }
  [[nodiscard]] std::vector<NodeId> children(NodeId n) const;
  [[nodiscard]] bool is_leaf(NodeId n) const { return children(n).empty(); }
};

/// Per-node RanSub agent.  Drives the collect/distribute waves over the
/// Transport; the root's epoch timer starts each round.
class RanSubAgent final : public net::MessageHandler {
 public:
  /// `supply_ads` returns this node's current advertisements (its own
  /// temperatures).  `deliver` is invoked once per epoch with the random
  /// subset this node received in the distribute wave.
  RanSubAgent(NodeId self, FileId file, net::Transport& transport,
              RanSubParams params,
              std::function<std::vector<TempAd>()> supply_ads,
              std::function<void(const std::vector<TempAd>&)> deliver,
              std::uint64_t seed);

  RanSubAgent(const RanSubAgent&) = delete;
  RanSubAgent& operator=(const RanSubAgent&) = delete;
  ~RanSubAgent() override;

  /// Start the epoch timer (root only; no-op elsewhere).
  void start();

  void on_message(const net::Message& msg) override;

  /// Messages types used by the protocol (exposed for accounting).
  static const net::MsgType kCollectType;      ///< "ransub.collect"
  static const net::MsgType kDistributeType;   ///< "ransub.distribute"
  static const net::MsgType kEpochType;        ///< "ransub.epoch"

  [[nodiscard]] std::uint64_t epochs_completed() const { return epochs_; }

 private:
  struct Sample {
    std::vector<TempAd> ads;
    double weight = 0.0;  ///< Subtree population this sample represents.
  };

  void begin_epoch();
  void on_epoch_marker(const net::Message& msg);
  void on_collect(const net::Message& msg);
  void on_distribute(const net::Message& msg);
  void arm_collect_deadline();
  void try_finish_collect();
  void finish_collect();
  [[nodiscard]] Sample own_sample();
  /// Weighted uniform merge of child samples + own state.
  [[nodiscard]] Sample merge_samples(std::vector<Sample> parts);
  void send_distribute(const std::vector<TempAd>& subset);

  NodeId self_;
  FileId file_;  ///< Overlays are per-file (§4.1); stamped on every message.
  net::Transport& transport_;
  RanSubParams params_;
  KaryTree tree_;
  std::function<std::vector<TempAd>()> supply_ads_;
  std::function<void(const std::vector<TempAd>&)> deliver_;
  Rng rng_;

  std::uint64_t current_epoch_ = 0;
  std::uint64_t epochs_ = 0;
  bool collect_done_ = true;
  std::unordered_map<NodeId, Sample> pending_children_;
  std::uint64_t timer_handle_ = 0;
  std::uint64_t deadline_handle_ = 0;
};

}  // namespace idea::overlay
