#include "overlay/two_layer.hpp"

#include <algorithm>

namespace idea::overlay {

void TwoLayerView::ingest(const std::vector<TempAd>& ads, SimTime now) {
  for (const TempAd& ad : ads) {
    if (ad.node == kNoNode) continue;
    auto& slot = ads_[ad.file][ad.node];
    if (ad.stamped_at >= slot.stamped_at) {
      slot = AdState{ad.temperature, ad.stamped_at};
    }
  }
  // Opportunistic expiry so the maps do not grow without bound.
  for (auto& [file, by_node] : ads_) {
    for (auto it = by_node.begin(); it != by_node.end();) {
      if (now - it->second.stamped_at > params_.ad_ttl) {
        it = by_node.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void TwoLayerView::note_self(FileId file, double temperature, SimTime now) {
  ads_[file][self_] = AdState{temperature, now};
}

std::vector<NodeId> TwoLayerView::top_layer(FileId file, SimTime now) const {
  std::vector<NodeId> out;
  auto it = ads_.find(file);
  if (it == ads_.end()) return out;
  for (const auto& [node, ad] : it->second) {
    if (now - ad.stamped_at > params_.ad_ttl) continue;
    if (ad.temperature >= params_.hot_threshold) out.push_back(node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool TwoLayerView::in_top_layer(NodeId node, FileId file, SimTime now) const {
  auto it = ads_.find(file);
  if (it == ads_.end()) return false;
  auto jt = it->second.find(node);
  if (jt == it->second.end()) return false;
  return now - jt->second.stamped_at <= params_.ad_ttl &&
         jt->second.temperature >= params_.hot_threshold;
}

std::vector<NodeId> TwoLayerView::bottom_layer(FileId file,
                                               SimTime now) const {
  const std::vector<NodeId> top = top_layer(file, now);
  std::vector<NodeId> out;
  out.reserve(params_.all_nodes);
  for (NodeId n = 0; n < params_.all_nodes; ++n) {
    if (!std::binary_search(top.begin(), top.end(), n)) out.push_back(n);
  }
  return out;
}

}  // namespace idea::overlay
