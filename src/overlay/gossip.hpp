#pragma once
/// \file gossip.hpp
/// \brief Probabilistic push gossip (lpbcast-style [6]) for the bottom layer.
///
/// The bottom layer covers every node; IDEA scans it in the background for
/// inconsistencies the top layer missed (§4.3).  A rumor starts at one node
/// and is pushed to `fanout` random peers per hop; TTL bounds the traversal
/// delay, trading coverage for responsiveness exactly as §4.4.2 describes.

#include <functional>
#include <unordered_set>

#include "net/msg_type.hpp"
#include "net/payload.hpp"
#include "net/transport.hpp"
#include "util/rng.hpp"

namespace idea::overlay {

struct GossipParams {
  std::uint32_t fanout = 3;
  std::uint32_t ttl = 4;
  std::uint32_t nodes = 0;  ///< Deployment size; peers are 0..nodes-1.
};

/// Envelope wrapped around the application payload while it gossips.
/// The inner body is a refcounted net::Payload, so re-forwarding a rumor
/// to `fanout` peers shares one allocation instead of deep-copying the
/// application data per hop.
struct GossipEnvelope {
  std::uint64_t rumor_id = 0;
  NodeId origin = kNoNode;
  std::uint32_t ttl = 0;
  net::MsgType inner_type;
  net::Payload inner;
  std::uint32_t inner_bytes = 0;
};

class GossipAgent final : public net::MessageHandler {
 public:
  /// `deliver` fires exactly once per rumor per node (dedup by rumor id),
  /// including on the origin.
  GossipAgent(NodeId self, net::Transport& transport, GossipParams params,
              std::function<void(const GossipEnvelope&)> deliver,
              std::uint64_t seed);

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  /// Start a rumor from this node.  Returns its id.
  std::uint64_t broadcast(FileId file, net::MsgType inner_type,
                          net::Payload inner, std::uint32_t inner_bytes);

  void on_message(const net::Message& msg) override;

  static const net::MsgType kGossipType;  ///< Interned "gossip.push".

  [[nodiscard]] std::uint64_t rumors_seen() const { return seen_.size(); }

 private:
  void forward(const GossipEnvelope& env, FileId file);

  NodeId self_;
  net::Transport& transport_;
  GossipParams params_;
  std::function<void(const GossipEnvelope&)> deliver_;
  Rng rng_;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t next_rumor_ = 1;
};

}  // namespace idea::overlay
