#pragma once
/// \file two_layer.hpp
/// \brief Per-node view of the two-layer infrastructure (§4.1).
///
/// Each node folds the temperature advertisements it receives from RanSub
/// epochs (plus its own temperature) into a per-file view: the *top layer*
/// is the set of currently-hot writers; everyone else is the bottom layer.
/// Ads expire after a few epochs so nodes that stop writing cool out of the
/// top layer.  Different files have independent top layers, as the paper
/// requires.

#include <unordered_map>
#include <vector>

#include "overlay/ransub.hpp"
#include "overlay/temperature.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::overlay {

struct TwoLayerParams {
  double hot_threshold = 0.5;      ///< Ads at/above this are top-layer.
  SimDuration ad_ttl = sec(30);    ///< Ads older than this are discarded.
  std::uint32_t all_nodes = 0;     ///< Deployment size (bottom layer = rest).
};

class TwoLayerView {
 public:
  TwoLayerView(NodeId self, TwoLayerParams params)
      : self_(self), params_(params) {}

  /// Fold a RanSub delivery into the view.
  void ingest(const std::vector<TempAd>& ads, SimTime now);

  /// Record this node's own temperature for a file (kept fresh locally
  /// rather than waiting to hear our own ad back from the overlay).
  void note_self(FileId file, double temperature, SimTime now);

  /// The top layer for `file`: hot, unexpired writers (self included when
  /// hot), sorted by node id.
  [[nodiscard]] std::vector<NodeId> top_layer(FileId file, SimTime now) const;

  [[nodiscard]] bool in_top_layer(NodeId node, FileId file,
                                  SimTime now) const;

  /// Bottom layer = all deployment nodes not currently in the top layer.
  [[nodiscard]] std::vector<NodeId> bottom_layer(FileId file,
                                                 SimTime now) const;

  [[nodiscard]] NodeId self() const { return self_; }
  [[nodiscard]] const TwoLayerParams& params() const { return params_; }

 private:
  struct AdState {
    double temperature = 0.0;
    SimTime stamped_at = 0;
  };

  NodeId self_;
  TwoLayerParams params_;
  // (file -> writer -> freshest ad)
  std::unordered_map<FileId, std::unordered_map<NodeId, AdState>> ads_;
};

}  // namespace idea::overlay
