#include "overlay/ransub.hpp"

#include <algorithm>
#include <cassert>

namespace idea::overlay {

namespace {

struct CollectPayload {
  std::uint64_t epoch;
  std::vector<TempAd> ads;
  double weight;
};

struct DistributePayload {
  std::uint64_t epoch;
  std::vector<TempAd> subset;
};

struct EpochPayload {
  std::uint64_t epoch;
};

std::uint32_t ads_wire_bytes(std::size_t n) {
  return static_cast<std::uint32_t>(24 + n * 24);
}

}  // namespace

const net::MsgType RanSubAgent::kCollectType =
    net::MsgType::intern("ransub.collect");
const net::MsgType RanSubAgent::kDistributeType =
    net::MsgType::intern("ransub.distribute");
const net::MsgType RanSubAgent::kEpochType =
    net::MsgType::intern("ransub.epoch");

std::vector<NodeId> KaryTree::children(NodeId n) const {
  std::vector<NodeId> out;
  for (std::uint32_t c = 1; c <= arity; ++c) {
    const std::uint64_t child =
        static_cast<std::uint64_t>(n) * arity + c;
    if (child < nodes) out.push_back(static_cast<NodeId>(child));
  }
  return out;
}

RanSubAgent::RanSubAgent(
    NodeId self, FileId file, net::Transport& transport,
    RanSubParams params,
    std::function<std::vector<TempAd>()> supply_ads,
    std::function<void(const std::vector<TempAd>&)> deliver,
    std::uint64_t seed)
    : self_(self), file_(file), transport_(transport), params_(params),
      tree_{params.arity, params.nodes}, supply_ads_(std::move(supply_ads)),
      deliver_(std::move(deliver)), rng_(seed) {
  assert(params_.nodes > 0 && self_ < params_.nodes);
}

RanSubAgent::~RanSubAgent() {
  if (timer_handle_ != 0) transport_.cancel_call(timer_handle_);
  if (deadline_handle_ != 0) transport_.cancel_call(deadline_handle_);
}

void RanSubAgent::start() {
  if (self_ != 0) return;
  timer_handle_ =
      transport_.call_every(params_.epoch, [this] { begin_epoch(); });
}

void RanSubAgent::begin_epoch() {
  ++current_epoch_;
  pending_children_.clear();
  collect_done_ = false;
  // Announce the epoch down the tree; leaves respond with collect samples.
  for (NodeId c : tree_.children(self_)) {
    net::Message m;
    m.from = self_;
    m.file = file_;
    m.to = c;
    m.type = kEpochType;
    m.payload = EpochPayload{current_epoch_};
    m.wire_bytes = 16;
    transport_.send(std::move(m));
  }
  if (tree_.children(self_).empty()) {
    // Degenerate single-node tree: deliver own sample immediately.
    collect_done_ = true;
    deliver_(own_sample().ads);
    ++epochs_;
  } else {
    arm_collect_deadline();
  }
}

void RanSubAgent::on_message(const net::Message& msg) {
  if (msg.type == kEpochType) {
    on_epoch_marker(msg);
  } else if (msg.type == kCollectType) {
    on_collect(msg);
  } else if (msg.type == kDistributeType) {
    on_distribute(msg);
  }
}

void RanSubAgent::on_epoch_marker(const net::Message& msg) {
  const auto& p = msg.payload.as<EpochPayload>();
  current_epoch_ = p.epoch;
  pending_children_.clear();
  collect_done_ = false;
  const auto kids = tree_.children(self_);
  for (NodeId c : kids) {
    net::Message m;
    m.from = self_;
    m.file = file_;
    m.to = c;
    m.type = kEpochType;
    m.payload = EpochPayload{current_epoch_};
    m.wire_bytes = 16;
    transport_.send(std::move(m));
  }
  if (kids.empty()) {
    // Leaf: start the collect wave.
    collect_done_ = true;
    Sample s = own_sample();
    net::Message m;
    m.from = self_;
    m.file = file_;
    m.to = tree_.parent(self_);
    m.type = kCollectType;
    m.payload = CollectPayload{current_epoch_, s.ads, s.weight};
    m.wire_bytes = ads_wire_bytes(s.ads.size());
    transport_.send(std::move(m));
  } else {
    arm_collect_deadline();
  }
}

void RanSubAgent::on_collect(const net::Message& msg) {
  const auto& p = msg.payload.as<CollectPayload>();
  if (p.epoch != current_epoch_) return;  // stale wave
  pending_children_[msg.from] = Sample{p.ads, p.weight};
  try_finish_collect();
}

void RanSubAgent::arm_collect_deadline() {
  if (deadline_handle_ != 0) transport_.cancel_call(deadline_handle_);
  const std::uint64_t epoch = current_epoch_;
  deadline_handle_ = transport_.call_after(
      params_.collect_deadline, [this, epoch] {
        deadline_handle_ = 0;
        if (epoch != current_epoch_ || collect_done_) return;
        // Stragglers (possibly crashed children) are left behind; the wave
        // must keep moving.
        finish_collect();
      });
}

void RanSubAgent::try_finish_collect() {
  const auto kids = tree_.children(self_);
  if (pending_children_.size() < kids.size()) return;
  finish_collect();
}

void RanSubAgent::finish_collect() {
  if (collect_done_) return;
  collect_done_ = true;
  if (deadline_handle_ != 0) {
    transport_.cancel_call(deadline_handle_);
    deadline_handle_ = 0;
  }
  const auto kids = tree_.children(self_);
  std::vector<Sample> parts;
  parts.reserve(kids.size() + 1);
  parts.push_back(own_sample());
  for (NodeId c : kids) {
    auto it = pending_children_.find(c);
    if (it != pending_children_.end()) parts.push_back(it->second);
  }
  Sample merged = merge_samples(std::move(parts));
  pending_children_.clear();

  if (self_ == 0) {
    // Root: distribute wave.  The root's own delivery sees the global
    // sample too.
    deliver_(merged.ads);
    ++epochs_;
    send_distribute(merged.ads);
  } else {
    net::Message m;
    m.from = self_;
    m.file = file_;
    m.to = tree_.parent(self_);
    m.type = kCollectType;
    m.payload = CollectPayload{current_epoch_, merged.ads, merged.weight};
    m.wire_bytes = ads_wire_bytes(merged.ads.size());
    transport_.send(std::move(m));
  }
}

void RanSubAgent::on_distribute(const net::Message& msg) {
  const auto& p = msg.payload.as<DistributePayload>();
  if (p.epoch != current_epoch_) return;
  deliver_(p.subset);
  ++epochs_;
  send_distribute(p.subset);
}

void RanSubAgent::send_distribute(const std::vector<TempAd>& subset) {
  for (NodeId c : tree_.children(self_)) {
    // Each child receives an independently resampled subset; with small
    // samples this just forwards, with large ones it thins uniformly.
    std::vector<TempAd> forward = subset;
    if (forward.size() > params_.sample_size) {
      rng_.shuffle(forward);
      forward.resize(params_.sample_size);
    }
    net::Message m;
    m.from = self_;
    m.file = file_;
    m.to = c;
    m.type = kDistributeType;
    m.payload = DistributePayload{current_epoch_, std::move(forward)};
    m.wire_bytes = ads_wire_bytes(subset.size());
    transport_.send(std::move(m));
  }
}

RanSubAgent::Sample RanSubAgent::own_sample() {
  Sample s;
  s.ads = supply_ads_();
  s.weight = 1.0;
  if (s.ads.size() > params_.sample_size) {
    rng_.shuffle(s.ads);
    s.ads.resize(params_.sample_size);
  }
  return s;
}

RanSubAgent::Sample RanSubAgent::merge_samples(std::vector<Sample> parts) {
  Sample out;
  for (const Sample& p : parts) out.weight += p.weight;

  // Hot ads must survive merging regardless of sampling luck — the overlay's
  // job is precisely to surface them — so they are merged first, then the
  // remaining slots are filled by weighted uniform draws.
  std::vector<TempAd> hot;
  std::vector<std::pair<double, TempAd>> cold;  // (part weight, ad)
  for (const Sample& p : parts) {
    const double w =
        p.ads.empty() ? 0.0
                      : p.weight / static_cast<double>(p.ads.size());
    for (const TempAd& ad : p.ads) {
      if (ad.temperature > 0.0) {
        hot.push_back(ad);
      } else {
        cold.emplace_back(w, ad);
      }
    }
  }
  // Deduplicate hot ads by (node, file), keeping the freshest stamp.
  std::sort(hot.begin(), hot.end(), [](const TempAd& a, const TempAd& b) {
    if (a.node != b.node) return a.node < b.node;
    if (a.file != b.file) return a.file < b.file;
    return a.stamped_at > b.stamped_at;
  });
  hot.erase(std::unique(hot.begin(), hot.end(),
                        [](const TempAd& a, const TempAd& b) {
                          return a.node == b.node && a.file == b.file;
                        }),
            hot.end());

  out.ads = std::move(hot);
  // Fill remaining slots with weighted draws from the cold pool.
  double total_w = 0.0;
  for (const auto& [w, ad] : cold) total_w += w;
  while (out.ads.size() < params_.sample_size && !cold.empty() &&
         total_w > 0.0) {
    double r = rng_.uniform01() * total_w;
    std::size_t pick = 0;
    for (; pick + 1 < cold.size(); ++pick) {
      r -= cold[pick].first;
      if (r <= 0.0) break;
    }
    total_w -= cold[pick].first;
    out.ads.push_back(cold[pick].second);
    cold.erase(cold.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  if (out.ads.size() > params_.sample_size) {
    rng_.shuffle(out.ads);
    out.ads.resize(params_.sample_size);
  }
  return out;
}

}  // namespace idea::overlay
