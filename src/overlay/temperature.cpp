#include "overlay/temperature.hpp"

namespace idea::overlay {

void TemperatureTracker::record_update(FileId file, SimTime now) {
  auto& s = state_[file];
  s.score = decayed(s, now) + 1.0;
  s.last = now;
}

double TemperatureTracker::temperature(FileId file, SimTime now) const {
  auto it = state_.find(file);
  if (it == state_.end()) return 0.0;
  return decayed(it->second, now);
}

}  // namespace idea::overlay
