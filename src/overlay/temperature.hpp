#pragma once
/// \file temperature.hpp
/// \brief Updating "temperature" of a node for a shared file (§4.1).
///
/// The top layer (temperature overlay) contains the nodes that update a file
/// "sufficiently frequently and/or recently".  We score both aspects with an
/// exponentially-decayed update count: each update contributes 1, decaying
/// with time constant tau.  A node writing every 5 s with tau = 60 s holds a
/// temperature around 12; a node that stopped writing cools below any
/// sensible threshold within a few tau.

#include <cmath>
#include <unordered_map>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::overlay {

struct TemperatureParams {
  SimDuration tau = sec(60);   ///< Decay time constant.
  double hot_threshold = 0.5;  ///< Score at/above which a node is "hot".
};

/// Per-node tracker of its own updating temperature for each file.
class TemperatureTracker {
 public:
  explicit TemperatureTracker(TemperatureParams params = {})
      : params_(params) {}

  /// Record that this node issued an update to `file` at `now`.
  void record_update(FileId file, SimTime now);

  /// Current decayed score for `file`.
  [[nodiscard]] double temperature(FileId file, SimTime now) const;

  /// Whether this node currently qualifies as a hot writer of `file`.
  [[nodiscard]] bool is_hot(FileId file, SimTime now) const {
    return temperature(file, now) >= params_.hot_threshold;
  }

  [[nodiscard]] const TemperatureParams& params() const { return params_; }

 private:
  struct State {
    double score = 0.0;
    SimTime last = 0;
  };

  [[nodiscard]] double decayed(const State& s, SimTime now) const {
    if (s.score == 0.0) return 0.0;
    const double dt = to_sec(now - s.last);
    return s.score * std::exp(-dt / to_sec(params_.tau));
  }

  TemperatureParams params_;
  std::unordered_map<FileId, State> state_;
};

}  // namespace idea::overlay
