#include "overlay/gossip.hpp"

#include <cassert>

namespace idea::overlay {

const net::MsgType GossipAgent::kGossipType =
    net::MsgType::intern("gossip.push");

GossipAgent::GossipAgent(NodeId self, net::Transport& transport,
                         GossipParams params,
                         std::function<void(const GossipEnvelope&)> deliver,
                         std::uint64_t seed)
    : self_(self), transport_(transport), params_(params),
      deliver_(std::move(deliver)), rng_(seed) {
  assert(params_.nodes > 0);
}

std::uint64_t GossipAgent::broadcast(FileId file, net::MsgType inner_type,
                                     net::Payload inner,
                                     std::uint32_t inner_bytes) {
  GossipEnvelope env;
  env.rumor_id = (static_cast<std::uint64_t>(self_) << 40) | next_rumor_++;
  env.origin = self_;
  env.ttl = params_.ttl;
  env.inner_type = inner_type;
  env.inner = std::move(inner);
  env.inner_bytes = inner_bytes;
  seen_.insert(env.rumor_id);
  deliver_(env);  // origin delivers to itself
  forward(env, file);
  return env.rumor_id;
}

void GossipAgent::on_message(const net::Message& msg) {
  if (msg.type != kGossipType) return;
  const auto& env = msg.payload.as<GossipEnvelope>();
  if (!seen_.insert(env.rumor_id).second) return;  // duplicate
  deliver_(env);
  if (env.ttl > 0) {
    GossipEnvelope next = env;
    next.ttl -= 1;
    forward(next, msg.file);
  }
}

void GossipAgent::forward(const GossipEnvelope& env, FileId file) {
  if (env.ttl == 0 || params_.nodes <= 1) return;
  const std::uint32_t want = std::min(params_.fanout, params_.nodes - 1);
  // Sample distinct targets from all nodes except self.
  auto sample = rng_.sample_without_replacement(params_.nodes - 1, want);
  // One shared envelope for every fanout target; each send refcounts it.
  const net::Payload shared_env = env;
  for (std::uint32_t idx : sample) {
    const NodeId target = idx >= self_ ? idx + 1 : idx;
    net::Message m;
    m.from = self_;
    m.to = target;
    m.file = file;
    m.type = kGossipType;
    m.payload = shared_env;
    m.wire_bytes = 32 + env.inner_bytes;
    transport_.send(std::move(m));
  }
}

}  // namespace idea::overlay
