#pragma once
/// \file engine.hpp
/// \brief Deterministic open-loop workload engine: seeded arrival schedules
///        on the sim clock, with phase-scheduled adversarial shape changes.
///
/// The KvWorkload-style closed-loop clients the benches grew up on issue
/// one op per fixed tick — fine for steady state, useless for the
/// scenarios ROADMAP item 4 needs to stress the adaptive controller:
///
///  * flash crowds       — a scheduled jump in a tenant's Zipf exponent
///                         (suddenly everyone reads the same few keys);
///  * diurnal load shifts — per-tenant op rates that follow a schedule
///                         (tenant A's day is tenant B's night);
///  * hotspot migration  — the hot end of the key-rank mapping rotates to
///                         a different key range mid-run.
///
/// OpenLoopEngine is a spammer-style generator: each tenant is an
/// independent Poisson arrival process (exponential inter-arrival times
/// from a forked RNG stream) whose rate, Zipf skew, and hotspot offset are
/// piecewise-constant functions of sim time.  Ops are handed to an Issuer
/// callback — the engine knows nothing about sessions or clusters, so the
/// same scenario drives benches, determinism goldens, and unit tests.
///
/// Determinism: one RNG stream per tenant (forked from the engine seed),
/// arrivals scheduled on the sim clock, phases picked by pure time lookup.
/// Two engines with the same seed and tenant specs produce byte-identical
/// op sequences.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace idea::workload {

/// Piecewise-constant op rate: from `start`, the tenant issues
/// `ops_per_sec` operations per simulated second (0 pauses the tenant
/// until the next phase).
struct RatePhase {
  SimTime start = 0;
  double ops_per_sec = 0.0;
};

/// Piecewise-constant Zipf skew: from `start`, key ranks are drawn
/// Zipf(s).  s = 0 is uniform; s >= ~1.2 concentrates most draws on a
/// handful of ranks (the flash-crowd shape).
struct ZipfPhase {
  SimTime start = 0;
  double s = 0.0;
};

/// Piecewise-constant hotspot position: from `start`, rank r maps to key
/// (offset + r) % keys — rotating `offset` migrates the hot keys to a
/// different region of the keyspace without touching the skew.
struct HotspotPhase {
  SimTime start = 0;
  std::uint32_t offset = 0;
};

/// One tenant's workload shape.  Phases must be sorted by start time;
/// before the first phase the first entry's value applies.
struct TenantSpec {
  std::string name;
  std::uint32_t keys = 1;          ///< Keyspace size (ranks 0..keys-1).
  double read_fraction = 1.0;      ///< Remaining ops are writes.
  std::vector<RatePhase> rate;     ///< Required: at least one phase.
  std::vector<ZipfPhase> zipf;     ///< Empty = uniform throughout.
  std::vector<HotspotPhase> hotspot;  ///< Empty = no rotation.
  /// Client attach points; arrivals round-robin origins via the tenant's
  /// RNG.  Empty = co-located (kNoNode).
  std::vector<NodeId> origins;
};

/// One generated operation, handed to the Issuer.
struct Op {
  std::uint32_t tenant = 0;  ///< Index into the engine's tenant vector.
  bool is_read = true;
  std::uint32_t key = 0;     ///< Post-hotspot-rotation key in [0, keys).
  NodeId origin = kNoNode;
  std::uint64_t index = 0;   ///< Per-tenant op sequence number.
};

struct EngineOptions {
  SimTime start = 0;
  SimTime end = 0;           ///< No arrivals at or after this time.
  std::uint64_t seed = 2007;
};

struct TenantStats {
  std::uint64_t ops = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
};

/// Zipf(s) sampler over ranks [0, n) by CDF inversion — the shared
/// implementation the benches used to duplicate.  s = 0 degenerates to
/// uniform.  Deterministic given the caller's RNG.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s);

  [[nodiscard]] std::uint32_t sample(Rng& rng) const;
  [[nodiscard]] double s() const { return s_; }

 private:
  double s_ = 0.0;
  std::vector<double> cdf_;  ///< Empty when uniform (s == 0).
  std::uint32_t n_ = 1;
};

class OpenLoopEngine {
 public:
  using Issuer = std::function<void(const Op&)>;

  OpenLoopEngine(sim::Simulator& sim, EngineOptions options,
                 std::vector<TenantSpec> tenants, Issuer issuer);

  OpenLoopEngine(const OpenLoopEngine&) = delete;
  OpenLoopEngine& operator=(const OpenLoopEngine&) = delete;

  /// Schedule every tenant's first arrival; idempotent.
  void start();

  [[nodiscard]] const TenantStats& stats(std::uint32_t tenant) const {
    return stats_[tenant];
  }
  [[nodiscard]] std::uint64_t total_ops() const;
  [[nodiscard]] const std::vector<TenantSpec>& tenants() const {
    return tenants_;
  }

 private:
  struct TenantRuntime {
    Rng rng;
    std::uint64_t next_index = 0;
    /// Samplers per distinct zipf phase (parallel to spec.zipf; one
    /// uniform sampler when the spec has none).
    std::vector<ZipfSampler> samplers;
  };

  /// The active phase value at `at` (last phase with start <= at, else
  /// the first).
  template <typename Phase>
  static const Phase& phase_at(const std::vector<Phase>& phases, SimTime at);
  [[nodiscard]] std::size_t zipf_phase_index(const TenantSpec& spec,
                                             SimTime at) const;

  /// Schedule the next arrival for tenant `i` given the rate in force
  /// now; a zero-rate phase skips ahead to the next phase boundary.
  void arm(std::uint32_t i);
  void fire(std::uint32_t i);

  sim::Simulator& sim_;
  EngineOptions options_;
  std::vector<TenantSpec> tenants_;
  Issuer issuer_;
  std::vector<TenantRuntime> runtime_;
  std::vector<TenantStats> stats_;
  bool started_ = false;
};

}  // namespace idea::workload
