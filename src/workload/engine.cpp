#include "workload/engine.hpp"

#include <cassert>
#include <cmath>

namespace idea::workload {

ZipfSampler::ZipfSampler(std::uint32_t n, double s)
    : s_(s), n_(n == 0 ? 1 : n) {
  if (s_ <= 0.0) return;  // Uniform: next_below is exact and cheaper.
  cdf_.resize(n_);
  double total = 0.0;
  for (std::uint32_t r = 0; r < n_; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), s_);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::uint32_t ZipfSampler::sample(Rng& rng) const {
  if (cdf_.empty()) {
    return static_cast<std::uint32_t>(rng.next_below(n_));
  }
  const double u = rng.uniform01();
  // CDF inversion by binary search: first rank whose cumulative mass
  // covers u.
  std::uint32_t lo = 0;
  std::uint32_t hi = n_ - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

OpenLoopEngine::OpenLoopEngine(sim::Simulator& sim, EngineOptions options,
                               std::vector<TenantSpec> tenants,
                               Issuer issuer)
    : sim_(sim),
      options_(options),
      tenants_(std::move(tenants)),
      issuer_(std::move(issuer)) {
  Rng root(options_.seed);
  runtime_.reserve(tenants_.size());
  stats_.resize(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    TenantSpec& spec = tenants_[i];
    assert(!spec.rate.empty() && "tenant needs at least one rate phase");
    TenantRuntime rt;
    rt.rng = root.fork(i + 1);
    if (spec.zipf.empty()) {
      rt.samplers.emplace_back(spec.keys, 0.0);
    } else {
      for (const ZipfPhase& z : spec.zipf) {
        rt.samplers.emplace_back(spec.keys, z.s);
      }
    }
    runtime_.push_back(std::move(rt));
  }
}

template <typename Phase>
const Phase& OpenLoopEngine::phase_at(const std::vector<Phase>& phases,
                                      SimTime at) {
  const Phase* active = &phases.front();
  for (const Phase& p : phases) {
    if (p.start > at) break;
    active = &p;
  }
  return *active;
}

std::size_t OpenLoopEngine::zipf_phase_index(const TenantSpec& spec,
                                             SimTime at) const {
  if (spec.zipf.empty()) return 0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < spec.zipf.size(); ++i) {
    if (spec.zipf[i].start > at) break;
    active = i;
  }
  return active;
}

void OpenLoopEngine::start() {
  if (started_) return;
  started_ = true;
  for (std::uint32_t i = 0; i < tenants_.size(); ++i) arm(i);
}

std::uint64_t OpenLoopEngine::total_ops() const {
  std::uint64_t total = 0;
  for (const TenantStats& s : stats_) total += s.ops;
  return total;
}

void OpenLoopEngine::arm(std::uint32_t i) {
  const TenantSpec& spec = tenants_[i];
  TenantRuntime& rt = runtime_[i];
  SimTime at = sim_.now();
  if (at < options_.start) at = options_.start;

  // Zero-rate phases pause the tenant: skip straight to the next phase
  // boundary instead of sampling an infinite gap.  The rate is sampled
  // once at scheduling time — a phase change mid-gap takes effect from
  // the next arrival, which keeps the schedule a pure function of
  // (seed, spec).
  const RatePhase* rate = &phase_at(spec.rate, at);
  while (rate->ops_per_sec <= 0.0) {
    const RatePhase* next = nullptr;
    for (const RatePhase& p : spec.rate) {
      if (p.start > at) {
        next = &p;
        break;
      }
    }
    if (next == nullptr) return;  // Silent for the rest of the run.
    at = next->start;
    rate = next;
  }

  const double mean_gap_us = 1e6 / rate->ops_per_sec;
  const double gap = rt.rng.exponential(mean_gap_us);
  SimTime fire_at = at + static_cast<SimDuration>(gap);
  if (fire_at <= sim_.now()) fire_at = sim_.now() + 1;
  if (fire_at >= options_.end) return;
  sim_.schedule_at(fire_at, [this, i] { fire(i); });
}

void OpenLoopEngine::fire(std::uint32_t i) {
  const TenantSpec& spec = tenants_[i];
  TenantRuntime& rt = runtime_[i];
  const SimTime now = sim_.now();

  Op op;
  op.tenant = i;
  op.index = rt.next_index++;
  op.is_read = spec.read_fraction >= 1.0 ||
               (spec.read_fraction > 0.0 &&
                rt.rng.uniform01() < spec.read_fraction);
  const std::uint32_t rank =
      rt.samplers[zipf_phase_index(spec, now)].sample(rt.rng);
  const std::uint32_t offset =
      spec.hotspot.empty() ? 0 : phase_at(spec.hotspot, now).offset;
  op.key = (offset + rank) % (spec.keys == 0 ? 1 : spec.keys);
  if (!spec.origins.empty()) {
    op.origin = spec.origins[static_cast<std::size_t>(
        rt.rng.next_below(spec.origins.size()))];
  }

  TenantStats& st = stats_[i];
  ++st.ops;
  if (op.is_read) {
    ++st.reads;
  } else {
    ++st.writes;
  }
  issuer_(op);
  arm(i);
}

}  // namespace idea::workload
