#pragma once
/// \file transport.hpp
/// \brief Transport abstraction shared by the simulated and threaded runtimes.
///
/// Protocol code (overlay, detection, resolution) is written once against
/// this interface; the experiments use SimTransport for determinism and the
/// examples can use ThreadTransport to run the middleware under real
/// concurrency.

#include <functional>
#include <vector>

#include "net/message.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::net {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Register the handler for a node id.  Must happen before messages are
  /// sent to that node.  Handlers are borrowed, not owned.
  virtual void attach(NodeId node, MessageHandler* handler) = 0;

  /// Remove a node (e.g. simulated crash).  In-flight messages to it drop.
  virtual void detach(NodeId node) = 0;

  /// Send a message; delivery is asynchronous with model-dependent delay.
  virtual void send(Message msg) = 0;

  /// Global (true) time.  Nodes should use local_time() for timestamps.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Node-local clock reading: global time plus that node's skew.  The paper
  /// assumes NTP keeps skew within seconds; skew is injected here so the
  /// staleness pipeline is exercised against imperfect clocks.
  [[nodiscard]] virtual SimTime local_time(NodeId node) const = 0;

  /// Schedule a callback on the transport's timeline (protocol timers).
  virtual std::uint64_t call_after(SimDuration delay,
                                   std::function<void()> fn) = 0;

  /// Schedule a recurring callback; returns a handle for cancel_call.
  virtual std::uint64_t call_every(SimDuration period,
                                   std::function<void()> fn) = 0;

  /// Cancel a pending/recurring callback.
  virtual void cancel_call(std::uint64_t handle) = 0;

  /// Message/byte accounting (send-side).
  [[nodiscard]] MessageCounters& counters() { return counters_; }
  [[nodiscard]] const MessageCounters& counters() const { return counters_; }

 protected:
  MessageCounters counters_;
};

}  // namespace idea::net
