#include "net/msg_type.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>

namespace idea::net {
namespace {

/// Process-wide interning state.  `names` is a deque so the strings that
/// back every MsgType::name() view never move; `by_name` is an ordered map
/// so prefix queries can walk a lower_bound range.
struct Registry {
  std::shared_mutex mu;
  std::deque<std::string> names;  // index = id; [0] reserved for "?"
  std::map<std::string, std::uint16_t, std::less<>> by_name;

  Registry() { names.emplace_back("?"); }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

MsgType MsgType::intern(std::string_view name) {
  assert(!name.empty());
  Registry& r = registry();
  {
    std::shared_lock lock(r.mu);
    auto it = r.by_name.find(name);
    if (it != r.by_name.end()) return MsgType(it->second);
  }
  std::unique_lock lock(r.mu);
  auto it = r.by_name.find(name);
  if (it != r.by_name.end()) return MsgType(it->second);
  if (r.names.size() > UINT16_MAX) {
    // A wrapped id would alias the reserved invalid type and silently
    // corrupt dispatch and counters; die loudly instead (record() interns
    // caller-supplied names, so this is reachable from dynamic strings).
    std::fprintf(stderr,
                 "MsgType registry exhausted (%zu types); cannot intern "
                 "\"%.*s\"\n",
                 r.names.size(), static_cast<int>(name.size()), name.data());
    std::abort();
  }
  const auto id = static_cast<std::uint16_t>(r.names.size());
  r.names.emplace_back(name);
  r.by_name.emplace(r.names.back(), id);
  return MsgType(id);
}

MsgType MsgType::lookup(std::string_view name) {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  auto it = r.by_name.find(name);
  return it == r.by_name.end() ? MsgType() : MsgType(it->second);
}

std::uint32_t MsgType::registered_count() {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return static_cast<std::uint32_t>(r.names.size());
}

std::string_view MsgType::name() const {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  return id_ < r.names.size() ? std::string_view(r.names[id_])
                              : std::string_view("?");
}

std::size_t MsgTypeRegistry::prefix_range(std::string_view prefix,
                                          std::uint16_t* out,
                                          std::size_t cap,
                                          std::size_t skip) {
  Registry& r = registry();
  std::shared_lock lock(r.mu);
  std::size_t n = 0;
  for (auto it = r.by_name.lower_bound(prefix);
       it != r.by_name.end() && n < cap; ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (skip > 0) {
      --skip;
      continue;
    }
    out[n++] = it->second;
  }
  return n;
}

}  // namespace idea::net
