#pragma once
/// \file message.hpp
/// \brief Protocol message representation and accounting.
///
/// IDEA runs in-process (simulated or threaded), so messages carry typed
/// payloads via std::any instead of serialized bytes.  Each message still
/// declares a `wire_bytes` estimate so the overhead benches (Table 3) can
/// account communication cost the way the paper does (message counts and
/// an assumed ~1 KB packet size).

#include <any>
#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::net {

/// One protocol message in flight.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  FileId file = 0;          ///< Shared object this message concerns.
  std::string type;         ///< Protocol tag, e.g. "detect.vv".
  std::any payload;         ///< Typed body; receiver any_casts by `type`.
  std::uint32_t wire_bytes = 64;  ///< Estimated on-the-wire size.
  SimTime sent_at = 0;      ///< Stamped by the transport on send.
};

/// Per-type and total message/byte counters.
///
/// Counter reads are cheap and the benches snapshot/reset between phases, so
/// background-resolution overhead can be attributed per period (Table 3).
class MessageCounters {
 public:
  void record(const std::string& type, std::uint32_t bytes);

  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t messages_of(const std::string& type) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& by_type() const {
    return per_type_;
  }

  /// Messages whose type starts with `prefix` (e.g. "resolve.").
  [[nodiscard]] std::uint64_t messages_with_prefix(
      const std::string& prefix) const;

  void reset();

 private:
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::map<std::string, std::uint64_t> per_type_;
};

/// Receiver interface implemented by every protocol node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const Message& msg) = 0;
};

}  // namespace idea::net
