#pragma once
/// \file message.hpp
/// \brief Protocol message representation and accounting.
///
/// IDEA runs in-process (simulated or threaded), so messages carry typed
/// payloads (see payload.hpp) instead of serialized bytes.  Each message
/// still declares a `wire_bytes` estimate so the overhead benches (Table 3)
/// can account communication cost the way the paper does (message counts
/// and an assumed ~1 KB packet size).
///
/// The hot-path representation is deliberately lean: the protocol tag is an
/// interned MsgType id (one comparison / one array index instead of string
/// hashing), and the body is a refcounted immutable Payload, so copying a
/// Message at a transport hop costs a refcount bump, not a deep copy.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/msg_type.hpp"
#include "net/payload.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace idea::net {

/// One protocol message in flight.
struct Message {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  FileId file = 0;          ///< Shared object this message concerns.
  MsgType type;             ///< Interned protocol tag, e.g. "detect.vv".
  Payload payload;          ///< Shared immutable body; receiver casts by type.
  std::uint32_t wire_bytes = 64;  ///< Estimated on-the-wire size.
  SimTime sent_at = 0;      ///< Stamped by the transport on send.
  /// Group-epoch fence (shard layer): a migrated file's replica group is
  /// rebuilt under a new epoch, and messages from the old epoch must not
  /// leak into the new stacks with remapped sender ranks.  0 for every
  /// deployment that never changes membership.
  std::uint32_t epoch = 0;
  /// Causal-trace context (obs layer): the trace this message belongs to
  /// and the sender-side span covering its flight.  Metadata only — not
  /// counted in wire_bytes, never consulted by the protocols — so traced
  /// and untraced runs are byte-identical.  0 = untraced.
  std::uint64_t trace = 0;
  std::uint32_t span = 0;
  /// Delivery-confirmation request (shard layer): a replicate push sent
  /// under a write concern asks its receiver to ack even when the group's
  /// resend feature is off.  One flag bit in a real header; not counted
  /// in wire_bytes.  False on every message of a deployment that never
  /// declares WriteConcern{w > 1}, which keeps old replays byte-exact.
  bool want_ack = false;
};

/// Per-type and total message/byte counters.
///
/// Per-type counts live in a flat array indexed by the interned type id, so
/// the record() on every send is two increments and an array bump — no map
/// node allocation, no string hashing.  Counter reads are cheap and the
/// benches snapshot/reset between phases, so background-resolution overhead
/// can be attributed per period (Table 3).
class MessageCounters {
 public:
  void record(MsgType type, std::uint32_t bytes) {
    ++messages_;
    bytes_ += bytes;
    const std::uint16_t id = type.id();
    if (id >= per_type_.size()) grow(id);
    ++per_type_[id];
  }

  /// Convenience for tests/diagnostics that speak names; interns `type`.
  void record(std::string_view type, std::uint32_t bytes) {
    record(MsgType::intern(type), bytes);
  }

  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return bytes_; }

  [[nodiscard]] std::uint64_t messages_of(MsgType type) const {
    return type.id() < per_type_.size() ? per_type_[type.id()] : 0;
  }
  [[nodiscard]] std::uint64_t messages_of(std::string_view type) const {
    // A never-interned name must count 0 — lookup's invalid MsgType (id 0)
    // would otherwise alias the untyped-message bucket.
    const MsgType t = MsgType::lookup(type);
    return t.valid() ? messages_of(t) : 0;
  }

  /// Name-keyed snapshot of the nonzero per-type counts (diagnostics and
  /// bench reports; not a hot path).
  [[nodiscard]] std::map<std::string, std::uint64_t> by_type() const;

  /// Messages whose type starts with `prefix` (e.g. "resolve."), resolved
  /// through the registry's ordered name index (a lower_bound range walk,
  /// not a scan over every recorded type).
  [[nodiscard]] std::uint64_t messages_with_prefix(
      std::string_view prefix) const;

  void reset();

 private:
  void grow(std::uint16_t id);

  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> per_type_;  ///< Indexed by MsgType id.
};

/// Receiver interface implemented by every protocol node.
class MessageHandler {
 public:
  virtual ~MessageHandler() = default;
  virtual void on_message(const Message& msg) = 0;
};

}  // namespace idea::net
