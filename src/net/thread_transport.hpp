#pragma once
/// \file thread_transport.hpp
/// \brief Wall-clock transport: a dispatcher thread delivering delayed
///        messages and timers in real time.
///
/// This runtime demonstrates the middleware outside the simulator.  All
/// protocol callbacks (message handlers and timers) execute on one
/// dispatcher thread, so protocol code stays data-race-free by construction
/// (CP.2) while `send` / `call_after` may be invoked from any thread.  A
/// `time_scale` < 1 compresses simulated delays so examples finish quickly;
/// 1.0 reproduces real latencies (used by the wall-clock variant of the
/// Table 2 bench).

#include <condition_variable>
#include <chrono>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "net/transport.hpp"
#include "sim/latency.hpp"
#include "util/rng.hpp"

namespace idea::net {

struct ThreadTransportOptions {
  /// Real seconds per virtual second.  0.01 => 100x faster than real time.
  double time_scale = 1.0;
  double loss_rate = 0.0;
  std::uint64_t seed = 7;
};

class ThreadTransport final : public Transport {
 public:
  ThreadTransport(sim::LatencyModel& latency,
                  ThreadTransportOptions options = {});
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  void attach(NodeId node, MessageHandler* handler) override;
  void detach(NodeId node) override;
  void send(Message msg) override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimTime local_time(NodeId node) const override;
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override;
  std::uint64_t call_every(SimDuration period,
                           std::function<void()> fn) override;
  void cancel_call(std::uint64_t handle) override;

  /// Block until no timer/message is pending or `timeout` virtual usec pass.
  /// Returns true if the queue drained.
  bool wait_idle(SimDuration timeout);

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    Clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
    // Recurrence (0 = one-shot), in virtual microseconds.
    SimDuration period = 0;
    std::uint64_t handle = 0;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] Clock::duration to_real(SimDuration virtual_usec) const;
  void dispatcher(std::stop_token st);
  std::uint64_t enqueue(SimDuration delay, std::function<void()> fn,
                        SimDuration period);

  sim::LatencyModel& latency_;
  ThreadTransportOptions options_;
  Clock::time_point start_;

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
  std::unordered_map<NodeId, MessageHandler*> handlers_;
  std::unordered_set<std::uint64_t> cancelled_;
  Rng rng_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_handle_ = 1;
  std::size_t in_flight_ = 0;  // queue_ size minus cancelled entries

  std::jthread worker_;  // last member: joins before the rest is destroyed
};

}  // namespace idea::net
