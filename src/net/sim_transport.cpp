#include "net/sim_transport.hpp"

#include <cassert>
#include <utility>

namespace idea::net {

SimTransport::SimTransport(sim::Simulator& sim, sim::LatencyModel& latency,
                           SimTransportOptions options)
    : sim_(sim), latency_(latency), options_(options), rng_(options.seed) {
  handlers_.resize(options_.node_count, nullptr);
  skew_.resize(options_.node_count, 0);
  if (options_.max_clock_skew > 0) {
    for (auto& s : skew_) {
      s = rng_.uniform_int(-options_.max_clock_skew,
                           options_.max_clock_skew);
    }
  }
  skew_assigned_ = skew_.size();
}

void SimTransport::attach(NodeId node, MessageHandler* handler) {
  assert(handler != nullptr);
  if (node >= handlers_.size()) handlers_.resize(node + 1, nullptr);
  handlers_[node] = handler;
  if (node >= skew_.size()) skew_.resize(node + 1, 0);
}

void SimTransport::detach(NodeId node) {
  if (node < handlers_.size()) handlers_[node] = nullptr;
}

void SimTransport::send(Message msg) {
  msg.sent_at = sim_.now();
  counters_.record(msg.type, msg.wire_bytes);
  if (options_.loss_rate > 0.0 && rng_.chance(options_.loss_rate)) {
    ++dropped_;
    return;
  }
  const SimDuration delay = latency_.sample(msg.from, msg.to, rng_);
  // Scripted faults drop only after the loss and latency draws, so a
  // faulted run consumes the exact RNG stream of a clean run: every
  // message that survives the fault sees the same loss decision and
  // delay it would have seen without the fault script.
  if (fault_drops(msg)) {
    ++fault_dropped_;
    return;
  }
  // Park the message in the slab; the delivery closure captures only the
  // slot index, so it fits std::function's inline storage.
  IDEA_ASSERT_OWNED(owner_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_flight_[slot] = std::move(msg);
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(std::move(msg));
  }
  sim_.schedule_after(delay, [this, slot] { deliver_slot(slot); });
}

void SimTransport::deliver_slot(std::uint32_t slot) {
  IDEA_ASSERT_OWNED(owner_);
  Message msg = std::move(in_flight_[slot]);
  in_flight_[slot] = Message{};
  free_slots_.push_back(slot);
  // Crash-stop semantics act on the whole flight, not just the send
  // instant: a message in the air when either endpoint dies is lost with
  // the connection, even if the endpoint revived before the delivery
  // would have landed.
  if (!crash_windows_.empty()) {
    const SimTime now = sim_.now();
    if (crash_overlaps_flight(msg.from, msg.sent_at, now) ||
        crash_overlaps_flight(msg.to, msg.sent_at, now)) {
      ++fault_dropped_;
      return;
    }
  }
  if (msg.to < handlers_.size() && handlers_[msg.to] != nullptr) {
    handlers_[msg.to]->on_message(msg);
  }
}

SimTime SimTransport::now() const { return sim_.now(); }

SimTime SimTransport::local_time(NodeId node) const {
  const SimDuration skew = node < skew_.size() ? skew_[node] : 0;
  return sim_.now() + skew;
}

std::uint64_t SimTransport::call_after(SimDuration delay,
                                       std::function<void()> fn) {
  return sim_.schedule_after(delay, std::move(fn));
}

std::uint64_t SimTransport::call_every(SimDuration period,
                                       std::function<void()> fn) {
  return sim_.schedule_periodic(period, std::move(fn));
}

void SimTransport::cancel_call(std::uint64_t handle) { sim_.cancel(handle); }

SimDuration SimTransport::skew_of(NodeId node) const {
  return node < skew_.size() ? skew_[node] : 0;
}

bool SimTransport::fault_drops(const Message& msg) const {
  if (!partitions_.empty() &&
      partitions_.count(pair_key(msg.from, msg.to)) > 0) {
    return true;
  }
  if (!crash_windows_.empty()) {
    const SimTime now = sim_.now();
    if (node_crashed(msg.from, now) || node_crashed(msg.to, now)) {
      return true;
    }
  }
  if (!drop_windows_.empty()) {
    const SimTime now = sim_.now();
    for (const auto& [from, until] : drop_windows_) {
      if (now >= from && now < until) return true;
    }
  }
  return false;
}

void SimTransport::crash_node(NodeId node, SimTime at) {
  auto& windows = crash_windows_[node];
  if (!windows.empty() && windows.back().second == kNever) return;
  windows.emplace_back(at, kNever);
}

void SimTransport::revive_node(NodeId node, SimTime at) {
  auto it = crash_windows_.find(node);
  if (it == crash_windows_.end() || it->second.empty()) return;
  auto& open = it->second.back();
  if (open.second == kNever && at > open.first) open.second = at;
}

bool SimTransport::node_crashed(NodeId node, SimTime at) const {
  auto it = crash_windows_.find(node);
  if (it == crash_windows_.end()) return false;
  for (const auto& [from, until] : it->second) {
    if (at >= from && at < until) return true;
  }
  return false;
}

bool SimTransport::crash_overlaps_flight(NodeId node, SimTime sent,
                                         SimTime now) const {
  auto it = crash_windows_.find(node);
  if (it == crash_windows_.end()) return false;
  for (const auto& [from, until] : it->second) {
    // Window [from, until) vs flight [sent, now]: disjoint only when the
    // node revived before (or exactly when) the message left, or crashed
    // strictly after it landed.
    if (from <= now && until > sent) return true;
  }
  return false;
}

void SimTransport::add_drop_window(SimTime from, SimTime until) {
  if (until <= from) return;
  drop_windows_.emplace_back(from, until);
}

void SimTransport::clear_drop_windows() { drop_windows_.clear(); }

void SimTransport::partition(NodeId a, NodeId b) {
  if (a != b) partitions_.insert(pair_key(a, b));
}

void SimTransport::heal(NodeId a, NodeId b) {
  partitions_.erase(pair_key(a, b));
}

void SimTransport::heal_all_partitions() { partitions_.clear(); }

void SimTransport::ensure_node(NodeId node) {
  if (node >= handlers_.size()) handlers_.resize(node + 1, nullptr);
  if (node >= skew_.size()) skew_.resize(node + 1, 0);
  if (options_.max_clock_skew > 0) {
    // Joiners get a per-node skew derived from the seed instead of the
    // shared jitter stream: sampling rng_ here would shift every later
    // latency draw and break replay comparisons against a run without
    // the join.  Track assignment by high-water mark, not vector size —
    // attach() also grows the vectors (zero-filled) and must not make a
    // later ensure_node() skip the joiner's skew.
    for (std::size_t n = skew_assigned_; n <= node; ++n) {
      Rng node_rng(mix64(options_.seed ^ (0x5E1F5CEDULL + n)));
      skew_[n] = node_rng.uniform_int(-options_.max_clock_skew,
                                      options_.max_clock_skew);
    }
  }
  skew_assigned_ = std::max<std::size_t>(skew_assigned_, node + 1);
}

}  // namespace idea::net
