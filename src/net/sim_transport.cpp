#include "net/sim_transport.hpp"

#include <cassert>

namespace idea::net {

SimTransport::SimTransport(sim::Simulator& sim, sim::LatencyModel& latency,
                           SimTransportOptions options)
    : sim_(sim), latency_(latency), options_(options), rng_(options.seed) {
  skew_.resize(options_.node_count, 0);
  if (options_.max_clock_skew > 0) {
    for (auto& s : skew_) {
      s = rng_.uniform_int(-options_.max_clock_skew,
                           options_.max_clock_skew);
    }
  }
}

void SimTransport::attach(NodeId node, MessageHandler* handler) {
  assert(handler != nullptr);
  handlers_[node] = handler;
  if (node >= skew_.size()) skew_.resize(node + 1, 0);
}

void SimTransport::detach(NodeId node) { handlers_.erase(node); }

void SimTransport::send(Message msg) {
  msg.sent_at = sim_.now();
  counters_.record(msg.type, msg.wire_bytes);
  if (options_.loss_rate > 0.0 && rng_.chance(options_.loss_rate)) {
    ++dropped_;
    return;
  }
  const SimDuration delay = latency_.sample(msg.from, msg.to, rng_);
  sim_.schedule_after(delay, [this, m = std::move(msg)]() {
    auto it = handlers_.find(m.to);
    if (it != handlers_.end()) it->second->on_message(m);
  });
}

SimTime SimTransport::now() const { return sim_.now(); }

SimTime SimTransport::local_time(NodeId node) const {
  const SimDuration skew = node < skew_.size() ? skew_[node] : 0;
  return sim_.now() + skew;
}

std::uint64_t SimTransport::call_after(SimDuration delay,
                                       std::function<void()> fn) {
  return sim_.schedule_after(delay, std::move(fn));
}

std::uint64_t SimTransport::call_every(SimDuration period,
                                       std::function<void()> fn) {
  return sim_.schedule_periodic(period, std::move(fn));
}

void SimTransport::cancel_call(std::uint64_t handle) { sim_.cancel(handle); }

SimDuration SimTransport::skew_of(NodeId node) const {
  return node < skew_.size() ? skew_[node] : 0;
}

}  // namespace idea::net
