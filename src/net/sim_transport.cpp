#include "net/sim_transport.hpp"

#include <cassert>
#include <utility>

namespace idea::net {

SimTransport::SimTransport(sim::Simulator& sim, sim::LatencyModel& latency,
                           SimTransportOptions options)
    : sim_(sim), latency_(latency), options_(options), rng_(options.seed) {
  handlers_.resize(options_.node_count, nullptr);
  skew_.resize(options_.node_count, 0);
  if (options_.max_clock_skew > 0) {
    for (auto& s : skew_) {
      s = rng_.uniform_int(-options_.max_clock_skew,
                           options_.max_clock_skew);
    }
  }
}

void SimTransport::attach(NodeId node, MessageHandler* handler) {
  assert(handler != nullptr);
  if (node >= handlers_.size()) handlers_.resize(node + 1, nullptr);
  handlers_[node] = handler;
  if (node >= skew_.size()) skew_.resize(node + 1, 0);
}

void SimTransport::detach(NodeId node) {
  if (node < handlers_.size()) handlers_[node] = nullptr;
}

void SimTransport::send(Message msg) {
  msg.sent_at = sim_.now();
  counters_.record(msg.type, msg.wire_bytes);
  if (options_.loss_rate > 0.0 && rng_.chance(options_.loss_rate)) {
    ++dropped_;
    return;
  }
  const SimDuration delay = latency_.sample(msg.from, msg.to, rng_);
  // Park the message in the slab; the delivery closure captures only the
  // slot index, so it fits std::function's inline storage.
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    in_flight_[slot] = std::move(msg);
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(std::move(msg));
  }
  sim_.schedule_after(delay, [this, slot] { deliver_slot(slot); });
}

void SimTransport::deliver_slot(std::uint32_t slot) {
  Message msg = std::move(in_flight_[slot]);
  in_flight_[slot] = Message{};
  free_slots_.push_back(slot);
  if (msg.to < handlers_.size() && handlers_[msg.to] != nullptr) {
    handlers_[msg.to]->on_message(msg);
  }
}

SimTime SimTransport::now() const { return sim_.now(); }

SimTime SimTransport::local_time(NodeId node) const {
  const SimDuration skew = node < skew_.size() ? skew_[node] : 0;
  return sim_.now() + skew;
}

std::uint64_t SimTransport::call_after(SimDuration delay,
                                       std::function<void()> fn) {
  return sim_.schedule_after(delay, std::move(fn));
}

std::uint64_t SimTransport::call_every(SimDuration period,
                                       std::function<void()> fn) {
  return sim_.schedule_periodic(period, std::move(fn));
}

void SimTransport::cancel_call(std::uint64_t handle) { sim_.cancel(handle); }

SimDuration SimTransport::skew_of(NodeId node) const {
  return node < skew_.size() ? skew_[node] : 0;
}

}  // namespace idea::net
