#pragma once
/// \file batching_transport.hpp
/// \brief Decorator that coalesces same-destination sends into batch
///        envelopes.
///
/// The sharded routing path fans many small protocol messages out to the
/// same endpoints within one simulator tick (replication pushes, detection
/// probes, RanSub waves of thousands of co-located files).  Sending each
/// one individually costs a latency sample, a scheduled event and a wire
/// envelope per message.  BatchingTransport sits between the endpoints and
/// the real transport: sends are queued per (from, to) pair and flushed as
/// one "net.batch" envelope after a configurable window (default: the same
/// simulator tick), then unwrapped transparently on the receive side.
///
/// Accounting: this decorator's own counters record the *logical* messages
/// the protocols sent; the inner transport's counters see only the batch
/// envelopes that actually hit the wire.  The ratio is the batching win.

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "net/msg_type.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace idea::net {

struct BatchingOptions {
  /// How long a destination queue may wait for more traffic before it is
  /// flushed.  0 flushes at the end of the current simulator tick, which
  /// coalesces every send issued at the same instant.
  SimDuration window = 0;
  /// Queues at this size flush immediately instead of waiting the window.
  std::size_t max_batch = 64;
  /// Per-envelope framing overhead added to the sum of member sizes.
  std::uint32_t header_bytes = 24;
};

struct BatchingStats {
  std::uint64_t logical_messages = 0;  ///< Sends accepted from protocols.
  std::uint64_t envelopes = 0;         ///< Batch envelopes actually sent.
  std::uint64_t flushes_by_size = 0;   ///< Flushes forced by max_batch.
  std::uint64_t largest_batch = 0;
  /// Time messages sat in destination queues before their flush (the
  /// latency cost a nonzero window trades for bigger batches).
  SimDuration queue_wait_total = 0;

  /// Average logical messages per wire envelope (>= 1).
  [[nodiscard]] double batch_factor() const {
    return envelopes == 0
               ? 1.0
               : static_cast<double>(logical_messages) /
                     static_cast<double>(envelopes);
  }

  /// Mean per-message queueing delay added by batching, in microseconds.
  [[nodiscard]] double avg_queue_wait_usec() const {
    return logical_messages == 0
               ? 0.0
               : static_cast<double>(queue_wait_total) /
                     static_cast<double>(logical_messages);
  }
};

class BatchingTransport final : public Transport, private MessageHandler {
 public:
  /// `inner` is borrowed and must outlive the decorator.
  explicit BatchingTransport(Transport& inner, BatchingOptions options = {});
  ~BatchingTransport() override;

  BatchingTransport(const BatchingTransport&) = delete;
  BatchingTransport& operator=(const BatchingTransport&) = delete;

  void attach(NodeId node, MessageHandler* handler) override;
  void detach(NodeId node) override;
  void send(Message msg) override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimTime local_time(NodeId node) const override;
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override;
  std::uint64_t call_every(SimDuration period,
                           std::function<void()> fn) override;
  void cancel_call(std::uint64_t handle) override;

  /// Force every pending queue onto the wire (e.g. before tearing down).
  void flush_all();

  [[nodiscard]] const BatchingStats& stats() const { return stats_; }

  /// Install a metrics sink: flush() records the "net.batch.occupancy"
  /// histogram (messages per envelope), "net.batch.queue_wait_us" (per
  /// flush, total sim-time messages waited) and the "net.batch.envelopes"
  /// counter.
  void set_metrics(obs::Meter meter);

  static const MsgType kBatchType;  ///< Interned "net.batch".

 private:
  /// Key of a pending queue: one ordered (from, to) pair.  Batching across
  /// senders would break the latency model, which samples per pair.
  using PairKey = std::uint64_t;
  static PairKey pair_key(NodeId from, NodeId to) {
    return (static_cast<std::uint64_t>(from) << 32) | to;
  }

  struct Queue {
    std::vector<Message> pending;
    bool flush_scheduled = false;
    std::uint64_t flush_handle = 0;  ///< Armed window timer, if any.
  };

  void flush(PairKey key);
  void on_message(const Message& msg) override;
  void deliver(const Message& msg);

  Transport& inner_;
  BatchingOptions options_;
  std::vector<MessageHandler*> handlers_;  ///< Indexed by node id.
  std::unordered_map<PairKey, Queue> queues_;
  BatchingStats stats_;
  obs::Meter meter_;
  obs::MetricId occupancy_metric_;
  obs::MetricId queue_wait_metric_;
  obs::MetricId envelopes_metric_;
};

}  // namespace idea::net
