#include "net/batching_transport.hpp"

#include <algorithm>
#include <utility>

namespace idea::net {

const MsgType BatchingTransport::kBatchType = MsgType::intern("net.batch");

BatchingTransport::BatchingTransport(Transport& inner, BatchingOptions options)
    : inner_(inner), options_(options) {}

BatchingTransport::~BatchingTransport() {
  // Ship whatever is still queued, then disarm every pending window timer
  // — a flush callback firing after this object dies would be a
  // use-after-free — and unhook the shim from nodes still proxied.
  flush_all();
  for (auto& [key, queue] : queues_) {
    if (queue.flush_scheduled) inner_.cancel_call(queue.flush_handle);
  }
  for (NodeId node = 0; node < handlers_.size(); ++node) {
    if (handlers_[node] != nullptr) inner_.detach(node);
  }
}

void BatchingTransport::attach(NodeId node, MessageHandler* handler) {
  if (node >= handlers_.size()) handlers_.resize(node + 1, nullptr);
  handlers_[node] = handler;
  inner_.attach(node, this);
}

void BatchingTransport::detach(NodeId node) {
  if (node < handlers_.size()) handlers_[node] = nullptr;
  inner_.detach(node);
  // Queued traffic towards a detached endpoint drops, matching the inner
  // transport's in-flight semantics.  Queues *from* it flush normally.
  for (auto& [key, queue] : queues_) {
    if ((key & 0xFFFFFFFFULL) == node) queue.pending.clear();
  }
}

void BatchingTransport::send(Message msg) {
  counters_.record(msg.type, msg.wire_bytes);
  ++stats_.logical_messages;
  msg.sent_at = inner_.now();

  const PairKey key = pair_key(msg.from, msg.to);
  Queue& queue = queues_[key];
  queue.pending.push_back(std::move(msg));
  if (queue.pending.size() >= options_.max_batch) {
    ++stats_.flushes_by_size;
    flush(key);
    return;
  }
  if (!queue.flush_scheduled) {
    queue.flush_scheduled = true;
    // The timer clears its own armed state before flushing, so flush()
    // never needs to cancel the event it is running from (the simulator
    // would retain such a cancellation forever).
    queue.flush_handle = inner_.call_after(options_.window, [this, key] {
      auto timer_it = queues_.find(key);
      if (timer_it != queues_.end()) {
        timer_it->second.flush_scheduled = false;
        timer_it->second.flush_handle = 0;
      }
      flush(key);
    });
  }
}

void BatchingTransport::flush(PairKey key) {
  auto it = queues_.find(key);
  if (it == queues_.end()) return;
  Queue& queue = it->second;
  if (queue.flush_scheduled) {
    // A size- or flush_all-triggered flush disarms the pending window
    // timer; with a nonzero window a stale timer would otherwise cut the
    // *next* batch short.
    inner_.cancel_call(queue.flush_handle);
    queue.flush_scheduled = false;
    queue.flush_handle = 0;
  }
  if (queue.pending.empty()) return;

  std::vector<Message> batch;
  batch.swap(queue.pending);

  const SimTime now = inner_.now();
  SimDuration wait = 0;
  for (const Message& m : batch) wait += now - m.sent_at;
  stats_.queue_wait_total += wait;
  if (meter_.enabled()) {
    meter_.observe(occupancy_metric_, batch.size());
    meter_.observe(queue_wait_metric_, static_cast<std::uint64_t>(wait));
    meter_.add(envelopes_metric_);
  }

  if (batch.size() == 1) {
    // No coalescing happened; skip the envelope overhead.
    ++stats_.envelopes;
    stats_.largest_batch = std::max<std::uint64_t>(stats_.largest_batch, 1);
    inner_.send(std::move(batch.front()));
    return;
  }

  Message envelope;
  envelope.from = batch.front().from;
  envelope.to = batch.front().to;
  envelope.file = batch.front().file;  // informational; unwrap ignores it
  envelope.type = kBatchType;
  envelope.wire_bytes = options_.header_bytes;
  for (const Message& m : batch) envelope.wire_bytes += m.wire_bytes;
  ++stats_.envelopes;
  stats_.largest_batch =
      std::max<std::uint64_t>(stats_.largest_batch, batch.size());
  envelope.payload = std::move(batch);
  inner_.send(std::move(envelope));
}

void BatchingTransport::flush_all() {
  // Flushing mutates queue state but never the map topology mid-loop: keys
  // are collected first so flush() may insert new queues safely.
  std::vector<PairKey> keys;
  keys.reserve(queues_.size());
  for (const auto& [key, queue] : queues_) {
    if (!queue.pending.empty()) keys.push_back(key);
  }
  for (PairKey key : keys) flush(key);
}

void BatchingTransport::on_message(const Message& msg) {
  if (msg.type == kBatchType) {
    const auto& members = msg.payload.as<std::vector<Message>>();
    for (const Message& m : members) deliver(m);
    return;
  }
  deliver(msg);
}

void BatchingTransport::deliver(const Message& msg) {
  if (msg.to < handlers_.size() && handlers_[msg.to] != nullptr) {
    handlers_[msg.to]->on_message(msg);
  }
}

SimTime BatchingTransport::now() const { return inner_.now(); }

SimTime BatchingTransport::local_time(NodeId node) const {
  return inner_.local_time(node);
}

std::uint64_t BatchingTransport::call_after(SimDuration delay,
                                            std::function<void()> fn) {
  return inner_.call_after(delay, std::move(fn));
}

std::uint64_t BatchingTransport::call_every(SimDuration period,
                                            std::function<void()> fn) {
  return inner_.call_every(period, std::move(fn));
}

void BatchingTransport::cancel_call(std::uint64_t handle) {
  inner_.cancel_call(handle);
}

void BatchingTransport::set_metrics(obs::Meter meter) {
  meter_ = meter;
  if (meter_.enabled()) {
    occupancy_metric_ = obs::MetricId::intern("net.batch.occupancy");
    queue_wait_metric_ = obs::MetricId::intern("net.batch.queue_wait_us");
    envelopes_metric_ = obs::MetricId::intern("net.batch.envelopes");
  }
}

}  // namespace idea::net
