#include "net/thread_transport.hpp"

#include <cassert>

namespace idea::net {

ThreadTransport::ThreadTransport(sim::LatencyModel& latency,
                                 ThreadTransportOptions options)
    : latency_(latency), options_(options), start_(Clock::now()),
      rng_(options.seed),
      worker_([this](std::stop_token st) { dispatcher(st); }) {}

ThreadTransport::~ThreadTransport() {
  worker_.request_stop();
  cv_.notify_all();
}

ThreadTransport::Clock::duration ThreadTransport::to_real(
    SimDuration virtual_usec) const {
  const double real_usec =
      static_cast<double>(virtual_usec) * options_.time_scale;
  return std::chrono::microseconds(
      static_cast<std::int64_t>(real_usec));
}

void ThreadTransport::attach(NodeId node, MessageHandler* handler) {
  std::scoped_lock lock(mu_);
  handlers_[node] = handler;
}

void ThreadTransport::detach(NodeId node) {
  std::scoped_lock lock(mu_);
  handlers_.erase(node);
}

void ThreadTransport::send(Message msg) {
  SimDuration delay = 0;
  {
    std::scoped_lock lock(mu_);
    msg.sent_at = now();
    counters_.record(msg.type, msg.wire_bytes);
    if (options_.loss_rate > 0.0 && rng_.chance(options_.loss_rate)) return;
    delay = latency_.sample(msg.from, msg.to, rng_);
  }
  enqueue(delay,
          [this, m = std::move(msg)]() {
            MessageHandler* h = nullptr;
            {
              std::scoped_lock lock(mu_);
              auto it = handlers_.find(m.to);
              if (it != handlers_.end()) h = it->second;
            }
            // Deliver outside mu_ (CP.22: no unknown code under a lock).
            if (h != nullptr) h->on_message(m);
          },
          /*period=*/0);
}

SimTime ThreadTransport::now() const {
  const auto real = Clock::now() - start_;
  const double real_usec =
      std::chrono::duration<double, std::micro>(real).count();
  return static_cast<SimTime>(real_usec / options_.time_scale);
}

SimTime ThreadTransport::local_time(NodeId) const { return now(); }

std::uint64_t ThreadTransport::call_after(SimDuration delay,
                                          std::function<void()> fn) {
  return enqueue(delay, std::move(fn), /*period=*/0);
}

std::uint64_t ThreadTransport::call_every(SimDuration period,
                                          std::function<void()> fn) {
  assert(period > 0);
  return enqueue(period, std::move(fn), period);
}

void ThreadTransport::cancel_call(std::uint64_t handle) {
  std::scoped_lock lock(mu_);
  cancelled_.insert(handle);
}

std::uint64_t ThreadTransport::enqueue(SimDuration delay,
                                       std::function<void()> fn,
                                       SimDuration period) {
  std::scoped_lock lock(mu_);
  const std::uint64_t handle = next_handle_++;
  queue_.push(Pending{Clock::now() + to_real(delay), next_seq_++,
                      std::move(fn), period, handle});
  ++in_flight_;
  cv_.notify_all();
  return handle;
}

void ThreadTransport::dispatcher(std::stop_token st) {
  std::unique_lock lock(mu_);
  while (!st.stop_requested()) {
    if (queue_.empty()) {
      cv_.wait(lock, st, [this] { return !queue_.empty(); });
      continue;
    }
    const auto due = queue_.top().due;
    if (Clock::now() < due) {
      cv_.wait_until(lock, st, due, [this, due] {
        return !queue_.empty() && queue_.top().due < due;
      });
      continue;
    }
    Pending p = queue_.top();
    queue_.pop();
    if (cancelled_.erase(p.handle) > 0) {
      --in_flight_;
      cv_.notify_all();
      continue;
    }
    if (p.period > 0) {
      queue_.push(Pending{p.due + to_real(p.period), next_seq_++, p.fn,
                          p.period, p.handle});
      ++in_flight_;
    }
    lock.unlock();
    p.fn();  // run protocol code without holding the lock
    lock.lock();
    // Count the entry as in flight until its callback finished: wait_idle
    // returning while a handler still runs (and is about to enqueue
    // follow-up sends) would hand the caller a half-settled timeline.
    --in_flight_;
    cv_.notify_all();
  }
}

bool ThreadTransport::wait_idle(SimDuration timeout) {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, to_real(timeout),
                      [this] { return in_flight_ == 0; });
}

}  // namespace idea::net
