#include "net/message.hpp"

#include <algorithm>

namespace idea::net {

void MessageCounters::grow(std::uint16_t id) {
  // Size to the full registry so one grow covers every type interned so
  // far; +1 guards the (impossible in practice) case of an id from a
  // foreign registry snapshot.
  const std::uint32_t want =
      std::max<std::uint32_t>(MsgType::registered_count(),
                              static_cast<std::uint32_t>(id) + 1);
  per_type_.resize(want, 0);
}

std::map<std::string, std::uint64_t> MessageCounters::by_type() const {
  std::map<std::string, std::uint64_t> out;
  for (std::size_t id = 0; id < per_type_.size(); ++id) {
    if (per_type_[id] == 0) continue;
    out.emplace(
        std::string(MsgType::from_id(static_cast<std::uint16_t>(id)).name()),
        per_type_[id]);
  }
  return out;
}

std::uint64_t MessageCounters::messages_with_prefix(
    std::string_view prefix) const {
  std::uint64_t n = 0;
  MsgTypeRegistry::for_each_with_prefix(prefix, [&](MsgType t) {
    n += messages_of(t);
  });
  return n;
}

void MessageCounters::reset() {
  messages_ = 0;
  bytes_ = 0;
  per_type_.assign(per_type_.size(), 0);
}

}  // namespace idea::net
