#include "net/message.hpp"

namespace idea::net {

void MessageCounters::record(const std::string& type, std::uint32_t bytes) {
  ++messages_;
  bytes_ += bytes;
  ++per_type_[type];
}

std::uint64_t MessageCounters::messages_of(const std::string& type) const {
  auto it = per_type_.find(type);
  return it == per_type_.end() ? 0 : it->second;
}

std::uint64_t MessageCounters::messages_with_prefix(
    const std::string& prefix) const {
  std::uint64_t n = 0;
  for (auto it = per_type_.lower_bound(prefix); it != per_type_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    n += it->second;
  }
  return n;
}

void MessageCounters::reset() {
  messages_ = 0;
  bytes_ = 0;
  per_type_.clear();
}

}  // namespace idea::net
