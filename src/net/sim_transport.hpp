#pragma once
/// \file sim_transport.hpp
/// \brief Transport implementation on top of the discrete-event simulator.
///
/// Every send samples a one-way delay from the latency model, optionally
/// drops the message, and schedules delivery on the simulator.  Per-node
/// clock skew is sampled once at construction (the paper assumes NTP keeps
/// node clocks within seconds of each other; we default to ±250 ms).
///
/// Hot-path layout: handlers live in a flat vector indexed by node id, and
/// in-flight messages are parked in a recycled slab so the scheduled
/// delivery closure captures only {transport, slot index} — small enough
/// for std::function's inline buffer, so a send allocates nothing beyond
/// the slab's amortized growth.
///
/// Fault injection: beyond the uniform `loss_rate`, tests can script
/// deterministic failures — drop windows (every send inside [from, until)
/// is lost) and pairwise partitions (both directions between two endpoints
/// are cut until healed).  Scripted faults drop a message only after the
/// loss and latency draws, so enabling them never perturbs the RNG stream:
/// every message a faulted run still delivers sees the identical loss
/// decision and delay of the clean run with the same seed — faulted and
/// clean runs stay replay-comparable.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_owner.hpp"

namespace idea::net {

struct SimTransportOptions {
  double loss_rate = 0.0;           ///< Probability a message is dropped.
  SimDuration max_clock_skew = 0;   ///< Per-node skew in [-max, +max].
  std::uint32_t node_count = 0;     ///< Nodes to pre-sample skew for.
  std::uint64_t seed = 7;           ///< Jitter/loss/skew stream seed.
};

class SimTransport final : public Transport {
 public:
  /// `sim` and `latency` are borrowed and must outlive the transport.
  SimTransport(sim::Simulator& sim, sim::LatencyModel& latency,
               SimTransportOptions options = {});

  void attach(NodeId node, MessageHandler* handler) override;
  void detach(NodeId node) override;
  void send(Message msg) override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimTime local_time(NodeId node) const override;
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override;
  std::uint64_t call_every(SimDuration period,
                           std::function<void()> fn) override;
  void cancel_call(std::uint64_t handle) override;

  /// Number of messages dropped by the loss model.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// The skew assigned to a node (diagnostic).
  [[nodiscard]] SimDuration skew_of(NodeId node) const;

  // ------------------------------------------------------------------
  // Fault injection (scripted, deterministic)
  // ------------------------------------------------------------------

  /// Drop every message hitting this wire in [from, until).  Windows may
  /// overlap; a message already in flight when the window opens still
  /// delivers.  Note the wire-time semantics: under a BatchingTransport
  /// with a nonzero flush window, what matters is the envelope's flush
  /// instant, not the logical send — exactly as a real outage would
  /// swallow whatever the batching layer put on the wire while it lasted.
  void add_drop_window(SimTime from, SimTime until);

  /// Forget all scripted drop windows (past windows keep their effect).
  void clear_drop_windows();

  /// Cut both directions between `a` and `b` until heal()/heal_all().
  void partition(NodeId a, NodeId b);

  /// Restore the pair; unknown pairs are a no-op.
  void heal(NodeId a, NodeId b);

  void heal_all_partitions();

  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const {
    return partitions_.count(pair_key(a, b)) > 0;
  }

  /// Crash `node` at `at` (crash-stop): *all* traffic to or from it is
  /// lost until a matching revive_node() — sends while it is down, and,
  /// unlike drop windows, messages already in flight when the crash hits
  /// (a dead endpoint's connections break; nothing it had on the wire
  /// lands, nothing addressed to it is accepted).  A message whose flight
  /// overlaps any part of a crash window of either endpoint drops.  Like
  /// the other scripted faults this never perturbs the RNG stream: the
  /// loss/latency draws happen first, the crash check only discards.
  /// Counted in fault_dropped().
  void crash_node(NodeId node, SimTime at);

  /// Close `node`'s open crash window at `at`: traffic sent at or after
  /// `at` flows again (in-flight traffic that overlapped the window is
  /// still lost).  No-op if the node is not down.
  void revive_node(NodeId node, SimTime at);

  /// Whether `node` is inside a crash window at `at`.
  [[nodiscard]] bool node_crashed(NodeId node, SimTime at) const;

  /// Messages dropped by scripted faults (not counted in dropped()).
  [[nodiscard]] std::uint64_t fault_dropped() const { return fault_dropped_; }

  /// Grow per-node state (handler slot, skew) to cover `node`.  Joining
  /// endpoints get a deterministic per-node skew derived from the seed, so
  /// a grown transport behaves identically across replays without touching
  /// the construction-time skew stream of existing nodes.
  void ensure_node(NodeId node);

  /// Hand the transport to another thread (debug-mode single-owner
  /// checks on the in-flight message slab; see util/thread_owner.hpp).
  void rebind_owner_thread() { owner_.rebind(); }

 private:
  static std::uint64_t pair_key(NodeId a, NodeId b) {
    const NodeId lo = a < b ? a : b;
    const NodeId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }

  [[nodiscard]] bool fault_drops(const Message& msg) const;

  /// Whether any crash window of `node` overlaps the flight [sent, now].
  [[nodiscard]] bool crash_overlaps_flight(NodeId node, SimTime sent,
                                           SimTime now) const;

  void deliver_slot(std::uint32_t slot);

  sim::Simulator& sim_;
  sim::LatencyModel& latency_;
  SimTransportOptions options_;
  Rng rng_;
  std::vector<MessageHandler*> handlers_;  ///< Indexed by node id.
  std::vector<SimDuration> skew_;
  /// Nodes [0, skew_assigned_) have their skew decided (construction
  /// stream or joiner derivation); attach() may grow skew_ beyond this
  /// with zero-filled slots that a later ensure_node() still owns.
  std::size_t skew_assigned_ = 0;
  std::vector<Message> in_flight_;         ///< Slab of scheduled messages.
  std::vector<std::uint32_t> free_slots_;
  util::ThreadOwner owner_;  ///< Debug: slab confinement stamp.
  std::uint64_t dropped_ = 0;

  // Scripted fault state.  Few windows/pairs in practice, so a linear walk
  // over windows and a small hash set of pair keys is plenty.
  std::vector<std::pair<SimTime, SimTime>> drop_windows_;  ///< [from, until)
  std::unordered_set<std::uint64_t> partitions_;
  /// Crash windows per node, [at, until) with until == kNever while the
  /// node is still down.  Empty map = zero cost on the send/deliver path.
  std::unordered_map<NodeId, std::vector<std::pair<SimTime, SimTime>>>
      crash_windows_;
  std::uint64_t fault_dropped_ = 0;
};

}  // namespace idea::net
