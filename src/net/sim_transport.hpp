#pragma once
/// \file sim_transport.hpp
/// \brief Transport implementation on top of the discrete-event simulator.
///
/// Every send samples a one-way delay from the latency model, optionally
/// drops the message, and schedules delivery on the simulator.  Per-node
/// clock skew is sampled once at construction (the paper assumes NTP keeps
/// node clocks within seconds of each other; we default to ±250 ms).
///
/// Hot-path layout: handlers live in a flat vector indexed by node id, and
/// in-flight messages are parked in a recycled slab so the scheduled
/// delivery closure captures only {transport, slot index} — small enough
/// for std::function's inline buffer, so a send allocates nothing beyond
/// the slab's amortized growth.

#include <cstdint>
#include <vector>

#include "net/transport.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace idea::net {

struct SimTransportOptions {
  double loss_rate = 0.0;           ///< Probability a message is dropped.
  SimDuration max_clock_skew = 0;   ///< Per-node skew in [-max, +max].
  std::uint32_t node_count = 0;     ///< Nodes to pre-sample skew for.
  std::uint64_t seed = 7;           ///< Jitter/loss/skew stream seed.
};

class SimTransport final : public Transport {
 public:
  /// `sim` and `latency` are borrowed and must outlive the transport.
  SimTransport(sim::Simulator& sim, sim::LatencyModel& latency,
               SimTransportOptions options = {});

  void attach(NodeId node, MessageHandler* handler) override;
  void detach(NodeId node) override;
  void send(Message msg) override;
  [[nodiscard]] SimTime now() const override;
  [[nodiscard]] SimTime local_time(NodeId node) const override;
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override;
  std::uint64_t call_every(SimDuration period,
                           std::function<void()> fn) override;
  void cancel_call(std::uint64_t handle) override;

  /// Number of messages dropped by the loss model.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// The skew assigned to a node (diagnostic).
  [[nodiscard]] SimDuration skew_of(NodeId node) const;

 private:
  void deliver_slot(std::uint32_t slot);

  sim::Simulator& sim_;
  sim::LatencyModel& latency_;
  SimTransportOptions options_;
  Rng rng_;
  std::vector<MessageHandler*> handlers_;  ///< Indexed by node id.
  std::vector<SimDuration> skew_;
  std::vector<Message> in_flight_;         ///< Slab of scheduled messages.
  std::vector<std::uint32_t> free_slots_;
  std::uint64_t dropped_ = 0;
};

}  // namespace idea::net
