#pragma once
/// \file dispatcher.hpp
/// \brief Per-node message demultiplexer.
///
/// A node runs several protocol agents (RanSub, gossip, detection,
/// resolution).  The transport delivers to one handler per node; the
/// Dispatcher routes by message-type prefix ("ransub.", "gossip.", ...).
///
/// Routing is resolved per interned type id, not per message: the first
/// message of a given type walks the prefix table (longest match wins) and
/// memoizes the winning handler in a flat array indexed by type id, so the
/// steady-state dispatch is one array load.  route()/unroute() bump a
/// version that lazily invalidates the memo.

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace idea::net {

class Dispatcher final : public MessageHandler {
 public:
  /// Route messages whose type starts with `prefix` to `handler` (borrowed).
  /// Longest matching prefix wins.
  void route(std::string prefix, MessageHandler* handler) {
    routes_[std::move(prefix)] = handler;
    ++version_;
  }

  void unroute(const std::string& prefix) {
    routes_.erase(prefix);
    ++version_;
  }

  void on_message(const Message& msg) override {
    const std::uint16_t id = msg.type.id();
    if (id >= cache_.size()) {
      cache_.resize(std::max<std::uint32_t>(MsgType::registered_count(),
                                            std::uint32_t{id} + 1));
    }
    CacheEntry& entry = cache_[id];
    if (entry.version != version_) {
      entry.handler = resolve(msg.type);
      entry.version = version_;
    }
    if (entry.handler != nullptr) entry.handler->on_message(msg);
  }

 private:
  struct CacheEntry {
    MessageHandler* handler = nullptr;
    std::uint64_t version = 0;  ///< 0 never matches a live version_.
  };

  [[nodiscard]] MessageHandler* resolve(MsgType type) const {
    const std::string_view name = type.name();
    MessageHandler* best = nullptr;
    std::size_t best_len = 0;
    for (const auto& [prefix, handler] : routes_) {
      if (prefix.size() >= best_len &&
          name.compare(0, prefix.size(), prefix) == 0) {
        best = handler;
        best_len = prefix.size();
      }
    }
    return best;
  }

  std::map<std::string, MessageHandler*> routes_;
  std::uint64_t version_ = 1;
  std::vector<CacheEntry> cache_;  ///< Indexed by MsgType id.
};

}  // namespace idea::net
