#pragma once
/// \file dispatcher.hpp
/// \brief Per-node message demultiplexer.
///
/// A node runs several protocol agents (RanSub, gossip, detection,
/// resolution).  The transport delivers to one handler per node; the
/// Dispatcher routes by message-type prefix ("ransub.", "gossip.", ...).

#include <map>
#include <string>

#include "net/message.hpp"

namespace idea::net {

class Dispatcher final : public MessageHandler {
 public:
  /// Route messages whose type starts with `prefix` to `handler` (borrowed).
  /// Longest matching prefix wins.
  void route(std::string prefix, MessageHandler* handler) {
    routes_[std::move(prefix)] = handler;
  }

  void unroute(const std::string& prefix) { routes_.erase(prefix); }

  void on_message(const Message& msg) override {
    MessageHandler* best = nullptr;
    std::size_t best_len = 0;
    for (const auto& [prefix, handler] : routes_) {
      if (prefix.size() >= best_len &&
          msg.type.compare(0, prefix.size(), prefix) == 0) {
        best = handler;
        best_len = prefix.size();
      }
    }
    if (best != nullptr) best->on_message(msg);
  }

 private:
  std::map<std::string, MessageHandler*> routes_;
};

}  // namespace idea::net
