#pragma once
/// \file msg_type.hpp
/// \brief Interned protocol message types.
///
/// Every message the middleware sends used to carry its protocol tag as a
/// heap-allocated std::string ("detect.probe", "resolve.attn", ...) that was
/// copied at each transport hop and hashed/compared on every dispatch and
/// counter update.  A MsgType is the interned form: a small integer id into
/// a process-wide registry that maps id <-> name.  Ids compare in one
/// instruction, index flat counter arrays directly, and cost nothing to
/// copy; the registry keeps the names for logging, counter snapshots and
/// prefix queries ("resolve.*").
///
/// Interning is done once, at static-initialization time, for the protocol
/// constants (e.g. `Detector::kProbeType`); the hot path never touches the
/// registry's string index.  The registry is append-only and guarded by a
/// shared mutex so ThreadTransport's cross-thread sends stay safe.

#include <cstdint>
#include <string_view>

namespace idea::net {

class MsgType {
 public:
  /// The invalid/unset type; its name renders as "?".
  constexpr MsgType() = default;

  /// Intern `name`, returning the existing id when already registered.
  static MsgType intern(std::string_view name);

  /// Look up an already-interned name; returns the invalid MsgType (id 0,
  /// !valid()) when `name` was never interned.
  static MsgType lookup(std::string_view name);

  /// Number of ids handed out so far, including the reserved id 0 — the
  /// size flat per-type arrays must have to be indexable by any live id.
  static std::uint32_t registered_count();

  /// The interned name ("?" for the invalid type).  The returned view
  /// points into the registry and stays valid for the process lifetime.
  [[nodiscard]] std::string_view name() const;

  [[nodiscard]] constexpr std::uint16_t id() const { return id_; }
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }

  /// True iff the interned name starts with `prefix`.
  [[nodiscard]] bool has_prefix(std::string_view prefix) const {
    const std::string_view n = name();
    return n.size() >= prefix.size() &&
           n.compare(0, prefix.size(), prefix) == 0;
  }

  friend constexpr bool operator==(MsgType, MsgType) = default;

  /// Rebuild a MsgType from a raw id (counter snapshots, caches).  The id
  /// must have come from this process's registry.
  static constexpr MsgType from_id(std::uint16_t id) { return MsgType(id); }

 private:
  explicit constexpr MsgType(std::uint16_t id) : id_(id) {}

  friend class MsgTypeRegistry;
  std::uint16_t id_ = 0;
};

/// Registry queries that need the name->id index (diagnostics, prefix
/// accounting).  Separated from MsgType so the hot path's includes stay
/// trivial.
class MsgTypeRegistry {
 public:
  /// Invoke `fn(MsgType)` for every interned type whose name starts with
  /// `prefix`, in lexicographic name order.  Uses the ordered name index's
  /// lower_bound, so the cost is O(log types + matches), not O(types).
  /// Matches beyond the stack batch size resume where the last batch
  /// ended, so arbitrarily large prefix families are covered.
  template <typename Fn>
  static void for_each_with_prefix(std::string_view prefix, Fn&& fn) {
    std::uint16_t ids[kPrefixBatch];
    std::size_t skip = 0;
    for (;;) {
      const std::size_t n = prefix_range(prefix, ids, kPrefixBatch, skip);
      for (std::size_t i = 0; i < n; ++i) fn(MsgType(ids[i]));
      if (n < kPrefixBatch) return;
      skip += n;
    }
  }

 private:
  static constexpr std::size_t kPrefixBatch = 256;

  /// Fill `out` with up to `cap` ids whose names start with `prefix`
  /// (name-ordered), skipping the first `skip` matches; returns how many
  /// were written.
  static std::size_t prefix_range(std::string_view prefix, std::uint16_t* out,
                                  std::size_t cap, std::size_t skip);
};

}  // namespace idea::net
