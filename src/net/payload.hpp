#pragma once
/// \file payload.hpp
/// \brief Zero-copy type-erased message body.
///
/// Messages used to carry their body in a std::any, which deep-copies the
/// contained value every time a Message is copied — once when the transport
/// captures it for delayed delivery, again per batching/group-translation
/// hop.  Payload erases the type behind a `std::shared_ptr<const T>`: the
/// body is allocated once at the send site and every subsequent Message
/// copy is a refcount bump.  Receivers get `const&` access only, so the
/// shared body is immutable by construction — exactly the semantics a
/// message that may still be in flight to other destinations needs.

#include <cassert>
#include <memory>
#include <type_traits>
#include <typeinfo>
#include <utility>

namespace idea::net {

class Payload {
 public:
  Payload() = default;

  /// Implicitly wrap any value (`msg.payload = ProbePayload{...}`): the
  /// value is moved into a shared immutable allocation.
  template <typename T, typename D = std::decay_t<T>,
            typename = std::enable_if_t<!std::is_same_v<D, Payload>>>
  Payload(T&& value)  // NOLINT(google-explicit-constructor)
      : ptr_(std::make_shared<const D>(std::forward<T>(value))),
        type_(&typeid(D)) {}

  /// Adopt an already-shared body without another allocation.
  template <typename T>
  static Payload wrap(std::shared_ptr<const T> ptr) {
    Payload p;
    p.type_ = ptr ? &typeid(T) : nullptr;
    p.ptr_ = std::move(ptr);
    return p;
  }

  [[nodiscard]] bool has_value() const { return ptr_ != nullptr; }

  /// The body as `const T*`; nullptr when empty or of a different type.
  template <typename T>
  [[nodiscard]] const T* get() const {
    return type_ != nullptr && *type_ == typeid(T)
               ? static_cast<const T*>(ptr_.get())
               : nullptr;
  }

  /// The body as `const T&`.  The caller asserts the type (receivers
  /// already dispatched on the message type); mismatches trip the assert
  /// in debug builds and are undefined in release, like any_cast misuse.
  template <typename T>
  [[nodiscard]] const T& as() const {
    const T* p = get<T>();
    assert(p != nullptr && "payload type mismatch");
    return *p;
  }

  void reset() {
    ptr_.reset();
    type_ = nullptr;
  }

 private:
  std::shared_ptr<const void> ptr_;
  const std::type_info* type_ = nullptr;
};

}  // namespace idea::net
