#include "detect/detector.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

namespace idea::detect {

namespace {

// Probe/reply/report/scan bodies carry the sender's EVV as a shared
// snapshot (ReplicaStore::evv_snapshot), so sending k probes or answering
// a probe storm between two local mutations refcounts one allocation.
struct ProbePayload {
  std::uint64_t round_id;
  std::shared_ptr<const vv::ExtendedVersionVector> evv;
};

struct ReplyPayload {
  std::uint64_t round_id;
  std::shared_ptr<const vv::ExtendedVersionVector> evv;
};

struct ReportPayload {
  std::shared_ptr<const vv::ExtendedVersionVector> evv;
};

struct ScanPayload {
  std::shared_ptr<const vv::ExtendedVersionVector> evv;
};

}  // namespace

const net::MsgType InconsistencyDetector::kProbeType =
    net::MsgType::intern("detect.probe");
const net::MsgType InconsistencyDetector::kReplyType =
    net::MsgType::intern("detect.reply");
const net::MsgType InconsistencyDetector::kReportType =
    net::MsgType::intern("detect.report");
const net::MsgType InconsistencyDetector::kScanInnerType =
    net::MsgType::intern("detect.scan");

NodeId choose_reference(
    const std::vector<std::pair<NodeId, vv::ExtendedVersionVector>>&
        gathered) {
  std::vector<vv::VersionVector> counts;
  counts.reserve(gathered.size());
  for (const auto& [node, evv] : gathered) counts.push_back(evv.counts());
  return choose_reference_by_counts(gathered, counts);
}

NodeId choose_reference_by_counts(
    const std::vector<std::pair<NodeId, vv::ExtendedVersionVector>>& gathered,
    const std::vector<vv::VersionVector>& counts) {
  NodeId best = kNoNode;
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    const NodeId node = gathered[i].first;
    bool dominated = false;
    for (std::size_t j = 0; j < gathered.size(); ++j) {
      const NodeId other_node = gathered[j].first;
      if (other_node == node) continue;
      const vv::Order o = vv::VersionVector::compare(counts[i], counts[j]);
      if (o == vv::Order::kBefore) {
        dominated = true;
        break;
      }
      // Among equals, the higher id is canonical; skip the lower one.
      if (o == vv::Order::kEqual && other_node > node) {
        dominated = true;
        break;
      }
    }
    if (!dominated && (best == kNoNode || node > best)) best = node;
  }
  return best;
}

InconsistencyDetector::InconsistencyDetector(
    NodeId self, FileId file, net::Transport& transport,
    replica::ReplicaStore& store, overlay::GossipAgent& gossip,
    std::function<std::vector<NodeId>()> top_layer, DetectorParams params,
    std::uint64_t seed)
    : self_(self), file_(file), transport_(transport), store_(store),
      gossip_(gossip), top_layer_(std::move(top_layer)), params_(params),
      rng_(seed) {}

InconsistencyDetector::~InconsistencyDetector() {
  stop_background_scan();
  for (auto& [id, round] : pending_) {
    if (round.timeout_handle != 0) {
      transport_.cancel_call(round.timeout_handle);
    }
  }
}

void InconsistencyDetector::detect(DetectCallback cb) {
  const std::uint64_t round_id =
      (static_cast<std::uint64_t>(self_) << 40) | ++next_round_;
  PendingRound round;
  round.cb = std::move(cb);
  round.started_at = transport_.now();
  round.gathered.emplace_back(self_, store_.evv());

  std::vector<NodeId> peers = top_layer_();
  peers.erase(std::remove(peers.begin(), peers.end(), self_), peers.end());
  round.expected = peers.size();

  if (peers.empty()) {
    // Alone in the top layer: trivially consistent from our vantage point.
    pending_.emplace(round_id, std::move(round));
    finish_round(round_id);
    return;
  }

  // One shared probe body for the whole top layer; each send refcounts it
  // instead of re-copying the EVV per peer.
  const net::Payload probe = ProbePayload{round_id, store_.evv_snapshot()};
  const std::uint32_t probe_bytes = store_.evv().wire_bytes();
  for (NodeId peer : peers) {
    net::Message m;
    m.from = self_;
    m.to = peer;
    m.file = file_;
    m.type = kProbeType;
    m.payload = probe;
    m.wire_bytes = probe_bytes;
    transport_.send(std::move(m));
  }
  round.timeout_handle = transport_.call_after(
      params_.probe_timeout, [this, round_id] { finish_round(round_id); });
  pending_.emplace(round_id, std::move(round));
}

void InconsistencyDetector::finish_round(std::uint64_t round_id) {
  auto it = pending_.find(round_id);
  if (it == pending_.end()) return;
  PendingRound round = std::move(it->second);
  pending_.erase(it);
  if (round.timeout_handle != 0) {
    transport_.cancel_call(round.timeout_handle);
  }

  DetectionResult result;
  result.started_at = round.started_at;
  result.finished_at = transport_.now();
  result.peers_probed = round.expected;
  result.peers_replied = round.gathered.size() - 1;
  result.gathered = std::move(round.gathered);

  // Extract each gathered EVV's counts once; every pairwise comparison in
  // this round works on the flat vectors.
  std::vector<vv::VersionVector> counts;
  counts.reserve(result.gathered.size());
  for (const auto& [node, evv] : result.gathered) {
    counts.push_back(evv.counts());
  }

  // "fail" iff any pair of gathered EVVs differ (paper: two replicas are
  // inconsistent if their version vectors are different).
  for (std::size_t i = 0; !result.conflict && i < result.gathered.size();
       ++i) {
    for (std::size_t j = i + 1; j < result.gathered.size(); ++j) {
      if (vv::VersionVector::compare(counts[i], counts[j]) !=
          vv::Order::kEqual) {
        result.conflict = true;
        break;
      }
    }
  }

  result.reference = choose_reference_by_counts(result.gathered, counts);
  for (const auto& [node, evv] : result.gathered) {
    if (node == result.reference) {
      result.reference_evv = evv;
      break;
    }
  }
  result.triple = store_.evv().triple_against(result.reference_evv);
  store_.set_triple(result.triple);
  round.cb(result);
}

void InconsistencyDetector::on_message(const net::Message& msg) {
  if (msg.type == kProbeType) {
    handle_probe(msg);
  } else if (msg.type == kReplyType) {
    handle_reply(msg);
  } else if (msg.type == kReportType) {
    handle_report(msg);
  }
}

void InconsistencyDetector::handle_probe(const net::Message& msg) {
  const auto& p = msg.payload.as<ProbePayload>();
  net::Message reply;
  reply.from = self_;
  reply.to = msg.from;
  reply.file = file_;
  reply.type = kReplyType;
  reply.payload = ReplyPayload{p.round_id, store_.evv_snapshot()};
  reply.wire_bytes = store_.evv().wire_bytes();
  transport_.send(std::move(reply));
}

void InconsistencyDetector::handle_reply(const net::Message& msg) {
  const auto& p = msg.payload.as<ReplyPayload>();
  auto it = pending_.find(p.round_id);
  if (it == pending_.end()) return;  // late reply after timeout
  it->second.gathered.emplace_back(msg.from, *p.evv);
  if (it->second.gathered.size() >= it->second.expected + 1) {
    finish_round(p.round_id);
  }
}

void InconsistencyDetector::handle_report(const net::Message& msg) {
  const auto& p = msg.payload.as<ReportPayload>();
  if (on_report_) {
    ScanReport report;
    report.reporter = msg.from;
    report.reporter_evv = *p.evv;
    report.received_at = transport_.now();
    on_report_(report);
  }
}

void InconsistencyDetector::start_background_scan() {
  if (!params_.enable_bottom_scan || scan_timer_ != 0) return;
  scan_timer_ =
      transport_.call_every(params_.scan_period, [this] { run_scan(); });
}

void InconsistencyDetector::stop_background_scan() {
  if (scan_timer_ != 0) {
    transport_.cancel_call(scan_timer_);
    scan_timer_ = 0;
  }
}

void InconsistencyDetector::run_scan() {
  ++scans_;
  gossip_.broadcast(file_, kScanInnerType, ScanPayload{store_.evv_snapshot()},
                    store_.evv().wire_bytes());
}

void InconsistencyDetector::on_gossip(const overlay::GossipEnvelope& env) {
  if (env.inner_type != kScanInnerType) return;
  if (env.origin == self_) return;
  const auto& p = env.inner.as<ScanPayload>();
  // If our history conflicts with (or is ahead of) the origin's, the origin
  // may be unaware of inconsistency — report back directly.
  const vv::Order o =
      vv::ExtendedVersionVector::compare(store_.evv(), *p.evv);
  if (o == vv::Order::kConcurrent || o == vv::Order::kAfter) {
    net::Message m;
    m.from = self_;
    m.to = env.origin;
    m.file = file_;
    m.type = kReportType;
    m.payload = ReportPayload{store_.evv_snapshot()};
    m.wire_bytes = store_.evv().wire_bytes();
    transport_.send(std::move(m));
  }
}

}  // namespace idea::detect
