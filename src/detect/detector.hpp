#pragma once
/// \file detector.hpp
/// \brief The inconsistency detection framework (IDF, [14,15]) — IDEA's
///        detection module (§4.3).
///
/// Exposes the paper's `detect(update)` API: a detection round exchanges
/// extended version vectors with the current top layer and reports "success"
/// (no conflict) or "fail" (conflict) together with the data needed to
/// quantify the inconsistency (the gathered EVVs and the reference state).
///
/// In the background, the detector periodically gossips its EVV through the
/// bottom layer (TTL-bounded, §4.4.2).  Peers that discover a conflict with
/// the origin report back directly; the origin surfaces a discrepancy event
/// when the bottom layer's view contradicts the last top-layer result —
/// the trigger for IDEA's rollback path.

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/dispatcher.hpp"
#include "net/transport.hpp"
#include "overlay/gossip.hpp"
#include "replica/store.hpp"
#include "util/rng.hpp"
#include "vv/extended_vv.hpp"

namespace idea::detect {

/// Result of one detection round.
struct DetectionResult {
  bool conflict = false;  ///< The paper's "fail" (true) vs "success".
  NodeId reference = kNoNode;  ///< Replica chosen as reference state.
  vv::ExtendedVersionVector reference_evv;
  vv::TactTriple triple;  ///< This node's errors vs the reference.
  /// EVVs gathered from the top layer (peer id -> EVV), self included.
  std::vector<std::pair<NodeId, vv::ExtendedVersionVector>> gathered;
  SimTime started_at = 0;
  SimTime finished_at = 0;
  std::size_t peers_probed = 0;
  std::size_t peers_replied = 0;
};

/// A bottom-layer report that contradicts (or confirms) the top layer.
struct ScanReport {
  NodeId reporter = kNoNode;
  vv::ExtendedVersionVector reporter_evv;
  SimTime received_at = 0;
};

struct DetectorParams {
  SimDuration probe_timeout = msec(1500);  ///< Give up on missing replies.
  SimDuration scan_period = sec(10);       ///< Bottom-layer gossip period.
  bool enable_bottom_scan = true;
};

/// Chooses the reference consistent state among gathered replicas: the
/// maximal EVVs (not dominated by any other) are candidates; among those the
/// highest node id wins — the rule the paper uses in §4.4.1 and §6.
NodeId choose_reference(
    const std::vector<std::pair<NodeId, vv::ExtendedVersionVector>>& gathered);

/// Same rule over pre-extracted count vectors (`counts[i]` belongs to
/// `gathered[i]`).  Detection rounds compare every pair, so extracting each
/// EVV's counts once instead of per comparison keeps rounds O(k^2) compares
/// without O(k^2) vector rebuilds.
NodeId choose_reference_by_counts(
    const std::vector<std::pair<NodeId, vv::ExtendedVersionVector>>& gathered,
    const std::vector<vv::VersionVector>& counts);

class InconsistencyDetector final : public net::MessageHandler {
 public:
  using DetectCallback = std::function<void(const DetectionResult&)>;
  using ReportCallback = std::function<void(const ScanReport&)>;

  /// `top_layer` yields the node's current view of the top layer for the
  /// file (self may or may not be included; the detector handles both).
  InconsistencyDetector(NodeId self, FileId file, net::Transport& transport,
                        replica::ReplicaStore& store,
                        overlay::GossipAgent& gossip,
                        std::function<std::vector<NodeId>()> top_layer,
                        DetectorParams params, std::uint64_t seed);
  ~InconsistencyDetector() override;

  InconsistencyDetector(const InconsistencyDetector&) = delete;
  InconsistencyDetector& operator=(const InconsistencyDetector&) = delete;

  /// The paper's detect(update) API.  Asynchronous: probes the top layer and
  /// invokes `cb` exactly once with the outcome.  Multiple concurrent rounds
  /// are allowed (distinguished by round id).
  void detect(DetectCallback cb);

  /// Start/stop the periodic bottom-layer scan.
  void start_background_scan();
  void stop_background_scan();

  /// Fires when a bottom-layer peer reports a conflict with our state.
  void set_report_callback(ReportCallback cb) { on_report_ = std::move(cb); }

  void on_message(const net::Message& msg) override;

  /// Handle a gossip envelope routed to this detector by the gossip agent.
  void on_gossip(const overlay::GossipEnvelope& env);

  static const net::MsgType kProbeType;      ///< "detect.probe"
  static const net::MsgType kReplyType;      ///< "detect.reply"
  static const net::MsgType kReportType;     ///< "detect.report"
  static const net::MsgType kScanInnerType;  ///< "detect.scan"

  [[nodiscard]] std::uint64_t rounds_started() const { return next_round_; }
  [[nodiscard]] std::uint64_t scans_started() const { return scans_; }

 private:
  struct PendingRound {
    DetectCallback cb;
    std::vector<std::pair<NodeId, vv::ExtendedVersionVector>> gathered;
    std::size_t expected = 0;
    SimTime started_at = 0;
    std::uint64_t timeout_handle = 0;
  };

  void finish_round(std::uint64_t round_id);
  void handle_probe(const net::Message& msg);
  void handle_reply(const net::Message& msg);
  void handle_report(const net::Message& msg);
  void run_scan();

  NodeId self_;
  FileId file_;
  net::Transport& transport_;
  replica::ReplicaStore& store_;
  overlay::GossipAgent& gossip_;
  std::function<std::vector<NodeId>()> top_layer_;
  DetectorParams params_;
  Rng rng_;

  std::uint64_t next_round_ = 0;
  std::uint64_t scans_ = 0;
  std::unordered_map<std::uint64_t, PendingRound> pending_;
  std::uint64_t scan_timer_ = 0;
  ReportCallback on_report_;
};

}  // namespace idea::detect
