#pragma once
/// \file latency.hpp
/// \brief Wide-area latency models substituting for the Planet-Lab testbed.
///
/// The paper's experiments run over 40 Planet-Lab nodes spanning the US and
/// Canada.  We replace the physical network with pluggable latency models.
/// `PlanetLabLatency` places nodes on a synthetic continental coordinate
/// plane; one-way delay = propagation (distance-proportional) + a fixed
/// processing floor + lognormal queueing jitter.  This reproduces the two
/// properties the evaluation depends on: (1) pairwise delays are heteroge-
/// neous but stable, and (2) a sequential k-hop protocol costs ~k times the
/// mean one-way delay, which is what makes phase 2 of active resolution
/// linear in top-layer size (Figure 9).

#include <cstdint>
#include <memory>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace idea::sim {

/// Interface: sample the one-way delay for a message from -> to.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay sample; must be >= 0.  `rng` supplies the jitter stream.
  virtual SimDuration sample(NodeId from, NodeId to, Rng& rng) = 0;

  /// Expected (mean) one-way delay, used by analytic extrapolations.
  [[nodiscard]] virtual SimDuration mean(NodeId from, NodeId to) const = 0;
};

/// Fixed delay for every pair; handy in unit tests.
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(SimDuration delay) : delay_(delay) {}
  SimDuration sample(NodeId, NodeId, Rng&) override { return delay_; }
  [[nodiscard]] SimDuration mean(NodeId, NodeId) const override {
    return delay_;
  }

 private:
  SimDuration delay_;
};

/// Uniform delay in [lo, hi] independent of the pair.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimDuration lo, SimDuration hi) : lo_(lo), hi_(hi) {}
  SimDuration sample(NodeId, NodeId, Rng& rng) override {
    return rng.uniform_int(lo_, hi_);
  }
  [[nodiscard]] SimDuration mean(NodeId, NodeId) const override {
    return (lo_ + hi_) / 2;
  }

 private:
  SimDuration lo_, hi_;
};

/// Explicit pairwise base-delay matrix plus multiplicative lognormal jitter.
class MatrixLatency final : public LatencyModel {
 public:
  /// `base[i][j]` is the i->j one-way delay.  `jitter_sigma` is the sigma of
  /// the underlying normal; 0 disables jitter.
  MatrixLatency(std::vector<std::vector<SimDuration>> base,
                double jitter_sigma = 0.0);

  SimDuration sample(NodeId from, NodeId to, Rng& rng) override;
  [[nodiscard]] SimDuration mean(NodeId from, NodeId to) const override;

 private:
  std::vector<std::vector<SimDuration>> base_;
  double jitter_sigma_;
};

/// Parameters of the synthetic Planet-Lab-like continental topology.
struct PlanetLabParams {
  std::uint32_t nodes = 40;
  /// Propagation delay across the full coordinate plane diagonal (one way).
  SimDuration diameter_delay = msec(60);
  /// Per-message processing/forwarding floor added to every delay.
  SimDuration processing_floor = msec(2);
  /// Sigma of the lognormal queueing jitter (on the underlying normal).
  double jitter_sigma = 0.15;
  /// Seed used to place nodes on the plane (separate from message jitter).
  std::uint64_t placement_seed = 40'2007;
};

/// Synthetic continental topology: nodes at random plane coordinates.
class PlanetLabLatency final : public LatencyModel {
 public:
  explicit PlanetLabLatency(const PlanetLabParams& params);

  SimDuration sample(NodeId from, NodeId to, Rng& rng) override;
  [[nodiscard]] SimDuration mean(NodeId from, NodeId to) const override;

  /// Mean one-way delay averaged over all ordered pairs (diagnostic, and
  /// input to the Figure 9 extrapolation formulas).
  [[nodiscard]] SimDuration mean_pairwise() const;

  /// Grow the topology to at least `count` nodes (elastic membership:
  /// endpoints joining after construction need coordinates too).  New
  /// nodes continue the placement RNG stream, so a topology grown in two
  /// steps is identical to one constructed at the final size; existing
  /// coordinates never move.
  void ensure_nodes(std::uint32_t count);

  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(x_.size());
  }

 private:
  [[nodiscard]] SimDuration base(NodeId from, NodeId to) const;

  PlanetLabParams params_;
  Rng placement_;              // consumed in ensure_nodes only
  std::vector<double> x_, y_;  // coordinates in [0,1)
};

/// Convenience factory returning a 40-node Planet-Lab-like model matching
/// the paper's deployment scale.
std::unique_ptr<PlanetLabLatency> make_planetlab40();

}  // namespace idea::sim
