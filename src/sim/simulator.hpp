#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is the substrate that replaces the paper's Planet-Lab testbed:
/// protocol code schedules callbacks at simulated times, and the kernel runs
/// them in (time, insertion) order.  Ties are broken by insertion sequence so
/// runs are exactly reproducible — a requirement for every experiment bench
/// and for the property tests that replay seeds.
///
/// The kernel is single-threaded on purpose (CP.4 — tasks, not threads; all
/// parallelism in the *protocols* is virtual).  A separate ThreadTransport in
/// src/net demonstrates the middleware under real concurrency.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace idea::sim {

/// Identifier of a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Discrete-event simulator: a priority queue of timed callbacks.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).  Returns a cancel handle.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId schedule_after(SimDuration delay, std::function<void()> fn);

  /// Schedule `fn` every `period`, first firing after `initial_delay`
  /// (defaults to one period).  The periodic chain stops when cancelled.
  EventId schedule_periodic(SimDuration period, std::function<void()> fn,
                            SimDuration initial_delay = -1);

  /// Cancel a pending event (one-shot or the whole periodic chain).
  /// Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events were processed.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Run for `d` more simulated microseconds.
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Number of events currently pending (cancelled ones are excluded).
  [[nodiscard]] std::size_t pending() const;

 private:
  struct Event {
    SimTime time;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  void reschedule_periodic(EventId chain, SimDuration period,
                           std::function<void()> fn);

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  // Periodic chains are identified by the EventId of their *first* event;
  // the chain id stays valid for cancel() across re-arms.
  std::unordered_set<EventId> periodic_alive_;
};

}  // namespace idea::sim
