#pragma once
/// \file simulator.hpp
/// \brief Deterministic discrete-event simulation kernel.
///
/// The kernel is the substrate that replaces the paper's Planet-Lab testbed:
/// protocol code schedules callbacks at simulated times, and the kernel runs
/// them in (time, insertion) order.  Ties are broken by insertion sequence so
/// runs are exactly reproducible — a requirement for every experiment bench
/// and for the property tests that replay seeds.
///
/// Storage is a slab of recycled event slots plus a binary heap of small
/// POD entries: the heap sifts 24-byte records instead of std::function
/// objects, slots (and their std::function small-buffer storage) are reused
/// across events, and cancellation is a tombstone flag on the slot — popped
/// entries check one byte instead of probing an unordered_set per pop.
/// Periodic chains re-arm into their original slot, so one EventId stays
/// valid for cancel() across re-arms and the original insertion key keeps
/// the seed-identical (time, insertion) tie-break order.
///
/// The kernel is single-threaded on purpose (CP.4 — tasks, not threads; all
/// parallelism in the *protocols* is virtual).  A separate ThreadTransport in
/// src/net demonstrates the middleware under real concurrency.

#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_owner.hpp"
#include "util/time.hpp"

namespace idea::sim {

/// Identifier of a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Discrete-event simulator: a priority queue of timed callbacks.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.  Monotonically non-decreasing.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now).  Returns a cancel handle.
  EventId schedule_at(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` microseconds.
  EventId schedule_after(SimDuration delay, std::function<void()> fn);

  /// Schedule `fn` every `period`, first firing after `initial_delay`
  /// (defaults to one period).  The periodic chain stops when cancelled.
  EventId schedule_periodic(SimDuration period, std::function<void()> fn,
                            SimDuration initial_delay = -1);

  /// Cancel a pending event (one-shot or the whole periodic chain).
  /// Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run the next event, if any.  Returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `limit` events were processed.
  void run(std::uint64_t limit = UINT64_MAX);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Run for `d` more simulated microseconds.
  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Number of events executed so far (diagnostic).
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Number of events currently pending.  Exact: cancelled events leave
  /// the count immediately, a live periodic chain counts as one.
  [[nodiscard]] std::size_t pending() const { return live_; }

  /// Slots currently in the recycling pool (diagnostic: slab footprint is
  /// pool_size() + pending() slots, bounded by the historical high-water
  /// mark of concurrently pending events, not by events ever scheduled).
  [[nodiscard]] std::size_t pool_size() const { return slots_.size(); }

  /// Install a metrics sink: step() samples the event-queue depth into the
  /// "sim.queue_depth" histogram every 64 events (pure recording — sampling
  /// on the event counter keeps the cost off the per-event path and the
  /// samples identical across fixed-seed runs).
  void set_metrics(obs::Meter meter);

  /// Hand the kernel to another thread (debug-mode single-owner checks:
  /// the event-slot slab is thread-confined; the parallel runtime rebinds
  /// at each epoch hand-off, which the pool barrier synchronizes).
  void rebind_owner_thread() { owner_.rebind(); }

 private:
  static constexpr std::uint32_t kNoSlot = UINT32_MAX;

  /// One slab slot: the callback plus chain/cancel state.  Recycled via an
  /// intrusive free list; `generation` disambiguates recycled slots so
  /// stale heap entries and stale EventIds are recognized.
  struct Slot {
    std::function<void()> fn;
    std::uint64_t order_key = 0;  ///< Insertion tie-break (stable per chain).
    SimDuration period = 0;       ///< >0: periodic chain.
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool cancelled = false;  ///< Tombstone: skip and free when popped.
    bool queued = false;     ///< A heap entry exists for this generation.
  };

  /// Heap entry: plain data only, cheap to sift.
  struct QEntry {
    SimTime time;
    std::uint64_t key;   ///< Copy of the slot's order_key.
    std::uint32_t slot;
    std::uint32_t gen;

    /// Strict scheduling order: earlier time first, then insertion order.
    /// Total, so any correct heap pops the exact same sequence.
    [[nodiscard]] bool before(const QEntry& o) const {
      return time != o.time ? time < o.time : key < o.key;
    }
  };

  /// Two-band priority queue over QEntry.  Simulated deployments pend tens
  /// of thousands of second-scale periodic timers while messages fly at
  /// millisecond scale; keeping everything in one heap makes every
  /// send/pop sift through all of it.  Entries within `kBand` of the
  /// current horizon live in a small 4-ary "near" heap (the hot one); the
  /// rest wait in a "far" heap and migrate in bulk whenever the near band
  /// drains.  Both bands order by the same total (time, key) order and the
  /// bands partition time disjointly, so the pop sequence is exactly the
  /// single-heap sequence.
  class EventHeap {
   public:
    [[nodiscard]] bool empty() const {
      return near_.empty() && far_.empty();
    }
    [[nodiscard]] std::size_t size() const {
      return near_.size() + far_.size();
    }
    /// The global minimum.  May migrate far->near first (amortized O(1)
    /// per entry over a run).
    [[nodiscard]] const QEntry& top() {
      if (near_.empty()) rebalance();
      return near_.front();
    }
    void push(const QEntry& e);
    void pop();

   private:
    /// Width of the near band (simulated microseconds).
    static constexpr SimTime kBand = 100'000;  // 100 ms

    void rebalance();
    static void sift_up(std::vector<QEntry>& heap);
    static void sift_down_from(std::vector<QEntry>& heap, std::size_t i);

    std::vector<QEntry> near_;  ///< time <= horizon_, 4-ary min-heap.
    std::vector<QEntry> far_;   ///< time >  horizon_, 4-ary min-heap.
    SimTime horizon_ = 0;
  };

  static constexpr EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot + 1) << 32) | gen;
  }
  static constexpr std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32) - 1;
  }
  static constexpr std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id);
  }

  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t index);
  EventId arm(SimTime t, std::function<void()> fn, SimDuration period);
  /// Time of the next event that will actually execute (kNever if none),
  /// reaping dead heap heads along the way.
  SimTime next_live_event_time();

  SimTime now_ = 0;
  std::uint64_t next_key_ = 1;
  std::uint64_t events_processed_ = 0;
  std::size_t live_ = 0;
  obs::Meter meter_;
  obs::MetricId queue_depth_metric_;
  util::ThreadOwner owner_;  ///< Debug: slab confinement stamp.
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  EventHeap queue_;
};

}  // namespace idea::sim
