#include "sim/latency.hpp"

#include <cassert>
#include <cmath>

namespace idea::sim {

MatrixLatency::MatrixLatency(std::vector<std::vector<SimDuration>> base,
                             double jitter_sigma)
    : base_(std::move(base)), jitter_sigma_(jitter_sigma) {
  for (const auto& row : base_) {
    assert(row.size() == base_.size());
    (void)row;
  }
}

SimDuration MatrixLatency::sample(NodeId from, NodeId to, Rng& rng) {
  const SimDuration b = base_.at(from).at(to);
  if (jitter_sigma_ <= 0.0) return b;
  const double factor = rng.lognormal(0.0, jitter_sigma_);
  return static_cast<SimDuration>(static_cast<double>(b) * factor);
}

SimDuration MatrixLatency::mean(NodeId from, NodeId to) const {
  const SimDuration b = base_.at(from).at(to);
  if (jitter_sigma_ <= 0.0) return b;
  // E[lognormal(0, s)] = exp(s^2/2).
  return static_cast<SimDuration>(
      static_cast<double>(b) * std::exp(jitter_sigma_ * jitter_sigma_ / 2));
}

PlanetLabLatency::PlanetLabLatency(const PlanetLabParams& params)
    : params_(params), placement_(params.placement_seed) {
  ensure_nodes(params.nodes);
}

void PlanetLabLatency::ensure_nodes(std::uint32_t count) {
  while (x_.size() < count) {
    x_.push_back(placement_.uniform01());
    y_.push_back(placement_.uniform01());
  }
}

SimDuration PlanetLabLatency::base(NodeId from, NodeId to) const {
  assert(from < x_.size() && to < x_.size());
  if (from == to) return 0;
  const double dx = x_[from] - x_[to];
  const double dy = y_[from] - y_[to];
  const double dist = std::sqrt(dx * dx + dy * dy) / std::sqrt(2.0);
  return params_.processing_floor +
         static_cast<SimDuration>(
             dist * static_cast<double>(params_.diameter_delay));
}

SimDuration PlanetLabLatency::sample(NodeId from, NodeId to, Rng& rng) {
  const SimDuration b = base(from, to);
  if (b == 0) return 0;
  if (params_.jitter_sigma <= 0.0) return b;
  const double factor = rng.lognormal(0.0, params_.jitter_sigma);
  return static_cast<SimDuration>(static_cast<double>(b) * factor);
}

SimDuration PlanetLabLatency::mean(NodeId from, NodeId to) const {
  const SimDuration b = base(from, to);
  if (params_.jitter_sigma <= 0.0) return b;
  return static_cast<SimDuration>(
      static_cast<double>(b) *
      std::exp(params_.jitter_sigma * params_.jitter_sigma / 2));
}

SimDuration PlanetLabLatency::mean_pairwise() const {
  const auto n = static_cast<NodeId>(x_.size());
  if (n < 2) return 0;
  double total = 0.0;
  std::uint64_t pairs = 0;
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      total += static_cast<double>(mean(i, j));
      ++pairs;
    }
  }
  return static_cast<SimDuration>(total / static_cast<double>(pairs));
}

std::unique_ptr<PlanetLabLatency> make_planetlab40() {
  return std::make_unique<PlanetLabLatency>(PlanetLabParams{});
}

}  // namespace idea::sim
