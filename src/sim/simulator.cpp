#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace idea::sim {

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  const EventId id = next_id_++;
  queue_.push(Event{t < now_ ? now_ : t, id, std::move(fn)});
  return id;
}

EventId Simulator::schedule_after(SimDuration delay,
                                  std::function<void()> fn) {
  assert(delay >= 0);
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_periodic(SimDuration period,
                                     std::function<void()> fn,
                                     SimDuration initial_delay) {
  assert(period > 0);
  if (initial_delay < 0) initial_delay = period;
  const EventId chain = next_id_++;
  periodic_alive_.insert(chain);
  // The chain's events reuse `chain` as their queue id so that cancel(chain)
  // kills whichever occurrence is pending.
  queue_.push(Event{now_ + initial_delay, chain,
                    [this, chain, period, f = std::move(fn)]() mutable {
                      f();
                      reschedule_periodic(chain, period, f);
                    }});
  return chain;
}

void Simulator::reschedule_periodic(EventId chain, SimDuration period,
                                    std::function<void()> fn) {
  if (!periodic_alive_.count(chain)) return;  // cancelled from inside fn()
  queue_.push(Event{now_ + period, chain,
                    [this, chain, period, f = std::move(fn)]() mutable {
                      f();
                      reschedule_periodic(chain, period, f);
                    }});
}

bool Simulator::cancel(EventId id) {
  const bool was_periodic = periodic_alive_.erase(id) > 0;
  // Lazy deletion: mark; skip when popped.
  const bool inserted = cancelled_.insert(id).second;
  return was_periodic || inserted;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (cancelled_.erase(ev.id) > 0 && !periodic_alive_.count(ev.id)) {
      continue;  // skip cancelled one-shot
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t limit) {
  while (limit-- > 0 && step()) {
  }
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty() && queue_.top().time <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

std::size_t Simulator::pending() const {
  // cancelled_ may contain ids already popped; this is a diagnostic bound.
  return queue_.size() >= cancelled_.size()
             ? queue_.size() - cancelled_.size()
             : 0;
}

}  // namespace idea::sim
