#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace idea::sim {

void Simulator::EventHeap::sift_up(std::vector<QEntry>& heap) {
  std::size_t i = heap.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!heap[i].before(heap[parent])) break;
    std::swap(heap[i], heap[parent]);
    i = parent;
  }
}

void Simulator::EventHeap::sift_down_from(std::vector<QEntry>& heap,
                                          std::size_t i) {
  const std::size_t n = heap.size();
  for (;;) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + 4, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (heap[c].before(heap[best])) best = c;
    }
    if (!heap[best].before(heap[i])) break;
    std::swap(heap[i], heap[best]);
    i = best;
  }
}

void Simulator::EventHeap::push(const QEntry& e) {
  std::vector<QEntry>& band = e.time <= horizon_ ? near_ : far_;
  band.push_back(e);
  sift_up(band);
}

void Simulator::EventHeap::pop() {
  if (near_.empty()) rebalance();
  near_.front() = near_.back();
  near_.pop_back();
  sift_down_from(near_, 0);
}

void Simulator::EventHeap::rebalance() {
  // Open the next band: everything up to (earliest far entry + kBand)
  // becomes near.  Each entry migrates far->near at most once, and the
  // far heap is rebuilt in place — O(far) per band advance, amortized
  // O(1) per entry over a run.
  horizon_ = far_.front().time + kBand;
  std::size_t kept = 0;
  for (QEntry& e : far_) {
    if (e.time <= horizon_) {
      near_.push_back(e);
    } else {
      far_[kept++] = e;
    }
  }
  far_.resize(kept);
  const auto heapify = [](std::vector<QEntry>& heap) {
    if (heap.size() < 2) return;
    for (std::size_t i = (heap.size() - 2) / 4 + 1; i-- > 0;) {
      sift_down_from(heap, i);
    }
  };
  heapify(near_);
  heapify(far_);
}

std::uint32_t Simulator::alloc_slot() {
  IDEA_ASSERT_OWNED(owner_);
  if (free_head_ != kNoSlot) {
    const std::uint32_t index = free_head_;
    free_head_ = slots_[index].next_free;
    slots_[index].next_free = kNoSlot;
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot(std::uint32_t index) {
  IDEA_ASSERT_OWNED(owner_);
  Slot& slot = slots_[index];
  slot.fn = nullptr;  // release captured state eagerly
  slot.period = 0;
  slot.cancelled = false;
  slot.queued = false;
  ++slot.generation;  // kills stale EventIds and stale heap entries
  slot.next_free = free_head_;
  free_head_ = index;
}

EventId Simulator::arm(SimTime t, std::function<void()> fn,
                       SimDuration period) {
  const std::uint32_t index = alloc_slot();
  Slot& slot = slots_[index];
  slot.fn = std::move(fn);
  slot.order_key = next_key_++;
  slot.period = period;
  slot.cancelled = false;
  slot.queued = true;
  queue_.push(QEntry{t, slot.order_key, index, slot.generation});
  ++live_;
  return encode(index, slot.generation);
}

EventId Simulator::schedule_at(SimTime t, std::function<void()> fn) {
  assert(t >= now_ && "cannot schedule in the past");
  return arm(t < now_ ? now_ : t, std::move(fn), 0);
}

EventId Simulator::schedule_after(SimDuration delay,
                                  std::function<void()> fn) {
  assert(delay >= 0);
  return arm(now_ + (delay < 0 ? 0 : delay), std::move(fn), 0);
}

EventId Simulator::schedule_periodic(SimDuration period,
                                     std::function<void()> fn,
                                     SimDuration initial_delay) {
  assert(period > 0);
  if (initial_delay < 0) initial_delay = period;
  return arm(now_ + initial_delay, std::move(fn), period);
}

bool Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t index = slot_of(id);
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (slot.generation != gen_of(id) || slot.cancelled) return false;
  slot.cancelled = true;
  // A periodic chain cancelled from inside its own callback has no heap
  // entry right now — its firing already left the pending count at pop
  // time, and the tombstone stops the re-arm; only a queued occurrence
  // still counts as pending.
  if (slot.queued) --live_;
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const QEntry entry = queue_.top();
    queue_.pop();
    {
      Slot& slot = slots_[entry.slot];
      if (slot.generation != entry.gen) continue;  // recycled: stale entry
      slot.queued = false;
      if (slot.cancelled) {                        // tombstoned: reap lazily
        free_slot(entry.slot);
        continue;
      }
    }
    assert(entry.time >= now_);
    now_ = entry.time;
    ++events_processed_;
    --live_;
    if (meter_.enabled() && (events_processed_ & 0x3F) == 0) {
      meter_.observe(queue_depth_metric_, live_);
    }
    if (slots_[entry.slot].period > 0) {
      // Steal the callback for the call: the callback may schedule events
      // and reallocate slots_, and must observe a consistent slot if it
      // cancels its own chain.
      std::function<void()> fn = std::move(slots_[entry.slot].fn);
      fn();
      Slot& slot = slots_[entry.slot];  // re-resolve: slab may have moved
      if (slot.cancelled) {
        free_slot(entry.slot);  // cancelled from inside the callback
      } else {
        slot.fn = std::move(fn);  // re-arm the same slot: id stays valid
        slot.queued = true;
        queue_.push(
            QEntry{now_ + slot.period, slot.order_key, entry.slot, entry.gen});
        ++live_;
      }
    } else {
      // One-shot: recycle before the call so the callback can reuse the
      // slot and a self-cancel correctly reports "no longer pending".
      std::function<void()> fn = std::move(slots_[entry.slot].fn);
      free_slot(entry.slot);
      fn();
    }
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t limit) {
  while (limit-- > 0 && step()) {
  }
}

SimTime Simulator::next_live_event_time() {
  // Reap dead heap heads (recycled-slot leftovers and cancelled
  // tombstones) so the caller sees the time of the next event that will
  // actually run.  Reaping only removes entries step() would skip anyway,
  // so the live pop order is untouched.
  while (!queue_.empty()) {
    const QEntry entry = queue_.top();
    Slot& slot = slots_[entry.slot];
    if (slot.generation != entry.gen) {
      queue_.pop();
      continue;
    }
    if (slot.cancelled) {
      slot.queued = false;
      free_slot(entry.slot);
      queue_.pop();
      continue;
    }
    return entry.time;
  }
  return kNever;
}

void Simulator::run_until(SimTime t) {
  // Consult the next *live* event: a cancelled tombstone at the head must
  // not bait step() into running an event past t.
  while (next_live_event_time() <= t) {
    if (!step()) break;
  }
  if (now_ < t) now_ = t;
}

void Simulator::set_metrics(obs::Meter meter) {
  meter_ = meter;
  if (meter_.enabled()) {
    queue_depth_metric_ = obs::MetricId::intern("sim.queue_depth");
  }
}

}  // namespace idea::sim
