#include "vv/version_vector.hpp"

#include <algorithm>

namespace idea::vv {

std::uint64_t VersionVector::get(NodeId writer) const {
  auto it = counts_.find(writer);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t VersionVector::increment(NodeId writer) {
  return ++counts_[writer];
}

void VersionVector::set(NodeId writer, std::uint64_t count) {
  if (count == 0) {
    counts_.erase(writer);
  } else {
    counts_[writer] = count;
  }
}

void VersionVector::merge(const VersionVector& other) {
  for (const auto& [w, c] : other.counts_) {
    auto& mine = counts_[w];
    mine = std::max(mine, c);
  }
}

Order VersionVector::compare(const VersionVector& a, const VersionVector& b) {
  bool a_ahead = false;
  bool b_ahead = false;
  auto ia = a.counts_.begin();
  auto ib = b.counts_.begin();
  while (ia != a.counts_.end() || ib != b.counts_.end()) {
    if (ib == b.counts_.end() ||
        (ia != a.counts_.end() && ia->first < ib->first)) {
      if (ia->second > 0) a_ahead = true;
      ++ia;
    } else if (ia == a.counts_.end() || ib->first < ia->first) {
      if (ib->second > 0) b_ahead = true;
      ++ib;
    } else {
      if (ia->second > ib->second) a_ahead = true;
      if (ib->second > ia->second) b_ahead = true;
      ++ia;
      ++ib;
    }
    if (a_ahead && b_ahead) return Order::kConcurrent;
  }
  if (a_ahead) return Order::kAfter;
  if (b_ahead) return Order::kBefore;
  return Order::kEqual;
}

bool VersionVector::dominates(const VersionVector& other) const {
  const Order o = compare(*this, other);
  return o == Order::kAfter || o == Order::kEqual;
}

bool VersionVector::concurrent_with(const VersionVector& other) const {
  return compare(*this, other) == Order::kConcurrent;
}

std::uint64_t VersionVector::total() const {
  std::uint64_t t = 0;
  for (const auto& [w, c] : counts_) t += c;
  return t;
}

std::string VersionVector::to_string() const {
  std::string out = "(";
  bool first = true;
  for (const auto& [w, c] : counts_) {
    if (!first) out += ' ';
    first = false;
    out += node_name(w);
    out += ':';
    out += std::to_string(c);
  }
  out += ')';
  return out;
}

}  // namespace idea::vv
