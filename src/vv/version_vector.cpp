#include "vv/version_vector.hpp"

#include <algorithm>

namespace idea::vv {

std::size_t VersionVector::lower_bound(NodeId writer) const {
  const auto it = std::lower_bound(
      counts_.begin(), counts_.end(), writer,
      [](const Entry& e, NodeId w) { return e.first < w; });
  return static_cast<std::size_t>(it - counts_.begin());
}

std::uint64_t VersionVector::get(NodeId writer) const {
  const std::size_t i = lower_bound(writer);
  return i < counts_.size() && counts_[i].first == writer ? counts_[i].second
                                                          : 0;
}

std::uint64_t VersionVector::increment(NodeId writer) {
  const std::size_t i = lower_bound(writer);
  if (i < counts_.size() && counts_[i].first == writer) {
    return ++counts_[i].second;
  }
  counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(i),
                 Entry{writer, 1});
  return 1;
}

void VersionVector::set(NodeId writer, std::uint64_t count) {
  const std::size_t i = lower_bound(writer);
  const bool present = i < counts_.size() && counts_[i].first == writer;
  if (count == 0) {
    if (present) {
      counts_.erase(counts_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  } else if (present) {
    counts_[i].second = count;
  } else {
    counts_.insert(counts_.begin() + static_cast<std::ptrdiff_t>(i),
                   Entry{writer, count});
  }
}

void VersionVector::merge(const VersionVector& other) {
  // Common case in the protocols: same writer set on both sides — one
  // linear walk, no allocation.  Writers known only to `other` are batch-
  // appended and merged back into sorted order once.
  const std::size_t original = counts_.size();
  std::size_t i = 0;
  for (const Entry& theirs : other.counts_) {
    while (i < original && counts_[i].first < theirs.first) ++i;
    if (i < original && counts_[i].first == theirs.first) {
      counts_[i].second = std::max(counts_[i].second, theirs.second);
    } else {
      counts_.push_back(theirs);
    }
  }
  if (counts_.size() > original) {
    std::inplace_merge(counts_.begin(),
                       counts_.begin() + static_cast<std::ptrdiff_t>(original),
                       counts_.end());
  }
}

Order VersionVector::compare(const VersionVector& a, const VersionVector& b) {
  bool a_ahead = false;
  bool b_ahead = false;
  auto ia = a.counts_.begin();
  auto ib = b.counts_.begin();
  while (ia != a.counts_.end() || ib != b.counts_.end()) {
    if (ib == b.counts_.end() ||
        (ia != a.counts_.end() && ia->first < ib->first)) {
      if (ia->second > 0) a_ahead = true;
      ++ia;
    } else if (ia == a.counts_.end() || ib->first < ia->first) {
      if (ib->second > 0) b_ahead = true;
      ++ib;
    } else {
      if (ia->second > ib->second) a_ahead = true;
      if (ib->second > ia->second) b_ahead = true;
      ++ia;
      ++ib;
    }
    if (a_ahead && b_ahead) return Order::kConcurrent;
  }
  if (a_ahead) return Order::kAfter;
  if (b_ahead) return Order::kBefore;
  return Order::kEqual;
}

bool VersionVector::dominates(const VersionVector& other) const {
  const Order o = compare(*this, other);
  return o == Order::kAfter || o == Order::kEqual;
}

bool VersionVector::concurrent_with(const VersionVector& other) const {
  return compare(*this, other) == Order::kConcurrent;
}

std::uint64_t VersionVector::total() const {
  std::uint64_t t = 0;
  for (const auto& [w, c] : counts_) t += c;
  return t;
}

std::string VersionVector::to_string() const {
  std::string out = "(";
  bool first = true;
  for (const auto& [w, c] : counts_) {
    if (!first) out += ' ';
    first = false;
    out += node_name(w);
    out += ':';
    out += std::to_string(c);
  }
  out += ')';
  return out;
}

}  // namespace idea::vv
