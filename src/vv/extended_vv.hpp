#pragma once
/// \file extended_vv.hpp
/// \brief IDEA's extended version vector (§4.4, Figure 5).
///
/// The extension over a classic version vector carries, per writer, the
/// timestamp of every update (so staleness can be computed), plus one
/// critical application meta-data value (e.g. sum of ASCII codes of recent
/// white-board strokes, or total sale price of a booking server), plus the
/// derived <numerical error, order error, staleness> triple.
///
/// Update identity is (writer, sequence); a writer's own history is linear,
/// so the timestamp of update (w, k) is identical at every replica that
/// knows it.  That invariant is what makes the "last consistent time point"
/// well defined and computable from the stamp lists alone.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"
#include "vv/tact_triple.hpp"
#include "vv/version_vector.hpp"

namespace idea::vv {

class ExtendedVersionVector {
 public:
  /// One writer's history: its update stamps in sequence order.  The
  /// per-writer lists live in a flat vector sorted by writer id — EVVs are
  /// copied into every detect/resolve message, so the spine is one
  /// contiguous allocation and all cross-EVV walks are linear merges.
  using WriterStamps = std::pair<NodeId, std::vector<SimTime>>;

  ExtendedVersionVector() = default;

  /// Record a local or learned update: writer `w`'s next update, stamped
  /// `when` (writer-local clock), leaving the application meta-data at
  /// `meta_after`.  Stamps of one writer must be non-decreasing.
  void record_update(NodeId writer, SimTime when, double meta_after);

  /// Number of updates known from `writer`.
  [[nodiscard]] std::uint64_t count_of(NodeId writer) const;

  /// Timestamp of update (writer, seq), seq being 1-based. kNever if unknown.
  [[nodiscard]] SimTime stamp_of(NodeId writer, std::uint64_t seq) const;

  /// Plain version-vector view (counts only) for ordering decisions.
  [[nodiscard]] VersionVector counts() const;

  /// Compare the histories under the version-vector partial order.
  [[nodiscard]] static Order compare(const ExtendedVersionVector& a,
                                     const ExtendedVersionVector& b);

  /// Timestamp of the most recent update known here (0 if none).
  [[nodiscard]] SimTime latest_update_time() const;

  /// Largest time point T such that this replica and `reference` knew
  /// exactly the same set of updates with stamps <= T.  0 if they diverge
  /// from the very first update.
  [[nodiscard]] SimTime last_consistent_time(
      const ExtendedVersionVector& reference) const;

  /// Compute the TACT triple of this replica against a reference state
  /// (§4.4.1): numerical = meta gap, order = missing + extra updates,
  /// staleness = reference's latest update minus last consistent point.
  [[nodiscard]] TactTriple triple_against(
      const ExtendedVersionVector& reference) const;

  /// Union of the two histories; per-writer lists must be prefix-compatible
  /// (same (writer, seq) => same stamp).  Meta-data is taken from whichever
  /// side has the later latest update; the replica layer recomputes the
  /// authoritative value after applying actual update contents.
  void merge(const ExtendedVersionVector& other);

  /// Updates present in `other` but not here, as (writer, seq) pairs —
  /// exactly what a resolution round must fetch.
  [[nodiscard]] std::vector<std::pair<NodeId, std::uint64_t>> missing_from(
      const ExtendedVersionVector& other) const;

  /// Current application meta-data value (the "[5]" column in Figure 5).
  [[nodiscard]] double meta() const { return meta_; }
  void set_meta(double m) { meta_ = m; }

  /// The attached triple (errors vs the chosen reference; zero when the
  /// replica believes it is consistent — Figure 4(b)).
  [[nodiscard]] const TactTriple& triple() const { return triple_; }
  void set_triple(const TactTriple& t) { triple_ = t; }

  /// Estimated serialized size, for message accounting.
  [[nodiscard]] std::uint32_t wire_bytes() const;

  [[nodiscard]] std::uint64_t total_updates() const;
  [[nodiscard]] bool empty() const { return stamps_.empty(); }
  [[nodiscard]] std::size_t writer_count() const { return stamps_.size(); }

  /// "<A:2(1,2) B:1(1) [5.0] <num=..>>" rendering per Figure 5.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const ExtendedVersionVector&,
                         const ExtendedVersionVector&) = default;

 private:
  /// Position of `writer`'s entry, or the insertion point keeping stamps_
  /// sorted.
  [[nodiscard]] std::size_t lower_bound(NodeId writer) const;
  [[nodiscard]] const std::vector<SimTime>* stamps_of(NodeId writer) const;

  std::vector<WriterStamps> stamps_;  ///< Sorted by writer id.
  double meta_ = 0.0;
  TactTriple triple_{};
};

}  // namespace idea::vv
