#pragma once
/// \file version_vector.hpp
/// \brief Classic version vectors (Parker et al. [19]) — conflict detection.
///
/// A version vector maps each writer to the number of updates it has applied
/// to a file.  Two replicas are consistent iff their vectors are equal; a
/// replica strictly dominated by another can catch up by learning from it;
/// incomparable vectors mean a true conflict that a resolution policy must
/// arbitrate (IDEA §4.3, §4.5.1).
///
/// Storage is a flat sorted vector (writer sets are small — replica-group
/// sized — and vectors are copied into every detect/resolve message, so a
/// contiguous buffer beats a node-per-writer tree): lookups binary-search,
/// merge and compare are linear two-pointer walks, and copying is one
/// allocation + memcpy.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.hpp"

namespace idea::vv {

/// Outcome of comparing two version vectors under the standard partial order.
enum class Order {
  kEqual,       ///< identical histories
  kBefore,      ///< left is an ancestor of right (left < right)
  kAfter,       ///< left dominates right (left > right)
  kConcurrent,  ///< incomparable — a conflict
};

class VersionVector {
 public:
  /// One (writer, update-count) entry; entries() is sorted by writer.
  using Entry = std::pair<NodeId, std::uint64_t>;

  VersionVector() = default;

  /// Number of updates recorded for `writer` (0 if absent).
  [[nodiscard]] std::uint64_t get(NodeId writer) const;

  /// Record one more update by `writer`; returns the new count.
  std::uint64_t increment(NodeId writer);

  /// Force a specific count (used when deserializing / in tests).
  void set(NodeId writer, std::uint64_t count);

  /// Pointwise maximum — the least upper bound of the two histories.
  void merge(const VersionVector& other);

  /// Compare under the standard partial order.
  [[nodiscard]] static Order compare(const VersionVector& a,
                                     const VersionVector& b);

  /// True iff every entry of `other` is <= the matching entry here.
  [[nodiscard]] bool dominates(const VersionVector& other) const;

  /// True iff compare(*this, other) == kConcurrent.
  [[nodiscard]] bool concurrent_with(const VersionVector& other) const;

  /// Sum of all counts = total updates known.
  [[nodiscard]] std::uint64_t total() const;

  /// Number of writers with a nonzero entry.
  [[nodiscard]] std::size_t writer_count() const { return counts_.size(); }

  [[nodiscard]] const std::vector<Entry>& entries() const { return counts_; }

  /// "(A:3 B:5)" rendering used in traces, mirroring the paper's notation.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const VersionVector&, const VersionVector&) = default;

 private:
  /// Position of `writer`'s entry, or the insertion point keeping counts_
  /// sorted.
  [[nodiscard]] std::size_t lower_bound(NodeId writer) const;

  std::vector<Entry> counts_;  ///< Sorted by writer id; counts are nonzero.
};

}  // namespace idea::vv
