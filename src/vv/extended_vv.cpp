#include "vv/extended_vv.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace idea::vv {

std::size_t ExtendedVersionVector::lower_bound(NodeId writer) const {
  const auto it = std::lower_bound(
      stamps_.begin(), stamps_.end(), writer,
      [](const WriterStamps& e, NodeId w) { return e.first < w; });
  return static_cast<std::size_t>(it - stamps_.begin());
}

const std::vector<SimTime>* ExtendedVersionVector::stamps_of(
    NodeId writer) const {
  const std::size_t i = lower_bound(writer);
  return i < stamps_.size() && stamps_[i].first == writer
             ? &stamps_[i].second
             : nullptr;
}

void ExtendedVersionVector::record_update(NodeId writer, SimTime when,
                                          double meta_after) {
  const std::size_t i = lower_bound(writer);
  if (i == stamps_.size() || stamps_[i].first != writer) {
    stamps_.insert(stamps_.begin() + static_cast<std::ptrdiff_t>(i),
                   WriterStamps{writer, {}});
  }
  auto& list = stamps_[i].second;
  assert((list.empty() || list.back() <= when) &&
         "a writer's stamps must be non-decreasing");
  list.push_back(when);
  meta_ = meta_after;
}

std::uint64_t ExtendedVersionVector::count_of(NodeId writer) const {
  const std::vector<SimTime>* list = stamps_of(writer);
  return list == nullptr ? 0 : list->size();
}

SimTime ExtendedVersionVector::stamp_of(NodeId writer,
                                        std::uint64_t seq) const {
  const std::vector<SimTime>* list = stamps_of(writer);
  if (list == nullptr || seq == 0 || seq > list->size()) {
    return kNever;
  }
  return (*list)[seq - 1];
}

VersionVector ExtendedVersionVector::counts() const {
  VersionVector v;
  // stamps_ is writer-sorted, so each set() appends at the end — linear.
  for (const auto& [w, list] : stamps_) {
    v.set(w, list.size());
  }
  return v;
}

Order ExtendedVersionVector::compare(const ExtendedVersionVector& a,
                                     const ExtendedVersionVector& b) {
  return VersionVector::compare(a.counts(), b.counts());
}

SimTime ExtendedVersionVector::latest_update_time() const {
  SimTime latest = 0;
  for (const auto& [w, list] : stamps_) {
    if (!list.empty()) latest = std::max(latest, list.back());
  }
  return latest;
}

SimTime ExtendedVersionVector::last_consistent_time(
    const ExtendedVersionVector& reference) const {
  // Find the earliest divergence stamp across all writers; every shared
  // stamp strictly before it is a time at which the two histories agreed.
  SimTime divergence = kNever;
  auto consider_writer = [&](const std::vector<SimTime>* mine,
                             const std::vector<SimTime>* theirs) {
    const std::size_t n_mine = mine ? mine->size() : 0;
    const std::size_t n_theirs = theirs ? theirs->size() : 0;
    const std::size_t common = std::min(n_mine, n_theirs);
    // The shared (writer, seq) prefix has identical stamps by invariant.
    if (n_mine > common) divergence = std::min(divergence, (*mine)[common]);
    if (n_theirs > common)
      divergence = std::min(divergence, (*theirs)[common]);
  };
  auto ia = stamps_.begin();
  auto ib = reference.stamps_.begin();
  while (ia != stamps_.end() || ib != reference.stamps_.end()) {
    if (ib == reference.stamps_.end() ||
        (ia != stamps_.end() && ia->first < ib->first)) {
      consider_writer(&ia->second, nullptr);
      ++ia;
    } else if (ia == stamps_.end() || ib->first < ia->first) {
      consider_writer(nullptr, &ib->second);
      ++ib;
    } else {
      consider_writer(&ia->second, &ib->second);
      ++ia;
      ++ib;
    }
  }
  if (divergence == kNever) {
    // Histories identical: consistent as of the latest update (or t=0).
    return latest_update_time();
  }
  // Largest shared stamp strictly before the divergence point.
  SimTime last = 0;
  for (const auto& [w, list] : stamps_) {
    const std::uint64_t shared =
        std::min<std::uint64_t>(list.size(), reference.count_of(w));
    for (std::uint64_t k = 0; k < shared; ++k) {
      if (list[k] < divergence) last = std::max(last, list[k]);
    }
  }
  return last;
}

TactTriple ExtendedVersionVector::triple_against(
    const ExtendedVersionVector& reference) const {
  TactTriple t;
  t.numerical_error = std::abs(meta_ - reference.meta_);
  // Order error: updates in the reference we miss + updates we have that the
  // reference lacks (§4.4.1's "misses one update and has two extra ones").
  double missing = 0;
  double extra = 0;
  auto ia = stamps_.begin();
  auto ib = reference.stamps_.begin();
  auto tally = [&](std::size_t mine, std::size_t theirs) {
    if (theirs > mine) missing += static_cast<double>(theirs - mine);
    if (mine > theirs) extra += static_cast<double>(mine - theirs);
  };
  while (ia != stamps_.end() || ib != reference.stamps_.end()) {
    if (ib == reference.stamps_.end() ||
        (ia != stamps_.end() && ia->first < ib->first)) {
      tally(ia->second.size(), 0);
      ++ia;
    } else if (ia == stamps_.end() || ib->first < ia->first) {
      tally(0, ib->second.size());
      ++ib;
    } else {
      tally(ia->second.size(), ib->second.size());
      ++ia;
      ++ib;
    }
  }
  t.order_error = missing + extra;
  const SimTime ref_latest = reference.latest_update_time();
  const SimTime consistent_at = last_consistent_time(reference);
  t.staleness_sec =
      ref_latest > consistent_at ? to_sec(ref_latest - consistent_at) : 0.0;
  return t;
}

void ExtendedVersionVector::merge(const ExtendedVersionVector& other) {
  const bool other_newer =
      other.latest_update_time() > latest_update_time();
  // Walk both writer-sorted spines; writers known only to `other` are
  // batch-appended and restored to sorted order once at the end.
  const std::size_t original = stamps_.size();
  std::size_t i = 0;
  for (const auto& [w, theirs] : other.stamps_) {
    while (i < original && stamps_[i].first < w) ++i;
    if (i < original && stamps_[i].first == w) {
      auto& mine = stamps_[i].second;
      if (theirs.size() > mine.size()) {
        // Prefix compatibility: shared (writer, seq) stamps must agree.
        for (std::size_t k = 0; k < mine.size(); ++k) {
          assert(mine[k] == theirs[k] && "divergent stamps for same update");
        }
        mine.assign(theirs.begin(), theirs.end());
      }
    } else {
      stamps_.emplace_back(w, theirs);
    }
  }
  if (stamps_.size() > original) {
    std::inplace_merge(
        stamps_.begin(), stamps_.begin() + static_cast<std::ptrdiff_t>(original),
        stamps_.end(), [](const WriterStamps& a, const WriterStamps& b) {
          return a.first < b.first;
        });
  }
  if (other_newer) meta_ = other.meta_;
}

std::vector<std::pair<NodeId, std::uint64_t>>
ExtendedVersionVector::missing_from(
    const ExtendedVersionVector& other) const {
  std::vector<std::pair<NodeId, std::uint64_t>> out;
  for (const auto& [w, theirs] : other.stamps_) {
    const std::uint64_t mine = count_of(w);
    for (std::uint64_t seq = mine + 1; seq <= theirs.size(); ++seq) {
      out.emplace_back(w, seq);
    }
  }
  return out;
}

std::uint32_t ExtendedVersionVector::wire_bytes() const {
  // writer id (4) + count (4) per entry, 8 bytes per stamp, meta (8),
  // triple (24), header (16).
  std::uint64_t bytes = 16 + 8 + 24;
  for (const auto& [w, list] : stamps_) {
    bytes += 8 + 8 * list.size();
  }
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(bytes, UINT32_MAX));
}

std::uint64_t ExtendedVersionVector::total_updates() const {
  std::uint64_t t = 0;
  for (const auto& [w, list] : stamps_) t += list.size();
  return t;
}

std::string ExtendedVersionVector::to_string() const {
  std::string out = "<";
  bool first = true;
  for (const auto& [w, list] : stamps_) {
    if (!first) out += ' ';
    first = false;
    out += node_name(w);
    out += ':';
    out += std::to_string(list.size());
    out += '(';
    for (std::size_t k = 0; k < list.size(); ++k) {
      if (k) out += ',';
      out += format_time(list[k]);
    }
    out += ')';
  }
  char meta_buf[48];
  std::snprintf(meta_buf, sizeof(meta_buf), " [%.3f] ", meta_);
  out += meta_buf;
  out += triple_.to_string();
  out += '>';
  return out;
}

}  // namespace idea::vv
