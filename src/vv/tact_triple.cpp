#include "vv/tact_triple.hpp"

#include <algorithm>
#include <cstdio>

namespace idea::vv {

TactTriple TactTriple::max_of(const TactTriple& a, const TactTriple& b) {
  return TactTriple{std::max(a.numerical_error, b.numerical_error),
                    std::max(a.order_error, b.order_error),
                    std::max(a.staleness_sec, b.staleness_sec)};
}

std::string TactTriple::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<num=%.3f, order=%.3f, stale=%.3fs>",
                numerical_error, order_error, staleness_sec);
  return buf;
}

}  // namespace idea::vv
