#pragma once
/// \file tact_triple.hpp
/// \brief The TACT-style <numerical error, order error, staleness> triple.
///
/// IDEA adopts TACT's three-dimensional inconsistency metric (§4.4): the
/// numerical gap of application meta-data against a reference replica, the
/// count of out-of-order / missing / extra updates, and how long the replica
/// has been inconsistent.  The triple is carried inside the extended version
/// vector and fed to the consistency-level formula.

#include <string>

#include "util/time.hpp"

namespace idea::vv {

struct TactTriple {
  double numerical_error = 0.0;  ///< |meta(replica) - meta(reference)|
  double order_error = 0.0;      ///< missing + extra updates vs reference
  double staleness_sec = 0.0;    ///< seconds since last consistent point

  [[nodiscard]] bool is_zero() const {
    return numerical_error == 0.0 && order_error == 0.0 &&
           staleness_sec == 0.0;
  }

  /// Component-wise maximum; used when folding multiple pairwise triples
  /// into a worst-case view.
  [[nodiscard]] static TactTriple max_of(const TactTriple& a,
                                         const TactTriple& b);

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const TactTriple&, const TactTriple&) = default;
};

/// Per-metric maxima used to normalize the triple into [0,1] terms.  The
/// paper's example sets all three to 10; applications calibrate them via
/// `set_consistency_metric` (Table 1).
struct TripleMaxima {
  double numerical = 10.0;
  double order = 10.0;
  double staleness_sec = 10.0;

  [[nodiscard]] bool valid() const {
    return numerical > 0 && order > 0 && staleness_sec > 0;
  }
};

/// Per-metric weights (Formula 1).  Need not sum to exactly 1; the formula
/// normalizes, so "0.33/0.33/0.33" behaves as equal thirds like the paper's
/// example.
struct TripleWeights {
  double numerical = 1.0 / 3.0;
  double order = 1.0 / 3.0;
  double staleness = 1.0 / 3.0;

  [[nodiscard]] double sum() const { return numerical + order + staleness; }
  [[nodiscard]] bool valid() const {
    return numerical >= 0 && order >= 0 && staleness >= 0 && sum() > 0;
  }
};

}  // namespace idea::vv
