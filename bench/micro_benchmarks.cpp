/// \file micro_benchmarks.cpp
/// \brief google-benchmark microbenchmarks for the hot primitives:
///        version-vector algebra, extended-VV triple computation, the
///        consistency formula, the event queue, and a full simulated
///        detection round.

#include <benchmark/benchmark.h>

#include "core/cluster.hpp"
#include "core/formula.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vv/extended_vv.hpp"

namespace idea {
namespace {

vv::VersionVector make_vv(std::size_t writers, std::uint64_t seed) {
  vv::VersionVector v;
  Rng rng(seed);
  for (std::size_t w = 0; w < writers; ++w) {
    v.set(static_cast<NodeId>(w), rng.next_below(100) + 1);
  }
  return v;
}

vv::ExtendedVersionVector make_evv(std::size_t writers,
                                   std::size_t updates_per_writer,
                                   std::uint64_t seed) {
  vv::ExtendedVersionVector e;
  Rng rng(seed);
  for (std::size_t w = 0; w < writers; ++w) {
    SimTime t = 0;
    for (std::size_t u = 0; u < updates_per_writer; ++u) {
      t += static_cast<SimTime>(rng.next_below(1'000'000));
      e.record_update(static_cast<NodeId>(w), t, rng.uniform01() * 100);
    }
  }
  return e;
}

void BM_VersionVectorCompare(benchmark::State& state) {
  const auto writers = static_cast<std::size_t>(state.range(0));
  const auto a = make_vv(writers, 1);
  const auto b = make_vv(writers, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vv::VersionVector::compare(a, b));
  }
}
BENCHMARK(BM_VersionVectorCompare)->Arg(4)->Arg(16)->Arg(64);

void BM_VersionVectorMerge(benchmark::State& state) {
  const auto writers = static_cast<std::size_t>(state.range(0));
  const auto a = make_vv(writers, 1);
  const auto b = make_vv(writers, 2);
  for (auto _ : state) {
    auto m = a;
    m.merge(b);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_VersionVectorMerge)->Arg(4)->Arg(16)->Arg(64);

void BM_ExtendedVvTriple(benchmark::State& state) {
  const auto updates = static_cast<std::size_t>(state.range(0));
  const auto a = make_evv(4, updates, 3);
  const auto b = make_evv(4, updates, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.triple_against(b));
  }
}
BENCHMARK(BM_ExtendedVvTriple)->Arg(8)->Arg(64)->Arg(512);

void BM_ConsistencyFormula(benchmark::State& state) {
  const vv::TactTriple t{3.2, 1.5, 7.9};
  const vv::TripleWeights w{0.4, 0.3, 0.3};
  const vv::TripleMaxima m{10, 10, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::consistency_level(t, w, m));
  }
}
BENCHMARK(BM_ConsistencyFormula);

void BM_EventQueueThroughput(benchmark::State& state) {
  const auto events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    Rng rng(7);
    for (int i = 0; i < events; ++i) {
      sim.schedule_at(static_cast<SimTime>(rng.next_below(1'000'000)),
                      [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1024)->Arg(16384);

void BM_DetectionRound(benchmark::State& state) {
  // Full simulated top-layer detection round on a warm 40-node cluster.
  core::ClusterConfig cfg;
  cfg.nodes = 40;
  cfg.sync_sizes();
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({3, 11, 22, 37}, sec(25));
  for (auto _ : state) {
    bool done = false;
    cluster.node(3).probe(
        [&done](const detect::DetectionResult&) { done = true; });
    while (!done) cluster.sim().step();
    benchmark::DoNotOptimize(done);
  }
}
BENCHMARK(BM_DetectionRound);

}  // namespace
}  // namespace idea

BENCHMARK_MAIN();
