/// \file fig7_hint.cpp
/// \brief Figure 7(a)/(b): the adaptive interface under a standing hint.
///
/// 40 Planet-Lab-like nodes, four concurrent writers of one file; after
/// warm-up the writers form the top layer.  Each writer updates every 5 s
/// for 100 s (20 updates).  The run is repeated for hint levels 95% and 85%
/// (or the --hint given).  Every 5 s we sample the consistency level of the
/// worst writer ("view from the user") and the average across writers
/// ("system average"); IDEA's hint controller invokes active resolution
/// whenever a level falls below the hint.
///
/// Paper's observations to reproduce in shape: the level dips just below
/// the hint (94% for a 95% hint, 84% for 85%) and is restored within one
/// sampling interval.

#include "bench/common.hpp"

namespace idea::bench {
namespace {

struct RunResult {
  TimeSeries worst{"view from the user"};
  TimeSeries average{"system average"};
};

RunResult run_hint(double hint, std::uint64_t seed, SimDuration duration,
                   SeriesCsv* csv, const std::string& csv_prefix) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.0;  // bystanders are not users (Table 1)
  core::IdeaCluster cluster(cfg);
  cluster.start();
  // Only the participants give IDEA a hint; the other 36 nodes are
  // bottom-layer bystanders.
  for (NodeId w : kWriters) cluster.node(w).set_hint(hint);
  cluster.warm_up(kWriters, sec(25));
  // Settle to a common base so the measured window starts consistent.
  cluster.node(kWriters.front()).demand_active_resolution();
  cluster.run_for(sec(5));

  RunResult result;
  const SimTime t0 = cluster.sim().now();
  int index = 0;
  for (SimDuration t = 0; t < duration; t += sec(5)) {
    write_burst(cluster, index++, seed);
    // Sample shortly after the burst, when inconsistency peaks: detection
    // has seen the conflict but resolution may still be in flight.
    cluster.run_for(msec(400));
    const double now_sec = to_sec(cluster.sim().now() - t0);
    const LevelSnapshot snap = snapshot_levels(cluster);
    result.worst.add(now_sec, snap.worst);
    result.average.add(now_sec, snap.average);
    if (csv != nullptr) {
      csv->add(csv_prefix + ":worst", now_sec, snap.worst);
      csv->add(csv_prefix + ":average", now_sec, snap.average);
    }
    cluster.run_for(sec(5) - msec(400));
  }
  return result;
}

void report(double hint, const RunResult& r) {
  print_header("Figure 7: hint level " +
               TextTable::percent(hint, 0) +
               " (view from the user / system average vs time)");
  TextTable table({"t (s)", "view from the user", "system average"});
  for (std::size_t i = 0; i < r.worst.size(); ++i) {
    table.add_row({TextTable::num(r.worst.time_at(i), 1),
                   TextTable::percent(r.worst.value_at(i), 1),
                   TextTable::percent(r.average.value_at(i), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("lowest user-view level: %s (hint %s)\n",
              TextTable::percent(r.worst.min_value(), 1).c_str(),
              TextTable::percent(hint, 0).c_str());
  std::printf("paper: lowest level ~ hint - 1%% (94%% / 84%%), restored "
              "within one 5 s sample\n");
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  const SimDuration duration = sec(flags.get_int("duration", 100));
  std::unique_ptr<SeriesCsv> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<SeriesCsv>(flags.get_string("csv", "fig7.csv"));
  }

  std::vector<double> hints;
  if (flags.has("hint")) {
    hints.push_back(flags.get_double("hint", 0.95));
  } else {
    hints = {0.95, 0.85};  // Figure 7(a) and 7(b)
  }
  for (double hint : hints) {
    const RunResult r = run_hint(hint, seed, duration, csv.get(),
                                 "hint" + TextTable::num(hint, 2));
    report(hint, r);
  }
  return 0;
}
