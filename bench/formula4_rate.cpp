/// \file formula4_rate.cpp
/// \brief §6.3.2 / Formula 4: deriving the optimal background-resolution
///        rate from available bandwidth, bandwidth cap and per-round cost.
///
/// We measure the real per-round communication cost c of a background round
/// in the booking deployment, then sweep the available bandwidth b and cap
/// x%, printing the optimal rate b*x%/c and the period IDEA would choose —
/// including the clamping applied by learned over/undersell bounds.

#include "bench/common.hpp"
#include "core/controller.hpp"

namespace idea::bench {
namespace {

/// Measure the mean wire bytes of one background-resolution round.
double measure_round_cost(std::uint64_t seed) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kFullyAutomatic;
  cfg.idea.background_period = sec(20);
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up(kWriters, sec(25));

  std::uint64_t rounds = 0;
  cluster.node(kWriters.front())
      .set_round_listener([&](const core::RoundStats& s) {
        if (s.succeeded && !s.active) ++rounds;
      });
  cluster.transport().counters().reset();
  int index = 0;
  for (SimDuration t = 0; t < sec(100); t += sec(5)) {
    write_burst(cluster, index++, seed);
    cluster.run_for(sec(5));
  }
  std::uint64_t resolve_bytes = 0;
  for (const auto& [type, count] : cluster.transport().counters().by_type()) {
    (void)count;
  }
  // Approximate resolve bytes by message share (all resolve messages).
  const auto& c = cluster.transport().counters();
  const double resolve_fraction =
      static_cast<double>(c.messages_with_prefix("resolve.")) /
      static_cast<double>(std::max<std::uint64_t>(1, c.total_messages()));
  resolve_bytes = static_cast<std::uint64_t>(
      resolve_fraction * static_cast<double>(c.total_bytes()));
  return rounds > 0 ? static_cast<double>(resolve_bytes) /
                          static_cast<double>(rounds)
                    : 0.0;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  const double c_bytes = measure_round_cost(seed);
  print_header("Formula 4: optimal background-resolution rate");
  std::printf("measured one-round communication cost c = %.0f bytes\n\n",
              c_bytes);

  TextTable table({"available bandwidth b", "cap x%", "optimal rate (Hz)",
                   "period (s)"});
  for (const double b_kbps : {64.0, 256.0, 1024.0, 8192.0}) {
    for (const double cap : {0.05, 0.20}) {
      core::ControllerConfig ccfg;
      ccfg.mode = core::AdaptiveMode::kFullyAutomatic;
      ccfg.available_bandwidth = b_kbps * 1024.0 / 8.0;  // kbit/s -> B/s
      ccfg.bandwidth_cap_fraction = cap;
      double chosen_period = 0.0;
      core::AdaptiveController controller(
          ccfg, [] {}, [&](SimDuration p) { chosen_period = to_sec(p); });
      controller.observe_round_cost(c_bytes);
      const double rate = controller.adjust_frequency();
      char bw[32];
      std::snprintf(bw, sizeof(bw), "%.0f kbit/s", b_kbps);
      table.add_row({bw, TextTable::percent(cap, 0),
                     TextTable::num(rate, 4),
                     TextTable::num(chosen_period, 1)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("optimal_rate = b * x%% / c (Formula 4), clamped into the "
              "learned [oversell, undersell] frequency window\n");
  return 0;
}
