/// \file ablation_flat_vs_twolayer.cpp
/// \brief Ablation of the paper's central design choice (§4.1): detect and
///        resolve within a small temperature-selected top layer vs a flat
///        architecture where every node participates.
///
/// We build the same 40-node deployment and run one resolution round and
/// one detection round twice: once over the 4-writer top layer, once over
/// all 40 nodes.  The paper's argument — the top layer makes detection and
/// resolution fast because its size tracks the number of *active writers*,
/// not the network — falls out directly: the sequential resolution round
/// over the flat membership costs ~10x more time and messages.

#include <memory>

#include "bench/common.hpp"
#include "core/resolution.hpp"
#include "net/dispatcher.hpp"
#include "net/sim_transport.hpp"
#include "util/stats.hpp"

namespace idea::bench {
namespace {

struct AblationResult {
  double active_ms = 0.0;
  double detect_ms = 0.0;
  std::uint64_t resolve_msgs = 0;
};

AblationResult run(bool flat, std::uint64_t seed) {
  constexpr std::uint32_t kNodes = 40;
  sim::PlanetLabParams lat;
  lat.nodes = kNodes;
  lat.diameter_delay = msec(120);
  lat.placement_seed = seed;
  sim::PlanetLabLatency latency(lat);
  sim::Simulator sim;
  net::SimTransportOptions topt;
  topt.node_count = kNodes;
  topt.seed = seed;
  net::SimTransport transport(sim, latency, topt);

  std::vector<NodeId> membership;
  if (flat) {
    for (NodeId n = 0; n < kNodes; ++n) membership.push_back(n);
  } else {
    membership = kWriters;
  }

  core::ResolutionConfig rcfg;
  rcfg.policy.deployment_seed = seed;
  rcfg.collect_processing = msec(8);

  std::vector<std::unique_ptr<replica::ReplicaStore>> stores;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<core::ResolutionManager>> managers;
  for (NodeId n = 0; n < kNodes; ++n) {
    stores.push_back(std::make_unique<replica::ReplicaStore>(n, 1));
    dispatchers.push_back(std::make_unique<net::Dispatcher>());
    managers.push_back(std::make_unique<core::ResolutionManager>(
        n, 1, transport, *stores[n], [&membership] { return membership; },
        rcfg, seed + n));
    dispatchers[n]->route("resolve.", managers[n].get());
    transport.attach(n, dispatchers[n].get());
  }

  // The active writers diverge (same workload in both configurations).
  auto gen = apps::make_stroke_generator(seed);
  for (NodeId w : kWriters) {
    auto [content, meta] = gen(w, 0);
    stores[w]->apply_local(sim.now() + msec(w), content, meta);
  }

  AblationResult result;
  core::RoundStats stats;
  managers[kWriters.front()]->set_round_callback(
      [&](const core::RoundStats& s) { stats = s; });
  managers[kWriters.front()]->start_active();
  sim.run_until(sim.now() + sec(60));
  result.active_ms = to_ms(stats.phase1_dispatch + stats.phase2_collect);
  result.resolve_msgs = transport.counters().messages_with_prefix("resolve.");

  // Detection-round latency over the same membership: one probe fan-out,
  // wait for all replies — approximated analytically from the latency
  // model (max RTT over the membership from the initiator).
  SimDuration worst_rtt = 0;
  for (NodeId peer : membership) {
    if (peer == kWriters.front()) continue;
    worst_rtt = std::max(worst_rtt, 2 * latency.mean(kWriters.front(), peer));
  }
  result.detect_ms = to_ms(worst_rtt);
  return result;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  RunningStat two_ms, flat_ms, two_msgs, flat_msgs, two_det, flat_det;
  for (int rep = 0; rep < 5; ++rep) {
    const AblationResult two = run(/*flat=*/false, seed + 10u * rep);
    const AblationResult flat = run(/*flat=*/true, seed + 10u * rep);
    two_ms.add(two.active_ms);
    flat_ms.add(flat.active_ms);
    two_msgs.add(static_cast<double>(two.resolve_msgs));
    flat_msgs.add(static_cast<double>(flat.resolve_msgs));
    two_det.add(two.detect_ms);
    flat_det.add(flat.detect_ms);
  }

  print_header("Ablation: two-layer (top layer of 4) vs flat (all 40 "
               "nodes) detection/resolution");
  TextTable table({"architecture", "active resolution (ms)",
                   "resolve messages", "detection round (ms)"});
  table.add_row({"two-layer (paper)", TextTable::num(two_ms.mean(), 1),
                 TextTable::num(two_msgs.mean(), 1),
                 TextTable::num(two_det.mean(), 1)});
  table.add_row({"flat", TextTable::num(flat_ms.mean(), 1),
                 TextTable::num(flat_msgs.mean(), 1),
                 TextTable::num(flat_det.mean(), 1)});
  std::printf("%s", table.render().c_str());
  std::printf("resolution slowdown of flat vs two-layer: %.1fx in time, "
              "%.1fx in messages\n",
              flat_ms.mean() / two_ms.mean(),
              flat_msgs.mean() / two_msgs.mean());
  std::printf("paper (§4.1): \"due to the top-layer's relatively small "
              "size, it is much faster to detect and resolve inconsistency "
              "among its members than the whole network\"\n");
  return 0;
}
