/// \file fig9_scalability.cpp
/// \brief Figure 9: scalability of active resolution with top-layer size.
///
/// The paper extrapolates Formula 2, Delay = 0.468 + 104.747 * (n-1) ms,
/// from the Table 2 measurement and plots it for n <= 10.  We measure the
/// real delay for n = 2..10 concurrent writers, print it against the
/// analytic extrapolation (using our own measured per-member cost), and add
/// two ablations the paper discusses: parallel phase 2 ("not difficult to
/// exploit parallelism") and background rounds (Formula 3: no phase 1).

#include "bench/common.hpp"
#include "util/stats.hpp"

namespace idea::bench {
namespace {

struct Point {
  std::size_t top_layer = 0;
  double active_ms = 0.0;
  double background_ms = 0.0;
  double parallel_ms = 0.0;
  double phase1_dispatch_ms = 0.0;
};

Point measure_once(std::uint32_t n_writers, bool parallel_collect,
                   std::uint64_t seed) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.resolution.parallel_collect = parallel_collect;
  core::IdeaCluster cluster(cfg);
  cluster.start();

  std::vector<NodeId> writers;
  for (std::uint32_t i = 0; i < n_writers; ++i) {
    writers.push_back(static_cast<NodeId>((i * 40) / n_writers));
  }
  cluster.warm_up(writers, sec(25));
  auto gen = apps::make_stroke_generator(seed);
  for (NodeId w : writers) {
    auto [content, meta] = gen(w, 1);
    cluster.node(w).write(std::move(content), meta);
  }
  cluster.run_for(sec(2));

  Point p;
  p.top_layer = writers.size();
  const NodeId initiator = writers.front();

  core::RoundStats stats;
  cluster.node(initiator).set_round_listener(
      [&](const core::RoundStats& s) { stats = s; });
  cluster.node(initiator).demand_active_resolution();
  cluster.run_for(sec(30));
  p.active_ms = to_ms(stats.phase1_dispatch + stats.phase2_collect);
  p.phase1_dispatch_ms = to_ms(stats.phase1_dispatch);
  if (parallel_collect) {
    p.parallel_ms = to_ms(stats.phase2_collect);
  }

  // Background round (Formula 3): phase 2 only.
  auto gen2 = apps::make_stroke_generator(seed ^ 0x55);
  for (NodeId w : writers) {
    auto [content, meta] = gen2(w, 2);
    cluster.node(w).write(std::move(content), meta);
  }
  cluster.run_for(sec(2));
  cluster.node(initiator).resolution().start_background();
  cluster.run_for(sec(30));
  p.background_ms = to_ms(stats.phase2_collect);
  return p;
}

/// Average several topology/jitter samples per point; one Planet-Lab
/// placement is a single draw of pairwise distances, so a lone run is noisy.
Point measure(std::uint32_t n_writers, bool parallel_collect,
              std::uint64_t seed, int reps) {
  Point avg;
  avg.top_layer = n_writers;
  int ok = 0;
  for (int r = 0; r < reps; ++r) {
    const Point p =
        measure_once(n_writers, parallel_collect, seed + 1000u * r);
    if (p.active_ms <= 0 && p.background_ms <= 0 && p.parallel_ms <= 0) {
      continue;
    }
    avg.active_ms += p.active_ms;
    avg.background_ms += p.background_ms;
    avg.parallel_ms += p.parallel_ms;
    avg.phase1_dispatch_ms += p.phase1_dispatch_ms;
    ++ok;
  }
  if (ok > 0) {
    avg.active_ms /= ok;
    avg.background_ms /= ok;
    avg.parallel_ms /= ok;
    avg.phase1_dispatch_ms /= ok;
  }
  return avg;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  const auto max_n =
      static_cast<std::uint32_t>(flags.get_int("max-top-layer", 10));

  const int reps = static_cast<int>(flags.get_int("reps", 5));
  std::vector<Point> sequential, parallel;
  for (std::uint32_t n = 2; n <= max_n; ++n) {
    sequential.push_back(
        measure(n, /*parallel_collect=*/false, seed + n, reps));
    parallel.push_back(
        measure(n, /*parallel_collect=*/true, seed + 77 + n, reps));
  }

  // Calibrate our own Formula 2 from the n=4 sequential point, the way the
  // paper calibrates from Table 2.
  double per_member = 104.747;
  double dispatch_const = 0.468;
  for (const Point& p : sequential) {
    if (p.top_layer == 4) {
      per_member = (p.active_ms - p.phase1_dispatch_ms) / 3.0;
      dispatch_const = p.phase1_dispatch_ms;
    }
  }

  print_header("Figure 9: active-resolution delay vs top-layer size");
  TextTable table({"n", "measured active (ms)", "formula 2 (ms)",
                   "background (ms)", "parallel phase 2 (ms)",
                   "paper formula (ms)"});
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    const Point& p = sequential[i];
    const double n_minus_1 = static_cast<double>(p.top_layer - 1);
    table.add_row({
        TextTable::integer(static_cast<long long>(p.top_layer)),
        TextTable::num(p.active_ms, 1),
        TextTable::num(dispatch_const + per_member * n_minus_1, 1),
        TextTable::num(p.background_ms, 1),
        TextTable::num(parallel[i].parallel_ms, 1),
        TextTable::num(0.468 + 104.747 * n_minus_1, 1),
    });
  }
  std::printf("%s", table.render().c_str());
  std::printf("calibrated per-member cost: %.2f ms (paper: 104.747 ms)\n",
              per_member);
  std::printf("shape checks: sequential delay grows ~linearly in n; stays "
              "below 1 s for n <= 10; parallel phase 2 is ~flat in n\n");
  if (flags.has("csv")) {
    TextTable csv({"n", "active_ms", "background_ms", "parallel_ms"});
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      csv.add_row({TextTable::integer(
                       static_cast<long long>(sequential[i].top_layer)),
                   TextTable::num(sequential[i].active_ms, 3),
                   TextTable::num(sequential[i].background_ms, 3),
                   TextTable::num(parallel[i].parallel_ms, 3)});
    }
    csv.write_csv(flags.get_string("csv", "fig9.csv"));
  }
  return 0;
}
