/// \file shard_scalability.cpp
/// \brief Throughput scaling of the sharded cluster layer: files x nodes.
///
/// Sweeps deployments from 4 endpoints / 250 files up to 32 endpoints /
/// 2000 files (replication k=3 throughout), drives each with the same
/// open-loop key-value workload (workload::OpenLoopEngine, Zipf(0.9)
/// popularity at the old per-client aggregate rate), and reports
/// aggregate applied-write
/// throughput in simulated ops/s plus the wall-clock cost of simulating
/// it.  A final pair of runs repeats the largest deployment with and
/// without the BatchingTransport to isolate what per-tick coalescing
/// saves on the wire.
///
///   $ ./shard_scalability [--files 2000] [--endpoints 32] [--sim-secs 20]
///                         [--clients-per-endpoint 2] [--seed 2007]
///                         [--skip-sweep] [--no-compare]
///                         [--skip-window-sweep] [--window-csv out.csv]
///
/// The final section sweeps BatchingOptions::window (0, 1, 5, 20, 100 ms)
/// at quarter scale and reports the latency-vs-batch-size tradeoff: batch
/// factor and mean per-message queueing delay per window.

#include <chrono>
#include <cstdio>
#include <vector>

#include "apps/kvstore.hpp"
#include "bench/common.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::bench {
namespace {

struct RunResult {
  std::uint32_t endpoints = 0;
  std::uint32_t files = 0;
  std::uint64_t ops_attempted = 0;
  std::uint64_t puts_applied = 0;
  double sim_seconds = 0.0;
  double throughput = 0.0;       ///< Applied puts per simulated second.
  double wall_ms = 0.0;
  std::uint64_t wire_messages = 0;
  std::uint64_t logical_messages = 0;
  double batch_factor = 1.0;
  double avg_queue_wait_ms = 0.0;  ///< Mean batching delay per message.
  std::size_t converged = 0;
  std::size_t sampled = 0;
};

struct RunConfig {
  std::uint32_t endpoints = 32;
  std::uint32_t files = 2000;
  std::uint32_t clients_per_endpoint = 2;
  SimDuration sim_duration = sec(20);
  bool batching = true;
  /// BatchingOptions::window — how long a destination queue may wait for
  /// more traffic.  0 coalesces only same-tick sends.
  SimDuration batch_window = 0;
  std::uint64_t seed = 2007;
};

RunResult run_once(const RunConfig& rc) {
  const auto wall_start = std::chrono::steady_clock::now();

  shard::ShardedClusterConfig cfg;
  cfg.endpoints = rc.endpoints;
  cfg.replication = 3;
  cfg.batching = rc.batching;
  cfg.batch.window = rc.batch_window;
  cfg.seed = rc.seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  // Thousands of co-located tenants: stretch the periodic machinery a bit
  // so the event volume stays proportional to useful work.
  cfg.idea.detection_period = sec(2);
  shard::ShardedCluster cluster(cfg);

  cluster.place(1, rc.files);
  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = rc.files, .first_file = 1});
  // One open-loop write tenant standing in for all scripted clients: the
  // same aggregate arrival rate (clients / 250 ms) and Zipf(0.9) key
  // popularity the old per-client KvWorkload produced, now expressed
  // through the shared workload engine.
  const std::uint32_t clients = rc.endpoints * rc.clients_per_endpoint;
  workload::TenantSpec writes;
  writes.name = "kv-writers";
  writes.keys = rc.files * 4;
  writes.read_fraction = 0.0;
  writes.rate = steady_rate(static_cast<double>(clients) * 4.0);
  writes.zipf = steady_zipf(0.9);
  workload::OpenLoopEngine engine(
      cluster.sim(),
      workload::EngineOptions{cluster.sim().now(),
                              cluster.sim().now() + rc.sim_duration,
                              rc.seed ^ 0xBEEF},
      {writes}, [&](const workload::Op& op) {
        char key[16];
        std::snprintf(key, sizeof key, "k%06u", op.key);
        char value[32];
        std::snprintf(value, sizeof value, "op%llu",
                      static_cast<unsigned long long>(op.index));
        kv.put(key, value);
      });
  engine.start();
  cluster.run_for(rc.sim_duration + sec(10));  // run, then settle

  RunResult r;
  r.endpoints = rc.endpoints;
  r.files = rc.files;
  r.ops_attempted = engine.total_ops();
  r.puts_applied = kv.puts();
  r.sim_seconds = to_sec(rc.sim_duration);
  r.throughput = r.sim_seconds > 0.0
                     ? static_cast<double>(r.puts_applied) / r.sim_seconds
                     : 0.0;
  r.wire_messages = cluster.wire_counters().total_messages();
  if (cluster.batching() != nullptr) {
    r.logical_messages = cluster.batching()->stats().logical_messages;
    r.batch_factor = cluster.batching()->stats().batch_factor();
    r.avg_queue_wait_ms =
        cluster.batching()->stats().avg_queue_wait_usec() / 1000.0;
  } else {
    r.logical_messages = r.wire_messages;
  }
  // Convergence spot-check over a deterministic sample of tenants.
  for (FileId f = 1; f <= rc.files; f += 7) {
    ++r.sampled;
    if (cluster.converged(f)) ++r.converged;
  }
  r.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall_start)
                  .count();
  return r;
}

void add_row(TextTable& table, const RunResult& r, const char* note) {
  table.add_row({
      TextTable::integer(r.endpoints),
      TextTable::integer(r.files),
      TextTable::integer(static_cast<long long>(r.puts_applied)),
      TextTable::num(r.throughput, 1),
      TextTable::num(r.batch_factor, 2),
      TextTable::integer(static_cast<long long>(r.wire_messages)),
      TextTable::num(100.0 * static_cast<double>(r.converged) /
                         static_cast<double>(r.sampled),
                     1),
      TextTable::num(r.wall_ms, 0),
      note,
  });
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);

  RunConfig top;
  top.endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", 32));
  top.files = static_cast<std::uint32_t>(flags.get_int("files", 2000));
  top.clients_per_endpoint = static_cast<std::uint32_t>(
      flags.get_int("clients-per-endpoint", 2));
  top.sim_duration = sec_f(flags.get_double("sim-secs", 20.0));
  top.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  print_header("Shard scalability: aggregate throughput, files x nodes");
  TextTable table({"endpoints", "files", "puts", "puts/sim-s",
                   "batchx", "wire msgs", "converged %", "wall ms",
                   "note"});

  if (!flags.get_bool("skip-sweep", false)) {
    // Proportional sweep up to the headline deployment.
    const std::uint32_t divisors[] = {8, 4, 2};
    for (const std::uint32_t d : divisors) {
      RunConfig rc = top;
      rc.endpoints = std::max(2u, top.endpoints / d);
      rc.files = std::max(16u, top.files / d);
      add_row(table, run_once(rc), "");
    }
  }

  const RunResult headline = run_once(top);
  add_row(table, headline, "headline");

  RunResult unbatched;
  if (!flags.get_bool("no-compare", false)) {
    RunConfig rc = top;
    rc.batching = false;
    unbatched = run_once(rc);
    add_row(table, unbatched, "no batching");
  }

  std::printf("%s", table.render().c_str());

  // Batching window sweep (ROADMAP follow-up): a nonzero window holds
  // destination queues open so later sends can pile in — bigger batches
  // and fewer wire envelopes, paid for with per-message queueing delay.
  // Reported per window: batch factor, mean added delay, wire messages,
  // and the workload-level effects (applied puts, convergence).
  if (!flags.get_bool("skip-window-sweep", false)) {
    print_header("Batching window sweep: latency vs batch size");
    TextTable wtable({"window ms", "batchx", "avg wait ms", "wire msgs",
                      "puts/sim-s", "converged %", "wall ms"});
    const SimDuration windows[] = {0, msec(1), msec(5), msec(20), msec(100)};
    for (const SimDuration w : windows) {
      RunConfig rc = top;
      // Sweep at the quarter-scale deployment so the five runs stay cheap.
      rc.endpoints = std::max(2u, top.endpoints / 4);
      rc.files = std::max(16u, top.files / 4);
      rc.batch_window = w;
      const RunResult r = run_once(rc);
      wtable.add_row({
          TextTable::num(to_sec(w) * 1000.0, 1),
          TextTable::num(r.batch_factor, 2),
          TextTable::num(r.avg_queue_wait_ms, 2),
          TextTable::integer(static_cast<long long>(r.wire_messages)),
          TextTable::num(r.throughput, 1),
          TextTable::num(100.0 * static_cast<double>(r.converged) /
                             static_cast<double>(r.sampled),
                         1),
          TextTable::num(r.wall_ms, 0),
      });
    }
    std::printf("%s", wtable.render().c_str());
    std::printf("window tradeoff: batching delay is bounded by the window; "
                "pick the largest window whose added delay the workload "
                "tolerates.\n");
    if (flags.has("window-csv")) {
      wtable.write_csv(flags.get_string("window-csv", "window_sweep.csv"));
    }
  }
  std::printf("headline: %u endpoints hosting %u replicated files, "
              "%.0f applied puts/sim-s, simulated in %.1f s wall\n",
              headline.endpoints, headline.files, headline.throughput,
              headline.wall_ms / 1000.0);
  if (unbatched.endpoints != 0 && unbatched.wire_messages > 0) {
    const double saved =
        100.0 * (1.0 - static_cast<double>(headline.wire_messages) /
                           static_cast<double>(unbatched.wire_messages));
    std::printf("batching: %.2f logical msgs per envelope, %.1f%% fewer "
                "wire messages, %.1fx wall speedup on the same workload\n",
                headline.batch_factor, saved,
                unbatched.wall_ms / headline.wall_ms);
  }
  if (flags.has("csv")) {
    table.write_csv(flags.get_string("csv", "shard_scalability.csv"));
  }
  return 0;
}
