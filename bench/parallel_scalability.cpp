/// \file parallel_scalability.cpp
/// \brief Multicore runtime scalability: the same fixed-seed ShardedFleet
///        macro run swept across worker-thread counts.
///
/// Two things are on the clock:
///
///   1. Wall time per thread count — the speedup curve.  Meaningful only
///      on a machine with real cores; the JSON records
///      hardware_cores so a 1-core CI container's flat curve is not
///      mistaken for a runtime regression.
///   2. The determinism oracle — every thread count must produce the
///      exact op digest, endpoint digests and message counts of the
///      threads=1 run (the sequential oracle).  A mismatch fails the
///      bench regardless of speed.
///
///   $ ./parallel_scalability [--smoke] [--json BENCH_parallel.json]
///       [--endpoints 1000] [--files 4000] [--segments 8] [--sim-secs 5]
///       [--threads 1,2,4,8] [--reps 1] [--seed 2007]

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "runtime/fleet.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::bench {
namespace {

struct SweepPoint {
  std::uint32_t threads = 1;
  double wall_s = 0.0;   ///< Median over reps.
  double speedup = 1.0;  ///< vs the threads=1 median.
  std::uint64_t op_digest = 0;
  std::uint64_t endpoint_digest_xor = 0;
  std::uint64_t wire_messages = 0;
  std::uint64_t remote_ops = 0;
  std::uint64_t steals = 0;
  std::uint64_t conveyor_packets = 0;
};

struct MacroConfig {
  std::uint32_t endpoints = 1000;
  std::uint32_t files = 4000;
  std::uint32_t segments = 8;
  double sim_secs = 5.0;
  std::uint64_t seed = 2007;
};

SweepPoint run_macro(const MacroConfig& mc, std::uint32_t threads,
                     std::size_t reps) {
  SweepPoint p;
  p.threads = threads;
  std::vector<double> walls;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    shard::ShardedClusterConfig cfg;
    cfg.endpoints = mc.endpoints;
    cfg.replication = 3;
    cfg.seed = mc.seed;
    cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
    cfg.idea.detection_period = sec(2);
    cfg.runtime.threads = threads;
    cfg.runtime.segments = mc.segments;  // pinned across the sweep
    cfg.sync_sizes();
    runtime::ShardedFleet fleet(cfg);
    fleet.place(1, mc.files);
    runtime::FleetWorkloadParams wl;
    wl.ops_per_endpoint_per_sec = 4.0;
    wl.cross_segment_fraction = 0.25;
    wl.duration = sec_f(mc.sim_secs);
    fleet.set_workload(wl);

    const auto start = WallClock::now();
    fleet.run_for(sec_f(mc.sim_secs) + sec(5));
    walls.push_back(secs_since(start));

    const runtime::FleetStats s = fleet.stats();
    p.op_digest = s.op_digest;
    p.remote_ops = s.remote_ops;
    p.steals = s.pool.steals;
    p.conveyor_packets = s.conveyor.packets;
    p.endpoint_digest_xor = 0;
    for (const auto& [endpoint, digest] : fleet.endpoint_digests()) {
      p.endpoint_digest_xor ^= mix64(digest + endpoint);
    }
    p.wire_messages = 0;
    for (const auto& [type, count] : fleet.message_counts()) {
      p.wire_messages += count;
    }
  }
  p.wall_s = median(walls);
  std::printf("threads %2u: %.3f s wall, op digest %016" PRIx64
              ", %" PRIu64 " remote ops, %" PRIu64 " steals\n",
              threads, p.wall_s, p.op_digest, p.remote_ops, p.steals);
  return p;
}

void write_json(const std::string& path, bool smoke, const MacroConfig& mc,
                const std::vector<SweepPoint>& sweep, bool digests_match) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_scalability\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_cores\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"endpoints\": %u,\n", mc.endpoints);
  std::fprintf(f, "    \"files\": %u,\n", mc.files);
  std::fprintf(f, "    \"segments\": %u,\n", mc.segments);
  std::fprintf(f, "    \"sim_secs\": %.1f,\n", mc.sim_secs);
  std::fprintf(f, "    \"seed\": %" PRIu64 "\n", mc.seed);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f, "    {\"threads\": %u, \"wall_s\": %.3f, ", p.threads,
                 p.wall_s);
    std::fprintf(f, "\"speedup_vs_1thread\": %.3f, ", p.speedup);
    std::fprintf(f, "\"op_digest\": \"%016" PRIx64 "\", ", p.op_digest);
    std::fprintf(f, "\"endpoint_digest_xor\": \"%016" PRIx64 "\", ",
                 p.endpoint_digest_xor);
    std::fprintf(f, "\"wire_messages\": %" PRIu64 ", ", p.wire_messages);
    std::fprintf(f, "\"remote_ops\": %" PRIu64 ", ", p.remote_ops);
    std::fprintf(f, "\"steals\": %" PRIu64 ", ", p.steals);
    std::fprintf(f, "\"conveyor_packets\": %" PRIu64 "}%s\n",
                 p.conveyor_packets, i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"digests_match_across_threads\": %s,\n",
               digests_match ? "true" : "false");
  std::fprintf(f,
               "  \"note\": \"speedup_vs_1thread reflects wall time only; "
               "on a machine with fewer physical cores than threads the "
               "workers time-share and the curve is flat.  The determinism "
               "cross-check (identical digests at every thread count) holds "
               "regardless of core count.\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<std::uint32_t> parse_threads(const std::string& spec) {
  std::vector<std::uint32_t> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) {
      out.push_back(static_cast<std::uint32_t>(std::strtoul(
          tok.c_str(), nullptr, 10)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  print_header("Parallel runtime scalability: fleet macro vs thread count");

  MacroConfig mc;
  mc.endpoints = static_cast<std::uint32_t>(
      flags.get_int("endpoints", smoke ? 32 : 1000));
  mc.files =
      static_cast<std::uint32_t>(flags.get_int("files", smoke ? 120 : 4000));
  mc.segments =
      static_cast<std::uint32_t>(flags.get_int("segments", 8));
  mc.sim_secs = flags.get_double("sim-secs", smoke ? 2.0 : 5.0);
  mc.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  const auto reps =
      static_cast<std::size_t>(flags.get_int("reps", 1));
  const std::vector<std::uint32_t> threads = parse_threads(
      flags.get_string("threads", smoke ? "1,2" : "1,2,4,8"));

  std::vector<SweepPoint> sweep;
  sweep.reserve(threads.size());
  for (const std::uint32_t t : threads) {
    sweep.push_back(run_macro(mc, t, reps));
  }

  bool digests_match = true;
  for (const SweepPoint& p : sweep) {
    if (p.op_digest != sweep.front().op_digest ||
        p.endpoint_digest_xor != sweep.front().endpoint_digest_xor ||
        p.wire_messages != sweep.front().wire_messages) {
      digests_match = false;
    }
  }
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    sweep[i].speedup = sweep.front().wall_s / sweep[i].wall_s;
  }

  write_json(flags.get_string("json", "BENCH_parallel.json"), smoke, mc,
             sweep, digests_match);

  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: results diverged across thread counts — the "
                 "determinism oracle is broken\n");
    return 1;
  }
  return 0;
}
