/// \file read_policies.cpp
/// \brief The R×W tunable-consistency matrix: read latency vs observed
///        staleness across the four consistency levels crossed with the
///        write concerns — the trade-off surface the session API lets
///        applications pick a point on.
///
/// One deployment per matrix cell (32 endpoints, k=3, anti-entropy on,
/// live write stream), same seed: clients attached at every endpoint
/// read a Zipf-like read-heavy workload (each reader favors one hot
/// file) under the level being measured, while the writer runs under the
/// cell's WriteConcern.  Reported per cell: client-observed read latency
/// (mean/p95), observed staleness (versions behind the coordinator at
/// serve time), write-ack latency and failures, and — for the cached
/// cell — the session read-cache hit rate.  Everything is sourced from
/// the obs::MetricsRegistry the deployment records into (the per-level
/// session.* histograms), not from bench-local tallies, so the bench
/// exercises the same numbers operators would read.
///
/// Strong pays the full coordinator round trip at staleness 0; Eventual
/// serves the nearest replica at whatever staleness it has; Bounded sits
/// between (escalating when the bound would be violated); Quorum pays
/// the slowest of a majority fan-out for staleness 0 without pinning
/// load to the coordinator.  On the write side, w=majority trades ack
/// latency (a replication round trip instead of a one-way estimate) for
/// durability — and quorum_majority × w=majority is the R+W>N cell whose
/// reads survive any single stale replica.  The bounded_2v_cached cell
/// serves repeat reads from the session cache while provably inside the
/// declared age bound, with zero router traffic.  Emits
/// BENCH_read_policies.json for the CI perf trajectory.
///
///   $ ./read_policies [--endpoints 32] [--files 256] [--sim-secs 12]
///                     [--seed 2007] [--smoke] [--json FILE]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "client/session.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/flags.hpp"
#include "workload/engine.hpp"

namespace idea::bench {
namespace {

struct Setup {
  std::uint32_t endpoints = 32;
  std::uint32_t files = 256;
  double sim_secs = 12.0;
  std::uint64_t seed = 2007;
};

/// One cell of the R×W matrix: a read level crossed with a write
/// concern (and optionally the session read cache).
struct Cell {
  std::string name;
  client::ConsistencyLevel level;
  client::WriteConcern concern;
  bool cache_reads = false;
};

struct LevelResult {
  std::string name;
  std::uint64_t reads = 0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double mean_staleness = 0.0;
  std::uint64_t staleness_max = 0;
  std::uint64_t stale_reads = 0;  ///< Reads served with staleness > 0.
  std::uint64_t escalations = 0;
  /// Routing detail the registry doesn't key by file — tallied locally.
  std::uint64_t coordinator_served = 0;
  // Write side (per the cell's WriteConcern).
  std::uint32_t w = 1;
  std::uint64_t writes = 0;
  double mean_write_latency_ms = 0.0;
  double p95_write_latency_ms = 0.0;
  std::uint64_t wack_failed = 0;  ///< Concerns abandoned at give-up.
  // Session read cache (bounded_2v_cached cell only).
  std::uint64_t cache_hits = 0;
};

/// The per-level metric-name suffix the session layer records under
/// (session.read.latency_us.<suffix> / session.read.staleness.<suffix>).
const char* level_suffix(const client::ConsistencyLevel& level) {
  switch (level.level) {
    case client::Level::kStrong:
      return "strong";
    case client::Level::kBoundedStaleness:
      return "bounded";
    case client::Level::kEventualNearest:
      return "eventual";
    case client::Level::kQuorum:
      return "quorum";
  }
  return "?";
}

LevelResult run_level(const Setup& s, const Cell& cell) {
  const client::ConsistencyLevel& level = cell.level;
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = s.endpoints;
  cfg.replication = 3;
  cfg.seed = s.seed;
  cfg.anti_entropy_period = msec(500);
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  // On-demand mode, no hint: no resolution rounds block the write
  // stream, so every level sees the identical update history.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.idea.detection_period = sec(2);
  // Metrics on (tracing off): the numbers reported below come out of the
  // deployment's own registry, the way an operator would read them.
  cfg.observability.enabled = true;
  auto cluster = std::make_unique<shard::ShardedCluster>(cfg);
  cluster->place(1, s.files);

  client::Client client(*cluster);
  // The writer attaches at endpoint 0 so both ack flavors report a
  // client-observed latency (a kNoNode origin models co-location and
  // would zero out the w = 1 one-way estimate).
  client::ClientSession writer =
      client.session({.write_concern = cell.concern, .origin = 0});

  // Scripted loss windows (1.2 s of full loss every 3 s): the staleness
  // the read policies then either accept (Eventual), cap (Bounded) or
  // refuse (Strong/Quorum).  Fault injection is RNG-stream-preserving,
  // so every level replays the identical history.
  const auto end_time = static_cast<SimTime>(s.sim_secs * 1'000'000.0);
  add_loss_windows(cluster->transport(), sec(1), end_time, sec(3),
                   msec(1200));

  // The workload runs on the shared open-loop engine: one write tenant
  // cycling a hot set of files at a steady ~33 ops/s (hot files
  // accumulate multiple versions of staleness inside each loss window),
  // plus one read tenant per endpoint at ~3.3 ops/s whose Zipf(2.5) draw
  // concentrates ~3/4 of its reads on a per-endpoint favorite (hotspot
  // offset) — repeat favorite reads are what the session cache can serve
  // router-free while inside the declared bound.
  const std::uint32_t hot = std::min<std::uint32_t>(8, s.files);
  LevelResult result;
  result.name = cell.name;
  result.w = cell.concern.w;
  std::vector<client::ClientSession> readers;
  readers.reserve(s.endpoints);
  for (NodeId origin = 0; origin < s.endpoints; ++origin) {
    readers.push_back(client.session({.level = level,
                                      .origin = origin,
                                      .cache_reads = cell.cache_reads}));
  }

  std::vector<workload::TenantSpec> tenants;
  workload::TenantSpec writes;
  writes.name = "writer";
  writes.keys = hot;
  writes.read_fraction = 0.0;
  writes.rate = steady_rate(1000.0 / 30.0);
  tenants.push_back(writes);
  for (std::uint32_t i = 0; i < s.endpoints; ++i) {
    workload::TenantSpec reads;
    reads.name = "reader";
    reads.keys = s.files;
    reads.read_fraction = 1.0;
    reads.rate = steady_rate(1000.0 / 300.0);
    reads.zipf = steady_zipf(2.5);
    reads.hotspot = {{0, i % hot}};
    tenants.push_back(reads);
  }

  workload::OpenLoopEngine engine(
      cluster->sim(),
      workload::EngineOptions{msec(50), end_time, s.seed ^ 0x5EAD5ULL},
      std::move(tenants), [&](const workload::Op& op) {
        const FileId f = 1 + static_cast<FileId>(op.key);
        if (op.tenant == 0) {
          writer.put(f, "w" + std::to_string(op.index), 1.0);
          return;
        }
        client::ClientSession& reader = readers[op.tenant - 1];
        const client::OpHandle<client::ReadResult> h = reader.read(f);
        if (!h.ok()) return;
        if (h->served_by == cluster->coordinator_endpoint(f)) {
          ++result.coordinator_served;
        }
      });
  engine.start();

  cluster->run_until(end_time);

  // Latency/staleness come from the deployment's registry — the per-level
  // histograms and counters the session layer recorded while routing the
  // reads above (only the measured level's readers read in this cluster).
  const obs::MetricsRegistry& reg = cluster->obs()->cluster();
  const std::string suffix = level_suffix(level);
  const obs::Histogram* lat = reg.histogram(
      obs::MetricId::intern("session.read.latency_us." + suffix));
  const obs::Histogram* stale = reg.histogram(
      obs::MetricId::intern("session.read.staleness." + suffix));
  if (lat != nullptr) {
    result.reads = lat->count;
    result.mean_latency_ms = lat->mean() / 1000.0;
    result.p95_latency_ms = lat->quantile(0.95) / 1000.0;
  }
  if (stale != nullptr) {
    result.mean_staleness = stale->mean();
    result.staleness_max = stale->max;
  }
  result.stale_reads =
      reg.counter(obs::MetricId::intern("session.read.stale"));
  result.escalations =
      reg.counter(obs::MetricId::intern("session.read.escalated"));
  // Write side: under w = 1 the ack is a one-way distance estimate; under
  // w > 1 it is the measured replication round trip to the ack quorum.
  result.writes = reg.counter(obs::MetricId::intern("session.puts"));
  const obs::Histogram* wlat = reg.histogram(obs::MetricId::intern(
      cell.concern.w == 1 ? "session.put.latency_us"
                          : "session.put.wack_latency_us"));
  if (wlat != nullptr) {
    result.mean_write_latency_ms = wlat->mean() / 1000.0;
    result.p95_write_latency_ms = wlat->quantile(0.95) / 1000.0;
  }
  result.wack_failed =
      reg.counter(obs::MetricId::intern("session.put.wack_failed"));
  result.cache_hits =
      reg.counter(obs::MetricId::intern("session.read.cache_hits"));
  return result;
}

void print_row(LevelResult& r) {
  std::printf(
      "%-24s %7" PRIu64 " reads  lat %6.1f ms mean / %6.1f ms p95   "
      "staleness %5.2f mean / %3" PRIu64 " max (%4.1f%% stale)   "
      "%5.1f%% coord  %" PRIu64 " esc   "
      "w=%s ack %6.1f ms mean (%" PRIu64 " failed)",
      r.name.c_str(), r.reads, r.mean_latency_ms, r.p95_latency_ms,
      r.mean_staleness, r.staleness_max,
      r.reads == 0 ? 0.0
                   : 100.0 * static_cast<double>(r.stale_reads) /
                         static_cast<double>(r.reads),
      r.reads == 0 ? 0.0
                   : 100.0 * static_cast<double>(r.coordinator_served) /
                         static_cast<double>(r.reads),
      r.escalations, r.w == 0 ? "maj" : "1", r.mean_write_latency_ms,
      r.wack_failed);
  if (r.cache_hits > 0) {
    std::printf("   cache %4.1f%% hit",
                r.reads == 0 ? 0.0
                             : 100.0 * static_cast<double>(r.cache_hits) /
                                   static_cast<double>(r.reads));
  }
  std::printf("\n");
}

void write_json(const std::string& path, bool smoke, const Setup& s,
                std::vector<LevelResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"read_policies\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"endpoints\": %u,\n", s.endpoints);
  std::fprintf(f, "  \"files\": %u,\n", s.files);
  std::fprintf(f, "  \"sim_secs\": %.1f,\n", s.sim_secs);
  std::fprintf(f, "  \"levels\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    LevelResult& r = results[i];
    std::fprintf(f, "    \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"reads\": %" PRIu64 ",\n", r.reads);
    std::fprintf(f, "      \"mean_latency_ms\": %.2f,\n", r.mean_latency_ms);
    std::fprintf(f, "      \"p95_latency_ms\": %.2f,\n", r.p95_latency_ms);
    std::fprintf(f, "      \"mean_staleness_versions\": %.3f,\n",
                 r.mean_staleness);
    std::fprintf(f, "      \"max_staleness_versions\": %" PRIu64 ",\n",
                 r.staleness_max);
    std::fprintf(f, "      \"stale_read_fraction\": %.4f,\n",
                 r.reads == 0 ? 0.0
                              : static_cast<double>(r.stale_reads) /
                                    static_cast<double>(r.reads));
    std::fprintf(f, "      \"escalations\": %" PRIu64 ",\n", r.escalations);
    std::fprintf(f, "      \"coordinator_served_fraction\": %.4f,\n",
                 r.reads == 0 ? 0.0
                              : static_cast<double>(r.coordinator_served) /
                                    static_cast<double>(r.reads));
    std::fprintf(f, "      \"write_w\": %s,\n",
                 r.w == 0 ? "\"majority\"" : "1");
    std::fprintf(f, "      \"writes\": %" PRIu64 ",\n", r.writes);
    std::fprintf(f, "      \"mean_write_latency_ms\": %.2f,\n",
                 r.mean_write_latency_ms);
    std::fprintf(f, "      \"p95_write_latency_ms\": %.2f,\n",
                 r.p95_write_latency_ms);
    std::fprintf(f, "      \"wack_failed\": %" PRIu64 ",\n", r.wack_failed);
    std::fprintf(f, "      \"cache_hits\": %" PRIu64 ",\n", r.cache_hits);
    std::fprintf(f, "      \"cache_hit_rate\": %.4f\n",
                 r.reads == 0 ? 0.0
                              : static_cast<double>(r.cache_hits) /
                                    static_cast<double>(r.reads));
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  Setup s;
  s.endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", smoke ? 8 : 32));
  s.files =
      static_cast<std::uint32_t>(flags.get_int("files", smoke ? 64 : 256));
  s.sim_secs = flags.get_double("sim-secs", smoke ? 6.0 : 12.0);
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  std::printf("read policies (R x W matrix): %u endpoints, %u files, k=3, "
              "%.0f sim-secs, seed %" PRIu64 "\n\n",
              s.endpoints, s.files, s.sim_secs, s.seed);

  const auto w1 = client::WriteConcern::one();
  const auto wmaj = client::WriteConcern::majority();
  // The w=1 rows keep their historical names (JSON key continuity for
  // the perf trajectory); the w=majority duals and the cached cell
  // extend the matrix.  bounded cells declare a 2-version bound; the
  // cached cell adds a 2 s age bound, the lease its hits are provable
  // under.
  const std::vector<Cell> cells = {
      {"strong", client::ConsistencyLevel::strong(), w1, false},
      {"strong_wmaj", client::ConsistencyLevel::strong(), wmaj, false},
      {"bounded_2v", client::ConsistencyLevel::bounded_staleness(2), w1,
       false},
      {"bounded_2v_wmaj", client::ConsistencyLevel::bounded_staleness(2),
       wmaj, false},
      {"bounded_2v_cached",
       client::ConsistencyLevel::bounded_staleness(2, sec(2)), w1, true},
      {"eventual_nearest", client::ConsistencyLevel::eventual_nearest(), w1,
       false},
      {"eventual_nearest_wmaj", client::ConsistencyLevel::eventual_nearest(),
       wmaj, false},
      {"quorum_majority", client::ConsistencyLevel::quorum(), w1, false},
      {"quorum_majority_wmaj", client::ConsistencyLevel::quorum(), wmaj,
       false},  // R + W > N: reads survive any single stale replica
  };
  std::vector<LevelResult> results;
  results.reserve(cells.size());
  for (const Cell& cell : cells) results.push_back(run_level(s, cell));
  for (LevelResult& r : results) print_row(r);

  write_json(flags.get_string("json", "BENCH_read_policies.json"), smoke, s,
             results);
  return 0;
}
