/// \file read_policies.cpp
/// \brief Read latency vs observed staleness across the four consistency
///        levels — the trade-off the session API lets applications pick.
///
/// One deployment per level (32 endpoints, k=3, anti-entropy on, live
/// write stream), same seed: clients attached at every endpoint read a
/// rotating set of files under the level being measured.  Reported per
/// level: client-observed read latency (mean/p95) and observed staleness
/// (versions the served view lagged the coordinator by at serve time) —
/// both sourced from the obs::MetricsRegistry the deployment records into
/// (the per-level session.read.* histograms), not from bench-local
/// tallies, so the bench exercises the same numbers operators would read.
///
/// Strong pays the full coordinator round trip at staleness 0; Eventual
/// serves the nearest replica at whatever staleness it has; Bounded sits
/// between (escalating when the bound would be violated); Quorum pays the
/// slowest of a majority fan-out for staleness 0 without pinning load to
/// the coordinator.  Emits BENCH_read_policies.json for the CI perf
/// trajectory.
///
///   $ ./read_policies [--endpoints 32] [--files 256] [--sim-secs 12]
///                     [--seed 2007] [--smoke] [--json FILE]

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "obs/metrics.hpp"
#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace idea::bench {
namespace {

struct Setup {
  std::uint32_t endpoints = 32;
  std::uint32_t files = 256;
  double sim_secs = 12.0;
  std::uint64_t seed = 2007;
};

struct LevelResult {
  std::string name;
  std::uint64_t reads = 0;
  double mean_latency_ms = 0.0;
  double p95_latency_ms = 0.0;
  double mean_staleness = 0.0;
  std::uint64_t staleness_max = 0;
  std::uint64_t stale_reads = 0;  ///< Reads served with staleness > 0.
  std::uint64_t escalations = 0;
  /// Routing detail the registry doesn't key by file — tallied locally.
  std::uint64_t coordinator_served = 0;
};

/// The per-level metric-name suffix the session layer records under
/// (session.read.latency_us.<suffix> / session.read.staleness.<suffix>).
const char* level_suffix(const client::ConsistencyLevel& level) {
  switch (level.level) {
    case client::Level::kStrong:
      return "strong";
    case client::Level::kBoundedStaleness:
      return "bounded";
    case client::Level::kEventualNearest:
      return "eventual";
    case client::Level::kQuorum:
      return "quorum";
  }
  return "?";
}

LevelResult run_level(const Setup& s, const std::string& name,
                      const client::ConsistencyLevel& level) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = s.endpoints;
  cfg.replication = 3;
  cfg.seed = s.seed;
  cfg.anti_entropy_period = msec(500);
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  // On-demand mode, no hint: no resolution rounds block the write
  // stream, so every level sees the identical update history.
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.idea.detection_period = sec(2);
  // Metrics on (tracing off): the numbers reported below come out of the
  // deployment's own registry, the way an operator would read them.
  cfg.observability.enabled = true;
  auto cluster = std::make_unique<shard::ShardedCluster>(cfg);
  cluster->place(1, s.files);

  client::Client client(*cluster);
  client::ClientSession writer = client.session();

  // Scripted loss windows (1.2 s of full loss every 3 s): replication
  // pushes issued inside a window drop, so the written files' replicas
  // lag their coordinator until anti-entropy repairs them — the staleness
  // the read policies then either accept (Eventual), cap (Bounded) or
  // refuse (Strong/Quorum).  Fault injection is RNG-stream-preserving,
  // so every level replays the identical history.
  const auto end_time = static_cast<SimTime>(s.sim_secs * 1'000'000.0);
  for (SimTime t = sec(1); t + msec(1200) < end_time; t += sec(3)) {
    cluster->transport().add_drop_window(t, t + msec(1200));
  }

  // A steady write stream over a hot set of files, every 30 ms: hot
  // files accumulate multiple versions of staleness inside each loss
  // window instead of at most one.
  const std::uint32_t hot = std::min<std::uint32_t>(8, s.files);
  std::uint64_t write_index = 0;
  std::function<void()> write_tick = [&] {
    const FileId f = 1 + static_cast<FileId>(write_index % hot);
    writer.put(f, "w" + std::to_string(write_index), 1.0);
    ++write_index;
    if (cluster->sim().now() + msec(30) <= end_time) {
      cluster->sim().schedule_after(msec(30), write_tick);
    }
  };
  cluster->sim().schedule_at(msec(50), write_tick);

  // Readers: one session per endpoint, each reading every 300 ms under
  // the measured level — half the reads on the hot set (where staleness
  // lives), half across the whole keyspace.
  LevelResult result;
  result.name = name;
  std::vector<client::ClientSession> readers;
  readers.reserve(s.endpoints);
  for (NodeId origin = 0; origin < s.endpoints; ++origin) {
    readers.push_back(client.session({.level = level, .origin = origin}));
  }
  Rng pick(mix64(s.seed ^ 0x5EAD5ULL));
  std::function<void()> read_tick = [&] {
    for (client::ClientSession& reader : readers) {
      const FileId f =
          1 + static_cast<FileId>(pick.chance(0.5)
                                      ? pick.next_below(hot)
                                      : pick.next_below(s.files));
      const client::OpHandle<client::ReadResult> h = reader.read(f);
      if (!h.ok()) continue;
      if (h->served_by == cluster->coordinator_endpoint(f)) {
        ++result.coordinator_served;
      }
    }
    if (cluster->sim().now() + msec(300) <= end_time) {
      cluster->sim().schedule_after(msec(300), read_tick);
    }
  };
  cluster->sim().schedule_at(msec(500), read_tick);

  cluster->run_until(end_time);

  // Latency/staleness come from the deployment's registry — the per-level
  // histograms and counters the session layer recorded while routing the
  // reads above (only the measured level's readers read in this cluster).
  const obs::MetricsRegistry& reg = cluster->obs()->cluster();
  const std::string suffix = level_suffix(level);
  const obs::Histogram* lat = reg.histogram(
      obs::MetricId::intern("session.read.latency_us." + suffix));
  const obs::Histogram* stale = reg.histogram(
      obs::MetricId::intern("session.read.staleness." + suffix));
  if (lat != nullptr) {
    result.reads = lat->count;
    result.mean_latency_ms = lat->mean() / 1000.0;
    result.p95_latency_ms = lat->quantile(0.95) / 1000.0;
  }
  if (stale != nullptr) {
    result.mean_staleness = stale->mean();
    result.staleness_max = stale->max;
  }
  result.stale_reads =
      reg.counter(obs::MetricId::intern("session.read.stale"));
  result.escalations =
      reg.counter(obs::MetricId::intern("session.read.escalated"));
  return result;
}

void print_row(LevelResult& r) {
  std::printf(
      "%-18s %7" PRIu64 " reads  lat %6.1f ms mean / %6.1f ms p95   "
      "staleness %5.2f mean / %3" PRIu64 " max (%4.1f%% stale reads)   "
      "%5.1f%% coord-served  %" PRIu64 " escalations\n",
      r.name.c_str(), r.reads, r.mean_latency_ms, r.p95_latency_ms,
      r.mean_staleness, r.staleness_max,
      r.reads == 0 ? 0.0
                   : 100.0 * static_cast<double>(r.stale_reads) /
                         static_cast<double>(r.reads),
      r.reads == 0 ? 0.0
                   : 100.0 * static_cast<double>(r.coordinator_served) /
                         static_cast<double>(r.reads),
      r.escalations);
}

void write_json(const std::string& path, bool smoke, const Setup& s,
                std::vector<LevelResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"read_policies\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"endpoints\": %u,\n", s.endpoints);
  std::fprintf(f, "  \"files\": %u,\n", s.files);
  std::fprintf(f, "  \"sim_secs\": %.1f,\n", s.sim_secs);
  std::fprintf(f, "  \"levels\": {\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    LevelResult& r = results[i];
    std::fprintf(f, "    \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"reads\": %" PRIu64 ",\n", r.reads);
    std::fprintf(f, "      \"mean_latency_ms\": %.2f,\n", r.mean_latency_ms);
    std::fprintf(f, "      \"p95_latency_ms\": %.2f,\n", r.p95_latency_ms);
    std::fprintf(f, "      \"mean_staleness_versions\": %.3f,\n",
                 r.mean_staleness);
    std::fprintf(f, "      \"max_staleness_versions\": %" PRIu64 ",\n",
                 r.staleness_max);
    std::fprintf(f, "      \"stale_read_fraction\": %.4f,\n",
                 r.reads == 0 ? 0.0
                              : static_cast<double>(r.stale_reads) /
                                    static_cast<double>(r.reads));
    std::fprintf(f, "      \"escalations\": %" PRIu64 ",\n", r.escalations);
    std::fprintf(f, "      \"coordinator_served_fraction\": %.4f\n",
                 r.reads == 0 ? 0.0
                              : static_cast<double>(r.coordinator_served) /
                                    static_cast<double>(r.reads));
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  Setup s;
  s.endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", smoke ? 8 : 32));
  s.files =
      static_cast<std::uint32_t>(flags.get_int("files", smoke ? 64 : 256));
  s.sim_secs = flags.get_double("sim-secs", smoke ? 6.0 : 12.0);
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  std::printf("read policies: %u endpoints, %u files, k=3, %.0f sim-secs, "
              "seed %" PRIu64 "\n\n",
              s.endpoints, s.files, s.sim_secs, s.seed);

  std::vector<LevelResult> results;
  results.push_back(
      run_level(s, "strong", client::ConsistencyLevel::strong()));
  results.push_back(run_level(s, "bounded_2v",
                              client::ConsistencyLevel::bounded_staleness(2)));
  results.push_back(run_level(s, "eventual_nearest",
                              client::ConsistencyLevel::eventual_nearest()));
  results.push_back(
      run_level(s, "quorum_majority", client::ConsistencyLevel::quorum()));
  for (LevelResult& r : results) print_row(r);

  write_json(flags.get_string("json", "BENCH_read_policies.json"), smoke, s,
             results);
  return 0;
}
