/// \file membership_churn.cpp
/// \brief Cost and recovery profile of elastic membership + anti-entropy.
///
/// Three experiments on one deployment (default 16 endpoints, 800 files,
/// k=3, live kv workload):
///
///  1. Join: add an endpoint mid-workload; report how many files the ring
///     delta predicted would move vs how many actually migrated, the
///     state volume streamed, and how long until every group converges.
///  2. Leave: remove an endpoint; same accounting.
///  3. Heal: a scripted 100%-loss window mid-workload; report how many
///     anti-entropy periods the cluster needs to make every replica group
///     identical again, against the repair traffic it cost.
///
///   $ ./membership_churn [--endpoints 16] [--files 800] [--seed 2007]
///                        [--ae-ms 500]

#include <chrono>
#include <cstdio>

#include "apps/kvstore.hpp"
#include "bench/common.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::bench {
namespace {

struct Setup {
  std::uint32_t endpoints = 16;
  std::uint32_t files = 800;
  std::uint64_t seed = 2007;
  SimDuration ae_period = msec(500);
};

struct Deployment {
  std::unique_ptr<shard::ShardedCluster> cluster;
  std::unique_ptr<apps::KvStore> kv;
  std::unique_ptr<apps::KvWorkload> workload;
};

Deployment stand_up(const Setup& s) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = s.endpoints;
  cfg.replication = 3;
  cfg.seed = s.seed;
  cfg.anti_entropy_period = s.ae_period;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);

  Deployment d;
  d.cluster = std::make_unique<shard::ShardedCluster>(cfg);
  d.cluster->place(1, s.files);
  d.kv = std::make_unique<apps::KvStore>(
      *d.cluster,
      apps::KvStoreOptions{.buckets = s.files, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 2 * s.endpoints;
  wl.interval = msec(250);
  wl.duration = sec(12);
  wl.keyspace = 4 * s.files;
  d.workload = std::make_unique<apps::KvWorkload>(*d.kv, d.cluster->sim(),
                                                  wl, s.seed ^ 0xBEEF);
  d.workload->start();
  return d;
}

std::size_t diverged_files(shard::ShardedCluster& cluster,
                           std::uint32_t files) {
  std::size_t diverged = 0;
  for (FileId f = 1; f <= files; ++f) {
    if (!cluster.converged(f)) ++diverged;
  }
  return diverged;
}

/// Periods of `period` until no group diverges; -1 if `cap` is not enough.
int periods_to_heal(shard::ShardedCluster& cluster, std::uint32_t files,
                    SimDuration period, int cap) {
  for (int p = 0; p <= cap; ++p) {
    if (diverged_files(cluster, files) == 0) return p;
    cluster.run_for(period);
  }
  return -1;
}

void report_change(const char* label, const shard::MembershipChange& change,
                   double wall_ms) {
  std::printf(
      "  %-6s endpoint=%u  predicted=%zu  migrated=%zu  streamed=%zu "
      "updates in %zu msgs  (%.1f ms wall)\n",
      label, change.endpoint, change.rebalance.group_changed,
      change.files_migrated, change.state_updates, change.stream_messages,
      wall_ms);
}

void run(const Setup& s) {
  std::printf("# membership churn: %u endpoints, %u files, k=3, ae=%lld ms\n",
              s.endpoints, s.files,
              static_cast<long long>(s.ae_period / 1000));

  // --- 1. join ------------------------------------------------------
  {
    Deployment d = stand_up(s);
    d.cluster->run_until(sec(4));
    const auto t0 = std::chrono::steady_clock::now();
    const shard::MembershipChange joined = d.cluster->add_endpoint();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    report_change("join", joined, wall_ms);
    d.cluster->run_until(sec(13));
    const int heal =
        periods_to_heal(*d.cluster, s.files, s.ae_period, 20);
    std::printf("         groups whole again after %d ae-period(s); "
                "%llu puts applied\n",
                heal, static_cast<unsigned long long>(d.kv->puts()));
  }

  // --- 2. leave -----------------------------------------------------
  {
    Deployment d = stand_up(s);
    d.cluster->run_until(sec(4));
    const auto t0 = std::chrono::steady_clock::now();
    const shard::MembershipChange left =
        d.cluster->remove_endpoint(s.endpoints / 2);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    report_change("leave", left, wall_ms);
    d.cluster->run_until(sec(13));
    const int heal =
        periods_to_heal(*d.cluster, s.files, s.ae_period, 20);
    std::printf("         groups whole again after %d ae-period(s); "
                "%llu puts applied\n",
                heal, static_cast<unsigned long long>(d.kv->puts()));
  }

  // --- 3. loss window + anti-entropy heal ---------------------------
  {
    Deployment d = stand_up(s);
    d.cluster->transport().add_drop_window(sec(3), sec(5));
    d.cluster->run_until(sec(5));
    const std::size_t diverged_mid = diverged_files(*d.cluster, s.files);
    d.cluster->run_until(sec(13));
    const int heal =
        periods_to_heal(*d.cluster, s.files, s.ae_period, 40);
    std::uint64_t repair_msgs =
        d.cluster->batching()->counters().messages_of("shard.repair");
    std::uint64_t digest_msgs =
        d.cluster->batching()->counters().messages_of("shard.digest");
    std::printf(
        "  heal   2s full-loss window: %zu/%u groups diverged at close; "
        "whole after %d ae-period(s)\n",
        diverged_mid, s.files, heal);
    std::printf(
        "         faults dropped %llu msgs; repair traffic: %llu digests, "
        "%llu repairs\n",
        static_cast<unsigned long long>(
            d.cluster->transport().fault_dropped()),
        static_cast<unsigned long long>(digest_msgs),
        static_cast<unsigned long long>(repair_msgs));
  }
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  idea::Flags flags(argc, argv);
  idea::bench::Setup s;
  s.endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", s.endpoints));
  s.files = static_cast<std::uint32_t>(flags.get_int("files", s.files));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  s.ae_period = idea::msec(flags.get_int("ae-ms", 500));
  idea::bench::run(s);
  return 0;
}
