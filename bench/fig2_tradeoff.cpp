/// \file fig2_tradeoff.cpp
/// \brief Figure 2 (conceptual in the paper): the detection-speed vs
///        overhead trade-off, measured.
///
/// The paper positions IDEA between optimistic consistency (slow detection,
/// low overhead) and strong consistency (instant "detection", high
/// overhead), with TACT as a bounded middle ground.  We run the same
/// all-conflicting workload over the same simulated WAN under all four
/// protocols and measure: propagation delay (write -> known at every
/// replica), messages per update, and write-commit latency.
///
/// Expected shape: optimistic < TACT < IDEA < strong in both propagation
/// speed and per-update message cost; strong additionally pays its cost in
/// write latency.

#include <memory>

#include "baseline/baseline.hpp"
#include "bench/common.hpp"
#include "net/sim_transport.hpp"
#include "util/stats.hpp"

namespace idea::bench {
namespace {

constexpr std::uint32_t kNodes = 12;
constexpr FileId kFile = 1;
const std::vector<NodeId> kTradeoffWriters{1, 5, 9};
constexpr int kUpdatesPerWriter = 10;
constexpr SimDuration kUpdateGap = sec(5);

struct ProtocolResult {
  std::string name;
  double propagation_ms = 0.0;    ///< write -> present at all replicas
  double write_latency_ms = 0.0;  ///< write -> committed for the client
  double msgs_per_update = 0.0;
  double bytes_per_update = 0.0;
};

/// Drive a set of baseline nodes; measure propagation by stepping the sim
/// in small slices and checking all stores.
template <typename MakeNode>
ProtocolResult run_baseline(const std::string& name, MakeNode make_node,
                            std::uint64_t seed) {
  sim::PlanetLabParams lat_params;
  lat_params.nodes = kNodes;
  lat_params.diameter_delay = msec(120);
  lat_params.placement_seed = seed;
  sim::PlanetLabLatency latency(lat_params);
  sim::Simulator sim;
  net::SimTransportOptions topt;
  topt.node_count = kNodes;
  topt.seed = seed;
  net::SimTransport transport(sim, latency, topt);

  std::vector<std::unique_ptr<baseline::BaselineNode>> nodes;
  for (NodeId n = 0; n < kNodes; ++n) {
    nodes.push_back(make_node(n, transport));
    transport.attach(n, nodes.back().get());
    nodes.back()->start();
  }

  RunningStat propagation, write_latency;
  std::uint64_t updates = 0;
  auto gen = apps::make_stroke_generator(seed);
  for (int round = 0; round < kUpdatesPerWriter; ++round) {
    for (NodeId w : kTradeoffWriters) {
      auto [content, meta] = gen(w, round);
      const SimTime written_at = sim.now();
      // Propagation is "everyone has learned one more update"; strong
      // consistency rewrites the update under the primary's identity, so
      // counts are the protocol-neutral completion signal.
      std::vector<std::size_t> counts_before;
      for (const auto& node : nodes) {
        counts_before.push_back(node->store().update_count());
      }
      SimTime committed_at = written_at;
      nodes[w]->write(content, meta,
                      [&committed_at, &sim] { committed_at = sim.now(); });
      ++updates;
      const SimTime deadline = sim.now() + sec(120);
      bool everywhere = false;
      while (!everywhere && sim.now() < deadline) {
        sim.run_until(sim.now() + msec(50));
        everywhere = true;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          if (nodes[i]->store().update_count() <= counts_before[i]) {
            everywhere = false;
            break;
          }
        }
      }
      propagation.add(to_ms(sim.now() - written_at));
      write_latency.add(to_ms(committed_at - written_at));
    }
    sim.run_until(sim.now() + kUpdateGap);
  }

  ProtocolResult r;
  r.name = name;
  r.propagation_ms = propagation.mean();
  r.write_latency_ms = write_latency.mean();
  r.msgs_per_update = static_cast<double>(
                          transport.counters().total_messages()) /
                      static_cast<double>(updates);
  r.bytes_per_update =
      static_cast<double>(transport.counters().total_bytes()) /
      static_cast<double>(updates);
  return r;
}

ProtocolResult run_idea(std::uint64_t seed) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.nodes = kNodes;
  cfg.sync_sizes();
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  // hint = 1.0 ("the user does not tolerate any inconsistency", Table 1)
  // puts IDEA in its pure detection-based-resolution regime: every detected
  // conflict is resolved.  A laxer hint would trade propagation delay for
  // cost — that knob is the subject of Figures 7/8, not this comparison.
  cfg.idea.controller.hint = 1.0;
  // Detection is driven by writes here; the periodic probe timer on all 12
  // nodes would only add constant background noise to the accounting.
  cfg.idea.detection_period = 0;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up(kTradeoffWriters, sec(25));
  cluster.node(kTradeoffWriters.front()).demand_active_resolution();
  cluster.run_for(sec(5));
  cluster.transport().counters().reset();

  RunningStat propagation;
  std::uint64_t updates = 0;
  auto gen = apps::make_stroke_generator(seed);
  for (int round = 0; round < kUpdatesPerWriter; ++round) {
    for (NodeId w : kTradeoffWriters) {
      auto [content, meta] = gen(w, round);
      const SimTime written_at = cluster.sim().now();
      const std::uint64_t seq = cluster.node(w).store().local_seq() + 1;
      if (!cluster.node(w).write(content, meta)) continue;
      ++updates;
      const replica::UpdateKey key{w, seq};
      const SimTime deadline = cluster.sim().now() + sec(120);
      bool everywhere = false;
      while (!everywhere && cluster.sim().now() < deadline) {
        cluster.run_for(msec(50));
        everywhere = true;
        // IDEA propagates within the top layer (the active writers);
        // bottom-layer nodes are reached by scans/rollback only.
        for (NodeId peer : kTradeoffWriters) {
          if (!cluster.node(peer).store().has(key)) {
            everywhere = false;
            break;
          }
        }
      }
      propagation.add(to_ms(cluster.sim().now() - written_at));
    }
    cluster.run_for(kUpdateGap);
  }

  ProtocolResult r;
  r.name = "IDEA (hint 100%)";
  r.propagation_ms = propagation.mean();
  r.write_latency_ms = 0.0;  // local commit, like optimistic
  // Count the consistency-protocol traffic (detection + resolution), the
  // paper's own accounting in Table 3.  Overlay maintenance (RanSub epochs,
  // bottom-layer gossip) is a fixed per-node background cost independent of
  // the update rate; it is reported separately below.
  const auto& counters = cluster.transport().counters();
  r.msgs_per_update =
      static_cast<double>(counters.messages_with_prefix("detect.") +
                          counters.messages_with_prefix("resolve.")) /
      static_cast<double>(updates);
  r.bytes_per_update =
      static_cast<double>(counters.total_bytes()) /
      static_cast<double>(counters.total_messages()) * r.msgs_per_update;
  const double run_sec = to_sec(cluster.sim().now());
  std::printf("[idea] overlay maintenance (ransub+gossip): %.1f msgs/s "
              "across all %u nodes, independent of update rate\n",
              static_cast<double>(
                  counters.messages_with_prefix("ransub.") +
                  counters.messages_with_prefix("gossip.")) /
                  run_sec,
              kNodes);
  return r;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  std::vector<ProtocolResult> results;

  baseline::OptimisticParams op;
  op.nodes = kNodes;
  op.anti_entropy_period = sec(10);
  results.push_back(run_baseline(
      "optimistic (anti-entropy 10 s)",
      [&](NodeId n, net::Transport& t) {
        return std::make_unique<baseline::OptimisticNode>(n, kFile, t, op,
                                                          seed + n);
      },
      seed));

  baseline::TactParams tp;
  tp.nodes = kNodes;
  tp.order_bound = 3;
  tp.staleness_bound = sec(15);
  results.push_back(run_baseline(
      "TACT-style (order bound 3)",
      [&](NodeId n, net::Transport& t) {
        return std::make_unique<baseline::TactNode>(n, kFile, t, tp);
      },
      seed + 1000));

  results.push_back(run_idea(seed + 2000));

  baseline::StrongParams sp;
  sp.nodes = kNodes;
  sp.primary = 0;
  results.push_back(run_baseline(
      "strong (primary-copy eager)",
      [&](NodeId n, net::Transport& t) {
        return std::make_unique<baseline::StrongNode>(n, kFile, t, sp);
      },
      seed + 3000));

  print_header("Figure 2 (measured): detection/propagation speed vs "
               "communication overhead");
  TextTable table({"protocol", "propagation (ms)", "write latency (ms)",
                   "msgs/update", "KB/update"});
  for (const auto& r : results) {
    table.add_row({r.name, TextTable::num(r.propagation_ms, 1),
                   TextTable::num(r.write_latency_ms, 1),
                   TextTable::num(r.msgs_per_update, 1),
                   TextTable::num(r.bytes_per_update / 1024.0, 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("expected shape (paper, Figure 2): optimistic is cheapest and "
              "slowest to restore consistency; strong is fastest and most "
              "expensive (and blocks writers); IDEA sits between, closer "
              "to strong in speed at a fraction of the cost.\n");
  return 0;
}
