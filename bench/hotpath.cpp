/// \file hotpath.cpp
/// \brief Hot-path throughput trajectory: simulator kernel, transport
///        send->deliver, version-vector merges, and the sharded macro run.
///
/// Every future PR is measured against this bench: it emits
/// BENCH_hotpath.json so the perf trajectory accumulates per PR (the CI
/// Release job uploads the file as an artifact).  Four sections:
///
///   1. sim_events  — schedule/cancel/periodic churn through the Simulator.
///   2. transport   — SimTransport message storm with realistic EVV payloads
///                    (each hop re-sends, so the cost of forwarding a
///                    payload across transport hops is on the clock).
///   3. vv_merge    — VersionVector merge + compare walks.
///   4. macro       — the PR 1 shard-scalability headline configuration
///                    (32 endpoints / 2000 files, k=3), reporting logical
///                    messages per wall-clock second plus the per-type
///                    message counts and replica digest used by the
///                    determinism regression test.
///
///   $ ./hotpath [--smoke] [--json BENCH_hotpath.json]
///               [--endpoints 32] [--files 2000] [--sim-secs 10]
///
/// The kBaseline* constants are the numbers this bench printed at the
/// pre-refactor seed (PR 1, string message types + std::any payloads +
/// unpooled simulator) on the reference build machine; speedups in the
/// JSON are relative to them.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kvstore.hpp"
#include "bench/common.hpp"
#include "net/batching_transport.hpp"
#include "net/sim_transport.hpp"
#include "shard/sharded_cluster.hpp"
#include "sim/latency.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "vv/extended_vv.hpp"
#include "vv/version_vector.hpp"

namespace idea::bench {
namespace {

// Pre-refactor reference throughput: medians of 5 runs of this bench
// built against the seed commit (string message types, std::any payloads,
// unordered_set-cancellation simulator, std::map version vectors) on the
// single-core CI reference machine, Release -O2, interleaved with the
// post-refactor runs to cancel machine drift.  0 disables the speedup
// report for a metric.
constexpr double kBaselineSimEvents = 14.1e6;
constexpr double kBaselineTransportMsgs = 0.88e6;
constexpr double kBaselineBatchedTransportMsgs = 0.57e6;
constexpr double kBaselineVvMerges = 3.32e6;
constexpr double kBaselineMacroMsgsPerWallSec = 0.43e6;

// ---------------------------------------------------------------------------
// 1. Simulator kernel: schedule / cancel / periodic churn.
// ---------------------------------------------------------------------------
struct SimEventsResult {
  std::uint64_t ops = 0;
  double wall_s = 0.0;
  double ops_per_sec = 0.0;
};

SimEventsResult bench_sim_events(std::uint64_t n) {
  sim::Simulator sim;
  Rng rng(4242);
  std::uint64_t fired = 0;

  const auto start = WallClock::now();
  std::uint64_t ops = 0;
  // A few periodic chains tick throughout the run.
  std::vector<sim::EventId> chains;
  for (int i = 0; i < 8; ++i) {
    chains.push_back(sim.schedule_periodic(msec(10 + i), [&] { ++fired; }));
    ++ops;
  }
  // Batches of one-shot events at pseudo-random offsets; a quarter of each
  // batch is cancelled before it can run.
  const std::uint64_t batch = 1024;
  std::vector<sim::EventId> cancellable;
  cancellable.reserve(batch / 4);
  for (std::uint64_t done = 0; done < n; done += batch) {
    cancellable.clear();
    for (std::uint64_t i = 0; i < batch; ++i) {
      const SimDuration delay = static_cast<SimDuration>(
          rng.uniform_int(0, static_cast<std::int64_t>(msec(50))));
      const sim::EventId id = sim.schedule_after(delay, [&] { ++fired; });
      ++ops;
      if ((i & 3u) == 0) cancellable.push_back(id);
    }
    for (const sim::EventId id : cancellable) {
      sim.cancel(id);
      ++ops;
    }
    sim.run_for(msec(25));
  }
  for (const sim::EventId id : chains) sim.cancel(id);
  sim.run_for(sec(1));

  SimEventsResult r;
  r.ops = ops + sim.events_processed();
  r.wall_s = secs_since(start);
  r.ops_per_sec = static_cast<double>(r.ops) / r.wall_s;
  std::printf("sim_events: %" PRIu64 " ops (%" PRIu64
              " fired) in %.3f s -> %.2fM ops/s\n",
              r.ops, fired, r.wall_s, r.ops_per_sec / 1e6);
  return r;
}

// ---------------------------------------------------------------------------
// 2. Transport storm: every delivery re-sends until its hop budget runs out,
//    so one logical "flow" crosses the send->schedule->deliver path many
//    times carrying a realistic detect-probe-sized EVV payload.
// ---------------------------------------------------------------------------
struct TransportResult {
  std::uint64_t messages = 0;
  double wall_s = 0.0;
  double msgs_per_sec = 0.0;
};

struct HopPayload {
  std::uint32_t hops_left = 0;
  vv::ExtendedVersionVector evv;
};

class HopHandler final : public net::MessageHandler {
 public:
  HopHandler(net::Transport& t, std::uint32_t nodes)
      : transport_(t), nodes_(nodes) {}

  void on_message(const net::Message& msg) override {
    ++received_;
    const auto& p = msg.payload.as<HopPayload>();
    if (p.hops_left == 0) return;
    net::Message next;
    next.from = msg.to;
    next.to = (msg.to + 1) % nodes_;
    next.file = msg.file;
    next.type = msg.type;
    next.wire_bytes = msg.wire_bytes;
    next.payload = HopPayload{p.hops_left - 1, p.evv};
    transport_.send(std::move(next));
  }

  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  net::Transport& transport_;
  std::uint32_t nodes_;
  std::uint64_t received_ = 0;
};

const net::MsgType kProbeLike = net::MsgType::intern("bench.probe");

vv::ExtendedVersionVector make_probe_evv(std::uint32_t writers,
                                         std::uint32_t updates_each) {
  vv::ExtendedVersionVector evv;
  SimTime t = 0;
  for (std::uint32_t w = 0; w < writers; ++w) {
    for (std::uint32_t k = 0; k < updates_each; ++k) {
      t += msec(3);
      evv.record_update(w, t, static_cast<double>(w * k));
    }
  }
  return evv;
}

TransportResult bench_transport(std::uint64_t flows, std::uint32_t hops,
                                bool batching, std::uint32_t nodes,
                                std::uint32_t files) {
  sim::Simulator sim;
  // Constant latency on purpose: a latency model that burns CPU on
  // per-message jitter math (e.g. PlanetLab lognormal sampling) would
  // swamp the send->schedule->deliver path this section isolates.  The
  // node/file shape matches the macro deployment below.
  sim::ConstantLatency latency(msec(2));
  net::SimTransportOptions opts;
  opts.node_count = nodes;
  net::SimTransport wire(sim, latency, opts);
  net::BatchingTransport batch(wire, net::BatchingOptions{});
  net::Transport& edge =
      batching ? static_cast<net::Transport&>(batch) : wire;

  std::vector<std::unique_ptr<HopHandler>> handlers;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    handlers.push_back(std::make_unique<HopHandler>(edge, nodes));
    edge.attach(n, handlers.back().get());
  }

  const vv::ExtendedVersionVector evv = make_probe_evv(8, 6);
  const auto start = WallClock::now();
  for (std::uint64_t f = 0; f < flows; ++f) {
    net::Message m;
    m.from = static_cast<NodeId>(f % nodes);
    m.to = static_cast<NodeId>((f + 1) % nodes);
    m.file = static_cast<FileId>(f % files + 1);
    m.type = kProbeLike;
    m.wire_bytes = evv.wire_bytes();
    m.payload = HopPayload{hops, evv};
    edge.send(std::move(m));
  }
  sim.run();

  TransportResult r;
  for (const auto& h : handlers) r.messages += h->received();
  r.wall_s = secs_since(start);
  r.msgs_per_sec = static_cast<double>(r.messages) / r.wall_s;
  std::printf("transport%s: %" PRIu64 " msgs in %.3f s -> %.2fM msgs/s\n",
              batching ? "+batching" : "", r.messages, r.wall_s,
              r.msgs_per_sec / 1e6);
  return r;
}

// ---------------------------------------------------------------------------
// 3. Version-vector merge/compare walks.
// ---------------------------------------------------------------------------
struct VvResult {
  std::uint64_t ops = 0;
  double wall_s = 0.0;
  double ops_per_sec = 0.0;
};

VvResult bench_vv(std::uint64_t iters) {
  Rng rng(99);
  const std::uint32_t writers = 24;
  vv::VersionVector a, b;
  for (std::uint32_t w = 0; w < writers; ++w) {
    // Overlapping but distinct writer sets, like detect/resolve exchanges.
    if (w % 3 != 0) a.set(w, rng.uniform_int(1, 50));
    if (w % 3 != 1) b.set(w, rng.uniform_int(1, 50));
  }
  const auto start = WallClock::now();
  std::uint64_t concurrent = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    vv::VersionVector c = a;
    c.merge(b);
    if (vv::VersionVector::compare(a, b) == vv::Order::kConcurrent) {
      ++concurrent;
    }
    if (vv::VersionVector::compare(c, a) == vv::Order::kBefore) ++concurrent;
  }
  VvResult r;
  r.ops = iters * 3;  // one merge + two compares per iteration
  r.wall_s = secs_since(start);
  r.ops_per_sec = static_cast<double>(r.ops) / r.wall_s;
  std::printf("vv_merge: %" PRIu64 " ops in %.3f s -> %.2fM ops/s "
              "(checksum %" PRIu64 ")\n",
              r.ops, r.wall_s, r.ops_per_sec / 1e6, concurrent);
  return r;
}

// ---------------------------------------------------------------------------
// 4. Macro: the PR 1 shard-scalability headline configuration.
// ---------------------------------------------------------------------------
struct MacroResult {
  std::uint32_t endpoints = 0;
  std::uint32_t files = 0;
  double sim_secs = 0.0;
  double wall_ms = 0.0;
  std::uint64_t puts_applied = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t wire_messages = 0;
  double msgs_per_wall_sec = 0.0;
  double converged_pct = 0.0;
  std::uint64_t digest_xor = 0;  ///< XOR of sampled coordinator digests.
};

MacroResult bench_macro(std::uint32_t endpoints, std::uint32_t files,
                        SimDuration sim_duration, std::uint64_t seed) {
  const auto start = WallClock::now();
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = endpoints;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  cfg.idea.detection_period = sec(2);
  shard::ShardedCluster cluster(cfg);

  cluster.place(1, files);
  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = files, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = endpoints * 2;
  wl.interval = msec(250);
  wl.duration = sim_duration;
  wl.keyspace = files * 4;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();
  cluster.run_for(sim_duration + sec(10));

  MacroResult r;
  r.endpoints = endpoints;
  r.files = files;
  r.sim_secs = to_sec(sim_duration);
  r.puts_applied = kv.puts();
  r.wire_messages = cluster.wire_counters().total_messages();
  r.logical_messages = cluster.batching() != nullptr
                           ? cluster.batching()->stats().logical_messages
                           : r.wire_messages;
  std::size_t sampled = 0, converged = 0;
  for (FileId f = 1; f <= files; f += 7) {
    ++sampled;
    if (cluster.converged(f)) ++converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) r.digest_xor ^= coord->store().content_digest();
  }
  r.converged_pct =
      100.0 * static_cast<double>(converged) / static_cast<double>(sampled);
  r.wall_ms = ms_since(start);
  r.msgs_per_wall_sec =
      static_cast<double>(r.logical_messages) / (r.wall_ms / 1000.0);
  std::printf("macro: %u endpoints / %u files, %" PRIu64 " logical msgs "
              "(%" PRIu64 " wire) in %.0f ms wall -> %.2fM msgs/wall-s, "
              "%.1f%% converged, digest %016" PRIx64 "\n",
              r.endpoints, r.files, r.logical_messages, r.wire_messages,
              r.wall_ms, r.msgs_per_wall_sec / 1e6, r.converged_pct,
              r.digest_xor);
  return r;
}

double speedup_vs(double now, double baseline) {
  return baseline > 0.0 ? now / baseline : 0.0;
}

void write_json(const std::string& path, bool smoke,
                const SimEventsResult& se, const TransportResult& tr,
                const TransportResult& trb, const VvResult& vvr,
                const MacroResult& mc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"hotpath\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"metrics\": {\n");
  std::fprintf(f, "    \"sim_events_per_sec\": %.0f,\n", se.ops_per_sec);
  std::fprintf(f, "    \"transport_msgs_per_sec\": %.0f,\n", tr.msgs_per_sec);
  std::fprintf(f, "    \"batched_transport_msgs_per_sec\": %.0f,\n",
               trb.msgs_per_sec);
  std::fprintf(f, "    \"vv_merge_ops_per_sec\": %.0f,\n", vvr.ops_per_sec);
  std::fprintf(f, "    \"macro\": {\n");
  std::fprintf(f, "      \"endpoints\": %u,\n", mc.endpoints);
  std::fprintf(f, "      \"files\": %u,\n", mc.files);
  std::fprintf(f, "      \"sim_secs\": %.1f,\n", mc.sim_secs);
  std::fprintf(f, "      \"wall_ms\": %.1f,\n", mc.wall_ms);
  std::fprintf(f, "      \"puts_applied\": %" PRIu64 ",\n", mc.puts_applied);
  std::fprintf(f, "      \"logical_messages\": %" PRIu64 ",\n",
               mc.logical_messages);
  std::fprintf(f, "      \"wire_messages\": %" PRIu64 ",\n",
               mc.wire_messages);
  std::fprintf(f, "      \"msgs_per_wall_sec\": %.0f,\n",
               mc.msgs_per_wall_sec);
  std::fprintf(f, "      \"converged_pct\": %.1f,\n", mc.converged_pct);
  std::fprintf(f, "      \"content_digest_xor\": \"%016" PRIx64 "\"\n",
               mc.digest_xor);
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"baseline_pre_refactor\": {\n");
  std::fprintf(f, "    \"sim_events_per_sec\": %.0f,\n", kBaselineSimEvents);
  std::fprintf(f, "    \"transport_msgs_per_sec\": %.0f,\n",
               kBaselineTransportMsgs);
  std::fprintf(f, "    \"batched_transport_msgs_per_sec\": %.0f,\n",
               kBaselineBatchedTransportMsgs);
  std::fprintf(f, "    \"vv_merge_ops_per_sec\": %.0f,\n", kBaselineVvMerges);
  std::fprintf(f, "    \"macro_msgs_per_wall_sec\": %.0f\n",
               kBaselineMacroMsgsPerWallSec);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"speedup\": {\n");
  std::fprintf(f, "    \"sim_events\": %.2f,\n",
               speedup_vs(se.ops_per_sec, kBaselineSimEvents));
  std::fprintf(f, "    \"transport\": %.2f,\n",
               speedup_vs(tr.msgs_per_sec, kBaselineTransportMsgs));
  std::fprintf(f, "    \"batched_transport\": %.2f,\n",
               speedup_vs(trb.msgs_per_sec, kBaselineBatchedTransportMsgs));
  std::fprintf(f, "    \"vv_merge\": %.2f,\n",
               speedup_vs(vvr.ops_per_sec, kBaselineVvMerges));
  std::fprintf(f, "    \"macro\": %.2f\n",
               speedup_vs(mc.msgs_per_wall_sec, kBaselineMacroMsgsPerWallSec));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  print_header("Hot path: kernel, transport, version vectors, macro run");

  const std::uint64_t n_events = smoke ? 200'000 : 2'000'000;
  const std::uint64_t n_flows = smoke ? 2'000 : 20'000;
  const std::uint32_t hops = 32;
  const std::uint64_t n_vv = smoke ? 200'000 : 2'000'000;
  const auto endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", 32));
  const auto files = static_cast<std::uint32_t>(flags.get_int("files", 2000));
  const SimDuration sim_secs =
      sec_f(flags.get_double("sim-secs", smoke ? 3.0 : 10.0));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  const SimEventsResult se = bench_sim_events(n_events);
  const TransportResult tr =
      bench_transport(n_flows, hops, false, endpoints, files);
  const TransportResult trb =
      bench_transport(n_flows, hops, true, endpoints, files);
  const VvResult vvr = bench_vv(n_vv);
  const MacroResult mc = bench_macro(endpoints, files, sim_secs, seed);

  write_json(flags.get_string("json", "BENCH_hotpath.json"), smoke, se, tr,
             trb, vvr, mc);
  return 0;
}
