/// \file recovery.cpp
/// \brief Durability cost vs recovery speed across checkpoint engines and
///        intervals — the trade-off the crash-stop fault model exposes.
///
/// One deployment per (engine, interval) cell, same seed and workload: a
/// live kv write stream, one endpoint crash-stopped mid-workload and
/// restarted two seconds later.  Each cell reports what durability cost
/// (checkpoint records/updates/bytes written over the run) bought at
/// recovery time: how much state came back from the durable image vs how
/// much had to be re-streamed over anti-entropy (the checkpoint→crash
/// gap), and how many repair messages the healing took cluster-wide.
///
/// The no-checkpoint baseline pays nothing up front and re-streams the
/// whole log; the full engine rewrites every replica every period; the
/// incremental engine skips clean replicas and should land near the full
/// engine's recovery profile at a fraction of its write amplification.
/// Emits BENCH_recovery.json for the CI perf trajectory.
///
///   $ ./recovery [--endpoints 16] [--files 200] [--seed 2007] [--smoke]
///                [--json FILE]

#include <cinttypes>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/kvstore.hpp"
#include "shard/sharded_cluster.hpp"
#include "util/flags.hpp"

namespace idea::bench {
namespace {

struct Setup {
  std::uint32_t endpoints = 16;
  std::uint32_t files = 200;
  std::uint64_t seed = 2007;
};

struct Cell {
  std::string engine;
  std::int64_t period_ms = 0;  ///< 0 for the no-checkpoint baseline.
  // Durability cost over the whole run (cluster-wide).
  std::uint64_t ckpt_records = 0;
  std::uint64_t ckpt_updates = 0;
  std::uint64_t ckpt_bytes = 0;
  // What restart recovered, and from where.
  std::uint64_t files_recovered = 0;
  std::uint64_t from_checkpoint = 0;  ///< Updates reloaded durably.
  std::uint64_t reconciled = 0;       ///< Own-writer survivor reconcile.
  std::uint64_t gap = 0;              ///< Left for anti-entropy to heal.
  // What the healing cost on the wire.
  std::uint64_t repair_msgs = 0;
  std::uint64_t repair_updates = 0;
  int heal_periods = -1;
  std::int64_t downtime_ms = 0;
  std::uint64_t puts = 0;
};

constexpr SimDuration kAePeriod = msec(500);

Cell run_cell(const Setup& s, replica::CheckpointEngineKind engine,
              SimDuration period, const char* name) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = s.endpoints;
  cfg.replication = 3;
  cfg.seed = s.seed;
  cfg.anti_entropy_period = kAePeriod;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  cfg.idea.detection_period = sec(2);
  cfg.checkpoint.engine = engine;
  cfg.checkpoint.period = period;

  auto cluster = std::make_unique<shard::ShardedCluster>(cfg);
  cluster->place(1, s.files);
  apps::KvStore kv(*cluster,
                   apps::KvStoreOptions{.buckets = s.files, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 2 * s.endpoints;
  wl.interval = msec(250);
  wl.duration = sec(10);
  wl.keyspace = 4 * s.files;
  apps::KvWorkload workload(kv, cluster->sim(), wl, s.seed ^ 0xBEEF);
  workload.start();

  // Crash at 7.3 s — deliberately NOT a multiple of the intervals, so
  // each interval leaves a different-sized checkpoint→crash gap — and
  // restart just before the write stream ends: the heal clock below
  // starts counting right as the workload quiesces, so heal periods
  // measure recovery, not leftover write-propagation noise.
  const NodeId victim = s.endpoints / 2;
  cluster->run_until(sec(7) + msec(300));
  cluster->crash_endpoint(victim);
  cluster->run_until(sec(9) + msec(750));
  const std::uint64_t repair_msgs_before =
      cluster->wire_counters().messages_of("shard.repair");
  const shard::RecoveryReport rec = cluster->restart_endpoint(victim);
  cluster->run_until(sec(10) + msec(250));

  Cell cell;
  cell.engine = name;
  cell.period_ms = engine == replica::CheckpointEngineKind::kNone
                       ? 0
                       : static_cast<std::int64_t>(period / 1000);
  const replica::DurableStorage& storage = cluster->durable_storage();
  cell.ckpt_records = storage.records_written();
  cell.ckpt_updates = storage.updates_written();
  cell.ckpt_bytes = storage.bytes_written();
  cell.files_recovered = rec.files_recovered;
  cell.from_checkpoint = rec.checkpoint_updates;
  cell.reconciled = rec.reconciled_updates;
  cell.gap = rec.gap_updates;
  cell.downtime_ms = static_cast<std::int64_t>(rec.downtime / 1000);

  // Heal: anti-entropy periods until every group is whole again.
  for (int p = 0; p <= 40; ++p) {
    std::size_t diverged = 0;
    for (FileId f = 1; f <= s.files; ++f) {
      if (!cluster->converged(f)) ++diverged;
    }
    if (diverged == 0) {
      cell.heal_periods = p;
      break;
    }
    cluster->run_for(kAePeriod);
  }
  cell.repair_msgs =
      cluster->wire_counters().messages_of("shard.repair") - repair_msgs_before;
  std::uint64_t repair_updates = 0;
  for (FileId f = 1; f <= s.files; ++f) {
    const std::vector<NodeId> group = cluster->group_of(f);
    for (std::uint32_t rank = 0; rank < group.size(); ++rank) {
      if (group[rank] != victim) continue;
      const shard::ReplicaSyncAgent* agent = cluster->sync_agent(f, rank);
      if (agent != nullptr) repair_updates += agent->stats().repair_updates_applied;
    }
  }
  cell.repair_updates = repair_updates;
  cell.puts = kv.puts();
  return cell;
}

void print_row(const Cell& c) {
  std::printf(
      "%-12s %5" PRId64 " ms   cost: %5" PRIu64 " records %7" PRIu64
      " updates %9" PRIu64 " B   restart: %4" PRIu64 " files, %5" PRIu64
      " durable + %3" PRIu64 " reconciled, gap %4" PRIu64
      "   heal: %2d periods, %5" PRIu64 " repair msgs\n",
      c.engine.c_str(), c.period_ms, c.ckpt_records, c.ckpt_updates,
      c.ckpt_bytes, c.files_recovered, c.from_checkpoint, c.reconciled,
      c.gap, c.heal_periods, c.repair_msgs);
}

void write_json(const std::string& path, bool smoke, const Setup& s,
                const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"recovery\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"endpoints\": %u,\n", s.endpoints);
  std::fprintf(f, "  \"files\": %u,\n", s.files);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f, "    {\"engine\": \"%s\", \"period_ms\": %" PRId64
                    ", \"ckpt_records\": %" PRIu64 ", \"ckpt_updates\": %" PRIu64
                    ", \"ckpt_bytes\": %" PRIu64 ",\n",
                 c.engine.c_str(), c.period_ms, c.ckpt_records,
                 c.ckpt_updates, c.ckpt_bytes);
    std::fprintf(f, "     \"files_recovered\": %" PRIu64
                    ", \"updates_from_checkpoint\": %" PRIu64
                    ", \"updates_reconciled\": %" PRIu64
                    ", \"gap_updates\": %" PRIu64 ",\n",
                 c.files_recovered, c.from_checkpoint, c.reconciled, c.gap);
    std::fprintf(f, "     \"heal_periods\": %d, \"recovered_after_ms\": %d"
                    ", \"downtime_ms\": %" PRId64
                    ", \"repair_messages\": %" PRIu64
                    ", \"victim_repair_updates\": %" PRIu64
                    ", \"puts\": %" PRIu64 "}%s\n",
                 c.heal_periods,
                 c.heal_periods < 0 ? -1 : c.heal_periods * 500,
                 c.downtime_ms, c.repair_msgs, c.repair_updates, c.puts,
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  Setup s;
  s.endpoints =
      static_cast<std::uint32_t>(flags.get_int("endpoints", smoke ? 8 : 16));
  s.files =
      static_cast<std::uint32_t>(flags.get_int("files", smoke ? 64 : 200));
  s.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  std::printf("recovery: %u endpoints, %u files, k=3, crash @7.3s restart "
              "@9.75s, seed %" PRIu64 "\n\n",
              s.endpoints, s.files, s.seed);

  std::vector<Cell> cells;
  cells.push_back(run_cell(s, replica::CheckpointEngineKind::kNone, 0, "none"));
  const std::vector<SimDuration> periods =
      smoke ? std::vector<SimDuration>{msec(500), sec(2)}
            : std::vector<SimDuration>{msec(500), sec(1), sec(2), sec(4)};
  for (SimDuration period : periods) {
    cells.push_back(
        run_cell(s, replica::CheckpointEngineKind::kFull, period, "full"));
    cells.push_back(run_cell(s, replica::CheckpointEngineKind::kIncremental,
                             period, "incremental"));
  }
  for (const Cell& c : cells) print_row(c);

  write_json(flags.get_string("json", "BENCH_recovery.json"), smoke, s,
             cells);
  return 0;
}
