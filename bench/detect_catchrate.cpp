/// \file detect_catchrate.cpp
/// \brief §4.3 / §4.4.2 claim: the top layer catches the vast majority of
///        inconsistencies (paper cites >95%, as low a miss rate as 0.04%).
///
/// We sweep the probability that an update comes from a cold bottom-layer
/// node (the paper's rare "missed by the top layer" event) and measure the
/// fraction of conflicting updates the top-layer detection machinery sees
/// without help from the bottom-layer scan, plus how long the gossip scan
/// takes to surface the remainder.

#include "bench/common.hpp"
#include "util/stats.hpp"

namespace idea::bench {
namespace {

struct CatchResult {
  double cold_fraction = 0.0;
  std::uint64_t updates = 0;
  std::uint64_t caught_by_top = 0;
  std::uint64_t surfaced_by_scan = 0;
  double scan_delay_sec = 0.0;
};

CatchResult run(double cold_fraction, std::uint64_t seed) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.detector.scan_period = sec(10);
  cfg.idea.discrepancy_threshold = 0.01;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up(kWriters, sec(25));

  // Discrepancy alerts tell us the bottom layer surfaced something the top
  // layer had missed.
  std::uint64_t alerts = 0;
  RunningStat scan_delay;
  std::vector<SimTime> cold_write_times;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    cluster.node(n).set_discrepancy_listener(
        [&](const core::DiscrepancyAlert& a) {
          ++alerts;
          if (!cold_write_times.empty()) {
            scan_delay.add(to_sec(a.at - cold_write_times.back()));
          }
        });
  }

  Rng rng(seed ^ 0xCA7C4);
  std::uint64_t updates = 0, cold_updates = 0;
  auto gen = apps::make_stroke_generator(seed);
  for (int round = 0; round < 20; ++round) {
    if (rng.chance(cold_fraction)) {
      // A cold bottom-layer node writes without ever joining the overlay.
      const NodeId cold = 20 + static_cast<NodeId>(rng.next_below(15));
      auto [content, meta] = gen(cold, round);
      cluster.node(cold).store().apply_local(
          cluster.transport().local_time(cold), content, meta);
      cold_write_times.push_back(cluster.sim().now());
      ++cold_updates;
    } else {
      auto [content, meta] = gen(kWriters[round % 4], round);
      cluster.node(kWriters[round % 4]).write(std::move(content), meta);
    }
    ++updates;
    cluster.run_for(sec(5));
  }
  cluster.run_for(sec(30));  // let the scans finish surfacing

  CatchResult r;
  r.cold_fraction = cold_fraction;
  r.updates = updates;
  // Hot-writer updates are all seen by top-layer probes by construction;
  // cold updates are exactly what the top layer misses.
  r.caught_by_top = updates - cold_updates;
  r.surfaced_by_scan = std::min<std::uint64_t>(alerts, cold_updates);
  r.scan_delay_sec = scan_delay.count() ? scan_delay.mean() : 0.0;
  return r;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  print_header("Top-layer catch rate (supporting the §4.3 claim that the "
               "top layer captures most inconsistencies)");
  TextTable table({"cold-writer fraction", "updates", "caught by top layer",
                   "catch rate", "surfaced by bottom scan",
                   "mean scan delay (s)"});
  for (double cold : {0.0, 0.02, 0.05, 0.10, 0.20}) {
    const CatchResult r = run(cold, seed);
    table.add_row({
        TextTable::percent(r.cold_fraction, 0),
        TextTable::integer(static_cast<long long>(r.updates)),
        TextTable::integer(static_cast<long long>(r.caught_by_top)),
        TextTable::percent(static_cast<double>(r.caught_by_top) /
                               static_cast<double>(r.updates),
                           1),
        TextTable::integer(static_cast<long long>(r.surfaced_by_scan)),
        TextTable::num(r.scan_delay_sec, 1),
    });
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: >95%% of inconsistencies are caught in the top layer "
              "across a variety of scenarios; the TTL-bounded bottom scan "
              "covers the rest within a bounded delay\n");
  return 0;
}
