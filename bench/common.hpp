#pragma once
/// \file common.hpp
/// \brief Shared setup for the experiment harnesses: the paper's deployment
///        (40 Planet-Lab-like nodes, four concurrent writers of one file)
///        and helpers to print the series/rows each figure/table reports.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "core/cluster.hpp"
#include "net/sim_transport.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/engine.hpp"

namespace idea::bench {

/// The four writers used throughout §6 (spread across the coordinate plane).
inline const std::vector<NodeId> kWriters{3, 11, 22, 37};

/// Paper-scale cluster: 40 nodes; WAN latencies tuned so that one
/// sequential resolution hop costs ~100 ms — the per-member cost the
/// paper's Formula 2 reports (104.7 ms).
inline core::ClusterConfig paper_cluster(std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.nodes = 40;
  cfg.seed = seed;
  cfg.latency.diameter_delay = msec(120);
  cfg.latency.processing_floor = msec(2);
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{250, 250, 250};
  cfg.idea.detection_period = sec(1);
  cfg.idea.resolution.collect_processing = msec(8);
  cfg.idea.resolution.cpu_per_send = usec(150);
  return cfg;
}

/// Issue one write burst from every writer (all conflicting, per §6).
inline void write_burst(core::IdeaCluster& cluster, int index,
                        std::uint64_t seed) {
  auto gen = apps::make_stroke_generator(seed);
  for (NodeId w : kWriters) {
    auto [content, meta] = gen(w, index);
    cluster.node(w).write(std::move(content), meta);
  }
}

/// Worst ("view from the user") and mean ("system average") level across
/// the writers.
struct LevelSnapshot {
  double worst = 1.0;
  double average = 0.0;
};

inline LevelSnapshot snapshot_levels(core::IdeaCluster& cluster) {
  LevelSnapshot s;
  for (NodeId w : kWriters) {
    const double lv = cluster.node(w).current_level();
    s.worst = std::min(s.worst, lv);
    s.average += lv / static_cast<double>(kWriters.size());
  }
  return s;
}

// ---------------------------------------------------------------------
// Workload-shape helpers shared by the sharded-cluster benches (the Zipf
// and arrival-schedule setup read_policies and shard_scalability used to
// duplicate, now expressed through workload::OpenLoopEngine).
// ---------------------------------------------------------------------

/// Scripted full-loss windows: `length` of 100% loss every `every`,
/// starting at `first`, while the window still fits before `end`.
/// Replication pushes inside a window drop, so written files' replicas
/// lag their coordinator until anti-entropy repairs them.
inline void add_loss_windows(net::SimTransport& transport, SimTime first,
                             SimTime end, SimDuration every,
                             SimDuration length) {
  for (SimTime t = first; t + length < end; t += every) {
    transport.add_drop_window(t, t + length);
  }
}

/// A constant arrival rate for the whole run.
inline std::vector<workload::RatePhase> steady_rate(double ops_per_sec) {
  return {{0, ops_per_sec}};
}

/// A constant Zipf skew for the whole run.
inline std::vector<workload::ZipfPhase> steady_zipf(double s) {
  return {{0, s}};
}

/// Client attach points 0..n-1 (one per endpoint).
inline std::vector<NodeId> all_origins(std::uint32_t n) {
  std::vector<NodeId> origins(n);
  for (std::uint32_t i = 0; i < n; ++i) origins[i] = i;
  return origins;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================\n");
}

// ---------------------------------------------------------------------
// Wall-clock timing helpers shared by the perf benches (hotpath,
// obs_overhead and parallel_scalability report wall time the same way).
// ---------------------------------------------------------------------

using WallClock = std::chrono::steady_clock;

/// Seconds elapsed since `start`.
inline double secs_since(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();
}

/// Milliseconds elapsed since `start`.
inline double ms_since(WallClock::time_point start) {
  return 1000.0 * secs_since(start);
}

/// Median of a sample set (upper median for even sizes — what the perf
/// benches have always reported).  Takes a copy so callers keep their
/// run order.
inline double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values.empty() ? 0.0 : values[values.size() / 2];
}

}  // namespace idea::bench
