/// \file fig8_rehint.cpp
/// \brief Figure 8: the hint is re-set at runtime.
///
/// Same deployment as Figure 7, run for 200 s (40 updates per writer).
/// Hints start at 95% and are re-set to 90% at t = 100 s.  The paper's
/// observation: the achieved lowest level tracks ~95% in the first half and
/// ~90% in the second — the adaptive interface responds to the mid-run
/// change without restarting anything.

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  const double first_hint = flags.get_double("first-hint", 0.95);
  const double second_hint = flags.get_double("second-hint", 0.90);
  std::unique_ptr<SeriesCsv> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<SeriesCsv>(flags.get_string("csv", "fig8.csv"));
  }

  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.0;  // bystanders are not users (Table 1)
  core::IdeaCluster cluster(cfg);
  cluster.start();
  for (NodeId w : kWriters) cluster.node(w).set_hint(first_hint);
  cluster.warm_up(kWriters, sec(25));
  cluster.node(kWriters.front()).demand_active_resolution();
  cluster.run_for(sec(5));

  TimeSeries worst("view from the user");
  TimeSeries average("system average");
  const SimTime t0 = cluster.sim().now();
  int index = 0;
  for (SimDuration t = 0; t < sec(200); t += sec(5)) {
    if (t == sec(100)) {
      // The users re-hint to 90% halfway through (Figure 8).
      for (NodeId w : kWriters) cluster.node(w).set_hint(second_hint);
    }
    write_burst(cluster, index++, seed);
    cluster.run_for(msec(400));
    const double now_sec = to_sec(cluster.sim().now() - t0);
    const LevelSnapshot snap = snapshot_levels(cluster);
    worst.add(now_sec, snap.worst);
    average.add(now_sec, snap.average);
    if (csv) {
      csv->add("worst", now_sec, snap.worst);
      csv->add("average", now_sec, snap.average);
    }
    cluster.run_for(sec(5) - msec(400));
  }

  print_header("Figure 8: hint 95% for t<100 s, re-hinted to 90% after");
  TextTable table({"t (s)", "view from the user", "system average"});
  for (std::size_t i = 0; i < worst.size(); ++i) {
    table.add_row({TextTable::num(worst.time_at(i), 1),
                   TextTable::percent(worst.value_at(i), 1),
                   TextTable::percent(average.value_at(i), 1)});
  }
  std::printf("%s", table.render().c_str());
  const double low_first = worst.min_in_window(0, 100);
  const double low_second = worst.min_in_window(100, 200);
  std::printf("lowest user-view level, first 100 s:  %s (hint %s)\n",
              TextTable::percent(low_first, 1).c_str(),
              TextTable::percent(first_hint, 0).c_str());
  std::printf("lowest user-view level, second 100 s: %s (hint %s)\n",
              TextTable::percent(low_second, 1).c_str(),
              TextTable::percent(second_hint, 0).c_str());
  std::printf("paper: ~95%% in the first half, ~90%% in the second\n");
  return 0;
}
