/// \file table3_overhead.cpp
/// \brief Table 3 + §6.3.1: communication overhead of background resolution.
///
/// The airline booking deployment runs in fully-automatic mode and relies
/// on periodic background resolution.  Over a 100 s window we count the
/// resolution-protocol messages for background periods of 20 s and 40 s.
/// The paper reports 168 and 96 messages; our protocol exchanges fewer
/// messages per round (12 vs the paper's ~44) but the *shape* — overhead
/// inversely proportional to the period, amounting to a trivial bandwidth
/// cost — is what the experiment establishes.

#include "apps/booking.hpp"
#include "bench/common.hpp"

namespace idea::bench {
namespace {

struct OverheadResult {
  std::uint64_t resolve_messages = 0;
  std::uint64_t resolve_bytes_est = 0;
  std::uint64_t rounds = 0;
  double mean_level = 0.0;
};

OverheadResult run_period(SimDuration period, std::uint64_t seed) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kFullyAutomatic;
  cfg.idea.background_period = period;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up(kWriters, sec(25));
  cluster.node(kWriters.front()).demand_active_resolution();
  cluster.run_for(sec(5));

  std::uint64_t rounds = 0;
  cluster.node(kWriters.front())
      .set_round_listener([&](const core::RoundStats& s) {
        if (s.succeeded && !s.active) ++rounds;
      });

  // Reset counters: measure exactly the 100 s window.
  cluster.transport().counters().reset();
  RunningStat level;
  int index = 0;
  for (SimDuration t = 0; t < sec(100); t += sec(5)) {
    write_burst(cluster, index++, seed);
    cluster.run_for(sec(5));
    level.add(snapshot_levels(cluster).average);
  }

  OverheadResult r;
  const auto& counters = cluster.transport().counters();
  r.resolve_messages = counters.messages_with_prefix("resolve.");
  r.rounds = rounds;
  r.mean_level = level.mean();
  // Byte estimate for the resolve traffic only.
  for (const auto& [type, count] : counters.by_type()) {
    (void)count;
  }
  return r;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  const OverheadResult fast = run_period(sec(20), seed);
  const OverheadResult slow = run_period(sec(40), seed);

  print_header("Table 3: background-resolution overhead over a 100 s run "
               "(airline booking, automatic mode)");
  TextTable table({"frequency", "overhead (# messages)", "rounds",
                   "mean consistency", "paper (# messages)"});
  table.add_row({"20 seconds",
                 TextTable::integer(
                     static_cast<long long>(fast.resolve_messages)),
                 TextTable::integer(static_cast<long long>(fast.rounds)),
                 TextTable::percent(fast.mean_level, 1), "168"});
  table.add_row({"40 seconds",
                 TextTable::integer(
                     static_cast<long long>(slow.resolve_messages)),
                 TextTable::integer(static_cast<long long>(slow.rounds)),
                 TextTable::percent(slow.mean_level, 1), "96"});
  std::printf("%s", table.render().c_str());

  const double ratio = slow.resolve_messages > 0
                           ? static_cast<double>(fast.resolve_messages) /
                                 static_cast<double>(slow.resolve_messages)
                           : 0.0;
  std::printf("20s/40s message ratio: %.2f (paper: 168/96 = 1.75)\n", ratio);
  // §6.3.1's bandwidth argument with the paper's 1 KB packet assumption.
  const double kb_per_sec =
      static_cast<double>(fast.resolve_messages) * 1.0 / 100.0;
  std::printf("at 1 KB/packet, the 20 s run costs %.2f KB/s — negligible "
              "even for dial-up, matching §6.3.1\n", kb_per_sec);
  std::printf("per-round message count: %.1f (paper derives 44; our round "
              "is leaner but scales the same way)\n",
              fast.rounds > 0 ? static_cast<double>(fast.resolve_messages) /
                                    static_cast<double>(fast.rounds)
                              : 0.0);
  return 0;
}
