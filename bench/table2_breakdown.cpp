/// \file table2_breakdown.cpp
/// \brief Table 2: delay breakdown of one active-resolution round.
///
/// Four concurrent writers form the top layer; each of the four in turn
/// initiates an active resolution, and the four runs are averaged — exactly
/// the paper's methodology.  Phase 1 is the parallel call-for-attention
/// (the paper's 0.468 ms is the initiator-side dispatch work; we report the
/// ack round-trip separately for honesty), phase 2 the sequential
/// collect-and-resolve traversal (~100 ms per member over WAN links).

#include "bench/common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));

  RunningStat phase1_dispatch, phase1_acks, phase2, total;
  for (std::size_t run = 0; run < kWriters.size(); ++run) {
    core::ClusterConfig cfg = paper_cluster(seed + run);
    cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
    core::IdeaCluster cluster(cfg);
    cluster.start();
    cluster.warm_up(kWriters, sec(25));
    // Create a conflict, then let a different writer initiate each run.
    write_burst(cluster, static_cast<int>(run), seed);
    cluster.run_for(sec(2));

    const NodeId initiator = kWriters[run];
    core::RoundStats stats;
    bool done = false;
    cluster.node(initiator).set_round_listener(
        [&](const core::RoundStats& s) {
          stats = s;
          done = true;
        });
    cluster.node(initiator).demand_active_resolution();
    cluster.run_for(sec(15));
    if (!done || !stats.succeeded) {
      std::fprintf(stderr, "run %zu: resolution did not complete cleanly\n",
                   run);
      continue;
    }
    phase1_dispatch.add(to_ms(stats.phase1_dispatch));
    phase1_acks.add(to_ms(stats.phase1_total));
    phase2.add(to_ms(stats.phase2_collect));
    total.add(to_ms(stats.total));
  }

  print_header("Table 2: breakdown of one round of active resolution "
               "(top layer of 4, average of 4 runs)");
  TextTable table({"phase", "delay (ms)", "paper (ms)"});
  table.add_row({"Phase 1 (parallel call-for-attention, dispatch)",
                 TextTable::num(phase1_dispatch.mean(), 3), "0.468"});
  table.add_row({"Phase 1 incl. ack round-trip (not in paper)",
                 TextTable::num(phase1_acks.mean(), 3), "-"});
  table.add_row({"Phase 2 (sequential collect + resolve)",
                 TextTable::num(phase2.mean(), 3), "314.241"});
  table.add_row({"Total round (until last commit ack)",
                 TextTable::num(total.mean(), 3), "-"});
  std::printf("%s", table.render().c_str());
  std::printf(
      "per-member phase 2 cost: %.3f ms (paper: 314.241/3 = 104.747 ms)\n",
      phase2.mean() / 3.0);
  std::printf("shape check: phase 1 dispatch is sub-millisecond and ~3 "
              "orders of magnitude below phase 2, as in the paper\n");
  return 0;
}
