/// \file obs_overhead.cpp
/// \brief Observability overhead trajectory: the macro shard run (the
///        hotpath.cpp headline configuration) executed three times per
///        repetition — observability off, metrics-only, and full
///        metrics+tracing — interleaved to cancel machine drift.
///
/// Emits BENCH_obs_overhead.json so CI accumulates the overhead ratio per
/// PR.  The contract the obs layer must keep: identical replica digests
/// across all three modes (observation never perturbs the protocol), and
/// full instrumentation within a few percent of wall-clock of the
/// uninstrumented run.
///
///   $ ./obs_overhead [--smoke] [--json BENCH_obs_overhead.json]
///                    [--endpoints 32] [--files 2000] [--sim-secs 10]
///                    [--reps 3] [--trace-out trace.json] [--strict]
///
/// --trace-out writes the full-mode run's chrome trace (load it at
/// chrome://tracing or https://ui.perfetto.dev).  --strict exits nonzero
/// when the full-mode overhead exceeds --max-overhead (default 1.05).

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/kvstore.hpp"
#include "bench/common.hpp"
#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::bench {
namespace {

enum class ObsMode { kOff, kMetrics, kFull };

const char* mode_name(ObsMode mode) {
  switch (mode) {
    case ObsMode::kOff:
      return "off";
    case ObsMode::kMetrics:
      return "metrics";
    case ObsMode::kFull:
      return "full";
  }
  return "?";
}

struct RunResult {
  double wall_ms = 0.0;
  std::uint64_t puts_applied = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t digest_xor = 0;
  std::uint64_t traces = 0;
  std::uint64_t spans = 0;
};

RunResult run_macro(ObsMode mode, std::uint32_t endpoints,
                    std::uint32_t files, SimDuration sim_duration,
                    std::uint64_t seed, const std::string& trace_out) {
  const auto start = WallClock::now();
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = endpoints;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  cfg.idea.detection_period = sec(2);
  cfg.observability.enabled = mode != ObsMode::kOff;
  cfg.observability.tracing = mode == ObsMode::kFull;
  shard::ShardedCluster cluster(cfg);

  cluster.place(1, files);
  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = files, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = endpoints * 2;
  wl.interval = msec(250);
  wl.duration = sim_duration;
  wl.keyspace = files * 4;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();
  cluster.run_for(sim_duration + sec(10));

  RunResult r;
  r.puts_applied = kv.puts();
  r.logical_messages = cluster.batching() != nullptr
                           ? cluster.batching()->stats().logical_messages
                           : cluster.wire_counters().total_messages();
  for (FileId f = 1; f <= files; f += 7) {
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) r.digest_xor ^= coord->store().content_digest();
  }
  if (mode == ObsMode::kFull && cluster.obs() != nullptr &&
      cluster.obs()->tracer() != nullptr) {
    r.traces = cluster.obs()->tracer()->traces_started();
    r.spans = cluster.obs()->tracer()->spans().size();
    if (!trace_out.empty()) {
      std::FILE* f = std::fopen(trace_out.c_str(), "w");
      if (f != nullptr) {
        const std::string json = cluster.obs()->tracer()->export_chrome_trace();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu spans)\n", trace_out.c_str(),
                    static_cast<std::size_t>(r.spans));
      }
    }
  }
  r.wall_ms = ms_since(start);
  return r;
}

double median_wall_ms(const std::vector<RunResult>& runs) {
  std::vector<double> walls;
  walls.reserve(runs.size());
  for (const RunResult& r : runs) walls.push_back(r.wall_ms);
  return median(std::move(walls));
}

void write_json(const std::string& path, bool smoke, std::uint32_t endpoints,
                std::uint32_t files, double sim_secs, std::size_t reps,
                double off_ms, double metrics_ms, double full_ms,
                const RunResult& full_sample, bool digests_match) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"obs_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"endpoints\": %u,\n", endpoints);
  std::fprintf(f, "    \"files\": %u,\n", files);
  std::fprintf(f, "    \"sim_secs\": %.1f,\n", sim_secs);
  std::fprintf(f, "    \"reps\": %zu\n", reps);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"median_wall_ms\": {\n");
  std::fprintf(f, "    \"obs_off\": %.1f,\n", off_ms);
  std::fprintf(f, "    \"obs_metrics\": %.1f,\n", metrics_ms);
  std::fprintf(f, "    \"obs_full\": %.1f\n", full_ms);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"overhead_ratio\": {\n");
  std::fprintf(f, "    \"metrics_vs_off\": %.4f,\n", metrics_ms / off_ms);
  std::fprintf(f, "    \"full_vs_off\": %.4f\n", full_ms / off_ms);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"full_run\": {\n");
  std::fprintf(f, "    \"puts_applied\": %" PRIu64 ",\n",
               full_sample.puts_applied);
  std::fprintf(f, "    \"logical_messages\": %" PRIu64 ",\n",
               full_sample.logical_messages);
  std::fprintf(f, "    \"traces\": %" PRIu64 ",\n", full_sample.traces);
  std::fprintf(f, "    \"spans\": %" PRIu64 ",\n", full_sample.spans);
  std::fprintf(f, "    \"content_digest_xor\": \"%016" PRIx64 "\"\n",
               full_sample.digest_xor);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"digests_match_across_modes\": %s\n",
               digests_match ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);

  print_header("Observability overhead: macro run off / metrics / full");

  const auto endpoints = static_cast<std::uint32_t>(
      flags.get_int("endpoints", smoke ? 8 : 32));
  const auto files =
      static_cast<std::uint32_t>(flags.get_int("files", smoke ? 200 : 2000));
  const double sim_secs = flags.get_double("sim-secs", smoke ? 3.0 : 10.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  const auto reps =
      static_cast<std::size_t>(flags.get_int("reps", smoke ? 1 : 3));
  const std::string trace_out = flags.get_string("trace-out", "");
  const double max_overhead = flags.get_double("max-overhead", 1.05);
  const bool strict = flags.get_bool("strict", false);

  const SimDuration sim_duration = sec_f(sim_secs);
  std::vector<RunResult> off_runs, metrics_runs, full_runs;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    // Interleave the three modes within each repetition so machine drift
    // (thermal, cache, background load) hits all of them equally.
    for (const ObsMode mode :
         {ObsMode::kOff, ObsMode::kMetrics, ObsMode::kFull}) {
      // Only the first full-mode rep exports the sample trace.
      const std::string out =
          (mode == ObsMode::kFull && rep == 0) ? trace_out : "";
      const RunResult r =
          run_macro(mode, endpoints, files, sim_duration, seed, out);
      std::printf("rep %zu %-7s: %7.1f ms wall, %" PRIu64
                  " logical msgs, digest %016" PRIx64 "\n",
                  rep, mode_name(mode), r.wall_ms, r.logical_messages,
                  r.digest_xor);
      switch (mode) {
        case ObsMode::kOff:
          off_runs.push_back(r);
          break;
        case ObsMode::kMetrics:
          metrics_runs.push_back(r);
          break;
        case ObsMode::kFull:
          full_runs.push_back(r);
          break;
      }
    }
  }

  // Pure-observer check: instrumentation must not change what the cluster
  // computed.  A digest mismatch is a correctness bug, not a perf result.
  bool digests_match = true;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    digests_match &= off_runs[rep].digest_xor == metrics_runs[rep].digest_xor;
    digests_match &= off_runs[rep].digest_xor == full_runs[rep].digest_xor;
    digests_match &=
        off_runs[rep].logical_messages == full_runs[rep].logical_messages;
  }
  if (!digests_match) {
    std::fprintf(stderr,
                 "FAIL: digests/message counts diverge across obs modes\n");
  }

  const double off_ms = median_wall_ms(off_runs);
  const double metrics_ms = median_wall_ms(metrics_runs);
  const double full_ms = median_wall_ms(full_runs);
  std::printf("medians: off %.1f ms, metrics %.1f ms (x%.3f), "
              "full %.1f ms (x%.3f)\n",
              off_ms, metrics_ms, metrics_ms / off_ms, full_ms,
              full_ms / off_ms);

  write_json(flags.get_string("json", "BENCH_obs_overhead.json"), smoke,
             endpoints, files, sim_secs, reps, off_ms, metrics_ms, full_ms,
             full_runs.front(), digests_match);

  if (!digests_match) return 1;
  if (strict && full_ms / off_ms > max_overhead) {
    std::fprintf(stderr, "FAIL: full-mode overhead x%.3f exceeds x%.3f\n",
                 full_ms / off_ms, max_overhead);
    return 1;
  }
  return 0;
}
