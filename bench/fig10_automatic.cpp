/// \file fig10_automatic.cpp
/// \brief Figure 10: consistency level over time in the automatic system.
///
/// Same deployment as Table 3: booking servers, background resolution every
/// 20 s vs every 40 s, consistency level perceived by the top-layer nodes
/// sampled every 5 s.  The paper's observation: the 20 s run holds a higher
/// average consistency level — the frequency/overhead trade-off of §6.3.2.

#include "apps/booking.hpp"
#include "bench/common.hpp"

namespace idea::bench {
namespace {

TimeSeries run_series(SimDuration period, std::uint64_t seed,
                      SeriesCsv* csv, const std::string& label) {
  core::ClusterConfig cfg = paper_cluster(seed);
  cfg.idea.controller.mode = core::AdaptiveMode::kFullyAutomatic;
  cfg.idea.background_period = period;
  core::IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up(kWriters, sec(25));
  cluster.node(kWriters.front()).demand_active_resolution();
  cluster.run_for(sec(5));

  apps::BookingParams bp;
  bp.capacity = 100000;  // ample seats: this figure is about consistency
  apps::BookingSystem booking(cluster, kWriters, bp, seed);

  TimeSeries series(label);
  const SimTime t0 = cluster.sim().now();
  for (SimDuration t = 0; t < sec(100); t += sec(5)) {
    for (NodeId s : kWriters) booking.try_book(s);
    cluster.run_for(msec(1800));
    const double now_sec = to_sec(cluster.sim().now() - t0);
    series.add(now_sec, snapshot_levels(cluster).average);
    if (csv) csv->add(label, now_sec, snapshot_levels(cluster).average);
    cluster.run_for(sec(5) - msec(1800));
  }
  return series;
}

}  // namespace
}  // namespace idea::bench

int main(int argc, char** argv) {
  using namespace idea;
  using namespace idea::bench;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2007));
  std::unique_ptr<SeriesCsv> csv;
  if (flags.has("csv")) {
    csv = std::make_unique<SeriesCsv>(flags.get_string("csv", "fig10.csv"));
  }

  const TimeSeries fast =
      run_series(sec(20), seed, csv.get(), "period-20s");
  const TimeSeries slow =
      run_series(sec(40), seed, csv.get(), "period-40s");

  print_header("Figure 10: consistency level of the automatic booking "
               "system (background resolution every 20 s vs 40 s)");
  TextTable table({"t (s)", "level @ 20 s period", "level @ 40 s period"});
  for (std::size_t i = 0; i < fast.size(); ++i) {
    table.add_row({TextTable::num(fast.time_at(i), 1),
                   TextTable::percent(fast.value_at(i), 1),
                   TextTable::percent(slow.value_at(i), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("mean level @ 20 s: %s   mean level @ 40 s: %s\n",
              TextTable::percent(fast.mean_value(), 1).c_str(),
              TextTable::percent(slow.mean_value(), 1).c_str());
  std::printf("minimum @ 20 s:    %s   minimum @ 40 s:    %s\n",
              TextTable::percent(fast.min_value(), 1).c_str(),
              TextTable::percent(slow.min_value(), 1).c_str());
  std::printf("paper: the higher frequency holds a higher average "
              "consistency level, at higher overhead (Table 3)\n");
  return 0;
}
