/// \file quickstart.cpp
/// \brief Five-minute tour of the IDEA public API.
///
/// Builds a small simulated deployment, writes conflicting updates from two
/// nodes, watches the consistency level IDEA attaches to each replica, and
/// resolves the inconsistency on demand.
///
///   $ ./quickstart

#include <cstdio>

#include "core/cluster.hpp"

using namespace idea;
using namespace idea::core;

int main() {
  // --- 1. Build a deployment: 8 nodes sharing one file. -------------------
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.seed = 42;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{20, 20, 20};  // set_consistency_metric
  IdeaCluster cluster(cfg);
  cluster.start();

  // --- 2. Two participants write; the overlay warms up. -------------------
  IdeaNode& alice = cluster.node(1);
  IdeaNode& bob = cluster.node(5);
  alice.write("alice: hello", 1.0);
  bob.write("bob: hi there", 2.0);
  cluster.run_for(sec(20));  // RanSub epochs form the top layer

  std::printf("top layer as alice sees it:");
  for (NodeId n : alice.top_layer()) std::printf(" %s", node_name(n).c_str());
  std::printf("\n");

  // --- 3. Conflicting writes drop the consistency level. ------------------
  alice.write("alice: edits the diagram", 3.5);
  bob.write("bob: edits the same spot", 4.1);
  cluster.run_for(sec(3));  // detection rounds quantify the inconsistency

  std::printf("alice's consistency level: %.3f  (triple %s)\n",
              alice.current_level(),
              alice.last_sample().triple.to_string().c_str());
  std::printf("bob's   consistency level: %.3f\n", bob.current_level());

  // --- 4. Resolve on demand (the Table-1 API). -----------------------------
  alice.set_resolution(2);  // 2 = user-ID based policy
  alice.demand_active_resolution();
  cluster.run_for(sec(5));

  std::printf("after resolution, alice's level: %.3f\n",
              alice.current_level());
  std::printf("replicas converged: %s\n",
              cluster.converged({1, 5}) ? "yes" : "no");

  // --- 5. Read the replica in canonical order. -----------------------------
  std::printf("alice's view of the file:\n");
  for (const auto& u : alice.read()) {
    std::printf("  [%s]%s %s\n", format_time(u.stamp).c_str(),
                u.invalidated ? " (invalidated)" : "", u.content.c_str());
  }
  return 0;
}
