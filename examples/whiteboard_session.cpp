/// \file whiteboard_session.cpp
/// \brief The paper's distributed white board (§3.1/§5.1): a scripted
///        collaboration session with on-demand user interaction.
///
/// Three participants draw concurrently.  One of them has a high standard
/// for order preservation: when the consistency level annoys them they
/// complain (user_unsatisfied), IDEA resolves and learns the new acceptable
/// level L1 + delta, and they also re-weight the metrics toward order error
/// — the three interaction styles of §5.1.

#include <cstdio>

#include "apps/whiteboard.hpp"
#include "apps/workload.hpp"

using namespace idea;
using namespace idea::core;
using namespace idea::apps;

int main() {
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.seed = 7;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.85;   // initial learned level L1
  cfg.idea.controller.hint_delta = 0.03;
  cfg.idea.maxima = vv::TripleMaxima{40, 40, 40};
  IdeaCluster cluster(cfg);
  cluster.start();

  const std::vector<NodeId> participants{2, 6, 9};
  WhiteboardApp board(cluster, participants);
  cluster.warm_up(participants, sec(20));

  // The user at node 2 cares a lot about order preservation (§5.1): they
  // re-weight toward order error and will complain below 90%.
  cluster.node(2).user_adjust_weights(0.2, 0.7, 0.1);
  board.attach_user(UserModel{2, /*real_tolerance=*/0.90,
                              /*complains=*/true});

  std::printf("-- collaboration session: 60 s, strokes every ~4 s --\n");
  WorkloadParams wp;
  wp.interval = sec(4);
  wp.jitter_frac = 0.3;
  wp.duration = sec(60);
  UpdateWorkload strokes(cluster, participants, wp,
                         make_stroke_generator(7), 7);
  strokes.start();

  for (int t = 0; t < 12; ++t) {
    cluster.run_for(sec(5));
    board.sample_levels(cluster.sim().now());
    std::printf("t=%3ds  levels:", (t + 1) * 5);
    for (NodeId p : participants) std::printf(" %.3f", board.level(p));
    std::printf("  learned-acceptable(user@2)=%.2f\n",
                cluster.node(2).controller().hint());
  }

  const UserModel& user = board.users().front();
  std::printf("\nuser@2 was annoyed %llu times and complained %llu times\n",
              static_cast<unsigned long long>(user.times_annoyed),
              static_cast<unsigned long long>(user.times_complained));
  std::printf("IDEA learned to keep the level above %.2f for them\n",
              cluster.node(2).controller().hint());

  // Settle and show convergence.
  cluster.node(2).demand_active_resolution();
  cluster.run_for(sec(10));
  std::printf("boards match after final resolution: %s\n",
              board.boards_match() ? "yes" : "no");
  std::printf("board as user@2 sees it (%zu live strokes):\n",
              board.view(2).size());
  for (const auto& stroke : board.view(2)) {
    std::printf("  %s\n", stroke.c_str());
  }
  return 0;
}
