/// \file client_sessions.cpp
/// \brief Tour of the unified client session API (src/client/).
///
/// Opens sessions against a sharded cluster at each of the four
/// consistency levels and shows what the declared level buys: where the
/// read routing serves from, the client-observed latency it implies, and
/// the staleness the application accepted in exchange.
///
///   $ ./client_sessions

#include <cstdio>

#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

using namespace idea;
using namespace idea::client;

namespace {

void show(const char* label, const OpHandle<ReadResult>& handle) {
  std::printf(
      "  %-22s served by %s  latency %5.1f ms  staleness %llu versions%s%s\n",
      label, node_name(handle->served_by).c_str(),
      static_cast<double>(handle->latency) / 1000.0,
      static_cast<unsigned long long>(handle->staleness_versions),
      handle->escalated ? "  [escalated to coordinator]" : "",
      handle->migration_window ? "  [migration window]" : "");
}

}  // namespace

int main() {
  // --- 1. A sharded deployment with anti-entropy on. ----------------------
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.seed = 2026;
  cfg.anti_entropy_period = msec(500);
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  cfg.idea.controller.mode = core::AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.0;
  shard::ShardedCluster cluster(cfg);
  Client client(cluster);

  const FileId file = 7;
  // The writer attaches at endpoint 4, like the readers below, so its
  // acks pay a real round trip to the file's coordinator.
  ClientSession writer = client.session({.origin = 4});
  for (int i = 0; i < 8; ++i) {
    writer.put(file, "update-" + std::to_string(i), 1.0);
  }
  cluster.run_for(sec(2));

  const std::vector<NodeId> group = cluster.group_of(file);
  std::printf("file %u lives on {%s %s %s}, coordinator %s\n\n", file,
              node_name(group[0]).c_str(), node_name(group[1]).c_str(),
              node_name(group[2]).c_str(), node_name(group[0]).c_str());

  // --- 2. The same read under each declared level. ------------------------
  const NodeId origin = 4;  // the client's attachment endpoint
  std::printf("reads from a client attached at %s:\n",
              node_name(origin).c_str());

  ClientSession strong =
      client.session({.level = ConsistencyLevel::strong(), .origin = origin});
  show("Strong", strong.read(file));

  ClientSession nearest = client.session(
      {.level = ConsistencyLevel::eventual_nearest(), .origin = origin});
  show("Eventual{Nearest}", nearest.read(file));

  ClientSession bounded = client.session(
      {.level = ConsistencyLevel::bounded_staleness(2, sec(5)),
       .origin = origin});
  show("BoundedStaleness", bounded.read(file));

  ClientSession quorum =
      client.session({.level = ConsistencyLevel::quorum(), .origin = origin});
  show("Quorum{majority}", quorum.read(file));

  // --- 3. Async completion: handles follow the simulator clock. -----------
  const OpHandle<WriteAck> put = writer.put(file, "async-write", 1.0);
  std::printf("\nput acked by %s, completes in %.1f ms...",
              node_name(put->coordinator).c_str(),
              static_cast<double>(put.latency()) / 1000.0);
  put.on_complete([&](const OpHandle<WriteAck>&) {
    std::printf(" completed at t=%.1f ms\n",
                static_cast<double>(cluster.sim().now()) / 1000.0);
  });
  cluster.run_for(sec(1));

  // --- 4. What the router did under the hood. ------------------------------
  const shard::RouterStats& stats = cluster.router().stats();
  std::printf(
      "\nrouter: %llu reads (%llu strong, %llu nearest, %llu bounded "
      "[%llu escalated], %llu quorum), %llu freshness hints ingested\n",
      static_cast<unsigned long long>(stats.reads),
      static_cast<unsigned long long>(stats.strong_reads),
      static_cast<unsigned long long>(stats.nearest_reads),
      static_cast<unsigned long long>(stats.bounded_reads),
      static_cast<unsigned long long>(stats.bounded_escalations),
      static_cast<unsigned long long>(stats.quorum_reads),
      static_cast<unsigned long long>(stats.freshness_hints));
  return 0;
}
