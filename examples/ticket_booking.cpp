/// \file ticket_booking.cpp
/// \brief The paper's airline ticket booking system (§3.2/§5.2): the
///        fully-automatic application.
///
/// Four booking servers sell seats against one replicated flight record.
/// The servers never talk to end users about consistency; instead IDEA runs
/// background resolution whose frequency is adjusted by Formula 4 under a
/// bandwidth cap, and business feedback (oversell/undersell audits) teaches
/// the controller its frequency bounds.

#include <cstdio>

#include "apps/booking.hpp"
#include "apps/workload.hpp"

using namespace idea;
using namespace idea::core;
using namespace idea::apps;

int main() {
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.seed = 11;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kFullyAutomatic;
  cfg.idea.controller.bandwidth_cap_fraction = 0.20;
  cfg.idea.controller.available_bandwidth = 32.0 * 1024.0;  // 32 KB/s
  cfg.idea.background_period = sec(20);  // initial frequency
  IdeaCluster cluster(cfg);
  cluster.start();

  const std::vector<NodeId> servers{1, 5, 9, 13};
  cluster.warm_up(servers, sec(20));

  BookingParams bp;
  bp.capacity = 120;
  BookingSystem booking(cluster, servers, bp, 11);

  std::printf("-- selling for 200 s; a customer hits a random server "
              "every ~2 s --\n");
  Rng rng(99);
  const NodeId controller_node = servers.front();
  for (int t = 0; t < 200; t += 2) {
    const NodeId server = servers[rng.next_below(servers.size())];
    booking.try_book(server);
    cluster.run_for(sec(2));
    if (t % 40 == 38) {
      // Periodic business audit + Formula 4 adjustment.
      booking.audit(controller_node);
      const double hz =
          cluster.node(controller_node).controller().adjust_frequency();
      std::printf("t=%3ds sold=%3llu blocked=%2llu oversell=%2lld "
                  "freq=%.3f Hz (period %.1f s)\n",
                  t + 2, static_cast<unsigned long long>(booking.sold()),
                  static_cast<unsigned long long>(booking.refused_blocked()),
                  static_cast<long long>(booking.oversell_amount()),
                  hz, 1.0 / hz);
    }
  }

  // Final resolution so every server sees the complete record.
  cluster.node(controller_node).demand_active_resolution();
  cluster.run_for(sec(10));

  std::printf("\n-- final business state --\n");
  std::printf("capacity:          %u seats\n", bp.capacity);
  std::printf("tickets sold:      %llu\n",
              static_cast<unsigned long long>(booking.sold()));
  std::printf("oversold by:       %lld\n",
              static_cast<long long>(booking.oversell_amount()));
  std::printf("undersell events:  %llu (turned away with seats left)\n",
              static_cast<unsigned long long>(booking.undersell_count()));
  for (NodeId s : servers) {
    std::printf("server %s view: %llu bookings, revenue %.2f\n",
                node_name(s).c_str(),
                static_cast<unsigned long long>(booking.live_bookings(s)),
                booking.revenue_view(s));
  }
  std::printf("learned frequency window: [%.4f, %.4f] Hz\n",
              cluster.node(controller_node).controller().learned_min_freq(),
              cluster.node(controller_node).controller().learned_max_freq());
  return 0;
}
