/// \file sharded_cluster.cpp
/// \brief Tour of the multi-tenant shard layer (src/shard/).
///
/// Stands up a sharded deployment — 8 IdeaService endpoints behind a
/// batching transport — places 200 tenant files on the consistent-hash
/// ring, drives a key-value workload through a client session, and shows
/// the three things the layer buys: balanced placement, replica-group
/// convergence through the stock IDEA protocols, and batched fan-out.
/// (See client_sessions.cpp for the consistency-level tour.)
///
///   $ ./sharded_cluster

#include <cstdio>

#include "apps/kvstore.hpp"
#include "client/session.hpp"
#include "shard/sharded_cluster.hpp"

using namespace idea;
using namespace idea::shard;

int main() {
  // --- 1. Build the deployment. -------------------------------------------
  ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.seed = 2026;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  ShardedCluster cluster(cfg);

  // --- 2. Place 200 tenant files on the ring. -----------------------------
  cluster.place(1, 200);
  std::vector<FileId> tenants;
  for (FileId f = 1; f <= 200; ++f) tenants.push_back(f);
  std::printf("placed %zu files on %u endpoints (k=%u)\n",
              cluster.placed_files(), cfg.endpoints, cfg.replication);
  std::printf("primary load per endpoint:");
  for (const auto& [endpoint, load] : cluster.ring().primary_load(tenants)) {
    std::printf(" %s=%zu", node_name(endpoint).c_str(), load);
  }
  std::printf("\n");

  // --- 3. A key-value workload writes through its client session. ---------
  apps::KvStore kv(cluster, apps::KvStoreOptions{.buckets = 200,
                                                 .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 8;
  wl.interval = msec(250);
  wl.duration = sec(20);
  wl.keyspace = 1000;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, /*seed=*/7);
  workload.start();
  cluster.run_for(sec(40));  // run, then settle

  std::printf("\nworkload: %llu ops attempted, %llu puts applied, "
              "%llu blocked by resolution\n",
              static_cast<unsigned long long>(workload.attempted()),
              static_cast<unsigned long long>(kv.puts()),
              static_cast<unsigned long long>(kv.blocked_puts()));

  kv.put("demo-key", "hello-shards");
  cluster.run_for(sec(1));
  const auto value = kv.get("demo-key");
  std::printf("get(\"demo-key\") = %s\n",
              value ? value->c_str() : "(miss)");

  // --- 4. Every replica group converged through the IDEA protocols. -------
  std::size_t converged = 0;
  for (FileId f : tenants) {
    if (cluster.converged(f)) ++converged;
  }
  std::printf("converged replica groups: %zu / %zu\n", converged,
              tenants.size());

  // --- 5. What batching did to the fan-out. --------------------------------
  if (const net::BatchingTransport* batching = cluster.batching()) {
    const net::BatchingStats& s = batching->stats();
    std::printf("\nbatching: %llu logical messages in %llu wire envelopes "
                "(factor %.2fx, largest batch %llu)\n",
                static_cast<unsigned long long>(s.logical_messages),
                static_cast<unsigned long long>(s.envelopes),
                s.batch_factor(),
                static_cast<unsigned long long>(s.largest_batch));
  }

  // --- 6. What a membership change would remap. ----------------------------
  HashRing after = cluster.ring();
  after.remove_node(3);
  const RebalanceStats stats =
      HashRing::rebalance(cluster.ring(), after, tenants, cfg.replication);
  std::printf("if %s left: %.1f%% of primaries move, %.1f%% of groups "
              "change (1/N = %.1f%%)\n",
              node_name(3).c_str(), 100.0 * stats.moved_fraction(),
              100.0 * stats.group_changed_fraction(),
              100.0 / cfg.endpoints);
  return 0;
}
