/// \file wallclock_cluster.cpp
/// \brief The same middleware running in real time on the threaded
///        transport instead of the simulator.
///
/// Protocol code is written against net::Transport, so the exact IdeaNode
/// stack that the experiments run deterministically in the simulator also
/// runs here under a wall-clock event loop (time_scale compresses the WAN
/// latencies so the demo finishes in a few seconds of real time).

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/idea_node.hpp"
#include "net/thread_transport.hpp"
#include "sim/latency.hpp"

using namespace idea;
using namespace idea::core;

int main() {
  constexpr std::uint32_t kNodes = 6;
  sim::PlanetLabParams lat;
  lat.nodes = kNodes;
  sim::PlanetLabLatency latency(lat);

  net::ThreadTransportOptions topt;
  topt.time_scale = 0.02;  // 50x faster than the virtual timeline
  net::ThreadTransport transport(latency, topt);

  IdeaConfig node_cfg;
  node_cfg.ransub.nodes = kNodes;
  node_cfg.gossip.nodes = kNodes;
  node_cfg.two_layer.all_nodes = kNodes;
  node_cfg.maxima = vv::TripleMaxima{20, 20, 20};
  node_cfg.controller.mode = AdaptiveMode::kHintBased;
  node_cfg.controller.hint = 0.90;

  std::vector<std::unique_ptr<IdeaNode>> nodes;
  for (NodeId n = 0; n < kNodes; ++n) {
    nodes.push_back(
        std::make_unique<IdeaNode>(n, /*file=*/1, transport, node_cfg,
                                   mix64(0xFEED + n)));
  }
  for (auto& node : nodes) node->start();

  auto sleep_virtual = [&](SimDuration d) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(static_cast<double>(d) *
                                  topt.time_scale)));
  };

  std::printf("warming up the overlay (virtual ~20 s)...\n");
  nodes[1]->write("writer-1 hello", 1.0);
  nodes[4]->write("writer-4 hello", 2.0);
  sleep_virtual(sec(20));

  std::printf("top layer at node 1:");
  for (NodeId n : nodes[1]->top_layer()) {
    std::printf(" %s", node_name(n).c_str());
  }
  std::printf("\n");

  std::printf("issuing conflicting writes...\n");
  nodes[1]->write("conflict from 1", 3.0);
  nodes[4]->write("conflict from 4", 4.0);
  sleep_virtual(sec(6));
  std::printf("levels: node1=%.3f node4=%.3f (hint 0.90 resolves "
              "automatically)\n",
              nodes[1]->current_level(), nodes[4]->current_level());

  sleep_virtual(sec(10));
  const bool converged = nodes[1]->store().content_digest() ==
                         nodes[4]->store().content_digest();
  std::printf("replicas converged under real concurrency: %s\n",
              converged ? "yes" : "no");
  std::printf("messages exchanged: %llu\n",
              static_cast<unsigned long long>(
                  transport.counters().total_messages()));
  return 0;
}
