#include <gtest/gtest.h>

#include "core/cluster.hpp"

namespace idea::core {
namespace {

// Failure injection: dead nodes, heavy loss, partitions-by-loss.  The
// middleware must degrade gracefully, never deadlock the write path.

TEST(Failure, WriterCrashMidWorkload) {
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  cfg.idea.maxima = vv::TripleMaxima{20, 20, 20};
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{2, 5, 8};
  cluster.warm_up(writers, sec(20));
  cluster.node(2).write("a", 1.0);
  cluster.node(5).write("b", 1.0);
  cluster.node(8).write("c", 1.0);
  cluster.run_for(sec(2));
  // Node 8 crashes (drops off the network).
  cluster.transport().detach(8);
  cluster.node(2).write("after-crash", 1.0);
  cluster.node(2).demand_active_resolution();
  cluster.run_for(sec(30));
  // Survivors converge; nobody is left blocked.
  EXPECT_TRUE(cluster.converged({2, 5}));
  EXPECT_FALSE(cluster.node(2).resolution().busy());
  EXPECT_FALSE(cluster.node(5).resolution().busy());
  EXPECT_TRUE(cluster.node(2).write("still-alive", 1.0));
}

TEST(Failure, InitiatorCrashReleasesParticipants) {
  ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.sync_sizes();
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{1, 4, 7};
  cluster.warm_up(writers, sec(20));
  cluster.node(1).write("a", 1.0);
  cluster.node(4).write("b", 1.0);
  cluster.node(1).demand_active_resolution();
  // Let the round reach the collect phase, then kill the initiator.
  cluster.run_for(msec(300));
  cluster.transport().detach(1);
  cluster.run_for(sec(20));
  // Participant safety valve released the write block.
  EXPECT_FALSE(cluster.node(4).resolution().busy());
  EXPECT_TRUE(cluster.node(4).write("free-again", 1.0));
}

TEST(Failure, HeavyLossEventuallyConverges) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.transport.loss_rate = 0.20;
  cfg.sync_sizes();
  cfg.idea.background_period = sec(8);
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  cfg.idea.maxima = vv::TripleMaxima{20, 20, 20};
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{1, 5};
  cluster.warm_up(writers, sec(25));
  cluster.node(1).write("x", 1.0);
  cluster.node(5).write("y", 2.0);
  // Repeated background rounds push through the loss.
  cluster.run_for(sec(120));
  EXPECT_TRUE(cluster.converged(writers));
}

TEST(Failure, NonWriterCrashInvisibleToProtocol) {
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.sync_sizes();
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{2, 5};
  cluster.warm_up(writers, sec(20));
  cluster.transport().detach(10);  // bottom-layer bystander dies
  cluster.node(2).write("a", 1.0);
  cluster.node(5).write("b", 1.0);
  cluster.node(2).demand_active_resolution();
  cluster.run_for(sec(10));
  EXPECT_TRUE(cluster.converged(writers));
}

TEST(Failure, RepeatedCrashRecoverCycles) {
  ClusterConfig cfg;
  cfg.nodes = 8;
  cfg.sync_sizes();
  cfg.idea.background_period = sec(6);
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{1, 4};
  cluster.warm_up(writers, sec(20));
  for (int cycle = 0; cycle < 3; ++cycle) {
    cluster.node(1).write("w1", 1.0);
    cluster.node(4).write("w4", 1.0);
    cluster.run_for(sec(3));
    cluster.transport().detach(4);
    cluster.run_for(sec(8));
  }
  // The surviving writer is never wedged.
  EXPECT_TRUE(cluster.node(1).write("final", 1.0));
  cluster.run_for(sec(10));
  EXPECT_FALSE(cluster.node(1).resolution().busy());
}

}  // namespace
}  // namespace idea::core
