#include <gtest/gtest.h>

#include "apps/workload.hpp"
#include "core/cluster.hpp"

namespace idea::core {
namespace {

// Property sweep: under a continuous conflicting workload, any policy and
// any of several seeds, a final resolution round leaves every top-layer
// replica with identical canonical contents.
struct ConvergenceCase {
  ResolutionPolicy policy;
  std::uint64_t seed;
};

class ConvergenceSweep
    : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(ConvergenceSweep, WorkloadThenResolutionConverges) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.seed = param.seed;
  cfg.sync_sizes();
  cfg.idea.resolution.policy.policy = param.policy;
  if (param.policy == ResolutionPolicy::kPriority) {
    cfg.idea.resolution.policy.priorities = {{2, 3}, {5, 9}, {8, 1}};
  }
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{2, 5, 8};
  cluster.warm_up(writers, sec(20));

  apps::WorkloadParams wp;
  wp.interval = sec(4);
  wp.jitter_frac = 0.4;
  wp.duration = sec(40);
  apps::UpdateWorkload workload(cluster, writers, wp,
                                apps::make_stroke_generator(param.seed),
                                param.seed);
  workload.start();
  cluster.run_for(sec(45));

  // Final resolution round from the lowest-id writer.
  cluster.node(2).demand_active_resolution();
  cluster.run_for(sec(10));
  EXPECT_TRUE(cluster.converged(writers))
      << "policy=" << static_cast<int>(param.policy)
      << " seed=" << param.seed;
  // Identical meta values follow from identical contents.
  EXPECT_DOUBLE_EQ(cluster.node(2).store().meta_value(),
                   cluster.node(5).store().meta_value());
  EXPECT_DOUBLE_EQ(cluster.node(2).store().meta_value(),
                   cluster.node(8).store().meta_value());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, ConvergenceSweep,
    ::testing::Values(
        ConvergenceCase{ResolutionPolicy::kUserId, 1},
        ConvergenceCase{ResolutionPolicy::kUserId, 2},
        ConvergenceCase{ResolutionPolicy::kUserId, 3},
        ConvergenceCase{ResolutionPolicy::kInvalidateBoth, 1},
        ConvergenceCase{ResolutionPolicy::kInvalidateBoth, 2},
        ConvergenceCase{ResolutionPolicy::kPriority, 1},
        ConvergenceCase{ResolutionPolicy::kPriority, 2}));

// Hint sweep: the achieved worst-case level stays near the hint across a
// range of hints (the Figure 7 phenomenon, as a property).
class HintSweep : public ::testing::TestWithParam<double> {};

TEST_P(HintSweep, LevelRestoredAboveHint) {
  const double hint = GetParam();
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = hint;
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{1, 6, 11, 14};
  cluster.warm_up(writers, sec(25));

  apps::WorkloadParams wp;
  wp.interval = sec(5);
  wp.duration = sec(60);
  apps::UpdateWorkload workload(cluster, writers, wp,
                                apps::make_stroke_generator(7), 7);
  workload.start();

  // Sample after each write burst; the level must recover above the hint.
  double worst_sampled = 1.0;
  int below_hint_samples = 0, samples = 0;
  for (int i = 0; i < 12; ++i) {
    cluster.run_for(sec(5));
    for (NodeId w : writers) {
      const double lv = cluster.node(w).current_level();
      worst_sampled = std::min(worst_sampled, lv);
      ++samples;
      if (lv < hint) ++below_hint_samples;
    }
  }
  // Dips happen (that is the design) but must be shallow and rare: the
  // level never falls far below the hint and most samples sit above it.
  EXPECT_GT(worst_sampled, hint - 0.08);
  EXPECT_LT(below_hint_samples, samples / 2);
}

INSTANTIATE_TEST_SUITE_P(Hints, HintSweep,
                         ::testing::Values(0.80, 0.85, 0.90, 0.95));

}  // namespace
}  // namespace idea::core
