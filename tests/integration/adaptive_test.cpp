#include <gtest/gtest.h>

#include "apps/booking.hpp"
#include "apps/whiteboard.hpp"
#include "apps/workload.hpp"
#include "core/cluster.hpp"

namespace idea::core {
namespace {

// End-to-end adaptive behaviours from §4.6/§5, each exercised through the
// full middleware stack in the simulator.

TEST(Adaptive, RehintMidRunChangesBehaviour) {
  // Figure 8's mechanism: a 95% hint, re-set to 90% halfway.
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.95;
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{1, 6, 11, 14};
  cluster.warm_up(writers, sec(25));

  apps::WorkloadParams wp;
  wp.interval = sec(5);
  wp.duration = sec(120);
  apps::UpdateWorkload workload(cluster, writers, wp,
                                apps::make_stroke_generator(3), 3);
  workload.start();

  std::uint64_t demands_first_half = 0;
  cluster.run_for(sec(60));
  for (NodeId w : writers) {
    demands_first_half += cluster.node(w).controller().demands_issued();
  }
  for (NodeId w : writers) cluster.node(w).set_hint(0.90);
  cluster.run_for(sec(60));
  std::uint64_t demands_total = 0;
  for (NodeId w : writers) {
    demands_total += cluster.node(w).controller().demands_issued();
  }
  const std::uint64_t demands_second_half =
      demands_total - demands_first_half;
  // A looser hint tolerates more inconsistency: fewer resolutions.
  EXPECT_GT(demands_first_half, 0u);
  EXPECT_LE(demands_second_half, demands_first_half);
}

TEST(Adaptive, OnDemandUserLearningReducesAnnoyance) {
  // §5.1: after a complaint IDEA keeps the level above L1+delta, so the
  // user is annoyed less often in the second half of the session.
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kOnDemand;
  cfg.idea.controller.hint = 0.85;  // initial learned level
  cfg.idea.controller.hint_delta = 0.05;
  cfg.idea.maxima = vv::TripleMaxima{50, 50, 50};
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{2, 5, 9};
  cluster.warm_up(writers, sec(25));

  apps::WhiteboardApp board(cluster, writers);
  for (NodeId w : writers) {
    board.attach_user(apps::UserModel{w, /*real_tolerance=*/0.9,
                                      /*complains=*/true});
  }
  apps::WorkloadParams wp;
  wp.interval = sec(5);
  wp.duration = sec(100);
  apps::UpdateWorkload workload(cluster, writers, wp,
                                apps::make_stroke_generator(5), 5);
  workload.start();
  cluster.run_for(sec(110));

  for (const auto& user : board.users()) {
    // Complaints happened, and learning pushed the hint up to (at least)
    // the users' real tolerance.
    EXPECT_GT(user.times_complained, 0u);
    EXPECT_GE(cluster.node(user.node).controller().hint(), 0.9);
  }
}

TEST(Adaptive, AutomaticModeAdjustsFrequencyUnderCap) {
  // §4.6 fully automatic: Formula 4 frequency under a bandwidth cap.
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kFullyAutomatic;
  cfg.idea.controller.bandwidth_cap_fraction = 0.2;
  cfg.idea.controller.available_bandwidth = 64.0 * 1024.0;
  cfg.idea.background_period = sec(20);
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> servers{1, 4, 7, 10};
  cluster.warm_up(servers, sec(25));

  apps::WorkloadParams wp;
  wp.interval = sec(5);
  wp.duration = sec(60);
  apps::UpdateWorkload workload(cluster, servers, wp,
                                apps::make_stroke_generator(9), 9);
  workload.start();
  cluster.run_for(sec(70));

  auto& controller = cluster.node(1).controller();
  EXPECT_GT(controller.round_cost_bytes(), 0.0);
  const double freq = controller.adjust_frequency();
  EXPECT_GT(freq, 0.0);
  // The chosen frequency obeys Formula 4 given the observed round cost.
  const double expected = std::clamp(
      64.0 * 1024.0 * 0.2 / controller.round_cost_bytes(),
      cfg.idea.controller.min_freq_hz, cfg.idea.controller.max_freq_hz);
  EXPECT_NEAR(freq, expected, 1e-9);
}

TEST(Adaptive, BookingAuditLearnsBounds) {
  ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kFullyAutomatic;
  cfg.idea.background_period = sec(40);  // too slow: oversell expected
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> servers{1, 4, 7};
  cluster.warm_up(servers, sec(25));

  apps::BookingParams bp;
  bp.capacity = 10;  // tiny flight: oversell almost immediately
  apps::BookingSystem booking(cluster, servers, bp, 11);
  // All three servers sell concurrently without hearing of each other.
  for (int round = 0; round < 6; ++round) {
    for (NodeId s : servers) booking.try_book(s);
    cluster.run_for(sec(2));
  }
  EXPECT_GT(booking.oversell_amount(), 0);
  const double min_before = cluster.node(1).controller().learned_min_freq();
  booking.audit(1);
  EXPECT_GT(cluster.node(1).controller().learned_min_freq(), min_before);
}

TEST(Adaptive, DiscrepancyAlertFromBottomLayer) {
  // §4.4.2: a bottom-layer node holds a conflicting update the top layer
  // never saw; the background scan surfaces it as a discrepancy.
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.sync_sizes();
  cfg.idea.detector.scan_period = sec(5);
  cfg.idea.discrepancy_threshold = 0.02;
  cfg.idea.maxima = vv::TripleMaxima{10, 10, 10};
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));

  bool alerted = false;
  DiscrepancyAlert alert;
  cluster.node(1).set_discrepancy_listener(
      [&](const DiscrepancyAlert& a) {
        alerted = true;
        alert = a;
      });
  cluster.node(1).write("top", 1.0);
  // Node 12 holds a conflicting update the overlay never learns about: it
  // is written straight into the replica (no temperature, no ads), so node
  // 12 stays in the bottom layer — the rare case of §4.4.2.
  cluster.node(12).store().apply_local(
      cluster.transport().local_time(12), "hidden", 8.0);
  cluster.run_for(sec(30));
  EXPECT_TRUE(alerted);
  EXPECT_EQ(alert.reporter, 12u);
  EXPECT_LT(alert.bottom_layer_level, alert.top_layer_level);
}

TEST(Adaptive, AutoRollbackDropsUnseenConflict) {
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.sync_sizes();
  cfg.idea.detector.scan_period = sec(5);
  cfg.idea.discrepancy_threshold = 0.02;
  cfg.idea.auto_rollback = true;
  cfg.idea.controller.hint = 0.95;  // corrected level is unacceptable
  cfg.idea.maxima = vv::TripleMaxima{10, 10, 10};
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 5}, sec(20));

  // Discrepancy reports flow both ways (the hidden writer also learns it
  // conflicts with the top layer), so the rollback may fire at either end;
  // watch the whole deployment.
  bool rolled_back = false;
  for (NodeId n = 0; n < 16; ++n) {
    cluster.node(n).set_discrepancy_listener(
        [&](const DiscrepancyAlert& a) { rolled_back |= a.rolled_back; });
  }
  cluster.node(1).write("top", 1.0);
  cluster.node(12).store().apply_local(
      cluster.transport().local_time(12), "hidden", 9.0);
  cluster.run_for(sec(30));
  EXPECT_TRUE(rolled_back);
}

}  // namespace
}  // namespace idea::core
