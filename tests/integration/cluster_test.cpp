#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace idea::core {
namespace {

TEST(Cluster, BuildsFortyNodes) {
  ClusterConfig cfg;
  cfg.nodes = 40;
  cfg.sync_sizes();
  IdeaCluster cluster(cfg);
  EXPECT_EQ(cluster.size(), 40u);
  EXPECT_EQ(cluster.latency().node_count(), 40u);
}

TEST(Cluster, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.nodes = 16;
    cfg.seed = seed;
    cfg.sync_sizes();
    cfg.idea.controller.mode = AdaptiveMode::kHintBased;
    cfg.idea.controller.hint = 0.9;
    IdeaCluster cluster(cfg);
    cluster.start();
    cluster.warm_up({2, 9}, sec(20));
    cluster.node(2).write("a", 2.0);
    cluster.node(9).write("b", 3.0);
    cluster.run_for(sec(30));
    return std::make_tuple(
        cluster.transport().counters().total_messages(),
        cluster.transport().counters().total_bytes(),
        cluster.node(2).store().content_digest(),
        cluster.sim().events_processed());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(Cluster, PaperScaleTopLayerFormation) {
  // §6.1: 40 nodes, four concurrent writers; after warm-up the four
  // writers form the top layer of exactly four nodes, at every node.
  ClusterConfig cfg;
  cfg.nodes = 40;
  cfg.sync_sizes();
  IdeaCluster cluster(cfg);
  cluster.start();
  const std::vector<NodeId> writers{3, 11, 22, 37};
  cluster.warm_up(writers, sec(25));
  for (NodeId n = 0; n < 40; ++n) {
    EXPECT_EQ(cluster.node(n).top_layer(), writers) << "at node " << n;
  }
}

TEST(Cluster, TopLayerShrinksWhenWriterGoesCold) {
  ClusterConfig cfg;
  cfg.nodes = 12;
  cfg.sync_sizes();
  cfg.idea.temperature.tau = sec(30);
  IdeaCluster cluster(cfg);
  cluster.start();
  // Both writers are active through the warm-up window.
  for (int i = 0; i < 4; ++i) {
    cluster.node(2).write("w2", 0.1);
    cluster.node(7).write("w7", 0.1);
    cluster.run_for(sec(5));
  }
  EXPECT_EQ(cluster.node(2).top_layer(), (std::vector<NodeId>{2, 7}));
  // Writer 7 goes silent; writer 2 keeps writing.  With tau = 30 s, a few
  // minutes of silence cools writer 7 well below the hot threshold.
  for (int i = 0; i < 40; ++i) {
    cluster.node(2).write("keepalive", 0.1);
    cluster.run_for(sec(5));
  }
  const auto tl = cluster.node(2).top_layer();
  EXPECT_EQ(tl, (std::vector<NodeId>{2}));
}

TEST(Cluster, MessageAccountingByCategory) {
  ClusterConfig cfg;
  cfg.nodes = 16;
  cfg.sync_sizes();
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({2, 9}, sec(20));
  cluster.node(2).write("a", 1.0);
  cluster.node(9).write("b", 1.0);
  cluster.node(2).demand_active_resolution();
  cluster.run_for(sec(10));
  const auto& c = cluster.transport().counters();
  EXPECT_GT(c.messages_with_prefix("ransub."), 0u);
  EXPECT_GT(c.messages_with_prefix("detect."), 0u);
  EXPECT_GT(c.messages_with_prefix("resolve."), 0u);
  EXPECT_GT(c.messages_with_prefix("gossip."), 0u);
  EXPECT_EQ(c.total_messages(),
            c.messages_with_prefix("ransub.") +
                c.messages_with_prefix("detect.") +
                c.messages_with_prefix("resolve.") +
                c.messages_with_prefix("gossip."));
}

TEST(Cluster, LossyNetworkStillConverges) {
  ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.transport.loss_rate = 0.05;
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  cfg.idea.background_period = sec(10);
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 4}, sec(20));
  cluster.node(1).write("a", 1.0);
  cluster.node(4).write("b", 2.0);
  cluster.run_for(sec(60));
  EXPECT_TRUE(cluster.converged({1, 4}));
  EXPECT_GT(cluster.transport().dropped(), 0u);
}

TEST(Cluster, ClockSkewDoesNotBreakDetection) {
  ClusterConfig cfg;
  cfg.nodes = 10;
  cfg.transport.max_clock_skew = msec(500);
  cfg.sync_sizes();
  cfg.idea.controller.mode = AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.9;
  IdeaCluster cluster(cfg);
  cluster.start();
  cluster.warm_up({1, 4}, sec(20));
  cluster.node(1).write("a", 1.0);
  cluster.node(4).write("b", 2.0);
  cluster.run_for(sec(30));
  EXPECT_TRUE(cluster.converged({1, 4}));
}

}  // namespace
}  // namespace idea::core
