/// \file fleet_test.cpp
/// \brief The determinism-oracle contract of the multicore runtime: a
///        fixed-seed ShardedFleet run must produce byte-identical
///        per-endpoint digests, per-type message counts, metrics JSON and
///        operation digests whether it executes on one thread (the
///        sequential oracle — the existing single-threaded Simulator
///        kernels, nothing spawned) or on a work-stealing pool.
///
/// The segment count is pinned explicitly in every scenario: results are
/// allowed to depend on (config, seed, segments) — the partition shapes
/// the rings — but NEVER on `threads`.  Scenarios cover the plain
/// workload, elastic churn (an endpoint joins and another leaves
/// mid-run), and crash/restart with durable checkpoints, all scheduled
/// through ShardedFleet::schedule_on so the fault instants land inside
/// worker-owned epochs.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/fleet.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::runtime {
namespace {

constexpr std::uint32_t kSegments = 4;
constexpr std::uint32_t kFiles = 40;

shard::ShardedClusterConfig fleet_config(std::uint32_t threads,
                                         std::uint64_t seed) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = 16;  // 4 per segment
  cfg.replication = 3;
  cfg.seed = seed;
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);
  cfg.observability.enabled = true;
  cfg.runtime.threads = threads;
  cfg.runtime.segments = kSegments;  // pinned: never derived from threads
  cfg.sync_sizes();
  return cfg;
}

struct FleetResult {
  std::vector<std::pair<NodeId, std::uint64_t>> digests;
  std::map<std::string, std::uint64_t> messages;
  std::string metrics_json;
  std::uint64_t op_digest = 0;
  std::uint64_t local_ops = 0;
  std::uint64_t remote_ops = 0;
  std::uint64_t replies = 0;
  std::size_t converged = 0;
};

FleetResult harvest(ShardedFleet& fleet) {
  FleetResult r;
  r.digests = fleet.endpoint_digests();
  r.messages = fleet.message_counts();
  r.metrics_json = fleet.metrics_json();
  const FleetStats s = fleet.stats();
  r.op_digest = s.op_digest;
  r.local_ops = s.local_ops;
  r.remote_ops = s.remote_ops;
  r.replies = s.replies;
  r.converged = fleet.converged_files();
  return r;
}

void expect_equal(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.op_digest, b.op_digest);
  EXPECT_EQ(a.local_ops, b.local_ops);
  EXPECT_EQ(a.remote_ops, b.remote_ops);
  EXPECT_EQ(a.replies, b.replies);
  EXPECT_EQ(a.converged, b.converged);
}

FleetResult run_plain(std::uint32_t threads, std::uint64_t seed) {
  ShardedFleet fleet(fleet_config(threads, seed));
  fleet.place(1, kFiles);
  FleetWorkloadParams wl;
  wl.ops_per_endpoint_per_sec = 6.0;
  wl.cross_segment_fraction = 0.3;
  wl.duration = sec(3);
  fleet.set_workload(wl);
  fleet.run_for(sec(3) + sec(5));  // workload + drain
  return harvest(fleet);
}

TEST(ShardedFleetOracle, ParallelRunMatchesSequentialOracle) {
  const FleetResult oracle = run_plain(/*threads=*/1, 2007);
  const FleetResult par4 = run_plain(/*threads=*/4, 2007);
  EXPECT_GT(oracle.remote_ops, 0u);  // the conveyor actually carried ops
  EXPECT_EQ(oracle.replies, oracle.remote_ops);  // all round trips closed
  expect_equal(oracle, par4);
}

TEST(ShardedFleetOracle, ThreadCountsTwoAndEightMatchToo) {
  const FleetResult oracle = run_plain(1, 555);
  expect_equal(oracle, run_plain(2, 555));
  expect_equal(oracle, run_plain(8, 555));
}

TEST(ShardedFleetOracle, SequentialRunIsInternallyReproducible) {
  expect_equal(run_plain(1, 99), run_plain(1, 99));
}

TEST(ShardedFleetOracle, DifferentSeedsDiverge) {
  // Sanity that the equality above is not vacuous.
  const FleetResult a = run_plain(1, 2007);
  const FleetResult b = run_plain(1, 555);
  EXPECT_NE(a.op_digest, b.op_digest);
}

/// Elastic churn inside worker-owned epochs: segment 1 gains an endpoint
/// at t=1.5s, segment 2 loses endpoint 1 at t=2.5s — scheduled through
/// the fleet so the membership change executes on whichever worker owns
/// the segment that epoch.
FleetResult run_churn(std::uint32_t threads, std::uint64_t seed) {
  shard::ShardedClusterConfig cfg = fleet_config(threads, seed);
  cfg.anti_entropy_period = sec(1);
  ShardedFleet fleet(cfg);
  fleet.place(1, kFiles);
  FleetWorkloadParams wl;
  wl.ops_per_endpoint_per_sec = 6.0;
  wl.cross_segment_fraction = 0.3;
  wl.duration = sec(3);
  fleet.set_workload(wl);
  fleet.schedule_on(1, sec(1) + msec(500),
                    [](shard::ShardedCluster& c) { c.add_endpoint(); });
  fleet.schedule_on(2, sec(2) + msec(500),
                    [](shard::ShardedCluster& c) { c.remove_endpoint(1); });
  fleet.run_for(sec(3) + sec(5));
  return harvest(fleet);
}

TEST(ShardedFleetOracle, ChurnReplayIsThreadCountInvariant) {
  const FleetResult oracle = run_churn(1, 2007);
  expect_equal(oracle, run_churn(4, 2007));
}

/// Crash/restart with durable checkpoints: segment 0's endpoint 1 dies at
/// t=1.2s and restarts at t=2.6s, recovering from its incremental
/// checkpoint plus anti-entropy — the full fault pipeline under the
/// parallel runtime.
FleetResult run_crash(std::uint32_t threads, std::uint64_t seed) {
  shard::ShardedClusterConfig cfg = fleet_config(threads, seed);
  cfg.anti_entropy_period = sec(1);
  cfg.checkpoint.engine = replica::CheckpointEngineKind::kIncremental;
  cfg.checkpoint.period = sec(1);
  ShardedFleet fleet(cfg);
  fleet.place(1, kFiles);
  FleetWorkloadParams wl;
  wl.ops_per_endpoint_per_sec = 6.0;
  wl.cross_segment_fraction = 0.3;
  wl.duration = sec(3);
  fleet.set_workload(wl);
  fleet.schedule_on(0, sec(1) + msec(200),
                    [](shard::ShardedCluster& c) { c.crash_endpoint(1); });
  fleet.schedule_on(0, sec(2) + msec(600),
                    [](shard::ShardedCluster& c) { c.restart_endpoint(1); });
  fleet.run_for(sec(3) + sec(5));
  return harvest(fleet);
}

TEST(ShardedFleetOracle, CrashReplayIsThreadCountInvariant) {
  const FleetResult oracle = run_crash(1, 2007);
  expect_equal(oracle, run_crash(4, 2007));
}

TEST(ShardedFleetTopology, SegmentsPartitionEndpointsAndFiles) {
  ShardedFleet fleet(fleet_config(1, 2007));
  fleet.place(1, kFiles);
  EXPECT_EQ(fleet.segments(), kSegments);
  std::uint32_t endpoints = 0;
  for (std::uint32_t s = 0; s < fleet.segments(); ++s) {
    endpoints += fleet.segment_endpoints(s);
  }
  EXPECT_EQ(endpoints, 16u);
  // Global ids are segment-major and dense.
  EXPECT_EQ(fleet.global_endpoint(0, 0), 0u);
  EXPECT_EQ(fleet.global_endpoint(1, 0), fleet.segment_endpoints(0));
  // Every file lands on the segment its id hashes to, and is placed there.
  for (FileId f = 1; f <= kFiles; ++f) {
    const std::uint32_t s = fleet.segment_of_file(f);
    ASSERT_LT(s, fleet.segments());
    EXPECT_TRUE(fleet.segment(s).is_placed(f));
  }
}

TEST(ShardedFleetStats, ConveyorAccountingCloses) {
  ShardedFleet fleet(fleet_config(4, 2007));
  fleet.place(1, kFiles);
  FleetWorkloadParams wl;
  wl.ops_per_endpoint_per_sec = 6.0;
  wl.cross_segment_fraction = 0.5;
  wl.duration = sec(2);
  fleet.set_workload(wl);
  fleet.run_for(sec(2) + sec(5));
  const FleetStats s = fleet.stats();
  EXPECT_GT(s.remote_ops, 0u);
  // Every remote op and every reply rode the conveyor; nothing lingers.
  EXPECT_EQ(s.conveyor.messages, s.remote_ops + s.replies);
  EXPECT_EQ(s.conveyor.packets, s.conveyor.drained);
  EXPECT_GE(s.pool.batches, 1u);
  EXPECT_EQ(s.pool.tasks_run, s.pool.batches * kSegments);
}

}  // namespace
}  // namespace idea::runtime
