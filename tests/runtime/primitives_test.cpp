/// \file primitives_test.cpp
/// \brief Units for the parallel-runtime building blocks: the SPSC lane,
///        the Chase-Lev deque, the worker pool, the conveyor, and the
///        epoch-barrier driver.  The concurrent cases double as TSan
///        targets (the sanitize CI job runs this binary under
///        -fsanitize=thread).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "runtime/conveyor.hpp"
#include "runtime/parallel_sim.hpp"
#include "runtime/spsc_queue.hpp"
#include "runtime/work_stealing.hpp"
#include "runtime/worker_pool.hpp"

namespace idea::runtime {
namespace {

TEST(SpscQueue, FifoWithinCapacity) {
  SpscQueue<int> q(8);
  EXPECT_GE(q.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(int{i}));
  EXPECT_FALSE(q.try_push(99));  // full
  int v = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.try_pop(v));  // empty
}

TEST(SpscQueue, PopIfIsAPrefixFilter) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(int{i}));
  int v = -1;
  // Predicate admits values < 3: pops exactly the qualifying prefix.
  auto lt3 = [](const int& x) { return x < 3; };
  EXPECT_TRUE(q.try_pop_if(lt3, v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(q.try_pop_if(lt3, v));
  EXPECT_TRUE(q.try_pop_if(lt3, v));
  EXPECT_FALSE(q.try_pop_if(lt3, v));  // head is 3: stays queued
  EXPECT_EQ(q.size(), 2u);
}

TEST(SpscQueue, ConcurrentProducerConsumer) {
  constexpr std::uint32_t kItems = 200000;
  SpscQueue<std::uint32_t> q(1024);
  std::atomic<std::uint64_t> sum{0};
  std::thread consumer([&] {
    std::uint64_t local = 0;
    std::uint32_t got = 0, v = 0;
    while (got < kItems) {
      if (q.try_pop(v)) {
        local += v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
    sum.store(local, std::memory_order_relaxed);
  });
  for (std::uint32_t i = 1; i <= kItems; ++i) {
    while (!q.try_push(std::uint32_t{i})) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum.load(), std::uint64_t{kItems} * (kItems + 1) / 2);
}

TEST(WorkStealingDeque, OwnerLifoThiefFifo) {
  WorkStealingDeque d(16);
  d.push(1);
  d.push(2);
  d.push(3);
  EXPECT_EQ(d.steal(), 1u);  // thief takes the oldest
  EXPECT_EQ(d.pop(), 3u);    // owner takes the newest
  EXPECT_EQ(d.pop(), 2u);
  EXPECT_EQ(d.pop(), WorkStealingDeque::kEmpty);
  EXPECT_EQ(d.steal(), WorkStealingDeque::kEmpty);
}

TEST(WorkStealingDeque, EveryTaskClaimedExactlyOnceUnderContention) {
  constexpr std::uint32_t kTasks = 100000;
  constexpr int kThieves = 3;
  WorkStealingDeque d(1 << 17);
  std::vector<std::atomic<std::uint32_t>> claimed(kTasks);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::uint32_t task = d.steal();
        if (task != WorkStealingDeque::kEmpty) {
          claimed[task].fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Final sweep after the owner finished.
      for (;;) {
        const std::uint32_t task = d.steal();
        if (task == WorkStealingDeque::kEmpty) break;
        claimed[task].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Owner interleaves pushes and pops, racing the thieves.
  for (std::uint32_t i = 0; i < kTasks; ++i) {
    d.push(i);
    if ((i & 7) == 7) {
      const std::uint32_t task = d.pop();
      if (task != WorkStealingDeque::kEmpty) {
        claimed[task].fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  for (;;) {
    const std::uint32_t task = d.pop();
    if (task == WorkStealingDeque::kEmpty) break;
    claimed[task].fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();
  for (std::uint32_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(claimed[i].load(), 1u) << "task " << i;
  }
}

TEST(WorkerPool, SingleThreadRunsTasksInAscendingOrder) {
  WorkerPool pool(1);
  std::vector<std::uint32_t> order;
  pool.run_tasks(16, [&](std::uint32_t task, std::uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(task);
  });
  std::vector<std::uint32_t> expected(16);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);  // the oracle schedule
}

TEST(WorkerPool, AllTasksRunExactlyOnceAcrossThreads) {
  WorkerPool pool(4);
  constexpr std::uint32_t kTasks = 5000;
  std::vector<std::atomic<std::uint32_t>> ran(kTasks);
  for (int batch = 0; batch < 3; ++batch) {
    for (auto& r : ran) r.store(0, std::memory_order_relaxed);
    pool.run_tasks(kTasks, [&](std::uint32_t task, std::uint32_t) {
      ran[task].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::uint32_t i = 0; i < kTasks; ++i) {
      ASSERT_EQ(ran[i].load(), 1u) << "batch " << batch << " task " << i;
    }
  }
  EXPECT_EQ(pool.stats().batches, 3u);
  EXPECT_EQ(pool.stats().tasks_run, 3u * kTasks);
}

TEST(WorkerPool, BarrierMakesSideEffectsVisibleToCaller) {
  WorkerPool pool(4);
  std::vector<std::uint64_t> cell(256, 0);  // plain, unsynchronized
  pool.run_tasks(256,
                 [&](std::uint32_t task, std::uint32_t) { cell[task] = task; });
  // run_tasks is a full barrier: plain reads below are ordered after the
  // workers' plain writes above.
  for (std::uint32_t i = 0; i < 256; ++i) ASSERT_EQ(cell[i], i);
}

TEST(Conveyor, SealedPacketsVisibleOnlyToLaterEpochs) {
  Conveyor<int> c(2);
  c.post(0, 1, 7);
  c.post(0, 1, 8);
  c.seal(0, /*epoch=*/0);
  int drained = 0;
  // Same epoch: not yet visible (the edge is the flush instant).
  c.drain(1, /*current=*/0, [&](std::uint32_t, std::uint64_t,
                                std::vector<int>& msgs) {
    drained += static_cast<int>(msgs.size());
  });
  EXPECT_EQ(drained, 0);
  c.drain(1, /*current=*/1, [&](std::uint32_t src, std::uint64_t epoch,
                                std::vector<int>& msgs) {
    EXPECT_EQ(src, 0u);
    EXPECT_EQ(epoch, 0u);
    ASSERT_EQ(msgs.size(), 2u);
    EXPECT_EQ(msgs[0], 7);  // post order preserved
    EXPECT_EQ(msgs[1], 8);
    drained += static_cast<int>(msgs.size());
  });
  EXPECT_EQ(drained, 2);
  EXPECT_TRUE(c.idle());
  EXPECT_EQ(c.stats().messages, 2u);
  EXPECT_EQ(c.stats().packets, 1u);
  EXPECT_EQ(c.stats().drained, 1u);
}

TEST(Conveyor, DrainsSourcesAscendingAndLanesFifo) {
  Conveyor<int> c(3);
  c.post(2, 0, 20);
  c.seal(2, 0);
  c.post(1, 0, 10);
  c.seal(1, 1);
  c.post(1, 0, 11);
  c.seal(1, 2);
  std::vector<int> seen;
  c.drain(0, /*current=*/3,
          [&](std::uint32_t, std::uint64_t, std::vector<int>& msgs) {
            for (int m : msgs) seen.push_back(m);
          });
  // Source 1 before source 2 (ascending), packets FIFO within the lane.
  EXPECT_EQ(seen, (std::vector<int>{10, 11, 20}));
}

/// Toy partition: counts epochs and posts one message per epoch to its
/// peer through a conveyor, verifying the begin/run/end cadence.
class CountingPartition final : public Partition {
 public:
  CountingPartition(Conveyor<std::uint64_t>& conveyor, std::uint32_t self,
                    std::uint32_t peer)
      : conveyor_(conveyor), self_(self), peer_(peer) {}

  void begin_epoch(SimTime, std::uint64_t epoch) override {
    conveyor_.drain(self_, epoch,
                    [&](std::uint32_t, std::uint64_t, std::vector<std::uint64_t>& m) {
                      for (std::uint64_t v : m) received_ += v;
                    });
  }
  void run_until(SimTime end) override { now_ = end; }
  void end_epoch(SimTime, std::uint64_t epoch) override {
    conveyor_.post(self_, peer_, epoch + 1);
    conveyor_.seal(self_, epoch);
    ++epochs_;
  }

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] SimTime now() const { return now_; }

 private:
  Conveyor<std::uint64_t>& conveyor_;
  const std::uint32_t self_;
  const std::uint32_t peer_;
  SimTime now_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t received_ = 0;
};

std::pair<std::uint64_t, std::uint64_t> drive(std::uint32_t threads) {
  Conveyor<std::uint64_t> conveyor(2);
  CountingPartition a(conveyor, 0, 1);
  CountingPartition b(conveyor, 1, 0);
  WorkerPool pool(threads);
  ParallelSimulator psim(pool, {&a, &b}, msec(10));
  psim.run_until(msec(100));
  EXPECT_EQ(psim.now(), msec(100));
  EXPECT_EQ(a.now(), msec(100));
  EXPECT_EQ(a.epochs(), 10u);
  EXPECT_EQ(b.epochs(), 10u);
  return {a.received(), b.received()};
}

TEST(ParallelSimulator, EpochCadenceIsThreadCountInvariant) {
  const auto seq = drive(1);
  const auto par = drive(4);
  // Epochs 1..9 drain the peer's packets from epochs 0..8: sum 1..9 = 45.
  EXPECT_EQ(seq.first, 45u);
  EXPECT_EQ(seq.second, 45u);
  EXPECT_EQ(par, seq);
}

TEST(ParallelSimulator, PartialEpochAdvancesToExactTarget) {
  Conveyor<std::uint64_t> conveyor(2);
  CountingPartition a(conveyor, 0, 1);
  CountingPartition b(conveyor, 1, 0);
  WorkerPool pool(1);
  ParallelSimulator psim(pool, {&a, &b}, msec(10));
  psim.run_until(msec(25));  // 2.5 epochs: the tail epoch is short
  EXPECT_EQ(psim.now(), msec(25));
  EXPECT_EQ(a.now(), msec(25));
  EXPECT_EQ(a.epochs(), 3u);
}

}  // namespace
}  // namespace idea::runtime
