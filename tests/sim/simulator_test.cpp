#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace idea::sim {
namespace {

TEST(Simulator, RunsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(sec(3), [&] { order.push_back(3); });
  sim.schedule_at(sec(1), [&] { order.push_back(1); });
  sim.schedule_at(sec(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), sec(3));
}

TEST(Simulator, FifoAmongSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(sec(1), [&] { order.push_back(1); });
  sim.schedule_at(sec(1), [&] { order.push_back(2); });
  sim.schedule_at(sec(1), [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = -1;
  sim.schedule_at(sec(5), [&] {
    sim.schedule_after(sec(2), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, sec(7));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(msec(1), recurse);
  };
  sim.schedule_after(msec(1), recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), msec(5));
}

TEST(Simulator, CancelOneShot) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(sec(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelDoesNotAffectOthers) {
  Simulator sim;
  bool a = false, b = false;
  const EventId ida = sim.schedule_at(sec(1), [&] { a = true; });
  sim.schedule_at(sec(1), [&] { b = true; });
  sim.cancel(ida);
  sim.run();
  EXPECT_FALSE(a);
  EXPECT_TRUE(b);
}

TEST(Simulator, PeriodicFiresRepeatedly) {
  Simulator sim;
  int count = 0;
  sim.schedule_periodic(sec(1), [&] { ++count; });
  sim.run_until(sec(10));
  EXPECT_EQ(count, 10);
}

TEST(Simulator, PeriodicInitialDelay) {
  Simulator sim;
  std::vector<SimTime> fires;
  sim.schedule_periodic(sec(2), [&] { fires.push_back(sim.now()); },
                        /*initial_delay=*/sec(5));
  sim.run_until(sec(10));
  EXPECT_EQ(fires, (std::vector<SimTime>{sec(5), sec(7), sec(9)}));
}

TEST(Simulator, CancelPeriodicStopsChain) {
  Simulator sim;
  int count = 0;
  const EventId id = sim.schedule_periodic(sec(1), [&] { ++count; });
  sim.schedule_at(sec(3) + msec(500), [&] { sim.cancel(id); });
  sim.run_until(sec(10));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CancelPeriodicFromInsideCallback) {
  Simulator sim;
  int count = 0;
  EventId id = 0;
  id = sim.schedule_periodic(sec(1), [&] {
    if (++count == 2) sim.cancel(id);
  });
  sim.run_until(sec(10));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenEmpty) {
  Simulator sim;
  sim.run_until(sec(42));
  EXPECT_EQ(sim.now(), sec(42));
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator sim;
  bool late = false;
  sim.schedule_at(sec(10), [&] { late = true; });
  sim.run_until(sec(5));
  EXPECT_FALSE(late);
  EXPECT_EQ(sim.now(), sec(5));
  sim.run_until(sec(10));
  EXPECT_TRUE(late);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(sec(1), [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, EventsProcessedCount) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(sec(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(Simulator, RunWithLimit) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(sec(i), [&] { ++count; });
  sim.run(/*limit=*/4);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, ManyEventsStressOrder) {
  Simulator sim;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at(sec((i * 7919) % 1000), [&] {
      if (sim.now() < last) monotone = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(sim.events_processed(), 10000u);
}

}  // namespace
}  // namespace idea::sim
