/// \file simulator_stress_test.cpp
/// \brief Pool/tombstone stress: one million schedule/cancel/periodic
///        operations against the slab-recycled simulator, asserting
///        (time, insertion) ordering, cancellation semantics and exact
///        pending() accounting throughout.

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "util/rng.hpp"

namespace idea::sim {
namespace {

TEST(SimulatorStress, MillionMixedOpsKeepOrderingAndAccounting) {
  Simulator sim;
  Rng rng(20260728);

  std::uint64_t scheduled = 0;
  std::uint64_t cancelled_ok = 0;
  std::uint64_t fired = 0;
  std::uint64_t expected_fired = 0;

  // Every callback checks global time monotonicity; same-time FIFO is
  // checked via a strictly increasing per-batch sequence.
  SimTime last_time = 0;
  std::uint64_t last_seq_at_time = 0;
  SimTime seq_time = -1;
  bool order_ok = true;
  auto observe = [&](SimTime t, std::uint64_t seq) {
    if (t < last_time) order_ok = false;
    if (t == seq_time) {
      if (seq <= last_seq_at_time) order_ok = false;
    }
    seq_time = t;
    last_time = t;
    last_seq_at_time = seq;
  };

  std::uint64_t ops = 0;
  std::uint64_t next_seq = 0;
  std::deque<EventId> cancel_pool;
  while (ops < 1'000'000) {
    // Schedule a burst of one-shots with seeds of same-time collisions.
    const std::uint32_t burst = 512;
    for (std::uint32_t i = 0; i < burst; ++i) {
      const SimDuration delay = rng.uniform_int(0, msec(20));
      const std::uint64_t seq = next_seq++;
      const SimTime at = sim.now() + delay;
      const EventId id =
          sim.schedule_at(at, [&, at, seq] { observe(at, seq); ++fired; });
      ++scheduled;
      ++ops;
      ++expected_fired;
      if ((i & 7u) == 0) {
        cancel_pool.push_back(id);
      }
    }
    // Cancel a slice of them (always still pending: their times are in the
    // future relative to the last run_for window).
    while (cancel_pool.size() > 32) {
      const EventId id = cancel_pool.front();
      cancel_pool.pop_front();
      if (sim.cancel(id)) {
        ++cancelled_ok;
        --expected_fired;
      }
      ++ops;
      // Double-cancel must always report "no longer pending".
      EXPECT_FALSE(sim.cancel(id));
      ++ops;
    }
    sim.run_for(msec(10));
  }
  // Everything still pending drains here.
  cancel_pool.clear();
  sim.run_for(sec(1));

  EXPECT_TRUE(order_ok);
  EXPECT_EQ(fired, expected_fired);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_GE(ops, 1'000'000u);
  EXPECT_GT(cancelled_ok, 0u);
  // The slab recycles slots: its footprint is bounded by the high-water
  // mark of concurrently pending events, not by the million scheduled.
  EXPECT_LT(sim.pool_size(), 20'000u);
}

TEST(SimulatorStress, PeriodicChainsSurviveHeavyChurn) {
  Simulator sim;
  Rng rng(777);

  // 100 periodic chains with coprime-ish periods, cancelled at staggered
  // deadlines; exact fire counts are asserted per chain.
  struct Chain {
    EventId id = kInvalidEvent;
    SimDuration period = 0;
    SimTime cancel_at = 0;
    std::uint64_t fires = 0;
  };
  std::vector<Chain> chains(100);
  for (std::size_t c = 0; c < chains.size(); ++c) {
    Chain& chain = chains[c];
    chain.period = msec(1) + static_cast<SimDuration>(c) * usec(137);
    chain.cancel_at = msec(200) + static_cast<SimDuration>(c) * msec(7);
    chain.id = sim.schedule_periodic(chain.period,
                                     [&chain] { ++chain.fires; });
  }
  // Churn: a steady stream of one-shots interleaves with the chains.
  std::uint64_t oneshot_fired = 0;
  for (int i = 0; i < 200'000; ++i) {
    sim.schedule_after(rng.uniform_int(0, sec(1)), [&] { ++oneshot_fired; });
  }
  for (Chain& chain : chains) {
    sim.schedule_at(chain.cancel_at, [&sim, &chain] {
      EXPECT_TRUE(sim.cancel(chain.id));
      EXPECT_FALSE(sim.cancel(chain.id));
    });
  }
  sim.run_until(sec(2));

  for (const Chain& chain : chains) {
    // Fires strictly before cancel_at: floor((cancel_at - epsilon)/period).
    // cancel_at is never an exact multiple of period (137us offsets), so
    // the expected count is cancel_at / period rounded down.
    EXPECT_EQ(chain.fires,
              static_cast<std::uint64_t>(chain.cancel_at / chain.period))
        << "period=" << chain.period << " cancel_at=" << chain.cancel_at;
  }
  EXPECT_EQ(oneshot_fired, 200'000u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorStress, CancelFromInsideOwnCallbackKeepsAccountingExact) {
  Simulator sim;
  int periodic_fires = 0;
  EventId chain = kInvalidEvent;
  chain = sim.schedule_periodic(msec(5), [&] {
    if (++periodic_fires == 3) {
      EXPECT_TRUE(sim.cancel(chain));   // cancel the chain mid-callback
      EXPECT_FALSE(sim.cancel(chain));  // and only once
    }
  });
  EXPECT_EQ(sim.pending(), 1u);
  sim.run_for(sec(1));
  EXPECT_EQ(periodic_fires, 3);
  EXPECT_EQ(sim.pending(), 0u);

  // A one-shot that fired is no longer cancellable (its slot is recycled).
  bool ran = false;
  const EventId one = sim.schedule_after(msec(1), [&] { ran = true; });
  sim.run_for(msec(2));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(one));
}

}  // namespace
}  // namespace idea::sim
