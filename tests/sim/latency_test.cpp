#include "sim/latency.hpp"

#include <gtest/gtest.h>

namespace idea::sim {
namespace {

TEST(ConstantLatency, AlwaysSame) {
  ConstantLatency lat(msec(10));
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lat.sample(0, 1, rng), msec(10));
  }
  EXPECT_EQ(lat.mean(0, 1), msec(10));
}

TEST(UniformLatency, WithinBounds) {
  UniformLatency lat(msec(5), msec(15));
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const SimDuration d = lat.sample(0, 1, rng);
    EXPECT_GE(d, msec(5));
    EXPECT_LE(d, msec(15));
  }
  EXPECT_EQ(lat.mean(0, 1), msec(10));
}

TEST(MatrixLatency, UsesMatrix) {
  std::vector<std::vector<SimDuration>> base{
      {0, msec(10)}, {msec(20), 0}};
  MatrixLatency lat(base, /*jitter_sigma=*/0.0);
  Rng rng(3);
  EXPECT_EQ(lat.sample(0, 1, rng), msec(10));
  EXPECT_EQ(lat.sample(1, 0, rng), msec(20));
  EXPECT_EQ(lat.mean(0, 1), msec(10));
}

TEST(MatrixLatency, JitterVariesSamples) {
  std::vector<std::vector<SimDuration>> base{
      {0, msec(10)}, {msec(10), 0}};
  MatrixLatency lat(base, /*jitter_sigma=*/0.3);
  Rng rng(4);
  SimDuration first = lat.sample(0, 1, rng);
  bool varied = false;
  for (int i = 0; i < 50; ++i) {
    if (lat.sample(0, 1, rng) != first) varied = true;
  }
  EXPECT_TRUE(varied);
}

class PlanetLabLatencyTest : public ::testing::Test {
 protected:
  PlanetLabParams params_{};
  PlanetLabLatency lat_{params_};
  Rng rng_{5};
};

TEST_F(PlanetLabLatencyTest, SelfDelayZero) {
  EXPECT_EQ(lat_.sample(3, 3, rng_), 0);
  EXPECT_EQ(lat_.mean(3, 3), 0);
}

TEST_F(PlanetLabLatencyTest, SymmetricBase) {
  // Jitter-free mean is symmetric because distance is.
  EXPECT_EQ(lat_.mean(1, 7), lat_.mean(7, 1));
}

TEST_F(PlanetLabLatencyTest, AboveProcessingFloor) {
  for (NodeId i = 0; i < 40; ++i) {
    for (NodeId j = 0; j < 40; ++j) {
      if (i == j) continue;
      EXPECT_GE(lat_.mean(i, j), params_.processing_floor);
      EXPECT_LE(lat_.mean(i, j),
                2 * (params_.processing_floor + params_.diameter_delay));
    }
  }
}

TEST_F(PlanetLabLatencyTest, HeterogeneousPairs) {
  // A WAN is not a constant-latency network: pairs must differ.
  const SimDuration a = lat_.mean(0, 1);
  bool differs = false;
  for (NodeId j = 2; j < 40; ++j) {
    if (lat_.mean(0, j) != a) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(PlanetLabLatencyTest, MeanPairwisePositive) {
  const SimDuration mean = lat_.mean_pairwise();
  EXPECT_GT(mean, params_.processing_floor);
  EXPECT_LT(mean, params_.diameter_delay + params_.processing_floor);
}

TEST_F(PlanetLabLatencyTest, SamplesJitterAroundBase) {
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(lat_.sample(0, 20, rng_));
  }
  const double mean_sample = sum / n;
  const double mean_model = static_cast<double>(lat_.mean(0, 20));
  EXPECT_NEAR(mean_sample, mean_model, mean_model * 0.05);
}

TEST(PlanetLabLatencyFactory, Makes40Nodes) {
  auto lat = make_planetlab40();
  EXPECT_EQ(lat->node_count(), 40u);
}

TEST(PlanetLabLatency, PlacementSeedChangesTopology) {
  PlanetLabParams a{};
  PlanetLabParams b{};
  b.placement_seed = 999;
  PlanetLabLatency la(a), lb(b);
  bool differs = false;
  for (NodeId j = 1; j < 40; ++j) {
    if (la.mean(0, j) != lb.mean(0, j)) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace idea::sim
