#include "util/log.hpp"

#include <gtest/gtest.h>

namespace idea {
namespace {

TEST(Log, CaptureReceivesMessages) {
  LogCapture capture(LogLevel::kDebug);
  IDEA_LOG(kInfo) << "hello " << 42;
  EXPECT_TRUE(capture.contains("hello 42"));
  EXPECT_TRUE(capture.contains("INFO"));
}

TEST(Log, ThresholdFilters) {
  LogCapture capture(LogLevel::kWarn);
  IDEA_LOG(kDebug) << "should not appear";
  IDEA_LOG(kError) << "should appear";
  EXPECT_FALSE(capture.contains("should not appear"));
  EXPECT_TRUE(capture.contains("should appear"));
}

TEST(Log, CaptureRestoresPreviousState) {
  const LogLevel before = Log::threshold();
  {
    LogCapture capture(LogLevel::kTrace);
    EXPECT_EQ(Log::threshold(), LogLevel::kTrace);
  }
  EXPECT_EQ(Log::threshold(), before);
}

TEST(Log, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(Log::level_name(LogLevel::kError), "ERROR");
}

TEST(Log, StreamFormatting) {
  LogCapture capture(LogLevel::kTrace);
  IDEA_LOG(kTrace) << "x=" << 1.5 << " y=" << 'c';
  EXPECT_TRUE(capture.contains("x=1.5 y=c"));
}

}  // namespace
}  // namespace idea
