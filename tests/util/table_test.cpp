#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace idea {
namespace {

TEST(TextTable, RenderAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::integer(-42), "-42");
  EXPECT_EQ(TextTable::percent(0.956, 1), "95.6%");
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  const std::string path = testing::TempDir() + "/table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::getline(f, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(SeriesCsv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/series_test.csv";
  {
    SeriesCsv csv(path);
    csv.add("worst", 5.0, 0.94);
    csv.add("avg", 5.0, 0.97);
  }
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "series,t,value");
  std::getline(f, line);
  EXPECT_EQ(line, "worst,5,0.94");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace idea
