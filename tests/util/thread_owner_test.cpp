/// \file thread_owner_test.cpp
/// \brief Single-owner stamp semantics: claim on first touch, stable for
///        the owning thread, foreign threads rejected until a rebind at a
///        synchronized hand-off point.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/thread_owner.hpp"

namespace idea::util {
namespace {

TEST(ThreadOwner, FirstToucherClaimsAndKeepsOwnership) {
  ThreadOwner owner;
  EXPECT_TRUE(owner.owned_by_current());  // claim
  EXPECT_TRUE(owner.owned_by_current());  // still mine
}

TEST(ThreadOwner, ForeignThreadIsRejected) {
  ThreadOwner owner;
  ASSERT_TRUE(owner.owned_by_current());
  std::atomic<bool> foreign_owned{true};
  std::thread t([&] { foreign_owned.store(owner.owned_by_current()); });
  t.join();
  EXPECT_FALSE(foreign_owned.load());
}

TEST(ThreadOwner, RebindHandsOwnershipToTheNextToucher) {
  ThreadOwner owner;
  ASSERT_TRUE(owner.owned_by_current());
  owner.rebind();
  std::atomic<bool> claimed{false};
  std::thread t([&] {
    // The join below synchronizes the hand-off back; the rebind above
    // synchronized it forward (in the runtime the pool barrier does both).
    claimed.store(owner.owned_by_current());
  });
  t.join();
  EXPECT_TRUE(claimed.load());
  // The worker claimed it; this thread is now the foreigner.
  EXPECT_FALSE(owner.owned_by_current());
  owner.rebind();
  EXPECT_TRUE(owner.owned_by_current());
}

#ifdef IDEA_OWNER_CHECKS
TEST(ThreadOwnerDeathTest, CrossThreadAccessAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        // Claim and violate entirely inside the death-test child, so the
        // stamp never aliases the parent process's thread ids.
        ThreadOwner owner;
        IDEA_ASSERT_OWNED(owner);
        std::thread t([&] { IDEA_ASSERT_OWNED(owner); });
        t.join();
      },
      "cross-thread access");
}
#endif

}  // namespace
}  // namespace idea::util
