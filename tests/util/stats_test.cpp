#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace idea {
namespace {

TEST(RunningStat, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, MergeMatchesCombined) {
  RunningStat a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(PercentileStat, MedianAndExtremes) {
  PercentileStat p;
  for (int i = 1; i <= 101; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.median(), 51.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 101.0);
  EXPECT_NEAR(p.percentile(90), 91.0, 1.0);
}

TEST(PercentileStat, InterleavedAddAndQuery) {
  PercentileStat p;
  p.add(10);
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
  p.add(20);
  p.add(30);
  EXPECT_DOUBLE_EQ(p.median(), 20.0);
  EXPECT_DOUBLE_EQ(p.mean(), 20.0);
}

TEST(Histogram, Bucketing) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.99);
  h.add(-1.0);
  h.add(10.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, BucketEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(9), 9.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(9), 10.0);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string text = h.render(10);
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('\n'), std::string::npos);
}

TEST(Ewma, PrimesOnFirstSample) {
  Ewma e(0.5);
  EXPECT_FALSE(e.primed());
  e.add(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, Smooths) {
  Ewma e(0.5);
  e.add(10.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 15.0);
  e.add(20.0);
  EXPECT_DOUBLE_EQ(e.value(), 17.5);
}

TEST(Ewma, Reset) {
  Ewma e(0.3);
  e.add(5.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

TEST(TimeSeries, MinMeanWindow) {
  TimeSeries s("test");
  s.add(0.0, 1.0);
  s.add(5.0, 0.9);
  s.add(10.0, 0.95);
  s.add(15.0, 0.8);
  EXPECT_DOUBLE_EQ(s.min_value(), 0.8);
  EXPECT_NEAR(s.mean_value(), (1.0 + 0.9 + 0.95 + 0.8) / 4, 1e-12);
  EXPECT_DOUBLE_EQ(s.min_in_window(0.0, 11.0), 0.9);
  EXPECT_DOUBLE_EQ(s.min_in_window(10.0, 20.0), 0.8);
}

TEST(TimeSeries, EmptyWindows) {
  TimeSeries s("empty");
  EXPECT_DOUBLE_EQ(s.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.min_in_window(0, 10), 0.0);
}

}  // namespace
}  // namespace idea
