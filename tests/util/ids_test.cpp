#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/time.hpp"

namespace idea {
namespace {

TEST(Ids, Mix64Deterministic) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
}

TEST(Ids, FairIdsDistinct) {
  std::set<FairId> seen;
  for (NodeId n = 0; n < 1000; ++n) {
    seen.insert(fair_id(n, 2007));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Ids, FairIdsDependOnSeed) {
  EXPECT_NE(fair_id(3, 1), fair_id(3, 2));
}

TEST(Ids, NodeNameFormat) {
  EXPECT_EQ(node_name(7), "n07");
  EXPECT_EQ(node_name(42), "n42");
  EXPECT_EQ(node_name(kNoNode), "n--");
}

TEST(Ids, NodeFileKeyHashAndEq) {
  NodeFileKey a{1, 2}, b{1, 2}, c{2, 1};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  NodeFileKeyHash h;
  EXPECT_EQ(h(a), h(b));
}

TEST(Time, Conversions) {
  EXPECT_EQ(msec(5), 5000);
  EXPECT_EQ(sec(2), 2'000'000);
  EXPECT_DOUBLE_EQ(to_ms(1500), 1.5);
  EXPECT_DOUBLE_EQ(to_sec(2'500'000), 2.5);
  EXPECT_EQ(sec_f(0.5), 500'000);
  EXPECT_EQ(msec_f(1.5), 1500);
}

TEST(Time, Format) {
  EXPECT_EQ(format_time(sec(12) + msec(345)), "12.345s");
}

}  // namespace
}  // namespace idea
