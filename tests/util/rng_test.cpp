#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace idea {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentAndDeterministic) {
  Rng root(7);
  Rng f1 = root.fork(1);
  Rng f2 = root.fork(2);
  Rng f1_again = Rng(7).fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, Uniform01HalfOpen) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.exponential(1.0), 0.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  for (int trial = 0; trial < 200; ++trial) {
    auto sample = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::uint32_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), 7u);
    for (auto v : sample) EXPECT_LT(v, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(41);
  auto sample = rng.sample_without_replacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleWithoutReplacementUniformish) {
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    for (auto v : rng.sample_without_replacement(10, 3)) ++counts[v];
  }
  // Each element should be picked ~ trials * 3/10 times.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials * 0.3, trials * 0.3 * 0.1);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(53);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace idea
