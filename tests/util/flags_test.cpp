#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace idea {
namespace {

Flags make(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(storage.empty() ? nullptr : storage.front().data());
  for (auto& s : storage) argv.push_back(s.data());
  argv[0] = storage.front().data();
  // Rebuild properly: argv[0] = program, rest = flags.
  argv.clear();
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, SpaceSeparated) {
  Flags f = make({"prog", "--hint", "0.95", "--seed", "42"});
  EXPECT_DOUBLE_EQ(f.get_double("hint", 0.0), 0.95);
  EXPECT_EQ(f.get_int("seed", 0), 42);
  EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, EqualsSeparated) {
  Flags f = make({"prog", "--hint=0.85", "--name=fig7"});
  EXPECT_DOUBLE_EQ(f.get_double("hint", 0.0), 0.85);
  EXPECT_EQ(f.get_string("name", ""), "fig7");
}

TEST(Flags, BareBoolean) {
  Flags f = make({"prog", "--verbose", "--count", "3"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_EQ(f.get_int("count", 0), 3);
}

TEST(Flags, Defaults) {
  Flags f = make({"prog"});
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_string("missing", "dft"), "dft");
  EXPECT_EQ(f.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(f.get_double("missing", 1.5), 1.5);
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BoolSpellings) {
  Flags f = make({"prog", "--a", "true", "--b", "1", "--c", "yes",
                  "--d", "false"});
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_TRUE(f.get_bool("b", false));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_FALSE(f.get_bool("d", true));
}

TEST(Flags, RejectsPositional) {
  EXPECT_THROW(make({"prog", "positional"}), std::invalid_argument);
}

}  // namespace
}  // namespace idea
