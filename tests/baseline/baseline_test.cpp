#include "baseline/baseline.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "net/sim_transport.hpp"

namespace idea::baseline {
namespace {

template <typename NodeT>
class BaselineFixture : public ::testing::Test {
 protected:
  static constexpr FileId kFile = 1;

  template <typename... Args>
  void Build(std::uint32_t nodes, Args&&... args) {
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    for (NodeId n = 0; n < nodes; ++n) {
      nodes_.push_back(std::make_unique<NodeT>(n, kFile, *transport_,
                                               args...));
      transport_->attach(n, nodes_.back().get());
      nodes_.back()->start();
    }
  }

  [[nodiscard]] bool converged() const {
    const auto digest = nodes_[0]->store().content_digest();
    for (const auto& n : nodes_) {
      if (n->store().content_digest() != digest) return false;
    }
    return true;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(25)};
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<NodeT>> nodes_;
};

// ---------------------------------------------------------------------------
// Optimistic
// ---------------------------------------------------------------------------

class OptimisticTest : public BaselineFixture<OptimisticNode> {
 protected:
  void SetUp() override {
    OptimisticParams p;
    p.nodes = 6;
    p.anti_entropy_period = sec(5);
    std::uint64_t seed = 100;
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    for (NodeId n = 0; n < 6; ++n) {
      nodes_.push_back(std::make_unique<OptimisticNode>(
          n, kFile, *transport_, p, seed + n));
      transport_->attach(n, nodes_.back().get());
      nodes_.back()->start();
    }
  }
};

TEST_F(OptimisticTest, WriteCommitsImmediately) {
  bool done = false;
  nodes_[0]->write("a", 1.0, [&] { done = true; });
  EXPECT_TRUE(done);  // optimistic: local commit
  EXPECT_EQ(nodes_[0]->store().update_count(), 1u);
}

TEST_F(OptimisticTest, AntiEntropyEventuallyConverges) {
  nodes_[0]->write("a", 1.0, nullptr);
  nodes_[3]->write("b", 2.0, nullptr);
  nodes_[5]->write("c", 3.0, nullptr);
  EXPECT_FALSE(converged());
  sim_.run_until(sec(180));
  EXPECT_TRUE(converged());
  EXPECT_EQ(nodes_[1]->store().update_count(), 3u);
}

TEST_F(OptimisticTest, SessionsAreCheapWhenQuiescent) {
  sim_.run_until(sec(60));
  const auto msgs_idle = transport_->counters().total_messages();
  // Idle sessions: request + (possibly empty) push per period per node.
  // 6 nodes * 12 periods * <= 2 messages.
  EXPECT_LE(msgs_idle, 6u * 12u * 2u + 6u);
}

// ---------------------------------------------------------------------------
// Strong
// ---------------------------------------------------------------------------

class StrongTest : public BaselineFixture<StrongNode> {
 protected:
  void SetUp() override {
    StrongParams p;
    p.nodes = 5;
    p.primary = 0;
    Build(5, p);
  }
};

TEST_F(StrongTest, WriteAtPrimaryReplicatesEverywhere) {
  bool done = false;
  SimTime committed_at = 0;
  nodes_[0]->write("a", 1.0, [&] {
    done = true;
    committed_at = sim_.now();
  });
  sim_.run_until(sec(5));
  EXPECT_TRUE(done);
  // Full fan-out: one RTT to the slowest replica.
  EXPECT_EQ(committed_at, msec(50));
  for (const auto& n : nodes_) {
    EXPECT_EQ(n->store().update_count(), 1u);
  }
}

TEST_F(StrongTest, WriteAtReplicaRoutesThroughPrimary) {
  bool done = false;
  SimTime committed_at = 0;
  nodes_[3]->write("b", 1.0, [&] {
    done = true;
    committed_at = sim_.now();
  });
  sim_.run_until(sec(5));
  EXPECT_TRUE(done);
  // submit (25) + replicate (25) + ack (25) + committed (25) = 100 ms.
  EXPECT_EQ(committed_at, msec(100));
  EXPECT_TRUE(converged());
}

TEST_F(StrongTest, PrimarySequencesConcurrentWrites) {
  for (NodeId n = 0; n < 5; ++n) {
    nodes_[n]->write("w" + std::to_string(n), 1.0, nullptr);
  }
  sim_.run_until(sec(10));
  EXPECT_TRUE(converged());
  // All updates carry the primary as the single writer: never concurrent.
  const auto counts = nodes_[0]->store().evv().counts();
  EXPECT_EQ(counts.writer_count(), 1u);
  EXPECT_EQ(counts.get(0), 5u);
}

TEST_F(StrongTest, ConsistencyNeverViolated) {
  // At any quiescent point replicas are identical (strong consistency).
  nodes_[1]->write("x", 1.0, nullptr);
  sim_.run_until(sec(5));
  EXPECT_TRUE(converged());
  nodes_[4]->write("y", 1.0, nullptr);
  sim_.run_until(sec(10));
  EXPECT_TRUE(converged());
}

// ---------------------------------------------------------------------------
// TACT
// ---------------------------------------------------------------------------

class TactTest : public BaselineFixture<TactNode> {
 protected:
  void SetUp() override {
    TactParams p;
    p.nodes = 4;
    p.order_bound = 3;
    p.staleness_bound = sec(15);
    p.check_period = sec(1);
    Build(4, p);
  }
};

TEST_F(TactTest, OrderBoundForcesPush) {
  // Two writes stay local (bound 3); the third forces a push everywhere.
  nodes_[0]->write("1", 1.0, nullptr);
  nodes_[0]->write("2", 1.0, nullptr);
  sim_.run_until(sec(2));
  EXPECT_EQ(nodes_[1]->store().update_count(), 0u);
  nodes_[0]->write("3", 1.0, nullptr);
  sim_.run_until(sec(4));
  for (const auto& n : nodes_) {
    EXPECT_EQ(n->store().update_count(), 3u);
  }
}

TEST_F(TactTest, StalenessBoundForcesPush) {
  nodes_[2]->write("lonely", 1.0, nullptr);
  sim_.run_until(sec(10));
  EXPECT_EQ(nodes_[0]->store().update_count(), 0u);  // within bound
  sim_.run_until(sec(20));
  EXPECT_EQ(nodes_[0]->store().update_count(), 1u);  // bound expired
}

TEST_F(TactTest, BoundedInconsistencyInvariant) {
  // At every instant, no peer is more than order_bound-1 updates behind
  // any single writer (after push propagation delay).
  for (int i = 0; i < 12; ++i) {
    nodes_[0]->write("u" + std::to_string(i), 1.0, nullptr);
    sim_.run_until(sim_.now() + sec(2));
    for (NodeId peer = 1; peer < 4; ++peer) {
      const auto behind =
          nodes_[0]->store().local_seq() -
          nodes_[peer]->store().evv().count_of(0);
      EXPECT_LE(behind, 3u);
    }
  }
}

TEST_F(TactTest, EventualConvergenceViaStaleness) {
  nodes_[0]->write("a", 1.0, nullptr);
  nodes_[1]->write("b", 1.0, nullptr);
  nodes_[3]->write("c", 1.0, nullptr);
  sim_.run_until(sec(60));
  EXPECT_TRUE(converged());
}

}  // namespace
}  // namespace idea::baseline
