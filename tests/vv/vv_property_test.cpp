/// \file vv_property_test.cpp
/// \brief Randomized property tests for the flat-vector VersionVector /
///        ExtendedVersionVector representations against a map-based
///        oracle.
///
/// PR 2 replaced the std::map layouts with sorted flat vectors whose
/// merge/compare are hand-written two-pointer walks; the unit tests pin
/// specific cases, but the walks have enough edge geometry (disjoint
/// writer sets, interleaved ids, equal prefixes, empty sides) that random
/// exploration is the honest check.  Each property runs 10k random cases
/// per seed: merge is commutative and idempotent and matches the
/// pointwise-max oracle, compare is antisymmetric and matches an oracle
/// comparison, and the EVV's missing_from returns exactly the oracle's
/// (writer, seq) delta.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.hpp"
#include "vv/extended_vv.hpp"
#include "vv/version_vector.hpp"

namespace idea::vv {
namespace {

constexpr int kCasesPerSeed = 10'000;
const std::vector<std::uint64_t> kSeeds{2007, 0xBADC0DE, 42};

using Oracle = std::map<NodeId, std::uint64_t>;

/// Writer ids mix a dense band with sparse outliers so the two-pointer
/// walks see both adjacent and far-apart entries.
NodeId random_writer(Rng& rng) {
  return rng.chance(0.2) ? static_cast<NodeId>(900 + rng.next_below(40))
                         : static_cast<NodeId>(rng.next_below(8));
}

VersionVector from_oracle(const Oracle& o) {
  VersionVector v;
  for (const auto& [w, c] : o) v.set(w, c);
  return v;
}

Oracle random_oracle(Rng& rng) {
  Oracle o;
  const std::uint64_t writers = rng.next_below(6);
  for (std::uint64_t i = 0; i < writers; ++i) {
    o[random_writer(rng)] = 1 + rng.next_below(10);
  }
  return o;
}

Oracle oracle_merge(const Oracle& a, const Oracle& b) {
  Oracle out = a;
  for (const auto& [w, c] : b) {
    auto [it, inserted] = out.emplace(w, c);
    if (!inserted && c > it->second) it->second = c;
  }
  return out;
}

Order oracle_compare(const Oracle& a, const Oracle& b) {
  bool a_ahead = false;
  bool b_ahead = false;
  Oracle all = a;
  all.insert(b.begin(), b.end());
  for (const auto& [w, unused] : all) {
    const std::uint64_t ca = a.count(w) ? a.at(w) : 0;
    const std::uint64_t cb = b.count(w) ? b.at(w) : 0;
    if (ca > cb) a_ahead = true;
    if (cb > ca) b_ahead = true;
  }
  if (a_ahead && b_ahead) return Order::kConcurrent;
  if (a_ahead) return Order::kAfter;
  if (b_ahead) return Order::kBefore;
  return Order::kEqual;
}

Order mirror(Order o) {
  switch (o) {
    case Order::kBefore:
      return Order::kAfter;
    case Order::kAfter:
      return Order::kBefore;
    default:
      return o;
  }
}

TEST(VersionVectorProperty, MergeMatchesOracleAndIsCommutativeIdempotent) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed);
    for (int i = 0; i < kCasesPerSeed; ++i) {
      const Oracle oa = random_oracle(rng);
      const Oracle ob = random_oracle(rng);
      const VersionVector a = from_oracle(oa);
      const VersionVector b = from_oracle(ob);

      VersionVector ab = a;
      ab.merge(b);
      VersionVector ba = b;
      ba.merge(a);
      const VersionVector expected = from_oracle(oracle_merge(oa, ob));
      ASSERT_EQ(ab, expected) << "seed " << seed << " case " << i;
      ASSERT_EQ(ba, expected) << "merge not commutative: seed " << seed
                              << " case " << i;

      VersionVector aa = a;
      aa.merge(a);
      ASSERT_EQ(aa, a) << "merge not idempotent: seed " << seed;
      // The merge dominates both inputs.
      ASSERT_TRUE(ab.dominates(a));
      ASSERT_TRUE(ab.dominates(b));
    }
  }
}

TEST(VersionVectorProperty, CompareMatchesOracleAndIsAntisymmetric) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed ^ 0xC0FFEE);
    for (int i = 0; i < kCasesPerSeed; ++i) {
      Oracle oa = random_oracle(rng);
      // Bias towards related vectors: half the time b derives from a by
      // increments/truncations, otherwise independent (mostly
      // concurrent).
      Oracle ob;
      if (rng.chance(0.5)) {
        ob = oa;
        const std::uint64_t tweaks = rng.next_below(4);
        for (std::uint64_t t = 0; t < tweaks; ++t) {
          const NodeId w = random_writer(rng);
          if (rng.chance(0.5)) {
            ++ob[w];
          } else if (ob.count(w)) {
            if (--ob[w] == 0) ob.erase(w);
          }
        }
      } else {
        ob = random_oracle(rng);
      }
      const VersionVector a = from_oracle(oa);
      const VersionVector b = from_oracle(ob);

      const Order fwd = VersionVector::compare(a, b);
      ASSERT_EQ(fwd, oracle_compare(oa, ob))
          << "seed " << seed << " case " << i << " a=" << a.to_string()
          << " b=" << b.to_string();
      ASSERT_EQ(VersionVector::compare(b, a), mirror(fwd))
          << "compare not antisymmetric: seed " << seed << " case " << i;
      ASSERT_EQ(a.concurrent_with(b), fwd == Order::kConcurrent);
      ASSERT_EQ(a.dominates(b),
                fwd == Order::kAfter || fwd == Order::kEqual);
    }
  }
}

TEST(VersionVectorProperty, IncrementSetGetTrackOracle) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed ^ 0x5E7);
    VersionVector v;
    Oracle o;
    for (int i = 0; i < kCasesPerSeed; ++i) {
      const NodeId w = random_writer(rng);
      if (rng.chance(0.7)) {
        v.increment(w);
        ++o[w];
      } else {
        const std::uint64_t c = rng.next_below(12);
        v.set(w, c);
        if (c == 0) {
          o.erase(w);
        } else {
          o[w] = c;
        }
      }
      ASSERT_EQ(v.get(w), o.count(w) ? o[w] : 0);
    }
    ASSERT_EQ(v, from_oracle(o));
    std::uint64_t total = 0;
    for (const auto& [w, c] : o) total += c;
    ASSERT_EQ(v.total(), total);
    ASSERT_EQ(v.writer_count(), o.size());
  }
}

// ---------------------------------------------------------------------
// ExtendedVersionVector: histories share a global per-writer stamp pool,
// so any two EVVs are prefix-compatible (the invariant merge assumes).
// ---------------------------------------------------------------------

struct StampPool {
  std::map<NodeId, std::vector<SimTime>> stamps;

  explicit StampPool(Rng& rng) {
    const std::uint64_t writers = 1 + rng.next_below(6);
    for (std::uint64_t i = 0; i < writers; ++i) {
      const NodeId w = random_writer(rng);
      auto& list = stamps[w];
      if (!list.empty()) continue;
      SimTime t = 0;
      const std::uint64_t n = 1 + rng.next_below(8);
      for (std::uint64_t s = 0; s < n; ++s) {
        t += rng.next_below(1000);  // non-decreasing, duplicates allowed
        list.push_back(t);
      }
    }
  }

  /// An EVV holding a random prefix of each writer's history.
  ExtendedVersionVector random_prefix(Rng& rng, Oracle* counts) const {
    ExtendedVersionVector evv;
    for (const auto& [w, list] : stamps) {
      const std::uint64_t take = rng.next_below(list.size() + 1);
      for (std::uint64_t s = 0; s < take; ++s) {
        evv.record_update(w, list[s], 0.0);
      }
      if (take > 0) (*counts)[w] = take;
    }
    return evv;
  }
};

bool same_history(const ExtendedVersionVector& a,
                  const ExtendedVersionVector& b) {
  const VersionVector counts = a.counts();  // keep alive while iterating
  if (counts != b.counts()) return false;
  for (const auto& [w, c] : counts.entries()) {
    for (std::uint64_t seq = 1; seq <= c; ++seq) {
      if (a.stamp_of(w, seq) != b.stamp_of(w, seq)) return false;
    }
  }
  return true;
}

TEST(ExtendedVVProperty, MergeCompareMissingMatchOracle) {
  for (const std::uint64_t seed : kSeeds) {
    Rng rng(seed ^ 0xEE);
    for (int i = 0; i < kCasesPerSeed; ++i) {
      const StampPool pool(rng);
      Oracle oa;
      Oracle ob;
      const ExtendedVersionVector a = pool.random_prefix(rng, &oa);
      const ExtendedVersionVector b = pool.random_prefix(rng, &ob);

      // compare: antisymmetric and oracle-consistent.
      const Order fwd = ExtendedVersionVector::compare(a, b);
      ASSERT_EQ(fwd, oracle_compare(oa, ob)) << "seed " << seed;
      ASSERT_EQ(ExtendedVersionVector::compare(b, a), mirror(fwd));

      // merge: commutative, idempotent, pointwise-max counts, and the
      // stamps of the union come from the shared pool prefixes.
      ExtendedVersionVector ab = a;
      ab.merge(b);
      ExtendedVersionVector ba = b;
      ba.merge(a);
      ASSERT_TRUE(same_history(ab, ba))
          << "merge not commutative: seed " << seed << " case " << i;
      ASSERT_EQ(ab.counts(), from_oracle(oracle_merge(oa, ob)));
      ExtendedVersionVector aa = a;
      aa.merge(a);
      ASSERT_TRUE(same_history(aa, a));
      const VersionVector merged_counts = ab.counts();
      for (const auto& [w, c] : merged_counts.entries()) {
        for (std::uint64_t seq = 1; seq <= c; ++seq) {
          ASSERT_EQ(ab.stamp_of(w, seq),
                    pool.stamps.at(w)[seq - 1]);
        }
      }

      // missing_from: exactly the oracle's (writer, seq) delta.
      std::vector<std::pair<NodeId, std::uint64_t>> expected;
      for (const auto& [w, cb] : ob) {
        const std::uint64_t ca = oa.count(w) ? oa.at(w) : 0;
        for (std::uint64_t seq = ca + 1; seq <= cb; ++seq) {
          expected.emplace_back(w, seq);
        }
      }
      ASSERT_EQ(a.missing_from(b), expected) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace idea::vv
