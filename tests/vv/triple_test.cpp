#include "vv/tact_triple.hpp"

#include <gtest/gtest.h>

namespace idea::vv {
namespace {

TEST(TactTriple, DefaultIsZero) {
  TactTriple t;
  EXPECT_TRUE(t.is_zero());
}

TEST(TactTriple, NonZeroDetected) {
  EXPECT_FALSE((TactTriple{1, 0, 0}).is_zero());
  EXPECT_FALSE((TactTriple{0, 1, 0}).is_zero());
  EXPECT_FALSE((TactTriple{0, 0, 0.5}).is_zero());
}

TEST(TactTriple, MaxOfComponentwise) {
  const TactTriple a{1, 5, 2};
  const TactTriple b{3, 2, 4};
  const TactTriple m = TactTriple::max_of(a, b);
  EXPECT_DOUBLE_EQ(m.numerical_error, 3);
  EXPECT_DOUBLE_EQ(m.order_error, 5);
  EXPECT_DOUBLE_EQ(m.staleness_sec, 4);
}

TEST(TactTriple, ToString) {
  const TactTriple t{1.5, 2.0, 0.25};
  EXPECT_EQ(t.to_string(), "<num=1.500, order=2.000, stale=0.250s>");
}

TEST(TripleMaxima, Validity) {
  EXPECT_TRUE(TripleMaxima{}.valid());
  EXPECT_FALSE((TripleMaxima{0, 1, 1}).valid());
  EXPECT_FALSE((TripleMaxima{1, -2, 1}).valid());
}

TEST(TripleWeights, Validity) {
  EXPECT_TRUE(TripleWeights{}.valid());
  EXPECT_TRUE((TripleWeights{0.4, 0.0, 0.6}).valid());  // zero allowed
  EXPECT_FALSE((TripleWeights{0, 0, 0}).valid());       // all-zero is not
  EXPECT_FALSE((TripleWeights{-0.1, 0.5, 0.6}).valid());
}

TEST(TripleWeights, SumAndEquality) {
  const TripleWeights w{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(w.sum(), 1.0);
}

}  // namespace
}  // namespace idea::vv
