#include "vv/extended_vv.hpp"

#include <gtest/gtest.h>

namespace idea::vv {
namespace {

constexpr NodeId A = 0;
constexpr NodeId B = 1;

TEST(ExtendedVv, RecordAndCount) {
  ExtendedVersionVector e;
  e.record_update(A, sec(1), 2.0);
  e.record_update(A, sec(2), 5.0);
  EXPECT_EQ(e.count_of(A), 2u);
  EXPECT_EQ(e.count_of(B), 0u);
  EXPECT_EQ(e.stamp_of(A, 1), sec(1));
  EXPECT_EQ(e.stamp_of(A, 2), sec(2));
  EXPECT_EQ(e.stamp_of(A, 3), kNever);
  EXPECT_EQ(e.stamp_of(B, 1), kNever);
  EXPECT_DOUBLE_EQ(e.meta(), 5.0);
  EXPECT_EQ(e.total_updates(), 2u);
}

TEST(ExtendedVv, CountsView) {
  ExtendedVersionVector e;
  e.record_update(A, sec(1), 0);
  e.record_update(B, sec(2), 0);
  e.record_update(B, sec(3), 0);
  const VersionVector v = e.counts();
  EXPECT_EQ(v.get(A), 1u);
  EXPECT_EQ(v.get(B), 2u);
}

TEST(ExtendedVv, LatestUpdateTime) {
  ExtendedVersionVector e;
  EXPECT_EQ(e.latest_update_time(), 0);
  e.record_update(A, sec(1), 0);
  e.record_update(B, sec(5), 0);
  e.record_update(A, sec(3), 0);
  EXPECT_EQ(e.latest_update_time(), sec(5));
}

// The paper's running example (§4.4.1, Figure 4): replica a has
// A:2(1,2), B:1(1) with meta 5; replica b has A:1(1), B:2(1,3) with meta 8.
// Against reference b: numerical error 3, order error = 1 missing + 1
// extra, staleness = 3 - 1 = 2.
class PaperExample : public ::testing::Test {
 protected:
  void SetUp() override {
    a_.record_update(A, sec(1), 0);
    a_.record_update(A, sec(2), 0);
    a_.record_update(B, sec(1), 0);
    a_.set_meta(5.0);

    b_.record_update(A, sec(1), 0);
    b_.record_update(B, sec(1), 0);
    b_.record_update(B, sec(3), 0);
    b_.set_meta(8.0);
  }
  ExtendedVersionVector a_, b_;
};

TEST_F(PaperExample, Concurrent) {
  EXPECT_EQ(ExtendedVersionVector::compare(a_, b_), Order::kConcurrent);
}

TEST_F(PaperExample, LastConsistentTime) {
  EXPECT_EQ(a_.last_consistent_time(b_), sec(1));
  EXPECT_EQ(b_.last_consistent_time(a_), sec(1));
}

TEST_F(PaperExample, TripleAgainstReference) {
  const TactTriple t = a_.triple_against(b_);
  EXPECT_DOUBLE_EQ(t.numerical_error, 3.0);
  // a misses B's 2nd update and has an extra A update: order error 2 under
  // the missing+extra rule.
  EXPECT_DOUBLE_EQ(t.order_error, 2.0);
  EXPECT_DOUBLE_EQ(t.staleness_sec, 2.0);
}

TEST_F(PaperExample, SelfTripleZero) {
  const TactTriple t = a_.triple_against(a_);
  EXPECT_TRUE(t.is_zero());
}

TEST_F(PaperExample, MissingFrom) {
  const auto missing = a_.missing_from(b_);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].first, B);
  EXPECT_EQ(missing[0].second, 2u);
}

TEST_F(PaperExample, MergeUnion) {
  auto merged = a_;
  merged.merge(b_);
  EXPECT_EQ(merged.count_of(A), 2u);
  EXPECT_EQ(merged.count_of(B), 2u);
  EXPECT_EQ(merged.stamp_of(B, 2), sec(3));
  // b has the later latest update (t=3) so its meta wins the tie-break.
  EXPECT_DOUBLE_EQ(merged.meta(), 8.0);
  // Merged dominates both inputs.
  EXPECT_EQ(ExtendedVersionVector::compare(merged, a_), Order::kAfter);
  EXPECT_EQ(ExtendedVersionVector::compare(merged, b_), Order::kAfter);
}

TEST(ExtendedVv, IdenticalHistoriesZeroStaleness) {
  ExtendedVersionVector x, y;
  x.record_update(A, sec(1), 1.0);
  y.record_update(A, sec(1), 1.0);
  const TactTriple t = x.triple_against(y);
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(x.last_consistent_time(y), sec(1));
}

TEST(ExtendedVv, DivergenceFromFirstUpdate) {
  ExtendedVersionVector x, y;
  x.record_update(A, sec(2), 1.0);
  y.record_update(B, sec(4), 2.0);
  EXPECT_EQ(x.last_consistent_time(y), 0);
  const TactTriple t = x.triple_against(y);
  EXPECT_DOUBLE_EQ(t.order_error, 2.0);  // 1 missing + 1 extra
  EXPECT_DOUBLE_EQ(t.staleness_sec, 4.0);
}

TEST(ExtendedVv, StalenessZeroWhenAheadOfReference) {
  // Replica knows everything the reference knows and more: reference's
  // latest is within our consistent prefix.
  ExtendedVersionVector ahead, ref;
  ref.record_update(A, sec(1), 1.0);
  ahead.record_update(A, sec(1), 1.0);
  ahead.record_update(A, sec(5), 2.0);
  const TactTriple t = ahead.triple_against(ref);
  EXPECT_DOUBLE_EQ(t.staleness_sec, 0.0);
  EXPECT_DOUBLE_EQ(t.order_error, 1.0);  // one extra
}

TEST(ExtendedVv, PrefixDominanceOrder) {
  ExtendedVersionVector x, y;
  x.record_update(A, sec(1), 0);
  y.record_update(A, sec(1), 0);
  y.record_update(A, sec(2), 0);
  EXPECT_EQ(ExtendedVersionVector::compare(x, y), Order::kBefore);
  EXPECT_EQ(x.last_consistent_time(y), sec(1));
  const TactTriple t = x.triple_against(y);
  EXPECT_DOUBLE_EQ(t.staleness_sec, 1.0);
  EXPECT_DOUBLE_EQ(t.order_error, 1.0);
}

TEST(ExtendedVv, MergeEmpty) {
  ExtendedVersionVector x, empty;
  x.record_update(A, sec(1), 3.0);
  auto merged = x;
  merged.merge(empty);
  EXPECT_TRUE(merged == x);
  auto other = empty;
  other.merge(x);
  EXPECT_EQ(other.count_of(A), 1u);
}

TEST(ExtendedVv, WireBytesGrowWithHistory) {
  ExtendedVersionVector e;
  const auto empty_size = e.wire_bytes();
  e.record_update(A, sec(1), 0);
  const auto one = e.wire_bytes();
  e.record_update(A, sec(2), 0);
  const auto two = e.wire_bytes();
  EXPECT_GT(one, empty_size);
  EXPECT_GT(two, one);
}

TEST(ExtendedVv, ToStringMentionsWritersAndTriple) {
  ExtendedVersionVector e;
  e.record_update(A, sec(1), 0);
  e.set_meta(5.0);
  e.set_triple(TactTriple{1, 2, 3});
  const std::string s = e.to_string();
  EXPECT_NE(s.find("n00:1"), std::string::npos);
  EXPECT_NE(s.find("5.000"), std::string::npos);
  EXPECT_NE(s.find("stale=3.000s"), std::string::npos);
}

// Parameterized: triple_against reference with varying divergence points.
class DivergenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(DivergenceSweep, StalenessMatchesDivergencePoint) {
  const int shared = GetParam();  // number of shared initial updates
  ExtendedVersionVector x, y;
  for (int i = 1; i <= shared; ++i) {
    x.record_update(A, sec(i), 0);
    y.record_update(A, sec(i), 0);
  }
  // y gets one extra update at t = shared + 5.
  y.record_update(B, sec(shared + 5), 0);
  const TactTriple t = x.triple_against(y);
  EXPECT_DOUBLE_EQ(t.order_error, 1.0);
  if (shared == 0) {
    EXPECT_DOUBLE_EQ(t.staleness_sec, static_cast<double>(shared + 5));
  } else {
    EXPECT_DOUBLE_EQ(t.staleness_sec, 5.0);
  }
}

INSTANTIATE_TEST_SUITE_P(SharedPrefix, DivergenceSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8));

}  // namespace
}  // namespace idea::vv
