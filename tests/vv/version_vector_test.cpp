#include "vv/version_vector.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace idea::vv {
namespace {

VersionVector make(std::initializer_list<std::pair<NodeId, std::uint64_t>>
                       entries) {
  VersionVector v;
  for (const auto& [w, c] : entries) v.set(w, c);
  return v;
}

TEST(VersionVector, EmptyIsZero) {
  VersionVector v;
  EXPECT_EQ(v.get(0), 0u);
  EXPECT_EQ(v.total(), 0u);
  EXPECT_EQ(v.writer_count(), 0u);
}

TEST(VersionVector, IncrementAndGet) {
  VersionVector v;
  EXPECT_EQ(v.increment(3), 1u);
  EXPECT_EQ(v.increment(3), 2u);
  EXPECT_EQ(v.increment(5), 1u);
  EXPECT_EQ(v.get(3), 2u);
  EXPECT_EQ(v.get(5), 1u);
  EXPECT_EQ(v.total(), 3u);
}

TEST(VersionVector, SetZeroErases) {
  VersionVector v;
  v.set(2, 4);
  v.set(2, 0);
  EXPECT_EQ(v.writer_count(), 0u);
}

TEST(VersionVector, CompareEqual) {
  const auto a = make({{1, 2}, {2, 3}});
  const auto b = make({{1, 2}, {2, 3}});
  EXPECT_EQ(VersionVector::compare(a, b), Order::kEqual);
  EXPECT_TRUE(a == b);
}

TEST(VersionVector, CompareDominance) {
  const auto small = make({{1, 2}, {2, 3}});
  const auto big = make({{1, 2}, {2, 4}});
  EXPECT_EQ(VersionVector::compare(small, big), Order::kBefore);
  EXPECT_EQ(VersionVector::compare(big, small), Order::kAfter);
  EXPECT_TRUE(big.dominates(small));
  EXPECT_FALSE(small.dominates(big));
}

TEST(VersionVector, CompareConcurrentPaperExample) {
  // (A:5, B:3) is not comparable with (A:3, B:6) — §4.5.1.
  const auto u = make({{0, 5}, {1, 3}});
  const auto v = make({{0, 3}, {1, 6}});
  EXPECT_EQ(VersionVector::compare(u, v), Order::kConcurrent);
  EXPECT_TRUE(u.concurrent_with(v));
  EXPECT_FALSE(u.dominates(v));
  EXPECT_FALSE(v.dominates(u));
}

TEST(VersionVector, MissingEntryTreatedAsZero) {
  const auto a = make({{1, 1}});
  const auto b = make({{2, 1}});
  EXPECT_EQ(VersionVector::compare(a, b), Order::kConcurrent);
  const auto c = make({{1, 1}, {2, 1}});
  EXPECT_EQ(VersionVector::compare(a, c), Order::kBefore);
}

TEST(VersionVector, DominatesIncludesEqual) {
  const auto a = make({{1, 1}});
  EXPECT_TRUE(a.dominates(a));
}

TEST(VersionVector, MergeIsLeastUpperBound) {
  auto a = make({{0, 5}, {1, 3}});
  const auto b = make({{0, 3}, {1, 6}, {2, 1}});
  a.merge(b);
  EXPECT_EQ(a.get(0), 5u);
  EXPECT_EQ(a.get(1), 6u);
  EXPECT_EQ(a.get(2), 1u);
  EXPECT_TRUE(a.dominates(b));
}

TEST(VersionVector, ToStringFormat) {
  const auto a = make({{0, 3}, {1, 5}});
  EXPECT_EQ(a.to_string(), "(n00:3 n01:5)");
}

// ---------------------------------------------------------------------------
// Property sweeps: partial-order laws over generated vectors.
// ---------------------------------------------------------------------------

class VvAlgebra : public ::testing::TestWithParam<int> {
 protected:
  static VersionVector random_vv(std::uint64_t seed) {
    VersionVector v;
    std::uint64_t s = seed;
    const auto next = [&s] {
      s = s * 6364136223846793005ULL + 1442695040888963407ULL;
      return s >> 33;
    };
    const int writers = 1 + static_cast<int>(next() % 4);
    for (int w = 0; w < writers; ++w) {
      v.set(static_cast<NodeId>(next() % 6), next() % 5);
    }
    return v;
  }
};

TEST_P(VvAlgebra, CompareAntisymmetric) {
  const auto a = random_vv(static_cast<std::uint64_t>(GetParam()) * 2 + 1);
  const auto b = random_vv(static_cast<std::uint64_t>(GetParam()) * 3 + 7);
  const Order ab = VersionVector::compare(a, b);
  const Order ba = VersionVector::compare(b, a);
  switch (ab) {
    case Order::kEqual: EXPECT_EQ(ba, Order::kEqual); break;
    case Order::kBefore: EXPECT_EQ(ba, Order::kAfter); break;
    case Order::kAfter: EXPECT_EQ(ba, Order::kBefore); break;
    case Order::kConcurrent: EXPECT_EQ(ba, Order::kConcurrent); break;
  }
}

TEST_P(VvAlgebra, MergeIsUpperBound) {
  const auto a = random_vv(static_cast<std::uint64_t>(GetParam()) * 5 + 11);
  const auto b = random_vv(static_cast<std::uint64_t>(GetParam()) * 7 + 13);
  auto m = a;
  m.merge(b);
  EXPECT_TRUE(m.dominates(a));
  EXPECT_TRUE(m.dominates(b));
}

TEST_P(VvAlgebra, MergeCommutative) {
  const auto a = random_vv(static_cast<std::uint64_t>(GetParam()) * 11 + 3);
  const auto b = random_vv(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  auto ab = a;
  ab.merge(b);
  auto ba = b;
  ba.merge(a);
  EXPECT_EQ(VersionVector::compare(ab, ba), Order::kEqual);
}

TEST_P(VvAlgebra, MergeIdempotent) {
  const auto a = random_vv(static_cast<std::uint64_t>(GetParam()) * 17 + 19);
  auto m = a;
  m.merge(a);
  EXPECT_TRUE(m == a);
}

TEST_P(VvAlgebra, MergeAssociative) {
  const auto a = random_vv(static_cast<std::uint64_t>(GetParam()) * 19 + 1);
  const auto b = random_vv(static_cast<std::uint64_t>(GetParam()) * 23 + 2);
  const auto c = random_vv(static_cast<std::uint64_t>(GetParam()) * 29 + 3);
  auto left = a;
  left.merge(b);
  left.merge(c);
  auto right = b;
  right.merge(c);
  auto a2 = a;
  a2.merge(right);
  EXPECT_TRUE(left == a2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, VvAlgebra, ::testing::Range(0, 25));

}  // namespace
}  // namespace idea::vv
