#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace idea::net {
namespace {

class Collector : public MessageHandler {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

class SimTransportTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(10)};
};

TEST_F(SimTransportTest, DeliversAfterLatency) {
  SimTransport t(sim_, latency_);
  Collector c;
  t.attach(1, &c);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MsgType::intern("test");
  m.payload = std::string("hi");
  t.send(std::move(m));
  EXPECT_TRUE(c.received.empty());
  sim_.run();
  ASSERT_EQ(c.received.size(), 1u);
  EXPECT_EQ(sim_.now(), msec(10));
  EXPECT_EQ(c.received[0].payload.as<std::string>(), "hi");
  EXPECT_EQ(c.received[0].sent_at, 0);
}

TEST_F(SimTransportTest, CountsAllSends) {
  SimTransport t(sim_, latency_);
  Collector c;
  t.attach(1, &c);
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MsgType::intern("x");
    m.wire_bytes = 100;
    t.send(std::move(m));
  }
  EXPECT_EQ(t.counters().total_messages(), 5u);
  EXPECT_EQ(t.counters().total_bytes(), 500u);
}

TEST_F(SimTransportTest, DetachDropsDelivery) {
  SimTransport t(sim_, latency_);
  Collector c;
  t.attach(1, &c);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MsgType::intern("x");
  t.send(std::move(m));
  t.detach(1);
  sim_.run();
  EXPECT_TRUE(c.received.empty());
}

TEST_F(SimTransportTest, UnknownDestinationIgnored) {
  SimTransport t(sim_, latency_);
  Message m;
  m.from = 0;
  m.to = 99;
  m.type = MsgType::intern("x");
  t.send(std::move(m));
  sim_.run();  // no crash
  EXPECT_EQ(t.counters().total_messages(), 1u);
}

TEST_F(SimTransportTest, LossDropsApproximately) {
  SimTransportOptions opts;
  opts.loss_rate = 0.5;
  opts.seed = 9;
  SimTransport t(sim_, latency_, opts);
  Collector c;
  t.attach(1, &c);
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MsgType::intern("x");
    t.send(std::move(m));
  }
  sim_.run();
  EXPECT_NEAR(static_cast<double>(t.dropped()), 500.0, 75.0);
  EXPECT_EQ(c.received.size() + t.dropped(), 1000u);
}

TEST_F(SimTransportTest, ClockSkewBounded) {
  SimTransportOptions opts;
  opts.max_clock_skew = msec(250);
  opts.node_count = 20;
  opts.seed = 4;
  SimTransport t(sim_, latency_, opts);
  sim_.run_until(sec(100));
  bool any_nonzero = false;
  for (NodeId n = 0; n < 20; ++n) {
    const SimDuration skew = t.skew_of(n);
    EXPECT_LE(skew, msec(250));
    EXPECT_GE(skew, -msec(250));
    if (skew != 0) any_nonzero = true;
    EXPECT_EQ(t.local_time(n), sim_.now() + skew);
  }
  EXPECT_TRUE(any_nonzero);
}

TEST_F(SimTransportTest, NoSkewByDefault) {
  SimTransport t(sim_, latency_);
  EXPECT_EQ(t.local_time(3), t.now());
  EXPECT_EQ(t.skew_of(3), 0);
}

TEST_F(SimTransportTest, TimersRunOnSimClock) {
  SimTransport t(sim_, latency_);
  bool fired = false;
  int periodic = 0;
  t.call_after(msec(500), [&] { fired = true; });
  const auto h = t.call_every(sec(1), [&] { ++periodic; });
  sim_.run_until(sec(3) + msec(500));
  EXPECT_TRUE(fired);
  EXPECT_EQ(periodic, 3);
  t.cancel_call(h);
  sim_.run_until(sec(10));
  EXPECT_EQ(periodic, 3);
}

}  // namespace
}  // namespace idea::net
