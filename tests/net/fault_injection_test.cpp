/// \file fault_injection_test.cpp
/// \brief SimTransport's scripted fault hooks: drop windows, pairwise
///        partitions, and crash-stop windows.
///
/// These are the levers the membership/anti-entropy tests pull to force
/// the exact divergence anti-entropy must heal, so their semantics are
/// pinned precisely here: window boundaries ([from, until), send-time
/// evaluation), partition symmetry and healing, separate accounting from
/// the probabilistic loss model, and — the property the replay-based
/// tests depend on — that enabling a fault script does not perturb the
/// RNG stream of the messages that still get through.

#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace idea::net {
namespace {

class Collector : public MessageHandler {
 public:
  void on_message(const Message& msg) override { received.push_back(msg); }
  std::vector<Message> received;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(10)};
};

TEST_F(FaultInjectionTest, DropWindowDropsExactlyTheScriptedSpan) {
  SimTransport t(sim_, latency_);
  Collector c;
  t.attach(1, &c);
  t.add_drop_window(msec(100), msec(300));  // [100 ms, 300 ms)

  auto send_at = [&](SimTime when) {
    sim_.schedule_at(when, [&t] {
      Message m;
      m.from = 0;
      m.to = 1;
      m.type = MsgType::intern("x");
      t.send(std::move(m));
    });
  };
  send_at(msec(50));   // before the window: delivers
  send_at(msec(100));  // window start is inclusive: dropped
  send_at(msec(200));  // inside: dropped
  send_at(msec(299));  // last lossy instant: dropped
  send_at(msec(300));  // window end is exclusive: delivers
  send_at(msec(400));  // after: delivers
  sim_.run();

  EXPECT_EQ(c.received.size(), 3u);
  EXPECT_EQ(t.fault_dropped(), 3u);
  EXPECT_EQ(t.dropped(), 0u);  // scripted faults are accounted separately
  // Send-side counters still see every send (the message hit the wire and
  // died there, as a real loss would).
  EXPECT_EQ(t.counters().total_messages(), 6u);

  // A message sent before the window but delivered inside it is *not*
  // dropped: faults act at send time, like the loss model.
  t.clear_drop_windows();
  t.add_drop_window(sec(1) + msec(5), sec(2));
  send_at(sec(1));  // in flight when the window opens; lands at 1.010
  sim_.run();
  EXPECT_EQ(c.received.size(), 4u);
}

TEST_F(FaultInjectionTest, PartitionCutsBothDirectionsUntilHealed) {
  SimTransport t(sim_, latency_);
  Collector c1;
  Collector c2;
  t.attach(1, &c1);
  t.attach(2, &c2);
  t.partition(1, 2);
  EXPECT_TRUE(t.partitioned(1, 2));
  EXPECT_TRUE(t.partitioned(2, 1));  // symmetric

  auto send = [&](NodeId from, NodeId to) {
    Message m;
    m.from = from;
    m.to = to;
    m.type = MsgType::intern("x");
    t.send(std::move(m));
  };
  send(1, 2);
  send(2, 1);
  send(0, 2);  // uninvolved pair: unaffected
  sim_.run();
  EXPECT_TRUE(c1.received.empty());
  EXPECT_EQ(c2.received.size(), 1u);
  EXPECT_EQ(t.fault_dropped(), 2u);

  t.heal(1, 2);
  EXPECT_FALSE(t.partitioned(1, 2));
  send(1, 2);
  send(2, 1);
  sim_.run();
  EXPECT_EQ(c1.received.size(), 1u);
  EXPECT_EQ(c2.received.size(), 2u);

  t.partition(0, 1);
  t.partition(0, 2);
  t.heal_all_partitions();
  EXPECT_FALSE(t.partitioned(0, 1));
  EXPECT_FALSE(t.partitioned(0, 2));
}

TEST_F(FaultInjectionTest, ScriptedFaultsDoNotPerturbTheLossStream) {
  // Two transports with the same seed and loss rate; one also has a drop
  // window.  Messages sent outside the window must see identical loss
  // decisions and delays — faults drop only after the loss/latency RNG
  // draws, so the streams stay aligned.
  SimTransportOptions opts;
  opts.loss_rate = 0.3;
  opts.seed = 77;

  auto run = [&](bool faulted) {
    sim::Simulator sim;
    sim::ConstantLatency latency{msec(10)};
    SimTransport t(sim, latency, opts);
    Collector c;
    t.attach(1, &c);
    if (faulted) t.add_drop_window(msec(400), msec(600));
    for (int i = 0; i < 200; ++i) {
      sim.schedule_at(msec(10) * i, [&t] {
        Message m;
        m.from = 0;
        m.to = 1;
        m.type = MsgType::intern("x");
        t.send(std::move(m));
      });
    }
    sim.run();
    std::vector<SimTime> arrival_times;
    for (const Message& m : c.received) arrival_times.push_back(m.sent_at);
    return arrival_times;
  };

  const std::vector<SimTime> clean = run(false);
  const std::vector<SimTime> faulted = run(true);
  // The faulted run's deliveries are exactly the clean run's minus those
  // sent inside [400 ms, 600 ms).
  std::vector<SimTime> expected;
  for (SimTime at : clean) {
    if (at < msec(400) || at >= msec(600)) expected.push_back(at);
  }
  EXPECT_EQ(faulted, expected);
}

TEST_F(FaultInjectionTest, CrashWindowDropsAllTrafficIncludingInFlight) {
  SimTransport t(sim_, latency_);
  Collector c1;
  Collector c2;
  t.attach(1, &c1);
  t.attach(2, &c2);

  auto send_at = [&](SimTime when, NodeId from, NodeId to) {
    sim_.schedule_at(when, [&t, from, to] {
      Message m;
      m.from = from;
      m.to = to;
      m.type = MsgType::intern("x");
      t.send(std::move(m));
    });
  };

  // Node 1 crashes at 100 ms and revives at 300 ms (latency is 10 ms).
  sim_.schedule_at(msec(100), [&t] { t.crash_node(1, msec(100)); });
  sim_.schedule_at(msec(300), [&t] { t.revive_node(1, msec(300)); });

  send_at(msec(50), 0, 1);   // delivered before the crash
  send_at(msec(95), 0, 1);   // IN FLIGHT at the crash: dies with the node
  send_at(msec(95), 1, 2);   // in flight FROM the node at crash: dies too
  send_at(msec(150), 0, 1);  // sent to a crashed node: dropped
  send_at(msec(150), 1, 2);  // sent from a crashed node: dropped
  send_at(msec(150), 0, 2);  // uninvolved pair: unaffected
  send_at(msec(299), 0, 1);  // in flight across the revival: the crash
                             // window overlaps its flight — still lost
  send_at(msec(301), 0, 1);  // sent after the revival: delivered
  send_at(msec(301), 1, 2);  // revived node sends again: delivered
  sim_.run();

  EXPECT_EQ(c1.received.size(), 2u);  // 50 ms and 301 ms sends
  EXPECT_EQ(c2.received.size(), 2u);  // 0->2 and the post-revival 1->2
  EXPECT_EQ(t.fault_dropped(), 5u);
  EXPECT_EQ(t.dropped(), 0u);

  EXPECT_FALSE(t.node_crashed(1, msec(99)));
  EXPECT_TRUE(t.node_crashed(1, msec(100)));  // [at, ...) inclusive start
  EXPECT_TRUE(t.node_crashed(1, msec(299)));
  EXPECT_FALSE(t.node_crashed(1, msec(300)));  // revival instant is alive
}

TEST_F(FaultInjectionTest, RepeatedCrashWindowsAccumulatePerNode) {
  SimTransport t(sim_, latency_);
  Collector c;
  t.attach(1, &c);
  t.crash_node(1, msec(100));
  t.crash_node(1, msec(150));  // idempotent while already down
  t.revive_node(1, msec(200));
  t.crash_node(1, msec(400));  // second life, second crash
  t.revive_node(1, msec(500));

  EXPECT_TRUE(t.node_crashed(1, msec(120)));
  EXPECT_FALSE(t.node_crashed(1, msec(250)));
  EXPECT_TRUE(t.node_crashed(1, msec(450)));
  EXPECT_FALSE(t.node_crashed(1, msec(600)));

  auto send_at = [&](SimTime when) {
    sim_.schedule_at(when, [&t] {
      Message m;
      m.from = 0;
      m.to = 1;
      m.type = MsgType::intern("x");
      t.send(std::move(m));
    });
  };
  send_at(msec(120));  // first outage: dropped
  send_at(msec(250));  // between outages: delivered
  send_at(msec(450));  // second outage: dropped
  send_at(msec(600));  // after: delivered
  sim_.run();
  EXPECT_EQ(c.received.size(), 2u);
  EXPECT_EQ(t.fault_dropped(), 2u);
}

TEST_F(FaultInjectionTest, CrashWindowsDoNotPerturbTheLossStream) {
  // Same RNG-stream preservation property the drop windows pin: a crash
  // script must only subtract deliveries, never shift the loss/latency
  // draws of the messages that still get through.
  SimTransportOptions opts;
  opts.loss_rate = 0.3;
  opts.seed = 77;

  auto run = [&](bool faulted) {
    sim::Simulator sim;
    sim::ConstantLatency latency{msec(10)};
    SimTransport t(sim, latency, opts);
    Collector c;
    t.attach(1, &c);
    if (faulted) {
      t.crash_node(1, msec(400));
      t.revive_node(1, msec(600));
    }
    for (int i = 0; i < 200; ++i) {
      sim.schedule_at(msec(10) * i, [&t] {
        Message m;
        m.from = 0;
        m.to = 1;
        m.type = MsgType::intern("x");
        t.send(std::move(m));
      });
    }
    sim.run();
    std::vector<SimTime> arrival_times;
    for (const Message& m : c.received) arrival_times.push_back(m.sent_at);
    return arrival_times;
  };

  const std::vector<SimTime> clean = run(false);
  const std::vector<SimTime> faulted = run(true);
  // Crash semantics act on the whole flight: the 390 ms send is still in
  // the air at the 400 ms crash, so it dies too ([390, 400] overlaps the
  // window), unlike a drop window's send-time-only evaluation.
  std::vector<SimTime> expected;
  for (SimTime at : clean) {
    if (at < msec(390) || at >= msec(600)) expected.push_back(at);
  }
  EXPECT_EQ(faulted, expected);
}

TEST_F(FaultInjectionTest, EnsureNodeGrowsHandlerAndSkewState) {
  SimTransportOptions opts;
  opts.max_clock_skew = msec(250);
  opts.node_count = 2;
  opts.seed = 4;
  SimTransport t(sim_, latency_, opts);
  const SimDuration skew0 = t.skew_of(0);
  const SimDuration skew1 = t.skew_of(1);

  t.ensure_node(7);
  // Existing nodes keep their construction-time skew...
  EXPECT_EQ(t.skew_of(0), skew0);
  EXPECT_EQ(t.skew_of(1), skew1);
  // ...and joiners get a bounded, deterministic one.
  bool any_nonzero = false;
  for (NodeId n = 2; n <= 7; ++n) {
    EXPECT_LE(t.skew_of(n), msec(250));
    EXPECT_GE(t.skew_of(n), -msec(250));
    if (t.skew_of(n) != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);

  Collector c;
  t.attach(7, &c);
  Message m;
  m.from = 0;
  m.to = 7;
  m.type = MsgType::intern("x");
  t.send(std::move(m));
  sim_.run();
  EXPECT_EQ(c.received.size(), 1u);
}

}  // namespace
}  // namespace idea::net
