#include "net/thread_transport.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace idea::net {
namespace {

class AtomicCollector : public MessageHandler {
 public:
  void on_message(const Message&) override { ++count; }
  std::atomic<int> count{0};
};

ThreadTransportOptions fast_opts() {
  ThreadTransportOptions o;
  o.time_scale = 0.001;  // 1000x faster than the virtual timeline
  return o;
}

TEST(ThreadTransport, DeliversMessages) {
  sim::ConstantLatency latency(msec(100));
  ThreadTransport t(latency, fast_opts());
  AtomicCollector c;
  t.attach(1, &c);
  for (int i = 0; i < 10; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.type = MsgType::intern("x");
    t.send(std::move(m));
  }
  EXPECT_TRUE(t.wait_idle(sec(60)));
  EXPECT_EQ(c.count.load(), 10);
  EXPECT_EQ(t.counters().total_messages(), 10u);
}

TEST(ThreadTransport, CallAfterFires) {
  sim::ConstantLatency latency(msec(1));
  ThreadTransport t(latency, fast_opts());
  std::atomic<bool> fired{false};
  t.call_after(msec(50), [&] { fired = true; });
  EXPECT_TRUE(t.wait_idle(sec(60)));
  EXPECT_TRUE(fired.load());
}

TEST(ThreadTransport, CallEveryRecursAndCancels) {
  sim::ConstantLatency latency(msec(1));
  ThreadTransport t(latency, fast_opts());
  std::atomic<int> ticks{0};
  const auto h = t.call_every(msec(20), [&] { ++ticks; });
  // Real time: 20 us per tick at scale 0.001; wait generously.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  t.cancel_call(h);
  const int snapshot = ticks.load();
  EXPECT_GT(snapshot, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(ticks.load(), snapshot + 1);  // at most one in-flight tick
}

TEST(ThreadTransport, NowAdvances) {
  sim::ConstantLatency latency(msec(1));
  ThreadTransport t(latency, fast_opts());
  const SimTime a = t.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const SimTime b = t.now();
  EXPECT_GT(b, a);
  // No skew model in the wall-clock transport: local time tracks now().
  EXPECT_GE(t.local_time(3), b);
}

TEST(ThreadTransport, SendFromMultipleThreads) {
  sim::ConstantLatency latency(msec(1));
  ThreadTransport t(latency, fast_opts());
  AtomicCollector c;
  t.attach(1, &c);
  std::vector<std::jthread> senders;
  for (int s = 0; s < 4; ++s) {
    senders.emplace_back([&t] {
      for (int i = 0; i < 25; ++i) {
        Message m;
        m.from = 0;
        m.to = 1;
        m.type = MsgType::intern("x");
        t.send(std::move(m));
      }
    });
  }
  senders.clear();  // join
  EXPECT_TRUE(t.wait_idle(sec(60)));
  EXPECT_EQ(c.count.load(), 100);
}

TEST(ThreadTransport, DetachStopsDelivery) {
  // Generous latency (2 s virtual = 2 ms real): the detach below must win
  // the race against delivery even on a loaded or sanitizer-slowed run.
  sim::ConstantLatency latency(sec(2));
  ThreadTransport t(latency, fast_opts());
  AtomicCollector c;
  t.attach(1, &c);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MsgType::intern("x");
  t.send(std::move(m));
  t.detach(1);
  EXPECT_TRUE(t.wait_idle(sec(60)));
  EXPECT_EQ(c.count.load(), 0);
}

TEST(ThreadTransport, CleanShutdownWithPendingWork) {
  sim::ConstantLatency latency(sec(10));
  auto t = std::make_unique<ThreadTransport>(latency, fast_opts());
  t->call_after(sec(3600), [] {});
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = MsgType::intern("x");
  t->send(std::move(m));
  t.reset();  // must not hang or crash with items still queued
  SUCCEED();
}

}  // namespace
}  // namespace idea::net
