#include "net/message.hpp"

#include <gtest/gtest.h>

namespace idea::net {
namespace {

TEST(MessageCounters, TotalsAccumulate) {
  MessageCounters c;
  c.record("a", 100);
  c.record("a", 50);
  c.record("b", 10);
  EXPECT_EQ(c.total_messages(), 3u);
  EXPECT_EQ(c.total_bytes(), 160u);
  EXPECT_EQ(c.messages_of("a"), 2u);
  EXPECT_EQ(c.messages_of("b"), 1u);
  EXPECT_EQ(c.messages_of("missing"), 0u);
}

TEST(MessageCounters, PrefixCount) {
  MessageCounters c;
  c.record("resolve.attn", 1);
  c.record("resolve.collect", 1);
  c.record("resolve.collect_reply", 1);
  c.record("detect.probe", 1);
  EXPECT_EQ(c.messages_with_prefix("resolve."), 3u);
  EXPECT_EQ(c.messages_with_prefix("detect."), 1u);
  EXPECT_EQ(c.messages_with_prefix("gossip."), 0u);
}

TEST(MessageCounters, PrefixDoesNotOvercount) {
  MessageCounters c;
  c.record("resolve", 1);     // no dot: not part of "resolve."
  c.record("resolvex.y", 1);  // sorts after "resolve." range
  EXPECT_EQ(c.messages_with_prefix("resolve."), 0u);
}

TEST(MessageCounters, Reset) {
  MessageCounters c;
  c.record("a", 5);
  c.reset();
  EXPECT_EQ(c.total_messages(), 0u);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_TRUE(c.by_type().empty());
}

TEST(Message, Defaults) {
  Message m;
  EXPECT_EQ(m.from, kNoNode);
  EXPECT_EQ(m.to, kNoNode);
  EXPECT_EQ(m.wire_bytes, 64u);
}

}  // namespace
}  // namespace idea::net
