#include "net/batching_transport.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "net/sim_transport.hpp"

namespace idea::net {
namespace {

struct Recorder final : MessageHandler {
  std::vector<Message> received;
  void on_message(const Message& msg) override { received.push_back(msg); }
};

class BatchingFixture : public ::testing::Test {
 protected:
  Message make(NodeId from, NodeId to, std::string_view type,
               std::uint32_t bytes = 100) {
    Message m;
    m.from = from;
    m.to = to;
    m.file = 1;
    m.type = MsgType::intern(type);
    m.wire_bytes = bytes;
    return m;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(10)};
  SimTransport inner_{sim_, latency_};
  BatchingTransport batching_{inner_};
  Recorder a_, b_;
};

TEST_F(BatchingFixture, SameTickSamePairCoalesces) {
  batching_.attach(0, &a_);
  batching_.attach(1, &b_);
  for (int i = 0; i < 5; ++i) batching_.send(make(0, 1, "t.x"));
  sim_.run();

  ASSERT_EQ(b_.received.size(), 5u);
  for (const Message& m : b_.received) EXPECT_EQ(m.type.name(), "t.x");
  const BatchingStats& stats = batching_.stats();
  EXPECT_EQ(stats.logical_messages, 5u);
  EXPECT_EQ(stats.envelopes, 1u);
  EXPECT_EQ(stats.largest_batch, 5u);
  // One envelope on the wire: framing + 5 * 100 payload bytes.
  EXPECT_EQ(inner_.counters().total_messages(), 1u);
  EXPECT_EQ(inner_.counters().total_bytes(), 24u + 500u);
  // The decorator's own counters kept the logical view.
  EXPECT_EQ(batching_.counters().total_messages(), 5u);
}

TEST_F(BatchingFixture, DifferentPairsDoNotMix) {
  batching_.attach(0, &a_);
  batching_.attach(1, &b_);
  batching_.send(make(0, 1, "t.x"));
  batching_.send(make(1, 0, "t.y"));
  sim_.run();

  ASSERT_EQ(b_.received.size(), 1u);
  ASSERT_EQ(a_.received.size(), 1u);
  // Two pairs, two singleton flushes, no batch envelope on the wire.
  EXPECT_EQ(batching_.stats().envelopes, 2u);
  EXPECT_EQ(inner_.counters().messages_of(BatchingTransport::kBatchType),
            0u);
}

TEST_F(BatchingFixture, LaterTickStartsNewBatch) {
  batching_.attach(0, &a_);
  batching_.attach(1, &b_);
  batching_.send(make(0, 1, "t.x"));
  sim_.run_for(msec(50));
  batching_.send(make(0, 1, "t.x"));
  sim_.run();

  EXPECT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(batching_.stats().envelopes, 2u);
}

TEST_F(BatchingFixture, MaxBatchForcesEarlyFlush) {
  BatchingOptions options;
  options.max_batch = 3;
  BatchingTransport tight(inner_, options);
  tight.attach(2, &a_);
  tight.attach(3, &b_);
  for (int i = 0; i < 7; ++i) tight.send(make(2, 3, "t.x"));
  sim_.run();

  EXPECT_EQ(b_.received.size(), 7u);
  // 3 + 3 flushed by size, the remaining 1 by the tick window.
  EXPECT_EQ(tight.stats().flushes_by_size, 2u);
  EXPECT_EQ(tight.stats().envelopes, 3u);
  tight.detach(2);
  tight.detach(3);
}

TEST_F(BatchingFixture, FlushAllShipsPendingQueues) {
  batching_.attach(0, &a_);
  batching_.attach(1, &b_);
  batching_.send(make(0, 1, "t.x"));
  batching_.send(make(1, 0, "t.y"));
  batching_.flush_all();
  // Flushed before the window timers fired; delivery still takes a hop.
  EXPECT_EQ(batching_.stats().envelopes, 2u);
  sim_.run();
  EXPECT_EQ(a_.received.size(), 1u);
  EXPECT_EQ(b_.received.size(), 1u);
  // The disarmed window timers must not double-flush.
  EXPECT_EQ(batching_.stats().envelopes, 2u);
}

TEST_F(BatchingFixture, DestructionFlushesAndDisarmsTimers) {
  Recorder sink;
  inner_.attach(9, &sink);
  {
    BatchingTransport scoped(inner_);
    scoped.attach(8, &a_);
    scoped.send(make(8, 9, "t.x"));
  }  // destroyed with a queued message and an armed window timer
  // The flush happened at destruction; the armed timer was cancelled, so
  // running the simulator must not touch the dead decorator.
  sim_.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received.front().type.name(), "t.x");
  inner_.detach(9);
}

TEST_F(BatchingFixture, DetachDropsQueuedTraffic) {
  batching_.attach(0, &a_);
  batching_.attach(1, &b_);
  batching_.send(make(0, 1, "t.x"));
  batching_.detach(1);
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(BatchingFixture, TimersDelegateToInner) {
  int fired = 0;
  const auto handle = batching_.call_every(msec(5), [&] { ++fired; });
  sim_.run_for(msec(26));
  EXPECT_EQ(fired, 5);
  batching_.cancel_call(handle);
  sim_.run_for(msec(20));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(batching_.now(), inner_.now());
}

}  // namespace
}  // namespace idea::net
