#include "net/dispatcher.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace idea::net {
namespace {

class Recorder : public MessageHandler {
 public:
  void on_message(const Message& msg) override {
    types.push_back(std::string(msg.type.name()));
  }
  std::vector<std::string> types;
};

Message typed(std::string_view type) {
  Message m;
  m.type = MsgType::intern(type);
  return m;
}

TEST(Dispatcher, RoutesByPrefix) {
  Dispatcher d;
  Recorder a, b;
  d.route("detect.", &a);
  d.route("resolve.", &b);
  d.on_message(typed("detect.probe"));
  d.on_message(typed("resolve.attn"));
  EXPECT_EQ(a.types, (std::vector<std::string>{"detect.probe"}));
  EXPECT_EQ(b.types, (std::vector<std::string>{"resolve.attn"}));
}

TEST(Dispatcher, LongestPrefixWins) {
  Dispatcher d;
  Recorder general, specific;
  d.route("a.", &general);
  d.route("a.b.", &specific);
  d.on_message(typed("a.b.c"));
  d.on_message(typed("a.x"));
  EXPECT_EQ(specific.types, (std::vector<std::string>{"a.b.c"}));
  EXPECT_EQ(general.types, (std::vector<std::string>{"a.x"}));
}

TEST(Dispatcher, UnmatchedDropped) {
  Dispatcher d;
  Recorder a;
  d.route("x.", &a);
  d.on_message(typed("y.z"));  // must not crash
  EXPECT_TRUE(a.types.empty());
}

TEST(Dispatcher, Unroute) {
  Dispatcher d;
  Recorder a;
  d.route("x.", &a);
  d.unroute("x.");
  d.on_message(typed("x.y"));
  EXPECT_TRUE(a.types.empty());
}

TEST(Dispatcher, MemoFollowsRouteChanges) {
  // The per-type memo must not pin a stale handler across route updates.
  Dispatcher d;
  Recorder first, second;
  d.route("m.", &first);
  d.on_message(typed("m.k"));  // memoize m.k -> first
  d.route("m.k", &second);     // longer prefix added after the memo
  d.on_message(typed("m.k"));
  EXPECT_EQ(first.types, (std::vector<std::string>{"m.k"}));
  EXPECT_EQ(second.types, (std::vector<std::string>{"m.k"}));
  d.unroute("m.k");
  d.on_message(typed("m.k"));
  EXPECT_EQ(first.types, (std::vector<std::string>{"m.k", "m.k"}));
}

}  // namespace
}  // namespace idea::net
