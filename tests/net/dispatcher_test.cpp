#include "net/dispatcher.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace idea::net {
namespace {

class Recorder : public MessageHandler {
 public:
  void on_message(const Message& msg) override {
    types.push_back(msg.type);
  }
  std::vector<std::string> types;
};

TEST(Dispatcher, RoutesByPrefix) {
  Dispatcher d;
  Recorder a, b;
  d.route("detect.", &a);
  d.route("resolve.", &b);
  Message m;
  m.type = "detect.probe";
  d.on_message(m);
  m.type = "resolve.attn";
  d.on_message(m);
  EXPECT_EQ(a.types, (std::vector<std::string>{"detect.probe"}));
  EXPECT_EQ(b.types, (std::vector<std::string>{"resolve.attn"}));
}

TEST(Dispatcher, LongestPrefixWins) {
  Dispatcher d;
  Recorder general, specific;
  d.route("a.", &general);
  d.route("a.b.", &specific);
  Message m;
  m.type = "a.b.c";
  d.on_message(m);
  m.type = "a.x";
  d.on_message(m);
  EXPECT_EQ(specific.types, (std::vector<std::string>{"a.b.c"}));
  EXPECT_EQ(general.types, (std::vector<std::string>{"a.x"}));
}

TEST(Dispatcher, UnmatchedDropped) {
  Dispatcher d;
  Recorder a;
  d.route("x.", &a);
  Message m;
  m.type = "y.z";
  d.on_message(m);  // must not crash
  EXPECT_TRUE(a.types.empty());
}

TEST(Dispatcher, Unroute) {
  Dispatcher d;
  Recorder a;
  d.route("x.", &a);
  d.unroute("x.");
  Message m;
  m.type = "x.y";
  d.on_message(m);
  EXPECT_TRUE(a.types.empty());
}

}  // namespace
}  // namespace idea::net
