/// \file thread_transport_stress_test.cpp
/// \brief Concurrency hammer for ThreadTransport::wait_idle — the
///        in-flight accounting race (decrement vs. callback completion)
///        fixed in the crash-recovery PR must hold under many producer
///        threads.  Run under TSan in CI (the sanitize job builds this
///        binary with -fsanitize=thread).
///
/// The contract under test: whenever wait_idle() returns true, every
/// callback whose enqueue happened-before the call has fully *finished*
/// executing — not merely been popped from the queue.  The handler below
/// bumps `started` on entry and `finished` on exit with a deliberate
/// window in between; a wait_idle that returns while any callback is
/// inside the window breaks the started == finished assertion.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/thread_transport.hpp"

namespace idea::net {
namespace {

class WindowedHandler : public MessageHandler {
 public:
  void on_message(const Message&) override {
    started.fetch_add(1, std::memory_order_relaxed);
    // Widen the pop -> completion window the old race lived in.
    std::this_thread::yield();
    finished.fetch_add(1, std::memory_order_release);
  }

  std::atomic<std::uint64_t> started{0};
  std::atomic<std::uint64_t> finished{0};
};

TEST(ThreadTransportStress, WaitIdleObservesCompletedCallbacks) {
  constexpr int kProducers = 8;
  constexpr int kMessagesEach = 200;
  constexpr int kRounds = 5;

  sim::ConstantLatency latency(usec(50));
  ThreadTransportOptions opts;
  opts.time_scale = 0.001;
  ThreadTransport t(latency, opts);
  WindowedHandler handler;
  t.attach(1, &handler);

  std::uint64_t expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::jthread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&t] {
        for (int i = 0; i < kMessagesEach; ++i) {
          Message m;
          m.from = 0;
          m.to = 1;
          m.type = MsgType::intern("stress");
          t.send(std::move(m));
          if ((i & 31) == 31) std::this_thread::yield();
        }
      });
    }
    producers.clear();  // join: all sends enqueued
    expected += static_cast<std::uint64_t>(kProducers) * kMessagesEach;
    ASSERT_TRUE(t.wait_idle(sec(120000)));  // 2 real minutes at this scale
    // The drained signal must mean "done", not "dequeued": every handler
    // invocation has exited, and none were lost.
    EXPECT_EQ(handler.started.load(), expected) << "round " << round;
    EXPECT_EQ(handler.finished.load(), expected) << "round " << round;
  }
}

TEST(ThreadTransportStress, WaitIdleRacesTimersAndSenders) {
  sim::ConstantLatency latency(usec(50));
  ThreadTransportOptions opts;
  opts.time_scale = 0.001;
  ThreadTransport t(latency, opts);
  WindowedHandler handler;
  t.attach(1, &handler);

  std::atomic<std::uint64_t> timer_started{0};
  std::atomic<std::uint64_t> timer_finished{0};

  // A producer keeps feeding messages and one-shot timers while the main
  // thread repeatedly polls wait_idle with a short timeout — hammering the
  // in-flight accounting from both sides at once.  Equality can only be
  // asserted once the producer stopped (a callback for work enqueued
  // *after* a drain is legitimately mid-flight), so the poll loop checks
  // liveness and the joins below check the ledger.
  std::jthread producer([&] {
    for (int i = 0; i < 500; ++i) {
      Message m;
      m.from = 0;
      m.to = 1;
      m.type = MsgType::intern("stress");
      t.send(std::move(m));
      t.call_after(usec(20), [&] {
        timer_started.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
        timer_finished.fetch_add(1, std::memory_order_release);
      });
    }
  });

  for (int polls = 0; polls < 200; ++polls) {
    // started can never trail finished, drained or not (finished read
    // first: the opposite order could see a completion land in between).
    const std::uint64_t finished = handler.finished.load();
    EXPECT_GE(handler.started.load(), finished);
    (void)t.wait_idle(msec(1));
  }
  producer.join();
  ASSERT_TRUE(t.wait_idle(sec(120000)));  // 2 real minutes at this scale
  EXPECT_EQ(handler.started.load(), 500u);
  EXPECT_EQ(handler.finished.load(), 500u);
  EXPECT_EQ(timer_started.load(), 500u);
  EXPECT_EQ(timer_finished.load(), 500u);
}

}  // namespace
}  // namespace idea::net
