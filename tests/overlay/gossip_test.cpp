#include "overlay/gossip.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/sim_transport.hpp"

namespace idea::overlay {
namespace {

class GossipFixture : public ::testing::Test {
 protected:
  void Build(std::uint32_t nodes, GossipParams params) {
    params.nodes = nodes;
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    deliveries_.assign(nodes, 0);
    for (NodeId n = 0; n < nodes; ++n) {
      agents_.push_back(std::make_unique<GossipAgent>(
          n, *transport_, params,
          [this, n](const GossipEnvelope&) { ++deliveries_[n]; },
          2000 + n));
      transport_->attach(n, agents_.back().get());
    }
  }

  [[nodiscard]] std::size_t reached() const {
    std::size_t r = 0;
    for (auto d : deliveries_) r += d > 0 ? 1 : 0;
    return r;
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(20)};
  std::unique_ptr<net::SimTransport> transport_;
  std::vector<std::unique_ptr<GossipAgent>> agents_;
  std::vector<int> deliveries_;
};

TEST_F(GossipFixture, OriginDeliversToItself) {
  GossipParams p;
  Build(10, p);
  agents_[3]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  EXPECT_EQ(deliveries_[3], 1);
}

TEST_F(GossipFixture, HighTtlReachesAlmostEveryone) {
  GossipParams p;
  p.fanout = 3;
  p.ttl = 8;
  Build(30, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  sim_.run();
  EXPECT_GE(reached(), 28u);
}

TEST_F(GossipFixture, TtlZeroStaysLocal) {
  GossipParams p;
  p.ttl = 0;
  Build(10, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  sim_.run();
  EXPECT_EQ(reached(), 1u);  // only the origin
}

TEST_F(GossipFixture, TtlBoundsSpread) {
  GossipParams p;
  p.fanout = 2;
  p.ttl = 1;
  Build(40, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  sim_.run();
  // ttl=1: origin + its fanout + their fanout (sent while ttl 1 -> 0... )
  // Spread is strictly limited well below the full network.
  EXPECT_LE(reached(), 8u);
  EXPECT_GE(reached(), 3u);
}

TEST_F(GossipFixture, DedupSingleDeliveryPerNode) {
  GossipParams p;
  p.fanout = 5;
  p.ttl = 10;
  Build(10, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  sim_.run();
  for (NodeId n = 0; n < 10; ++n) {
    EXPECT_LE(deliveries_[n], 1) << "node " << n;
  }
}

TEST_F(GossipFixture, DistinctRumorsDistinctDeliveries) {
  GossipParams p;
  p.fanout = 3;
  p.ttl = 6;
  Build(10, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("a"), 8);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("b"), 8);
  sim_.run();
  EXPECT_EQ(deliveries_[0], 2);
}

TEST_F(GossipFixture, TwoNodeNetwork) {
  GossipParams p;
  p.fanout = 3;
  p.ttl = 2;
  Build(2, p);
  agents_[0]->broadcast(1, net::MsgType::intern("t"), std::string("x"), 8);
  sim_.run();
  EXPECT_EQ(reached(), 2u);
}

TEST_F(GossipFixture, EnvelopeCarriesPayload) {
  GossipParams p;
  p.nodes = 3;
  transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
  std::string got;
  NodeId origin_seen = kNoNode;
  for (NodeId n = 0; n < 3; ++n) {
    agents_.push_back(std::make_unique<GossipAgent>(
        n, *transport_, p,
        [&got, &origin_seen](const GossipEnvelope& env) {
          got = env.inner.as<std::string>();
          origin_seen = env.origin;
        },
        3000 + n));
    transport_->attach(n, agents_.back().get());
  }
  agents_[1]->broadcast(7, net::MsgType::intern("payload.test"), std::string("hello"), 5);
  sim_.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(origin_seen, 1u);
}

}  // namespace
}  // namespace idea::overlay
