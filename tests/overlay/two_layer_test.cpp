#include "overlay/two_layer.hpp"

#include <gtest/gtest.h>

namespace idea::overlay {
namespace {

TwoLayerParams params(std::uint32_t nodes = 10) {
  TwoLayerParams p;
  p.hot_threshold = 0.5;
  p.ad_ttl = sec(30);
  p.all_nodes = nodes;
  return p;
}

TEST(TwoLayer, EmptyView) {
  TwoLayerView v(0, params());
  EXPECT_TRUE(v.top_layer(1, sec(1)).empty());
  EXPECT_EQ(v.bottom_layer(1, sec(1)).size(), 10u);
}

TEST(TwoLayer, HotAdJoinsTopLayer) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 2.0, sec(1)}}, sec(1));
  const auto top = v.top_layer(1, sec(2));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 3u);
  EXPECT_TRUE(v.in_top_layer(3, 1, sec(2)));
  EXPECT_FALSE(v.in_top_layer(4, 1, sec(2)));
}

TEST(TwoLayer, ColdAdExcluded) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 0.1, sec(1)}}, sec(1));
  EXPECT_TRUE(v.top_layer(1, sec(2)).empty());
}

TEST(TwoLayer, AdsExpire) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 2.0, sec(1)}}, sec(1));
  EXPECT_TRUE(v.in_top_layer(3, 1, sec(10)));
  EXPECT_FALSE(v.in_top_layer(3, 1, sec(40)));
}

TEST(TwoLayer, FresherAdWins) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 2.0, sec(1)}}, sec(1));
  v.ingest({TempAd{3, 1, 0.0, sec(5)}}, sec(5));  // cooled down
  EXPECT_FALSE(v.in_top_layer(3, 1, sec(6)));
}

TEST(TwoLayer, StaleAdDoesNotOverwrite) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 2.0, sec(5)}}, sec(5));
  v.ingest({TempAd{3, 1, 0.0, sec(1)}}, sec(5));  // older stamp, ignored
  EXPECT_TRUE(v.in_top_layer(3, 1, sec(6)));
}

TEST(TwoLayer, NoteSelfKeepsSelfVisible) {
  TwoLayerView v(4, params());
  v.note_self(1, 3.0, sec(2));
  const auto top = v.top_layer(1, sec(3));
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 4u);
}

TEST(TwoLayer, FilesHaveIndependentTopLayers) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{3, 1, 2.0, sec(1)}, TempAd{5, 2, 2.0, sec(1)}}, sec(1));
  EXPECT_TRUE(v.in_top_layer(3, 1, sec(2)));
  EXPECT_FALSE(v.in_top_layer(3, 2, sec(2)));
  EXPECT_TRUE(v.in_top_layer(5, 2, sec(2)));
  EXPECT_FALSE(v.in_top_layer(5, 1, sec(2)));
}

TEST(TwoLayer, TopLayerSorted) {
  TwoLayerView v(0, params());
  v.ingest({TempAd{7, 1, 2.0, sec(1)}, TempAd{2, 1, 2.0, sec(1)},
            TempAd{5, 1, 2.0, sec(1)}},
           sec(1));
  const auto top = v.top_layer(1, sec(2));
  EXPECT_EQ(top, (std::vector<NodeId>{2, 5, 7}));
}

TEST(TwoLayer, BottomLayerIsComplement) {
  TwoLayerView v(0, params(6));
  v.ingest({TempAd{1, 1, 2.0, sec(1)}, TempAd{4, 1, 2.0, sec(1)}}, sec(1));
  const auto bottom = v.bottom_layer(1, sec(2));
  EXPECT_EQ(bottom, (std::vector<NodeId>{0, 2, 3, 5}));
}

}  // namespace
}  // namespace idea::overlay
