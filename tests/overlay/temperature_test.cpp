#include "overlay/temperature.hpp"

#include <gtest/gtest.h>

namespace idea::overlay {
namespace {

TEST(Temperature, ColdByDefault) {
  TemperatureTracker t;
  EXPECT_DOUBLE_EQ(t.temperature(1, sec(10)), 0.0);
  EXPECT_FALSE(t.is_hot(1, sec(10)));
}

TEST(Temperature, HotAfterUpdate) {
  TemperatureTracker t;
  t.record_update(1, sec(10));
  EXPECT_DOUBLE_EQ(t.temperature(1, sec(10)), 1.0);
  EXPECT_TRUE(t.is_hot(1, sec(10)));
}

TEST(Temperature, DecaysOverTime) {
  TemperatureParams p;
  p.tau = sec(60);
  TemperatureTracker t(p);
  t.record_update(1, 0);
  const double at_0 = t.temperature(1, 0);
  const double at_60 = t.temperature(1, sec(60));
  const double at_300 = t.temperature(1, sec(300));
  EXPECT_DOUBLE_EQ(at_0, 1.0);
  EXPECT_NEAR(at_60, std::exp(-1.0), 1e-9);
  EXPECT_LT(at_300, 0.01);
}

TEST(Temperature, FrequentWriterStaysHot) {
  TemperatureParams p;
  p.tau = sec(60);
  p.hot_threshold = 0.5;
  TemperatureTracker t(p);
  for (int i = 0; i < 20; ++i) {
    t.record_update(1, sec(i * 5));
  }
  // Steady state for 5 s period, 60 s tau: score well above threshold.
  EXPECT_GT(t.temperature(1, sec(100)), 5.0);
  EXPECT_TRUE(t.is_hot(1, sec(100)));
  // 5 minutes of silence cools it below the threshold.
  EXPECT_FALSE(t.is_hot(1, sec(100) + sec(300)));
}

TEST(Temperature, FilesIndependent) {
  TemperatureTracker t;
  t.record_update(1, sec(1));
  EXPECT_TRUE(t.is_hot(1, sec(1)));
  EXPECT_FALSE(t.is_hot(2, sec(1)));
}

TEST(Temperature, ScoreAccumulates) {
  TemperatureTracker t;
  t.record_update(1, sec(1));
  t.record_update(1, sec(1));
  t.record_update(1, sec(1));
  EXPECT_DOUBLE_EQ(t.temperature(1, sec(1)), 3.0);
}

}  // namespace
}  // namespace idea::overlay
