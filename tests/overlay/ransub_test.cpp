#include "overlay/ransub.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "net/sim_transport.hpp"

namespace idea::overlay {
namespace {

TEST(KaryTree, ParentChildRelations) {
  KaryTree tree{4, 40};
  EXPECT_EQ(tree.parent(0), kNoNode);
  EXPECT_EQ(tree.parent(1), 0u);
  EXPECT_EQ(tree.parent(4), 0u);
  EXPECT_EQ(tree.parent(5), 1u);
  EXPECT_EQ(tree.children(0), (std::vector<NodeId>{1, 2, 3, 4}));
  const auto kids9 = tree.children(9);
  EXPECT_EQ(kids9, (std::vector<NodeId>{37, 38, 39}));
  EXPECT_TRUE(tree.children(20).empty());
  EXPECT_TRUE(tree.is_leaf(20));
  EXPECT_FALSE(tree.is_leaf(0));
}

TEST(KaryTree, EveryNonRootHasConsistentParent) {
  KaryTree tree{3, 50};
  for (NodeId n = 1; n < 50; ++n) {
    const NodeId p = tree.parent(n);
    const auto kids = tree.children(p);
    EXPECT_NE(std::find(kids.begin(), kids.end(), n), kids.end());
  }
}

class RanSubFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 20;

  void Build(RanSubParams params) {
    params.nodes = kNodes;
    params_ = params;
    transport_ = std::make_unique<net::SimTransport>(sim_, latency_);
    delivered_.resize(kNodes);
    for (NodeId n = 0; n < kNodes; ++n) {
      // Nodes 2 and 7 are hot writers; everyone else is cold.
      const double temp = (n == 2 || n == 7) ? 3.0 : 0.0;
      agents_.push_back(std::make_unique<RanSubAgent>(
          n, /*file=*/1, *transport_, params_,
          [this, n, temp] {
            return std::vector<TempAd>{
                TempAd{n, 1, temp, transport_->now()}};
          },
          [this, n](const std::vector<TempAd>& ads) {
            for (const auto& ad : ads) delivered_[n].push_back(ad);
          },
          1000 + n));
      transport_->attach(n, agents_.back().get());
    }
    agents_[0]->start();
  }

  sim::Simulator sim_;
  sim::ConstantLatency latency_{msec(20)};
  std::unique_ptr<net::SimTransport> transport_;
  RanSubParams params_;
  std::vector<std::unique_ptr<RanSubAgent>> agents_;
  std::vector<std::vector<TempAd>> delivered_;
};

TEST_F(RanSubFixture, EveryNodeReceivesDeliveries) {
  RanSubParams p;
  p.epoch = sec(5);
  Build(p);
  sim_.run_until(sec(30));
  for (NodeId n = 0; n < kNodes; ++n) {
    EXPECT_FALSE(delivered_[n].empty()) << "node " << n;
  }
}

TEST_F(RanSubFixture, HotWritersReachEveryNode) {
  RanSubParams p;
  p.epoch = sec(5);
  Build(p);
  sim_.run_until(sec(30));
  for (NodeId n = 0; n < kNodes; ++n) {
    std::set<NodeId> hot_seen;
    for (const auto& ad : delivered_[n]) {
      if (ad.temperature > 0.5) hot_seen.insert(ad.node);
    }
    EXPECT_TRUE(hot_seen.count(2)) << "node " << n << " missed writer 2";
    EXPECT_TRUE(hot_seen.count(7)) << "node " << n << " missed writer 7";
  }
}

TEST_F(RanSubFixture, SampleSizeRespected) {
  RanSubParams p;
  p.epoch = sec(5);
  p.sample_size = 6;
  Build(p);
  sim_.run_until(sec(30));
  for (NodeId n = 0; n < kNodes; ++n) {
    for (std::size_t i = 0; i < delivered_[n].size();) {
      // Deliveries arrive in epoch batches; we only check the aggregate
      // count is plausible (epochs * sample size upper bound).
      break;
    }
  }
  // Root completed several epochs.
  EXPECT_GE(agents_[0]->epochs_completed(), 4u);
}

TEST_F(RanSubFixture, EpochsAdvance) {
  RanSubParams p;
  p.epoch = sec(2);
  Build(p);
  sim_.run_until(sec(21));
  EXPECT_GE(agents_[0]->epochs_completed(), 8u);
  EXPECT_GE(agents_[19]->epochs_completed(), 7u);
}

TEST(RanSubSingle, SingleNodeDeliversOwnAds) {
  sim::Simulator sim;
  sim::ConstantLatency latency(msec(1));
  net::SimTransport transport(sim, latency);
  RanSubParams p;
  p.nodes = 1;
  p.epoch = sec(1);
  std::size_t deliveries = 0;
  RanSubAgent agent(
      0, /*file=*/1, transport, p,
      [&transport] {
        return std::vector<TempAd>{TempAd{0, 1, 1.0, transport.now()}};
      },
      [&deliveries](const std::vector<TempAd>& ads) {
        deliveries += ads.size();
      },
      5);
  transport.attach(0, &agent);
  agent.start();
  sim.run_until(sec(5));
  EXPECT_GE(deliveries, 5u);
}

}  // namespace
}  // namespace idea::overlay
