/// \file determinism_obs_test.cpp
/// \brief Observability must be a pure observer: the fixed-seed replay
///        goldens captured in tests/shard/determinism_test.cpp must hold
///        byte-for-byte with metrics AND tracing enabled, and two obs-on
///        runs of the same seed must export byte-identical metric and
///        trace JSON.
///
/// If this file fails while tests/shard/determinism_test.cpp passes, the
/// observability layer perturbed protocol behavior — an extra message, a
/// consumed RNG draw, a changed event ordering.  That is always a bug in
/// the obs layer, never a golden to re-capture.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "apps/kvstore.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::shard {
namespace {

struct ObsReplayResult {
  std::uint64_t puts = 0;
  std::size_t converged = 0;
  std::uint64_t digest = 0;
  std::uint64_t logical_messages = 0;
  std::uint64_t wire_messages = 0;
  std::map<std::string, std::uint64_t> per_type;
  std::string metrics_json;
  std::string trace_json;
  std::uint64_t traces = 0;
};

/// Mirrors determinism_test.cpp's replay() exactly, with observability on.
ObsReplayResult replay_with_obs(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 120;
  ShardedClusterConfig cfg;
  cfg.endpoints = 8;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.controller.mode = core::AdaptiveMode::kHintBased;
  cfg.idea.controller.hint = 0.85;
  cfg.idea.detection_period = sec(2);
  cfg.observability.enabled = true;
  cfg.observability.tracing = true;
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 16;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 480;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();
  cluster.run_for(sec(6) + sec(10));

  ObsReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  r.metrics_json = cluster.obs()->export_metrics_json();
  r.trace_json = cluster.obs()->tracer()->export_chrome_trace();
  r.traces = cluster.obs()->tracer()->traces_started();
  return r;
}

/// Mirrors determinism_test.cpp's replay_churn() exactly, with
/// observability on — membership churn, migration streams and
/// anti-entropy repair all run under full instrumentation.
ObsReplayResult replay_churn_with_obs(std::uint64_t seed) {
  constexpr std::uint32_t kFiles = 60;
  ShardedClusterConfig cfg;
  cfg.endpoints = 6;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = seed;
  cfg.sync_sizes();
  cfg.idea.maxima = vv::TripleMaxima{100, 100, 100};
  cfg.idea.detection_period = sec(2);
  cfg.anti_entropy_period = sec(1);
  cfg.observability.enabled = true;
  cfg.observability.tracing = true;
  ShardedCluster cluster(cfg);
  cluster.place(1, kFiles);

  apps::KvStore kv(cluster,
                   apps::KvStoreOptions{.buckets = kFiles, .first_file = 1});
  apps::KvWorkloadParams wl;
  wl.clients = 8;
  wl.interval = msec(250);
  wl.duration = sec(6);
  wl.keyspace = 240;
  wl.zipf_s = 0.9;
  apps::KvWorkload workload(kv, cluster.sim(), wl, seed ^ 0xBEEF);
  workload.start();

  cluster.run_until(sec(2) + msec(500));
  const MembershipChange joined = cluster.add_endpoint();
  cluster.run_until(sec(4) + msec(500));
  const MembershipChange left = cluster.remove_endpoint(2);
  cluster.run_until(sec(6) + sec(10));

  ObsReplayResult r;
  r.puts = kv.puts();
  for (FileId f = 1; f <= kFiles; ++f) {
    if (cluster.converged(f)) ++r.converged;
    core::IdeaNode* coord = cluster.replica_at_rank(f, 0);
    if (coord != nullptr) {
      r.digest ^= coord->store().content_digest() * (f * 2654435761ull);
    }
  }
  r.digest ^= mix64(0x10 + joined.files_migrated) ^
              mix64(0x20 + joined.state_updates) ^
              mix64(0x30 + left.files_migrated) ^
              mix64(0x40 + left.state_updates);
  r.logical_messages = cluster.batching()->stats().logical_messages;
  r.wire_messages = cluster.wire_counters().total_messages();
  r.per_type = cluster.batching()->counters().by_type();
  r.metrics_json = cluster.obs()->export_metrics_json();
  r.trace_json = cluster.obs()->tracer()->export_chrome_trace();
  r.traces = cluster.obs()->tracer()->traces_started();
  return r;
}

using Golden = std::map<std::string, std::uint64_t>;

TEST(ObservabilityDeterminism, Seed2007GoldensHoldWithObsEnabled) {
  // The exact goldens from tests/shard/determinism_test.cpp — metrics
  // recording and trace minting must not shift a single message or draw.
  const ObsReplayResult r = replay_with_obs(2007);
  EXPECT_EQ(r.puts, 387u);
  EXPECT_EQ(r.converged, 120u);
  EXPECT_EQ(r.digest, 0xd4cf90538821fb05ull);
  EXPECT_EQ(r.logical_messages, 10966u);
  EXPECT_EQ(r.wire_messages, 2355u);
  const Golden expected{
      {"detect.probe", 3200},     {"detect.reply", 2672},
      {"gossip.push", 2160},      {"ransub.collect", 720},
      {"ransub.distribute", 720}, {"ransub.epoch", 720},
      {"shard.replicate", 774},
  };
  EXPECT_EQ(r.per_type, expected);
  // And the instrumentation actually observed the run.
  EXPECT_GT(r.traces, 0u);
  EXPECT_NE(r.metrics_json.find("session.puts"), std::string::npos);
}

TEST(ObservabilityDeterminism, ChurnSeed2007GoldensHoldWithObsEnabled) {
  const ObsReplayResult r = replay_churn_with_obs(2007);
  EXPECT_EQ(r.puts, 188u);
  EXPECT_EQ(r.converged, 60u);
  EXPECT_EQ(r.digest, 2514054996571215718ull);
  EXPECT_EQ(r.logical_messages, 9823u);
  EXPECT_EQ(r.wire_messages, 2231u);
  const Golden expected{
      {"detect.probe", 1054},   {"detect.reply", 976},
      {"gossip.push", 1080},    {"ransub.collect", 274},
      {"ransub.distribute", 274}, {"ransub.epoch", 274},
      {"shard.digest", 2751},   {"shard.migrate", 76},
      {"shard.repair", 2688},   {"shard.replicate", 376},
  };
  EXPECT_EQ(r.per_type, expected);
  // Churn exercises the AE + migration instrumentation.
  EXPECT_NE(r.metrics_json.find("ae.rounds"), std::string::npos);
  EXPECT_NE(r.metrics_json.find("shard.migrations"), std::string::npos);
}

TEST(ObservabilityDeterminism, ExportsAreByteIdenticalAcrossRuns) {
  // Two same-seed obs-on runs in one process: every exported byte —
  // metric dumps and chrome trace — must match.  Guards against iteration
  // order leaking from interning tables or hash maps into the export.
  const ObsReplayResult a = replay_with_obs(99);
  const ObsReplayResult b = replay_with_obs(99);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.traces, b.traces);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_FALSE(a.metrics_json.empty());
  EXPECT_FALSE(a.trace_json.empty());
}

TEST(ObservabilityDeterminism, ChurnExportsAreByteIdenticalAcrossRuns) {
  const ObsReplayResult a = replay_churn_with_obs(2007);
  const ObsReplayResult b = replay_churn_with_obs(2007);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);
}

}  // namespace
}  // namespace idea::shard
