/// \file trace_test.cpp
/// \brief Causal-tracing tests: tracer unit behavior, then the
///        cross-endpoint integration the ISSUE demands — one traced client
///        operation's span tree crossing coordinator replication, quorum
///        fan-out, and (under scripted loss) the anti-entropy round that
///        repairs the staleness the read observed.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "client/session.hpp"
#include "obs/observability.hpp"
#include "shard/sharded_cluster.hpp"

namespace idea::obs {
namespace {

TEST(Tracer, SpanTreeRecordsParentageAndTimes) {
  Tracer tr;
  const TraceContext root = tr.start_trace("op", 1, 7, 100);
  ASSERT_TRUE(root.active());
  const TraceContext child = tr.begin_span(root, "hop", 2, 7, 150);
  ASSERT_TRUE(child.active());
  EXPECT_EQ(child.trace, root.trace);
  tr.end_span(child.span, 250);
  tr.end_span(root.span, 300);
  tr.end_span(child.span, 999);  // idempotent: first close wins

  const auto spans = tr.trace_spans(root.trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root.span);
  EXPECT_EQ(spans[1].start, 150);
  EXPECT_EQ(spans[1].end, 250);
  EXPECT_TRUE(spans[0].finished());
  EXPECT_EQ(tr.traces_started(), 1u);
}

TEST(Tracer, InactiveParentRecordsNothing) {
  Tracer tr;
  const TraceContext none = tr.begin_span(TraceContext{}, "hop", 1, 1, 0);
  EXPECT_FALSE(none.active());
  EXPECT_TRUE(tr.spans().empty());
}

TEST(Tracer, ChromeExportMarksUnfinishedSpansAsLost) {
  Tracer tr;
  const TraceContext root = tr.start_trace("op", 0, 1, 10);
  tr.begin_span(root, "msg.lost", 1, 1, 20);  // never closed
  tr.end_span(root.span, 50);

  const std::string json = tr.export_chrome_trace();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"lost\": true"), std::string::npos);
  EXPECT_NE(json.find("\"lost\": false"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
}

// ---------------------------------------------------------------------
// Integration: spans across the sharded cluster.
// ---------------------------------------------------------------------

shard::ShardedClusterConfig traced_config(std::uint32_t endpoints) {
  shard::ShardedClusterConfig cfg;
  cfg.endpoints = endpoints;
  cfg.replication = 3;
  cfg.batching = true;
  cfg.seed = 2007;
  cfg.anti_entropy_period = sec(1);
  cfg.observability.enabled = true;
  cfg.observability.tracing = true;
  cfg.sync_sizes();
  return cfg;
}

std::set<NodeId> endpoints_of(const std::vector<SpanRecord>& spans) {
  std::set<NodeId> out;
  for (const SpanRecord& s : spans) out.insert(s.endpoint);
  return out;
}

bool has_span(const std::vector<SpanRecord>& spans, std::string_view name) {
  return std::any_of(spans.begin(), spans.end(), [&](const SpanRecord& s) {
    return s.name == name;
  });
}

/// Every non-root span's parent must be an earlier span of the same trace.
void expect_valid_parent_chain(const std::vector<SpanRecord>& spans) {
  std::set<std::uint32_t> ids;
  for (const SpanRecord& s : spans) ids.insert(s.id);
  for (const SpanRecord& s : spans) {
    if (s.parent != 0) {
      EXPECT_TRUE(ids.count(s.parent))
          << "span " << s.id << " (" << s.name << ") has dangling parent "
          << s.parent;
    }
  }
}

TEST(TraceIntegration, TracedPutSpansCoordinatorReplication) {
  shard::ShardedCluster cluster(traced_config(4));
  ASSERT_NE(cluster.obs(), nullptr);
  ASSERT_NE(cluster.obs()->tracer(), nullptr);

  client::Client client(cluster);
  client::ClientSession session = client.session();
  const FileId file = 1;
  session.open(file);
  session.put(file, "hello");
  cluster.run_for(sec(1));

  Tracer& tr = *cluster.obs()->tracer();
  ASSERT_GE(tr.traces_started(), 1u);
  const auto spans = tr.trace_spans(1);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().name, "session.put");
  EXPECT_TRUE(has_span(spans, "msg.shard.replicate"));
  EXPECT_TRUE(has_span(spans, "replicate.apply"));
  expect_valid_parent_chain(spans);

  // The replication fan-out crosses endpoints: the coordinator's pushes
  // land (and close their wire spans) on the other group members.
  std::size_t finished_wire_spans = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "msg.shard.replicate" && s.finished()) {
      ++finished_wire_spans;
      EXPECT_GT(s.end, s.start);  // flight time is the modeled latency
    }
  }
  EXPECT_EQ(finished_wire_spans, 2u);  // replication = 3 -> 2 pushes
}

TEST(TraceIntegration, QuorumReadFansOutAcrossReplicas) {
  shard::ShardedCluster cluster(traced_config(4));
  client::Client client(cluster);
  client::ClientSession session =
      client.session({.level = client::ConsistencyLevel::quorum()});
  const FileId file = 1;
  session.open(file);
  session.put(file, "payload");
  cluster.run_for(sec(1));
  session.read(file);

  Tracer& tr = *cluster.obs()->tracer();
  // Trace 1 = the put, trace 2 = the read.
  const auto spans = tr.trace_spans(2);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().name, "session.read");
  std::size_t fanout = 0;
  std::set<NodeId> contacted;
  for (const SpanRecord& s : spans) {
    if (s.name == "read.fanout") {
      ++fanout;
      contacted.insert(s.endpoint);
    }
  }
  EXPECT_EQ(fanout, 2u);  // majority of 3 = 2 replicas contacted
  EXPECT_EQ(contacted.size(), 2u);
  expect_valid_parent_chain(spans);
}

/// The acceptance-criterion scenario: a write whose replication pushes are
/// lost to a scripted drop window leaves a replica stale; a traced bounded
/// read served near that replica escalates, parks its trace, and the
/// anti-entropy digest/repair round that finally heals the replica joins
/// the same span tree — which therefore crosses >= 3 endpoints.
TEST(TraceIntegration, EscalatedReadSpanTreeReachesAntiEntropyRepair) {
  shard::ShardedCluster cluster(traced_config(4));
  const FileId file = 1;
  const std::vector<NodeId> group = cluster.group_of(file);
  ASSERT_EQ(group.size(), 3u);
  const NodeId coordinator = group[0];
  const NodeId nearby = group[1];  // client sits on a non-coordinator

  client::Client client(cluster);
  client::ClientSession session = client.session(
      {.level = client::ConsistencyLevel::bounded_staleness(0),
       .origin = nearby});
  session.open(file);

  // Lose the replication pushes: the coordinator applies the write, every
  // other replica goes stale until anti-entropy heals it.
  cluster.transport().add_drop_window(cluster.sim().now(),
                                      cluster.sim().now() + msec(500));
  session.put(file, "only-the-coordinator-sees-this");
  cluster.run_for(msec(600));

  auto read = session.read(file);
  EXPECT_TRUE(read.value().escalated);
  EXPECT_EQ(read.value().served_by, coordinator);

  // Let anti-entropy run; the parked repair trace tags the digest/repair
  // exchange until a repair actually applies updates at a stale replica.
  cluster.run_for(sec(5));

  Tracer& tr = *cluster.obs()->tracer();
  // Trace 1 = put, trace 2 = the escalated read.
  const auto spans = tr.trace_spans(2);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.front().name, "session.read");
  EXPECT_TRUE(has_span(spans, "read.escalate"));
  EXPECT_TRUE(has_span(spans, "read.serve"));
  EXPECT_TRUE(has_span(spans, "msg.shard.digest"));
  EXPECT_TRUE(has_span(spans, "msg.shard.repair"));
  EXPECT_TRUE(has_span(spans, "ae.repair.apply"));
  expect_valid_parent_chain(spans);

  // The tree crosses the router's serving/escalation endpoints AND the
  // anti-entropy participants: >= 3 distinct endpoints beyond the client.
  std::set<NodeId> eps = endpoints_of(spans);
  eps.erase(nearby);  // the client-origin root span
  EXPECT_GE(eps.size(), 2u);
  eps.insert(nearby);
  EXPECT_GE(eps.size(), 3u);

  // The heal cleared the parked trace: later AE rounds are untagged.
  EXPECT_FALSE(cluster.obs()->peek_repair_trace(file).active());

  // The put's lost pushes are visible in the export.
  const std::string json = tr.export_chrome_trace();
  EXPECT_NE(json.find("\"lost\": true"), std::string::npos);
}

}  // namespace
}  // namespace idea::obs
