/// \file metrics_test.cpp
/// \brief Unit tests for the deterministic metrics substrate: MetricId
///        interning, power-of-two histograms, registries, the null-sink
///        Meter, and the Observability facade's aggregation + export.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/observability.hpp"

namespace idea::obs {
namespace {

TEST(MetricId, InternIsIdempotentAndLookupFindsIt) {
  const MetricId a = MetricId::intern("test.metric.alpha");
  const MetricId b = MetricId::intern("test.metric.alpha");
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.name(), "test.metric.alpha");
  EXPECT_EQ(MetricId::lookup("test.metric.alpha"), a);

  const MetricId c = MetricId::intern("test.metric.beta");
  EXPECT_NE(a, c);
}

TEST(MetricId, LookupOfUnknownNameIsInvalid) {
  const MetricId m = MetricId::lookup("test.metric.never-interned");
  EXPECT_FALSE(m.valid());
  EXPECT_EQ(m.name(), "?");
  EXPECT_EQ(m, MetricId());
}

TEST(HistogramTest, BucketAssignmentIsPowerOfTwo) {
  Histogram h;
  h.observe(0);  // bucket 0 is reserved for exactly zero
  h.observe(1);  // [1, 2) -> bucket 1
  h.observe(2);  // [2, 4) -> bucket 2
  h.observe(3);
  h.observe(4);  // [4, 8) -> bucket 3
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.sum, 10u);
  EXPECT_EQ(h.max, 4u);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramTest, HugeValuesClampIntoLastBucket) {
  Histogram h;
  h.observe(UINT64_MAX);
  EXPECT_EQ(h.buckets[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.max, UINT64_MAX);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.observe(1000);  // all in [512, 1024)
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 512.0);
  EXPECT_LE(p50, 1024.0);
  // The quantile never exceeds the recorded maximum's bucket ceiling.
  EXPECT_LE(h.quantile(1.0), 1024.0);
}

TEST(HistogramTest, MergeAddsBucketsAndKeepsMax) {
  Histogram a;
  Histogram b;
  a.observe(1);
  a.observe(100);
  b.observe(1);
  b.observe(5000);
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum, 1u + 100u + 1u + 5000u);
  EXPECT_EQ(a.max, 5000u);
  EXPECT_EQ(a.buckets[1], 2u);
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  const MetricId c = MetricId::intern("test.reg.counter");
  const MetricId g = MetricId::intern("test.reg.gauge");
  const MetricId h = MetricId::intern("test.reg.hist");

  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  r.add(c);
  r.add(c, 4);
  r.set_gauge(g, -7);
  r.observe(h, 42);
  EXPECT_FALSE(r.empty());

  EXPECT_EQ(r.counter(c), 5u);
  EXPECT_EQ(r.gauge(g), -7);
  ASSERT_NE(r.histogram(h), nullptr);
  EXPECT_EQ(r.histogram(h)->count, 1u);
  EXPECT_EQ(r.counter(MetricId::intern("test.reg.other")), 0u);
  EXPECT_EQ(r.histogram(MetricId::intern("test.reg.other2")), nullptr);

  const auto by_name = r.counters_by_name();
  ASSERT_EQ(by_name.count("test.reg.counter"), 1u);
  EXPECT_EQ(by_name.at("test.reg.counter"), 5u);
}

TEST(MetricsRegistry, MergeFoldsAllKinds) {
  const MetricId c = MetricId::intern("test.merge.counter");
  const MetricId g = MetricId::intern("test.merge.gauge");
  const MetricId h = MetricId::intern("test.merge.hist");

  MetricsRegistry a;
  MetricsRegistry b;
  a.add(c, 2);
  b.add(c, 3);
  b.set_gauge(g, 11);
  a.observe(h, 8);
  b.observe(h, 16);
  a.merge(b);

  EXPECT_EQ(a.counter(c), 5u);
  EXPECT_EQ(a.gauge(g), 11);
  ASSERT_NE(a.histogram(h), nullptr);
  EXPECT_EQ(a.histogram(h)->count, 2u);
}

TEST(MetricsRegistry, JsonExportIsByteDeterministic) {
  const MetricId c1 = MetricId::intern("test.json.b");
  const MetricId c2 = MetricId::intern("test.json.a");
  const MetricId h = MetricId::intern("test.json.hist");

  auto build = [&] {
    MetricsRegistry r;
    r.add(c1, 7);
    r.add(c2, 9);
    r.observe(h, 3);
    r.observe(h, 300);
    std::string out;
    r.append_json(out, "");
    return out;
  };
  const std::string first = build();
  const std::string second = build();
  EXPECT_EQ(first, second);
  // Name-sorted: "test.json.a" appears before "test.json.b".
  EXPECT_LT(first.find("test.json.a"), first.find("test.json.b"));
}

TEST(MeterTest, NullMeterIsInertAndCheap) {
  const MetricId c = MetricId::intern("test.meter.counter");
  Meter null_meter;
  EXPECT_FALSE(null_meter.enabled());
  null_meter.add(c);
  null_meter.set_gauge(c, 5);
  null_meter.observe(c, 5);  // must not crash, must not record anywhere

  MetricsRegistry r;
  Meter live(&r);
  EXPECT_TRUE(live.enabled());
  live.add(c, 2);
  EXPECT_EQ(r.counter(c), 2u);
}

TEST(ObservabilityTest, PerEndpointRegistriesAndAggregate) {
  const MetricId c = MetricId::intern("test.obs.counter");
  Observability obs(3, ObservabilityConfig{.enabled = true});
  EXPECT_EQ(obs.endpoint_count(), 3u);
  EXPECT_EQ(obs.tracer(), nullptr);  // tracing off

  obs.cluster_meter().add(c, 1);
  obs.endpoint_meter(0).add(c, 10);
  obs.endpoint_meter(2).add(c, 100);

  const MetricsRegistry agg = obs.aggregate();
  EXPECT_EQ(agg.counter(c), 111u);

  // Elastic growth: touching a new endpoint id grows the deque without
  // invalidating earlier registries.
  obs.endpoint_meter(5).add(c, 1000);
  EXPECT_EQ(obs.endpoint_count(), 6u);
  EXPECT_EQ(obs.endpoint(0).counter(c), 10u);
  EXPECT_EQ(obs.aggregate().counter(c), 1111u);
}

TEST(ObservabilityTest, ExportIsByteDeterministic) {
  const MetricId c = MetricId::intern("test.obs.export");
  auto build = [&] {
    Observability obs(2, ObservabilityConfig{.enabled = true});
    obs.cluster_meter().add(c, 3);
    obs.endpoint_meter(1).observe(MetricId::intern("test.obs.hist"), 17);
    return obs.export_metrics_json();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_NE(a.find("\"cluster\""), std::string::npos);
  EXPECT_NE(a.find("\"aggregate\""), std::string::npos);
  EXPECT_NE(a.find("\"endpoints\""), std::string::npos);
}

TEST(ObservabilityTest, RepairTraceParkPeekClear) {
  Observability obs(1, ObservabilityConfig{.enabled = true, .tracing = true});
  ASSERT_NE(obs.tracer(), nullptr);

  EXPECT_FALSE(obs.peek_repair_trace(7).active());
  const TraceContext tc{42, 3};
  obs.note_repair_trace(7, tc);
  // Peek does not consume: every AE round until the heal sees it.
  EXPECT_EQ(obs.peek_repair_trace(7).trace, 42u);
  EXPECT_EQ(obs.peek_repair_trace(7).trace, 42u);
  EXPECT_FALSE(obs.peek_repair_trace(8).active());

  // Inactive contexts are never parked.
  obs.note_repair_trace(8, TraceContext{});
  EXPECT_FALSE(obs.peek_repair_trace(8).active());

  obs.clear_repair_trace(7);
  EXPECT_FALSE(obs.peek_repair_trace(7).active());
}

}  // namespace
}  // namespace idea::obs
